// Radix-2 FFT and FFT-based convolution — the signal-processing corner of
// the server catalogue (NetSolve-era problem sets exposed FFTPACK-style
// transforms alongside the dense solvers).
#pragma once

#include "common/error.hpp"
#include "linalg/matrix.hpp"

namespace ns::linalg {

/// In-place complex FFT over separate real/imaginary arrays.
/// Length must be a power of two (>= 1). `inverse` applies the 1/N-scaled
/// inverse transform.
Status fft_inplace(Vector& re, Vector& im, bool inverse = false);

/// Out-of-place convenience wrappers.
Result<std::pair<Vector, Vector>> fft(const Vector& re, const Vector& im);
Result<std::pair<Vector, Vector>> ifft(const Vector& re, const Vector& im);

/// Linear convolution of two real signals via zero-padded FFT.
/// Result length is x.size() + y.size() - 1.
Result<Vector> convolve(const Vector& x, const Vector& y);

/// True if n is a power of two (and nonzero).
bool is_power_of_two(std::size_t n) noexcept;

/// Smallest power of two >= n.
std::size_t next_power_of_two(std::size_t n) noexcept;

/// Flops of an n-point FFT (5 n log2 n, the classic planning figure).
double fft_flops(std::size_t n) noexcept;

}  // namespace ns::linalg
