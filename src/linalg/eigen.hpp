// Symmetric eigensolvers: cyclic Jacobi for full spectra (`dsyev` analogue)
// and power iteration for the dominant pair.
#pragma once

#include "common/error.hpp"
#include "linalg/matrix.hpp"

namespace ns::linalg {

struct EigenDecomposition {
  Vector values;    // ascending
  Matrix vectors;   // column j pairs with values[j]
};

/// Full eigendecomposition of a symmetric matrix by the cyclic Jacobi
/// method; converges quadratically for symmetric input. `tol` bounds the
/// off-diagonal Frobenius mass relative to the matrix norm.
Result<EigenDecomposition> jacobi_eigen(const Matrix& a, double tol = 1e-12,
                                        std::size_t max_sweeps = 64);

struct PowerIterationResult {
  double eigenvalue = 0.0;
  Vector eigenvector;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Dominant eigenpair by normalized power iteration with Rayleigh quotient
/// estimates.
Result<PowerIterationResult> power_iteration(const Matrix& a, Rng& rng, double tol = 1e-10,
                                             std::size_t max_iters = 5000);

/// Approximate flops of a Jacobi eigensolve (sweeps * 6 n^3 is a reasonable
/// planning figure; used only by the scheduler's complexity model).
double jacobi_flops(std::size_t n) noexcept;

}  // namespace ns::linalg
