#include "linalg/blas.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ns::linalg {

void axpy(double alpha, const Vector& x, Vector& y) noexcept {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double dot(const Vector& x, const Vector& y) noexcept {
  assert(x.size() == y.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
  return sum;
}

double nrm2(const Vector& x) noexcept { return std::sqrt(dot(x, x)); }

void scal(double alpha, Vector& x) noexcept {
  for (double& v : x) v *= alpha;
}

std::size_t iamax(const Vector& x) noexcept {
  std::size_t best = 0;
  double best_abs = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double a = std::abs(x[i]);
    if (a > best_abs) {
      best_abs = a;
      best = i;
    }
  }
  return best;
}

void gemv(double alpha, const Matrix& a, const Vector& x, double beta, Vector& y) {
  assert(x.size() == a.cols());
  assert(y.size() == a.rows());
  if (beta == 0.0) {
    std::fill(y.begin(), y.end(), 0.0);
  } else if (beta != 1.0) {
    scal(beta, y);
  }
  // Column sweep: contiguous reads of each column, y accumulated in place.
  for (std::size_t j = 0; j < a.cols(); ++j) {
    const double xj = alpha * x[j];
    if (xj == 0.0) continue;
    const double* col = a.col(j);
    for (std::size_t i = 0; i < a.rows(); ++i) y[i] += xj * col[i];
  }
}

void gemv_t(double alpha, const Matrix& a, const Vector& x, double beta, Vector& y) {
  assert(x.size() == a.rows());
  assert(y.size() == a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j) {
    const double* col = a.col(j);
    double sum = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) sum += col[i] * x[i];
    y[j] = alpha * sum + beta * y[j];
  }
}

void ger(double alpha, const Vector& x, const Vector& y, Matrix& a) {
  assert(x.size() == a.rows());
  assert(y.size() == a.cols());
  for (std::size_t j = 0; j < a.cols(); ++j) {
    const double yj = alpha * y[j];
    if (yj == 0.0) continue;
    double* col = a.col(j);
    for (std::size_t i = 0; i < a.rows(); ++i) col[i] += x[i] * yj;
  }
}

void gemm(double alpha, const Matrix& a, const Matrix& b, double beta, Matrix& c) {
  assert(a.cols() == b.rows());
  assert(c.rows() == a.rows() && c.cols() == b.cols());
  if (beta == 0.0) {
    std::fill(c.storage().begin(), c.storage().end(), 0.0);
  } else if (beta != 1.0) {
    scal(beta, c.storage());
  }
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  constexpr std::size_t kBlock = 64;
  for (std::size_t jj = 0; jj < n; jj += kBlock) {
    const std::size_t j_end = std::min(jj + kBlock, n);
    for (std::size_t kk = 0; kk < k; kk += kBlock) {
      const std::size_t k_end = std::min(kk + kBlock, k);
      for (std::size_t j = jj; j < j_end; ++j) {
        double* cj = c.col(j);
        for (std::size_t l = kk; l < k_end; ++l) {
          const double blj = alpha * b(l, j);
          if (blj == 0.0) continue;
          const double* al = a.col(l);
          for (std::size_t i = 0; i < m; ++i) cj[i] += al[i] * blj;
        }
      }
    }
  }
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  gemm(1.0, a, b, 0.0, c);
  return c;
}

double residual_inf(const Matrix& a, const Vector& x, const Vector& b) {
  Vector r(b);
  gemv(1.0, a, x, -1.0, r);  // r = A x - b (gemv computes Ax + (-1)*r... see below)
  // gemv computed r = 1*A*x + (-1)*b_copy, i.e. Ax - b. Max norm:
  double m = 0.0;
  for (const double v : r) m = std::max(m, std::abs(v));
  return m;
}

}  // namespace ns::linalg
