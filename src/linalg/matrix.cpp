#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ns::linalg {

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t j = 0; j < cols_; ++j) {
    for (std::size_t i = 0; i < rows_; ++i) {
      out(j, i) = (*this)(i, j);
    }
  }
  return out;
}

double Matrix::frobenius_norm() const noexcept {
  double sum = 0.0;
  for (const double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double Matrix::max_abs() const noexcept {
  double m = 0.0;
  for (const double v : data_) m = std::max(m, std::abs(v));
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

Matrix Matrix::random(std::size_t rows, std::size_t cols, Rng& rng, double lo, double hi) {
  Matrix out(rows, cols);
  for (double& v : out.data_) v = rng.uniform(lo, hi);
  return out;
}

Matrix Matrix::random_spd(std::size_t n, Rng& rng) {
  const Matrix b = random(n, n, rng);
  Matrix out(n, n);
  // A = B^T B + n*I — symmetric by construction, strictly positive definite.
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i <= j; ++i) {
      double sum = 0.0;
      for (std::size_t k = 0; k < n; ++k) sum += b(k, i) * b(k, j);
      out(i, j) = sum;
      out(j, i) = sum;
    }
    out(j, j) += static_cast<double>(n);
  }
  return out;
}

Matrix Matrix::random_diag_dominant(std::size_t n, Rng& rng) {
  Matrix out = random(n, n, rng);
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) row_sum += std::abs(out(i, j));
    out(i, i) = row_sum + 1.0;
  }
  return out;
}

std::string Matrix::to_string(std::size_t max_dim) const {
  std::ostringstream out;
  const std::size_t r = std::min(rows_, max_dim);
  const std::size_t c = std::min(cols_, max_dim);
  out << rows_ << "x" << cols_ << " [\n";
  for (std::size_t i = 0; i < r; ++i) {
    out << "  ";
    for (std::size_t j = 0; j < c; ++j) out << (*this)(i, j) << " ";
    if (c < cols_) out << "...";
    out << "\n";
  }
  if (r < rows_) out << "  ...\n";
  out << "]";
  return out.str();
}

double max_abs_diff(const Vector& x, const Vector& y) noexcept {
  assert(x.size() == y.size());
  double m = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) m = std::max(m, std::abs(x[i] - y[i]));
  return m;
}

double max_abs_diff(const Matrix& x, const Matrix& y) noexcept {
  assert(x.same_shape(y));
  return max_abs_diff(x.storage(), y.storage());
}

Vector random_vector(std::size_t n, Rng& rng, double lo, double hi) {
  Vector out(n);
  for (double& v : out) v = rng.uniform(lo, hi);
  return out;
}

}  // namespace ns::linalg
