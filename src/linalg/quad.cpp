#include "linalg/quad.hpp"

#include <cmath>

#include "linalg/fit.hpp"

namespace ns::linalg {

namespace {

double simpson(double fa, double fm, double fb, double h) {
  return h / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive_step(const std::function<double(double)>& f, double a, double b, double fa,
                     double fm, double fb, double whole, double tol, std::size_t depth,
                     bool& ok) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpson(fa, flm, fm, m - a);
  const double right = simpson(fm, frm, fb, b - m);
  const double delta = left + right - whole;
  if (std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;  // Richardson correction
  }
  if (depth == 0) {
    ok = false;
    return left + right;
  }
  return adaptive_step(f, a, m, fa, flm, fm, left, tol / 2, depth - 1, ok) +
         adaptive_step(f, m, b, fm, frm, fb, right, tol / 2, depth - 1, ok);
}

}  // namespace

Result<double> adaptive_simpson(const std::function<double(double)>& f, double a, double b,
                                double tol, std::size_t max_depth) {
  if (!(a < b)) {
    if (a == b) return 0.0;
    auto flipped = adaptive_simpson(f, b, a, tol, max_depth);
    if (!flipped.ok()) return flipped.error();
    return -flipped.value();
  }
  const double fa = f(a);
  const double fb = f(b);
  const double m = 0.5 * (a + b);
  const double fm = f(m);
  if (!std::isfinite(fa) || !std::isfinite(fm) || !std::isfinite(fb)) {
    return make_error(ErrorCode::kExecutionFailed, "integrand not finite on [a, b]");
  }
  bool ok = true;
  const double whole = simpson(fa, fm, fb, b - a);
  const double value = adaptive_step(f, a, b, fa, fm, fb, whole, tol, max_depth, ok);
  if (!ok) {
    return make_error(ErrorCode::kExecutionFailed, "quadrature did not converge");
  }
  return value;
}

Result<double> integrate_samples(const Vector& x, const Vector& y) {
  auto spline = CubicSpline::fit(x, y);
  if (!spline.ok()) return spline.error();
  // A cubic is integrated exactly by Simpson on each knot interval.
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < x.size(); ++i) {
    const double a = x[i];
    const double b = x[i + 1];
    const double m = 0.5 * (a + b);
    total += (b - a) / 6.0 * (y[i] + 4.0 * spline.value()(m) + y[i + 1]);
  }
  return total;
}

Result<Vector> rk4_integrate(const std::function<void(const Vector&, Vector&)>& f, Vector y0,
                             double dt, std::size_t steps, std::size_t stride) {
  if (dt <= 0 || !std::isfinite(dt)) {
    return make_error(ErrorCode::kBadArguments, "rk4: dt must be positive");
  }
  if (stride == 0) stride = 1;
  const std::size_t dim = y0.size();
  if (dim == 0) {
    return make_error(ErrorCode::kBadArguments, "rk4: empty state");
  }

  Vector trajectory;
  trajectory.reserve((steps / stride + 2) * dim);
  auto emit = [&trajectory](const Vector& y) {
    trajectory.insert(trajectory.end(), y.begin(), y.end());
  };
  emit(y0);

  Vector k1(dim), k2(dim), k3(dim), k4(dim), tmp(dim);
  Vector y = std::move(y0);
  for (std::size_t step = 1; step <= steps; ++step) {
    f(y, k1);
    for (std::size_t i = 0; i < dim; ++i) tmp[i] = y[i] + 0.5 * dt * k1[i];
    f(tmp, k2);
    for (std::size_t i = 0; i < dim; ++i) tmp[i] = y[i] + 0.5 * dt * k2[i];
    f(tmp, k3);
    for (std::size_t i = 0; i < dim; ++i) tmp[i] = y[i] + dt * k3[i];
    f(tmp, k4);
    for (std::size_t i = 0; i < dim; ++i) {
      y[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
      if (!std::isfinite(y[i])) {
        return make_error(ErrorCode::kExecutionFailed, "rk4: state diverged");
      }
    }
    if (step % stride == 0 || step == steps) emit(y);
  }
  return trajectory;
}

Result<Vector> lorenz_trajectory(double sigma, double rho, double beta, double x0, double y0,
                                 double z0, double dt, std::size_t steps,
                                 std::size_t stride) {
  auto rhs = [sigma, rho, beta](const Vector& y, Vector& dy) {
    dy[0] = sigma * (y[1] - y[0]);
    dy[1] = y[0] * (rho - y[2]) - y[1];
    dy[2] = y[0] * y[1] - beta * y[2];
  };
  return rk4_integrate(rhs, Vector{x0, y0, z0}, dt, steps, stride);
}

}  // namespace ns::linalg
