// Compressed sparse row matrices and generators — the substrate for the
// ITPACK-style iterative solvers NetSolve servers exposed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace ns::linalg {

struct Triplet {
  std::size_t row = 0;
  std::size_t col = 0;
  double value = 0.0;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Build from (row, col, value) triplets; duplicates are summed.
  static Result<CsrMatrix> from_triplets(std::size_t rows, std::size_t cols,
                                         std::vector<Triplet> triplets);

  /// Direct construction from validated CSR arrays.
  static Result<CsrMatrix> from_csr(std::size_t rows, std::size_t cols,
                                    std::vector<std::int32_t> indptr,
                                    std::vector<std::int32_t> indices,
                                    std::vector<double> values);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t nnz() const noexcept { return values_.size(); }

  const std::vector<std::int32_t>& indptr() const noexcept { return indptr_; }
  const std::vector<std::int32_t>& indices() const noexcept { return indices_; }
  const std::vector<double>& values() const noexcept { return values_; }

  /// y = A x
  void multiply(const Vector& x, Vector& y) const;
  Vector multiply(const Vector& x) const;

  /// Entry lookup (O(row nnz)); returns 0 for absent entries.
  double at(std::size_t i, std::size_t j) const noexcept;

  /// Diagonal as a dense vector (0 where no stored entry).
  Vector diagonal() const;

  /// Dense copy (small matrices, tests only).
  Matrix to_dense() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::int32_t> indptr_;
  std::vector<std::int32_t> indices_;
  std::vector<double> values_;
};

/// 1-D Poisson operator (tridiagonal [-1, 2, -1]) of order n — SPD.
CsrMatrix poisson_1d(std::size_t n);

/// 2-D Poisson operator on an (nx x ny) grid with the 5-point stencil — SPD
/// of order nx*ny.
CsrMatrix poisson_2d(std::size_t nx, std::size_t ny);

/// Random sparse SPD: symmetric pattern with ~`avg_nnz_per_row` off-diagonal
/// entries per row, made diagonally dominant.
CsrMatrix random_sparse_spd(std::size_t n, std::size_t avg_nnz_per_row, Rng& rng);

}  // namespace ns::linalg
