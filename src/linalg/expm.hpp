// Matrix exponential by scaling-and-squaring with a Padé approximant —
// the `expm` catalogue problem (linear ODE propagators exp(tA)).
#pragma once

#include "common/error.hpp"
#include "linalg/matrix.hpp"

namespace ns::linalg {

/// e^A for a square matrix, via the [6/6] Padé approximant with scaling and
/// squaring. Accurate to ~1e-12 relative for well-scaled inputs.
Result<Matrix> expm(const Matrix& a);

/// Propagate x(t) = exp(t A) x0 (dense A; convenience for ODE examples).
Result<Vector> expm_apply(const Matrix& a, double t, const Vector& x0);

}  // namespace ns::linalg
