// LINPACK-style performance rating.
//
// NetSolve's agent needs a scalar "speed" for every server to feed its
// completion-time predictor. The original system used the LINPACK benchmark
// figure of the host; here a server measures itself at startup by timing an
// LU solve of fixed order and reporting Mflop/s.
#pragma once

#include <cstddef>

namespace ns::linalg {

struct Rating {
  double mflops = 0.0;     // measured rate
  double seconds = 0.0;    // time of the rated solve
  std::size_t order = 0;   // problem order used
};

/// Time an order-n LU solve (the LINPACK kernel) and convert to Mflop/s.
/// `repeats` > 1 reports the fastest trial to shrug off scheduling noise.
Rating linpack_rating(std::size_t n = 200, int repeats = 3);

}  // namespace ns::linalg
