#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ns::linalg {

Result<SvdResult> jacobi_svd(const Matrix& input, double tol, std::size_t max_sweeps) {
  const std::size_t m = input.rows();
  const std::size_t n = input.cols();
  if (m < n) {
    return make_error(ErrorCode::kBadArguments, "jacobi_svd requires rows >= cols");
  }
  if (n == 0) {
    return make_error(ErrorCode::kBadArguments, "empty matrix");
  }

  Matrix u = input;  // becomes U * diag(sigma)
  Matrix v = Matrix::identity(n);
  const double threshold = tol * input.frobenius_norm() * input.frobenius_norm() + 1e-300;

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        // Gram entries for the column pair (p, q).
        double app = 0, aqq = 0, apq = 0;
        const double* cp = u.col(p);
        const double* cq = u.col(q);
        for (std::size_t i = 0; i < m; ++i) {
          app += cp[i] * cp[i];
          aqq += cq[i] * cq[i];
          apq += cp[i] * cq[i];
        }
        off = std::max(off, std::abs(apq));
        if (std::abs(apq) <= threshold) continue;

        // Jacobi rotation annihilating the (p, q) Gram entry.
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        double* wp = u.col(p);
        double* wq = u.col(q);
        for (std::size_t i = 0; i < m; ++i) {
          const double up = wp[i];
          const double uq = wq[i];
          wp[i] = c * up - s * uq;
          wq[i] = s * up + c * uq;
        }
        double* vp = v.col(p);
        double* vq = v.col(q);
        for (std::size_t i = 0; i < n; ++i) {
          const double xp = vp[i];
          const double xq = vq[i];
          vp[i] = c * xp - s * xq;
          vq[i] = s * xp + c * xq;
        }
      }
    }
    if (off <= threshold) break;
  }

  // Column norms are the singular values; normalize U's columns.
  SvdResult result;
  result.singular_values.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    double norm = 0;
    const double* col = u.col(j);
    for (std::size_t i = 0; i < m; ++i) norm += col[i] * col[i];
    result.singular_values[j] = std::sqrt(norm);
  }

  // Sort descending, permuting U and V along.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&result](std::size_t a, std::size_t b) {
    return result.singular_values[a] > result.singular_values[b];
  });

  SvdResult sorted;
  sorted.singular_values.resize(n);
  sorted.u = Matrix(m, n);
  sorted.v = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = order[j];
    const double sigma = result.singular_values[src];
    sorted.singular_values[j] = sigma;
    const double inv = sigma > 0 ? 1.0 / sigma : 0.0;
    for (std::size_t i = 0; i < m; ++i) sorted.u(i, j) = u(i, src) * inv;
    for (std::size_t i = 0; i < n; ++i) sorted.v(i, j) = v(i, src);
  }
  return sorted;
}

Result<Vector> singular_values(const Matrix& a) {
  // For wide matrices, transpose (singular values are invariant).
  const Matrix& work = a.rows() >= a.cols() ? a : a.transposed();
  auto svd = jacobi_svd(work.rows() == a.rows() ? a : work);
  if (!svd.ok()) return svd.error();
  return std::move(svd.value().singular_values);
}

Result<double> condition_number(const Matrix& a) {
  auto sv = singular_values(a);
  if (!sv.ok()) return sv.error();
  const double smin = sv.value().back();
  if (smin <= 0) {
    return make_error(ErrorCode::kExecutionFailed, "singular matrix (sigma_min = 0)");
  }
  return sv.value().front() / smin;
}

}  // namespace ns::linalg
