#include "linalg/expm.hpp"

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/lu.hpp"

namespace ns::linalg {

namespace {

/// Infinity norm (max absolute row sum).
double inf_norm(const Matrix& a) {
  double best = 0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double row = 0;
    for (std::size_t j = 0; j < a.cols(); ++j) row += std::abs(a(i, j));
    best = std::max(best, row);
  }
  return best;
}

}  // namespace

Result<Matrix> expm(const Matrix& a) {
  if (!a.square()) {
    return make_error(ErrorCode::kBadArguments, "expm requires a square matrix");
  }
  const std::size_t n = a.rows();
  if (n == 0) {
    return make_error(ErrorCode::kBadArguments, "expm: empty matrix");
  }

  // Scale A by 2^-s so ||A/2^s|| <= 0.5, apply the Padé approximant, then
  // square the result s times.
  const double norm = inf_norm(a);
  int s = 0;
  if (norm > 0.5) {
    s = static_cast<int>(std::ceil(std::log2(norm / 0.5)));
  }
  const double scale = std::ldexp(1.0, -s);  // 2^-s
  Matrix x = a;
  scal(scale, x.storage());

  // [6/6] Padé: N(x)/D(x) with coefficients c_k = c_{k-1} * (q-k+1)/(k(2q-k+1)).
  constexpr int q = 6;
  Matrix numerator = Matrix::identity(n);
  Matrix denominator = Matrix::identity(n);
  Matrix power = Matrix::identity(n);
  double c = 1.0;
  for (int k = 1; k <= q; ++k) {
    c *= static_cast<double>(q - k + 1) / static_cast<double>(k * (2 * q - k + 1));
    power = matmul(power, x);
    // numerator += c * power; denominator += (-1)^k c * power.
    axpy(c, power.storage(), numerator.storage());
    axpy((k % 2 == 0) ? c : -c, power.storage(), denominator.storage());
  }

  // R = D^-1 N via LU solve with the columns of N.
  auto lu = LuFactorization::factor(denominator);
  if (!lu.ok()) {
    return make_error(ErrorCode::kExecutionFailed, "expm: Pade denominator singular");
  }
  auto r = lu.value().solve(numerator);
  if (!r.ok()) return r.error();

  Matrix result = std::move(r).value();
  for (int i = 0; i < s; ++i) result = matmul(result, result);
  return result;
}

Result<Vector> expm_apply(const Matrix& a, double t, const Vector& x0) {
  if (x0.size() != a.rows()) {
    return make_error(ErrorCode::kBadArguments, "expm_apply: size mismatch");
  }
  Matrix ta = a;
  scal(t, ta.storage());
  auto e = expm(ta);
  if (!e.ok()) return e.error();
  Vector out(x0.size(), 0.0);
  gemv(1.0, e.value(), x0, 0.0, out);
  return out;
}

}  // namespace ns::linalg
