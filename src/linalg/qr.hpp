// Householder QR factorization and least-squares solve (`dgels`).
#pragma once

#include "common/error.hpp"
#include "linalg/matrix.hpp"

namespace ns::linalg {

class QrFactorization {
 public:
  /// Factor A (m x n, m >= n) into Q R using Householder reflections stored
  /// compactly (reflectors below the diagonal, R on/above, scalars in tau).
  static Result<QrFactorization> factor(Matrix a);

  /// Minimize ||A x - b||_2; returns x of size n.
  Result<Vector> least_squares(const Vector& b) const;

  /// Explicitly materialize R (n x n upper triangular).
  Matrix r() const;

  /// Apply Q^T to a vector of length m.
  Result<Vector> apply_qt(const Vector& b) const;

  std::size_t rows() const noexcept { return qr_.rows(); }
  std::size_t cols() const noexcept { return qr_.cols(); }

 private:
  QrFactorization(Matrix qr, Vector tau) : qr_(std::move(qr)), tau_(std::move(tau)) {}
  Matrix qr_;
  Vector tau_;
};

/// LAPACK-style convenience: least-squares solution of A x ~= b.
Result<Vector> dgels(const Matrix& a, const Vector& b);

/// Flops of an m x n QR least-squares solve (2 m n^2 - 2/3 n^3 + O(mn)).
double qr_flops(std::size_t m, std::size_t n) noexcept;

}  // namespace ns::linalg
