#include "linalg/fit.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/qr.hpp"
#include "linalg/tridiag.hpp"

namespace ns::linalg {

Result<Vector> polyfit(const Vector& x, const Vector& y, std::size_t degree) {
  if (x.size() != y.size()) {
    return make_error(ErrorCode::kBadArguments, "x/y size mismatch");
  }
  if (x.size() < degree + 1) {
    return make_error(ErrorCode::kBadArguments, "not enough points for degree");
  }
  // Vandermonde least squares via QR (numerically safer than the normal
  // equations for the moderate degrees the servers accept).
  const std::size_t m = x.size();
  const std::size_t n = degree + 1;
  Matrix v(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    double p = 1.0;
    for (std::size_t j = 0; j < n; ++j) {
      v(i, j) = p;
      p *= x[i];
    }
  }
  return dgels(v, y);
}

double polyval(const Vector& coeffs, double x) noexcept {
  double acc = 0.0;
  for (std::size_t k = coeffs.size(); k-- > 0;) acc = acc * x + coeffs[k];
  return acc;
}

Result<CubicSpline> CubicSpline::fit(Vector x, Vector y) {
  const std::size_t n = x.size();
  if (n != y.size()) {
    return make_error(ErrorCode::kBadArguments, "x/y size mismatch");
  }
  if (n < 2) {
    return make_error(ErrorCode::kBadArguments, "spline needs at least 2 knots");
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (!(x[i] < x[i + 1])) {
      return make_error(ErrorCode::kBadArguments, "knots must be strictly increasing");
    }
  }
  if (n == 2) {
    return CubicSpline(std::move(x), std::move(y), Vector(2, 0.0));
  }

  // Natural spline: second derivatives m satisfy a tridiagonal system over
  // the interior knots; m_0 = m_{n-1} = 0.
  const std::size_t interior = n - 2;
  Vector sub(interior - 1 > 0 ? interior - 1 : 0);
  Vector diag(interior);
  Vector super(interior - 1 > 0 ? interior - 1 : 0);
  Vector rhs(interior);
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const double h_prev = x[i] - x[i - 1];
    const double h_next = x[i + 1] - x[i];
    const std::size_t r = i - 1;
    diag[r] = 2.0 * (h_prev + h_next);
    if (r > 0) sub[r - 1] = h_prev;
    if (r + 1 < interior) super[r] = h_next;
    rhs[r] = 6.0 * ((y[i + 1] - y[i]) / h_next - (y[i] - y[i - 1]) / h_prev);
  }
  auto interior_m = solve_tridiagonal(sub, diag, super, rhs);
  if (!interior_m.ok()) return interior_m.error();

  Vector m(n, 0.0);
  std::copy(interior_m.value().begin(), interior_m.value().end(), m.begin() + 1);
  return CubicSpline(std::move(x), std::move(y), std::move(m));
}

double CubicSpline::operator()(double t) const noexcept {
  const std::size_t n = x_.size();
  // Locate the interval [x_i, x_{i+1}] containing t (clamped).
  std::size_t i = 0;
  if (t >= x_[n - 2]) {
    i = n - 2;
  } else if (t > x_[0]) {
    const auto it = std::upper_bound(x_.begin(), x_.end(), t);
    i = static_cast<std::size_t>(it - x_.begin()) - 1;
  }
  const double h = x_[i + 1] - x_[i];
  const double a = (x_[i + 1] - t) / h;
  const double b = (t - x_[i]) / h;
  return a * y_[i] + b * y_[i + 1] +
         ((a * a * a - a) * m_[i] + (b * b * b - b) * m_[i + 1]) * h * h / 6.0;
}

}  // namespace ns::linalg
