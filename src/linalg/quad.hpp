// Quadrature and ODE integration — the "numerical recipes" corner of the
// catalogue (QUADPACK/ODEPACK analogues in NetSolve-era problem sets).
#pragma once

#include <functional>

#include "common/error.hpp"
#include "linalg/matrix.hpp"

namespace ns::linalg {

/// Adaptive Simpson quadrature of f on [a, b] to absolute tolerance `tol`.
Result<double> adaptive_simpson(const std::function<double(double)>& f, double a, double b,
                                double tol = 1e-10, std::size_t max_depth = 40);

/// Integral of the natural cubic spline through samples (x, y) over the full
/// knot range — integration of tabulated data, the remote-friendly form.
Result<double> integrate_samples(const Vector& x, const Vector& y);

/// Classic RK4 for an autonomous system y' = f(y); fixed step. Returns the
/// trajectory sampled at every `stride`-th step (including t=0 and the final
/// state), flattened row-major: [y0(t0), y1(t0), ..., y0(t1), ...].
Result<Vector> rk4_integrate(const std::function<void(const Vector&, Vector&)>& f,
                             Vector y0, double dt, std::size_t steps,
                             std::size_t stride = 1);

/// Lorenz attractor trajectory — the catalogue's concrete ODE problem.
/// Returns the (x, y, z) trajectory flattened as above.
Result<Vector> lorenz_trajectory(double sigma, double rho, double beta, double x0, double y0,
                                 double z0, double dt, std::size_t steps,
                                 std::size_t stride = 1);

}  // namespace ns::linalg
