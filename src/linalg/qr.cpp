#include "linalg/qr.hpp"

#include <cmath>

namespace ns::linalg {

Result<QrFactorization> QrFactorization::factor(Matrix a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (m < n) {
    return make_error(ErrorCode::kBadArguments, "QR requires rows >= cols");
  }
  Vector tau(n, 0.0);
  // Rank-deficiency threshold: a reflector column whose remaining norm has
  // collapsed below eps * the matrix scale means a (numerically) dependent
  // column; refuse rather than divide by round-off.
  const double rank_tol = 1e-12 * a.max_abs();
  for (std::size_t k = 0; k < n; ++k) {
    // Householder reflector annihilating a(k+1..m-1, k).
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += a(i, k) * a(i, k);
    norm = std::sqrt(norm);
    if (norm <= rank_tol) {
      return make_error(ErrorCode::kExecutionFailed, "rank-deficient matrix in QR");
    }
    if (a(k, k) > 0) norm = -norm;  // choose sign to avoid cancellation
    for (std::size_t i = k; i < m; ++i) a(i, k) /= norm;
    a(k, k) += 1.0;
    tau[k] = a(k, k);  // v_k(k); reflector H = I - (v v^T)/v_k(k)

    // Apply the reflector to the trailing columns.
    for (std::size_t j = k + 1; j < n; ++j) {
      double s = 0.0;
      for (std::size_t i = k; i < m; ++i) s += a(i, k) * a(i, j);
      s = -s / a(k, k);
      for (std::size_t i = k; i < m; ++i) a(i, j) += s * a(i, k);
    }
    // Compact layout (LINPACK dqrdc style): the reflector tail v_k(i), i > k
    // stays below the diagonal, its head v_k(k) moves to tau_[k], and the
    // diagonal slot takes R(k, k) = -norm. Applying H_k to x is then
    // s = -(v_k . x) / v_k(k); x += s * v_k.
    a(k, k) = -norm;
  }
  return QrFactorization(std::move(a), std::move(tau));
}

Result<Vector> QrFactorization::apply_qt(const Vector& b) const {
  const std::size_t m = rows();
  const std::size_t n = cols();
  if (b.size() != m) {
    return make_error(ErrorCode::kBadArguments, "vector length mismatch");
  }
  Vector y(b);
  for (std::size_t k = 0; k < n; ++k) {
    double s = tau_[k] * y[k];
    for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * y[i];
    s = -s / tau_[k];
    y[k] += s * tau_[k];
    for (std::size_t i = k + 1; i < m; ++i) y[i] += s * qr_(i, k);
  }
  return y;
}

Result<Vector> QrFactorization::least_squares(const Vector& b) const {
  const std::size_t n = cols();
  auto y = apply_qt(b);
  if (!y.ok()) return y.error();
  // Back substitution with R.
  Vector x(y.value().begin(), y.value().begin() + static_cast<std::ptrdiff_t>(n));
  for (std::size_t k = n; k-- > 0;) {
    for (std::size_t j = k + 1; j < n; ++j) x[k] -= qr_(k, j) * x[j];
    if (qr_(k, k) == 0.0) {
      return make_error(ErrorCode::kExecutionFailed, "singular R in least squares");
    }
    x[k] /= qr_(k, k);
  }
  return x;
}

Matrix QrFactorization::r() const {
  const std::size_t n = cols();
  Matrix out(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i <= j; ++i) out(i, j) = qr_(i, j);
  }
  return out;
}

Result<Vector> dgels(const Matrix& a, const Vector& b) {
  auto qr = QrFactorization::factor(a);
  if (!qr.ok()) return qr.error();
  return qr.value().least_squares(b);
}

double qr_flops(std::size_t m, std::size_t n) noexcept {
  const double md = static_cast<double>(m);
  const double nd = static_cast<double>(n);
  return 2.0 * md * nd * nd - (2.0 / 3.0) * nd * nd * nd + 4.0 * md * nd;
}

}  // namespace ns::linalg
