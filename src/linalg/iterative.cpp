#include "linalg/iterative.hpp"

#include <cmath>

#include "common/cancel.hpp"
#include "common/checkpoint.hpp"
#include "linalg/blas.hpp"

namespace ns::linalg {

namespace {

Status check_system(const CsrMatrix& a, const Vector& b) {
  if (a.rows() != a.cols()) {
    return make_error(ErrorCode::kBadArguments, "iterative solver requires a square matrix");
  }
  if (b.size() != a.rows()) {
    return make_error(ErrorCode::kBadArguments, "rhs size mismatch");
  }
  if (a.rows() == 0) {
    return make_error(ErrorCode::kBadArguments, "empty system");
  }
  return ok_status();
}

}  // namespace

Result<IterativeResult> conjugate_gradient(const CsrMatrix& a, const Vector& b,
                                           const IterativeOptions& opts) {
  NS_RETURN_IF_ERROR(check_system(a, b));
  const std::size_t n = b.size();
  const double b_norm = nrm2(b);
  IterativeResult result;
  result.x.assign(n, 0.0);
  if (b_norm == 0.0) {
    result.converged = true;
    return result;
  }

  Vector r = b;            // r = b - A*0
  Vector p = r;
  Vector ap(n);
  double rs_old = dot(r, r);

  // Checkpoint/restart: a snapshot captures {x, r, p, rs_old} at the end of
  // an iteration — exactly the state the loop needs to re-enter at it+1.
  const std::uint64_t resumed = checkpoint::restore([&](serial::Decoder& dec) {
    auto count = dec.get_u64();
    if (!count.ok() || count.value() != n) return false;
    auto rs = dec.get_f64();
    auto xs = dec.get_f64_array(n);
    auto rv = dec.get_f64_array(n);
    auto pv = dec.get_f64_array(n);
    if (!rs.ok() || !xs.ok() || !rv.ok() || !pv.ok()) return false;
    if (xs.value().size() != n || rv.value().size() != n || pv.value().size() != n) {
      return false;
    }
    rs_old = rs.value();
    result.x = std::move(xs).value();
    r = std::move(rv).value();
    p = std::move(pv).value();
    return true;
  });
  result.iterations = resumed;

  for (std::size_t it = resumed + 1; it <= opts.max_iterations; ++it) {
    if (cancel::poll()) return cancel::cancelled_error("conjugate gradient");
    a.multiply(p, ap);
    const double p_ap = dot(p, ap);
    if (p_ap <= 0.0) {
      return make_error(ErrorCode::kExecutionFailed,
                        "CG breakdown: matrix not positive definite");
    }
    const double alpha = rs_old / p_ap;
    axpy(alpha, p, result.x);
    axpy(-alpha, ap, r);
    const double rs_new = dot(r, r);
    result.iterations = it;
    result.residual = std::sqrt(rs_new) / b_norm;
    if (result.residual <= opts.tolerance) {
      result.converged = true;
      return result;
    }
    const double beta = rs_new / rs_old;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rs_old = rs_new;
    checkpoint::tick(it, result.residual, [&](serial::Encoder& enc) {
      enc.put_u64(n);
      enc.put_f64(rs_old);
      enc.put_f64_array(result.x);
      enc.put_f64_array(r);
      enc.put_f64_array(p);
    });
  }
  return result;  // not converged; caller inspects the flag
}

Result<IterativeResult> jacobi_solve(const CsrMatrix& a, const Vector& b,
                                     const IterativeOptions& opts) {
  NS_RETURN_IF_ERROR(check_system(a, b));
  const std::size_t n = b.size();
  const Vector diag = a.diagonal();
  for (const double d : diag) {
    if (d == 0.0) {
      return make_error(ErrorCode::kExecutionFailed, "Jacobi requires nonzero diagonal");
    }
  }
  const double b_norm = nrm2(b);
  IterativeResult result;
  result.x.assign(n, 0.0);
  if (b_norm == 0.0) {
    result.converged = true;
    return result;
  }

  Vector x_new(n);
  Vector ax(n);
  // Jacobi's whole loop state is the current iterate.
  const std::uint64_t resumed = checkpoint::restore([&](serial::Decoder& dec) {
    auto count = dec.get_u64();
    if (!count.ok() || count.value() != n) return false;
    auto xs = dec.get_f64_array(n);
    if (!xs.ok() || xs.value().size() != n) return false;
    result.x = std::move(xs).value();
    return true;
  });
  result.iterations = resumed;
  for (std::size_t it = resumed + 1; it <= opts.max_iterations; ++it) {
    if (cancel::poll()) return cancel::cancelled_error("Jacobi solve");
    a.multiply(result.x, ax);
    for (std::size_t i = 0; i < n; ++i) {
      // x_i' = x_i + (b_i - (A x)_i) / a_ii
      x_new[i] = result.x[i] + (b[i] - ax[i]) / diag[i];
    }
    result.x.swap(x_new);
    a.multiply(result.x, ax);
    double r_norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = b[i] - ax[i];
      r_norm += r * r;
    }
    result.iterations = it;
    result.residual = std::sqrt(r_norm) / b_norm;
    if (result.residual <= opts.tolerance) {
      result.converged = true;
      return result;
    }
    checkpoint::tick(it, result.residual, [&](serial::Encoder& enc) {
      enc.put_u64(n);
      enc.put_f64_array(result.x);
    });
  }
  return result;
}

Result<IterativeResult> sor_solve(const CsrMatrix& a, const Vector& b,
                                  const IterativeOptions& opts) {
  NS_RETURN_IF_ERROR(check_system(a, b));
  if (opts.omega <= 0.0 || opts.omega >= 2.0) {
    return make_error(ErrorCode::kBadArguments, "SOR omega must be in (0, 2)");
  }
  const std::size_t n = b.size();
  const Vector diag = a.diagonal();
  for (const double d : diag) {
    if (d == 0.0) {
      return make_error(ErrorCode::kExecutionFailed, "SOR requires nonzero diagonal");
    }
  }
  const double b_norm = nrm2(b);
  IterativeResult result;
  result.x.assign(n, 0.0);
  if (b_norm == 0.0) {
    result.converged = true;
    return result;
  }

  const auto& indptr = a.indptr();
  const auto& indices = a.indices();
  const auto& values = a.values();
  Vector ax(n);

  // Like Jacobi, the iterate is the whole loop state (SOR updates in place).
  const std::uint64_t resumed = checkpoint::restore([&](serial::Decoder& dec) {
    auto count = dec.get_u64();
    if (!count.ok() || count.value() != n) return false;
    auto xs = dec.get_f64_array(n);
    if (!xs.ok() || xs.value().size() != n) return false;
    result.x = std::move(xs).value();
    return true;
  });
  result.iterations = resumed;
  for (std::size_t it = resumed + 1; it <= opts.max_iterations; ++it) {
    if (cancel::poll()) return cancel::cancelled_error("SOR solve");
    for (std::size_t i = 0; i < n; ++i) {
      double sigma = 0.0;
      for (std::int32_t k = indptr[i]; k < indptr[i + 1]; ++k) {
        const auto j = static_cast<std::size_t>(indices[static_cast<std::size_t>(k)]);
        if (j != i) sigma += values[static_cast<std::size_t>(k)] * result.x[j];
      }
      const double gs = (b[i] - sigma) / diag[i];
      result.x[i] = (1.0 - opts.omega) * result.x[i] + opts.omega * gs;
    }
    a.multiply(result.x, ax);
    double r_norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = b[i] - ax[i];
      r_norm += r * r;
    }
    result.iterations = it;
    result.residual = std::sqrt(r_norm) / b_norm;
    if (result.residual <= opts.tolerance) {
      result.converged = true;
      return result;
    }
    checkpoint::tick(it, result.residual, [&](serial::Encoder& enc) {
      enc.put_u64(n);
      enc.put_f64_array(result.x);
    });
  }
  return result;
}

double cg_flops_per_iteration(std::size_t n, std::size_t nnz) noexcept {
  return 2.0 * static_cast<double>(nnz) + 10.0 * static_cast<double>(n);
}

}  // namespace ns::linalg
