#include "linalg/lu.hpp"

#include <cmath>

#include "common/cancel.hpp"
#include "common/checkpoint.hpp"

namespace ns::linalg {

Result<LuFactorization> LuFactorization::factor(Matrix a) {
  if (!a.square()) {
    return make_error(ErrorCode::kBadArguments, "LU requires a square matrix");
  }
  const std::size_t n = a.rows();
  std::vector<int> pivots(n);
  int sign = 1;

  for (std::size_t k = 0; k < n; ++k) {
    // Cancellation checkpoint at pivot-column granularity: one thread-local
    // read per O(n^2) trailing update. Progress-only for the durability
    // layer — direct factorization has no cheap resumable state, but probes
    // still see how far the elimination got.
    if (cancel::poll()) return cancel::cancelled_error("LU factorization");
    checkpoint::progress(k);
    // Partial pivot: largest |a_ik| for i >= k.
    std::size_t p = k;
    double p_abs = std::abs(a(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(a(i, k));
      if (v > p_abs) {
        p_abs = v;
        p = i;
      }
    }
    pivots[k] = static_cast<int>(p);
    if (p_abs == 0.0) {
      return make_error(ErrorCode::kExecutionFailed, "matrix is singular");
    }
    if (p != k) {
      sign = -sign;
      for (std::size_t j = 0; j < n; ++j) std::swap(a(k, j), a(p, j));
    }
    const double pivot = a(k, k);
    for (std::size_t i = k + 1; i < n; ++i) a(i, k) /= pivot;
    // Rank-1 trailing update, column-wise for locality.
    for (std::size_t j = k + 1; j < n; ++j) {
      const double akj = a(k, j);
      if (akj == 0.0) continue;
      double* col = a.col(j);
      const double* lcol = a.col(k);
      for (std::size_t i = k + 1; i < n; ++i) col[i] -= lcol[i] * akj;
    }
  }
  return LuFactorization(std::move(a), std::move(pivots), sign);
}

Result<Vector> LuFactorization::solve(const Vector& b) const {
  const std::size_t n = order();
  if (b.size() != n) {
    return make_error(ErrorCode::kBadArguments, "rhs size mismatch");
  }
  Vector x(b);
  // Apply row permutations.
  for (std::size_t k = 0; k < n; ++k) {
    const auto p = static_cast<std::size_t>(pivots_[k]);
    if (p != k) std::swap(x[k], x[p]);
  }
  // Forward substitution with unit lower triangle.
  for (std::size_t k = 0; k < n; ++k) {
    const double xk = x[k];
    if (xk == 0.0) continue;
    const double* col = lu_.col(k);
    for (std::size_t i = k + 1; i < n; ++i) x[i] -= col[i] * xk;
  }
  // Back substitution with U.
  for (std::size_t k = n; k-- > 0;) {
    x[k] /= lu_(k, k);
    const double xk = x[k];
    if (xk == 0.0) continue;
    const double* col = lu_.col(k);
    for (std::size_t i = 0; i < k; ++i) x[i] -= col[i] * xk;
  }
  return x;
}

Result<Matrix> LuFactorization::solve(const Matrix& b) const {
  if (b.rows() != order()) {
    return make_error(ErrorCode::kBadArguments, "rhs rows mismatch");
  }
  Matrix x(b.rows(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    Vector column(b.col(j), b.col(j) + b.rows());
    auto solved = solve(column);
    if (!solved.ok()) return solved.error();
    std::copy(solved.value().begin(), solved.value().end(), x.col(j));
  }
  return x;
}

double LuFactorization::determinant() const noexcept {
  double det = pivot_sign_;
  for (std::size_t i = 0; i < order(); ++i) det *= lu_(i, i);
  return det;
}

Result<Vector> dgesv(const Matrix& a, const Vector& b) {
  auto lu = LuFactorization::factor(a);
  if (!lu.ok()) return lu.error();
  return lu.value().solve(b);
}

Result<Matrix> dgesv(const Matrix& a, const Matrix& b) {
  auto lu = LuFactorization::factor(a);
  if (!lu.ok()) return lu.error();
  return lu.value().solve(b);
}

double lu_flops(std::size_t n) noexcept {
  const double nd = static_cast<double>(n);
  return (2.0 / 3.0) * nd * nd * nd + 2.0 * nd * nd;
}

}  // namespace ns::linalg
