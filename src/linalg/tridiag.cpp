#include "linalg/tridiag.hpp"

#include <cmath>

namespace ns::linalg {

Result<Vector> solve_tridiagonal(const Vector& sub, const Vector& diag, const Vector& super,
                                 const Vector& rhs) {
  const std::size_t n = diag.size();
  if (n == 0) return make_error(ErrorCode::kBadArguments, "empty system");
  if (sub.size() != n - 1 || super.size() != n - 1 || rhs.size() != n) {
    return make_error(ErrorCode::kBadArguments, "tridiagonal band size mismatch");
  }
  Vector c_prime(n - 1 > 0 ? n - 1 : 0);
  Vector d_prime(n);

  double denom = diag[0];
  if (denom == 0.0) {
    return make_error(ErrorCode::kExecutionFailed, "zero pivot in tridiagonal solve");
  }
  if (n > 1) c_prime[0] = super[0] / denom;
  d_prime[0] = rhs[0] / denom;

  for (std::size_t i = 1; i < n; ++i) {
    denom = diag[i] - sub[i - 1] * c_prime[i - 1];
    if (denom == 0.0 || !std::isfinite(denom)) {
      return make_error(ErrorCode::kExecutionFailed, "zero pivot in tridiagonal solve");
    }
    if (i < n - 1) c_prime[i] = super[i] / denom;
    d_prime[i] = (rhs[i] - sub[i - 1] * d_prime[i - 1]) / denom;
  }

  Vector x(n);
  x[n - 1] = d_prime[n - 1];
  for (std::size_t i = n - 1; i-- > 0;) {
    x[i] = d_prime[i] - c_prime[i] * x[i + 1];
  }
  return x;
}

double tridiag_flops(std::size_t n) noexcept { return 8.0 * static_cast<double>(n); }

}  // namespace ns::linalg
