#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/cancel.hpp"
#include "common/checkpoint.hpp"
#include "linalg/blas.hpp"

namespace ns::linalg {

namespace {

double offdiag_norm(const Matrix& a) {
  double sum = 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    for (std::size_t i = 0; i < a.rows(); ++i) {
      if (i != j) sum += a(i, j) * a(i, j);
    }
  }
  return std::sqrt(sum);
}

bool is_symmetric(const Matrix& a, double rel_tol = 1e-10) {
  const double scale = a.max_abs() + 1e-300;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      if (std::abs(a(i, j) - a(j, i)) > rel_tol * scale) return false;
    }
  }
  return true;
}

}  // namespace

Result<EigenDecomposition> jacobi_eigen(const Matrix& input, double tol,
                                        std::size_t max_sweeps) {
  if (!input.square()) {
    return make_error(ErrorCode::kBadArguments, "eigensolver requires a square matrix");
  }
  if (!is_symmetric(input)) {
    return make_error(ErrorCode::kBadArguments, "eigensolver requires a symmetric matrix");
  }
  const std::size_t n = input.rows();
  Matrix a = input;
  Matrix v = Matrix::identity(n);
  const double threshold = tol * (a.frobenius_norm() + 1e-300);

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    if (cancel::poll()) return cancel::cancelled_error("Jacobi eigensolver");
    const double off = offdiag_norm(a);
    // Progress-only: publish sweep count and off-diagonal mass for probes.
    checkpoint::progress(sweep, off);
    if (off <= threshold) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) <= threshold / static_cast<double>(n * n)) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Rotate rows/columns p and q of A.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        // Accumulate the rotation into V.
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs ascending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&a](std::size_t x, std::size_t y) { return a(x, x) < a(y, y); });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = a(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i) out.vectors(i, j) = v(i, order[j]);
  }
  return out;
}

Result<PowerIterationResult> power_iteration(const Matrix& a, Rng& rng, double tol,
                                             std::size_t max_iters) {
  if (!a.square()) {
    return make_error(ErrorCode::kBadArguments, "power iteration requires a square matrix");
  }
  const std::size_t n = a.rows();
  if (n == 0) {
    return make_error(ErrorCode::kBadArguments, "empty matrix");
  }
  PowerIterationResult result;
  Vector x = random_vector(n, rng);
  double norm = nrm2(x);
  scal(1.0 / norm, x);

  Vector y(n);
  double lambda_prev = 0.0;
  for (std::size_t it = 1; it <= max_iters; ++it) {
    if (cancel::poll()) return cancel::cancelled_error("power iteration");
    checkpoint::progress(it);
    gemv(1.0, a, x, 0.0, y);
    const double lambda = dot(x, y);  // Rayleigh quotient
    norm = nrm2(y);
    if (norm == 0.0) {
      return make_error(ErrorCode::kExecutionFailed, "power iteration hit the null space");
    }
    for (std::size_t i = 0; i < n; ++i) x[i] = y[i] / norm;
    result.iterations = it;
    if (it > 1 && std::abs(lambda - lambda_prev) <= tol * std::max(1.0, std::abs(lambda))) {
      result.eigenvalue = lambda;
      result.converged = true;
      break;
    }
    lambda_prev = lambda;
    result.eigenvalue = lambda;
  }
  result.eigenvector = std::move(x);
  return result;
}

double jacobi_flops(std::size_t n) noexcept {
  const double nd = static_cast<double>(n);
  return 6.0 * nd * nd * nd;
}

}  // namespace ns::linalg
