// Dense matrix/vector types for the numerical substrate.
//
// Storage is column-major (Fortran/LAPACK convention) since the problems the
// servers expose are LAPACK-shaped; (i, j) indexing is bounds-checked in
// debug builds via assert only, keeping the kernels tight in release.
#pragma once

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace ns::linalg {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  Matrix(std::size_t rows, std::size_t cols, Vector data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    assert(data_.size() == rows_ * cols_);
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }
  bool square() const noexcept { return rows_ == cols_; }

  double& operator()(std::size_t i, std::size_t j) noexcept {
    assert(i < rows_ && j < cols_);
    return data_[j * rows_ + i];
  }
  double operator()(std::size_t i, std::size_t j) const noexcept {
    assert(i < rows_ && j < cols_);
    return data_[j * rows_ + i];
  }

  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }
  Vector& storage() noexcept { return data_; }
  const Vector& storage() const noexcept { return data_; }

  /// Column pointer (contiguous in column-major layout).
  double* col(std::size_t j) noexcept { return data_.data() + j * rows_; }
  const double* col(std::size_t j) const noexcept { return data_.data() + j * rows_; }

  Matrix transposed() const;

  /// Frobenius norm.
  double frobenius_norm() const noexcept;

  /// Max |a_ij| (for relative comparisons).
  double max_abs() const noexcept;

  bool same_shape(const Matrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  static Matrix identity(std::size_t n);
  static Matrix random(std::size_t rows, std::size_t cols, Rng& rng, double lo = -1.0,
                       double hi = 1.0);
  /// Random symmetric positive definite: A = B^T B + n·I, well conditioned.
  static Matrix random_spd(std::size_t n, Rng& rng);
  /// Random diagonally dominant (guaranteed nonsingular, mild conditioning).
  static Matrix random_diag_dominant(std::size_t n, Rng& rng);

  /// Debug pretty-printer (small matrices only).
  std::string to_string(std::size_t max_dim = 8) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Vector data_;
};

/// Elementwise max |x_i - y_i|; sizes must match.
double max_abs_diff(const Vector& x, const Vector& y) noexcept;
double max_abs_diff(const Matrix& x, const Matrix& y) noexcept;

Vector random_vector(std::size_t n, Rng& rng, double lo = -1.0, double hi = 1.0);

}  // namespace ns::linalg
