#include "linalg/cholesky.hpp"

#include <cmath>

namespace ns::linalg {

Result<CholeskyFactorization> CholeskyFactorization::factor(const Matrix& a) {
  if (!a.square()) {
    return make_error(ErrorCode::kBadArguments, "Cholesky requires a square matrix");
  }
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return make_error(ErrorCode::kExecutionFailed, "matrix is not positive definite");
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / ljj;
    }
  }
  return CholeskyFactorization(std::move(l));
}

Result<Vector> CholeskyFactorization::solve(const Vector& b) const {
  const std::size_t n = order();
  if (b.size() != n) {
    return make_error(ErrorCode::kBadArguments, "rhs size mismatch");
  }
  Vector y(n);
  // L y = b (forward).
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l_(i, k) * y[k];
    y[i] = sum / l_(i, i);
  }
  // L^T x = y (backward).
  Vector x(n);
  for (std::size_t i = n; i-- > 0;) {
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= l_(k, i) * x[k];
    x[i] = sum / l_(i, i);
  }
  return x;
}

Result<Vector> dposv(const Matrix& a, const Vector& b) {
  auto chol = CholeskyFactorization::factor(a);
  if (!chol.ok()) return chol.error();
  return chol.value().solve(b);
}

double cholesky_flops(std::size_t n) noexcept {
  const double nd = static_cast<double>(n);
  return nd * nd * nd / 3.0 + 2.0 * nd * nd;
}

}  // namespace ns::linalg
