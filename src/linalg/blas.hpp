// BLAS-style dense kernels (levels 1-3). Naming follows the BLAS tradition
// the original NetSolve servers exposed; signatures are C++-native.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace ns::linalg {

// ---- Level 1 ----

/// y += alpha * x
void axpy(double alpha, const Vector& x, Vector& y) noexcept;

/// <x, y>
double dot(const Vector& x, const Vector& y) noexcept;

/// ||x||_2
double nrm2(const Vector& x) noexcept;

/// x *= alpha
void scal(double alpha, Vector& x) noexcept;

/// Index of max |x_i| (0 for empty input).
std::size_t iamax(const Vector& x) noexcept;

// ---- Level 2 ----

/// y = alpha * A x + beta * y
void gemv(double alpha, const Matrix& a, const Vector& x, double beta, Vector& y);

/// y = alpha * A^T x + beta * y
void gemv_t(double alpha, const Matrix& a, const Vector& x, double beta, Vector& y);

/// A += alpha * x y^T (rank-1 update)
void ger(double alpha, const Vector& x, const Vector& y, Matrix& a);

// ---- Level 3 ----

/// C = alpha * A B + beta * C. Blocked for cache behaviour; the j-k-i loop
/// order keeps the innermost accesses contiguous in column-major storage.
void gemm(double alpha, const Matrix& a, const Matrix& b, double beta, Matrix& c);

/// Convenience: C = A B.
Matrix matmul(const Matrix& a, const Matrix& b);

/// Residual ||A x - b||_inf, the standard check used by the tests.
double residual_inf(const Matrix& a, const Vector& x, const Vector& b);

}  // namespace ns::linalg
