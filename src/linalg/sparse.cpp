#include "linalg/sparse.hpp"

#include <algorithm>
#include <cmath>

namespace ns::linalg {

Result<CsrMatrix> CsrMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                           std::vector<Triplet> triplets) {
  for (const auto& t : triplets) {
    if (t.row >= rows || t.col >= cols) {
      return make_error(ErrorCode::kBadArguments, "triplet index out of range");
    }
  }
  std::sort(triplets.begin(), triplets.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.indptr_.assign(rows + 1, 0);
  m.indices_.reserve(triplets.size());
  m.values_.reserve(triplets.size());

  std::size_t i = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    while (i < triplets.size() && triplets[i].row == r) {
      const std::size_t c = triplets[i].col;
      double v = triplets[i].value;
      ++i;
      while (i < triplets.size() && triplets[i].row == r && triplets[i].col == c) {
        v += triplets[i].value;  // collapse duplicates
        ++i;
      }
      m.indices_.push_back(static_cast<std::int32_t>(c));
      m.values_.push_back(v);
    }
    m.indptr_[r + 1] = static_cast<std::int32_t>(m.indices_.size());
  }
  return m;
}

Result<CsrMatrix> CsrMatrix::from_csr(std::size_t rows, std::size_t cols,
                                      std::vector<std::int32_t> indptr,
                                      std::vector<std::int32_t> indices,
                                      std::vector<double> values) {
  if (indptr.size() != rows + 1) {
    return make_error(ErrorCode::kBadArguments, "indptr size must be rows+1");
  }
  if (indices.size() != values.size()) {
    return make_error(ErrorCode::kBadArguments, "indices/values size mismatch");
  }
  if (indptr.front() != 0 ||
      indptr.back() != static_cast<std::int32_t>(indices.size())) {
    return make_error(ErrorCode::kBadArguments, "indptr endpoints invalid");
  }
  for (std::size_t r = 0; r < rows; ++r) {
    if (indptr[r] > indptr[r + 1]) {
      return make_error(ErrorCode::kBadArguments, "indptr not monotone");
    }
  }
  for (const std::int32_t c : indices) {
    if (c < 0 || static_cast<std::size_t>(c) >= cols) {
      return make_error(ErrorCode::kBadArguments, "column index out of range");
    }
  }
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.indptr_ = std::move(indptr);
  m.indices_ = std::move(indices);
  m.values_ = std::move(values);
  return m;
}

void CsrMatrix::multiply(const Vector& x, Vector& y) const {
  y.assign(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::int32_t k = indptr_[r]; k < indptr_[r + 1]; ++k) {
      sum += values_[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(indices_[static_cast<std::size_t>(k)])];
    }
    y[r] = sum;
  }
}

Vector CsrMatrix::multiply(const Vector& x) const {
  Vector y;
  multiply(x, y);
  return y;
}

double CsrMatrix::at(std::size_t i, std::size_t j) const noexcept {
  for (std::int32_t k = indptr_[i]; k < indptr_[i + 1]; ++k) {
    if (static_cast<std::size_t>(indices_[static_cast<std::size_t>(k)]) == j) {
      return values_[static_cast<std::size_t>(k)];
    }
  }
  return 0.0;
}

Vector CsrMatrix::diagonal() const {
  Vector d(rows_, 0.0);
  const std::size_t n = std::min(rows_, cols_);
  for (std::size_t i = 0; i < n; ++i) d[i] = at(i, i);
  return d;
}

Matrix CsrMatrix::to_dense() const {
  Matrix out(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::int32_t k = indptr_[r]; k < indptr_[r + 1]; ++k) {
      out(r, static_cast<std::size_t>(indices_[static_cast<std::size_t>(k)])) +=
          values_[static_cast<std::size_t>(k)];
    }
  }
  return out;
}

CsrMatrix poisson_1d(std::size_t n) {
  std::vector<Triplet> t;
  t.reserve(3 * n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0) t.push_back({i, i - 1, -1.0});
    t.push_back({i, i, 2.0});
    if (i + 1 < n) t.push_back({i, i + 1, -1.0});
  }
  return CsrMatrix::from_triplets(n, n, std::move(t)).value();
}

CsrMatrix poisson_2d(std::size_t nx, std::size_t ny) {
  const std::size_t n = nx * ny;
  std::vector<Triplet> t;
  t.reserve(5 * n);
  auto id = [nx](std::size_t ix, std::size_t iy) { return iy * nx + ix; };
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const std::size_t row = id(ix, iy);
      t.push_back({row, row, 4.0});
      if (ix > 0) t.push_back({row, id(ix - 1, iy), -1.0});
      if (ix + 1 < nx) t.push_back({row, id(ix + 1, iy), -1.0});
      if (iy > 0) t.push_back({row, id(ix, iy - 1), -1.0});
      if (iy + 1 < ny) t.push_back({row, id(ix, iy + 1), -1.0});
    }
  }
  return CsrMatrix::from_triplets(n, n, std::move(t)).value();
}

CsrMatrix random_sparse_spd(std::size_t n, std::size_t avg_nnz_per_row, Rng& rng) {
  std::vector<Triplet> t;
  t.reserve(n * (avg_nnz_per_row + 1));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < avg_nnz_per_row / 2 + 1; ++k) {
      const auto j = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      if (j == i) continue;
      const double v = rng.uniform(-1.0, 1.0);
      t.push_back({i, j, v});
      t.push_back({j, i, v});  // keep the pattern and values symmetric
    }
  }
  // Diagonal dominance => SPD for a symmetric matrix.
  Vector row_sums(n, 0.0);
  for (const auto& trip : t) row_sums[trip.row] += std::abs(trip.value);
  for (std::size_t i = 0; i < n; ++i) t.push_back({i, i, row_sums[i] + 1.0});
  return CsrMatrix::from_triplets(n, n, std::move(t)).value();
}

}  // namespace ns::linalg
