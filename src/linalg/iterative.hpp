// Iterative solvers for sparse systems — the ITPACK role in the server
// catalogue: conjugate gradients for SPD systems, plus classic Jacobi and
// SOR sweeps.
#pragma once

#include "common/error.hpp"
#include "linalg/sparse.hpp"

namespace ns::linalg {

struct IterativeOptions {
  double tolerance = 1e-10;     // relative residual target ||r|| / ||b||
  std::size_t max_iterations = 10000;
  double omega = 1.5;           // SOR relaxation factor (1 = Gauss-Seidel)
};

struct IterativeResult {
  Vector x;
  std::size_t iterations = 0;
  double residual = 0.0;        // final relative residual
  bool converged = false;
};

/// Conjugate gradients; requires A symmetric positive definite.
Result<IterativeResult> conjugate_gradient(const CsrMatrix& a, const Vector& b,
                                           const IterativeOptions& opts = {});

/// Jacobi iteration; requires nonzero diagonal (converges for strictly
/// diagonally dominant A).
Result<IterativeResult> jacobi_solve(const CsrMatrix& a, const Vector& b,
                                     const IterativeOptions& opts = {});

/// Successive over-relaxation (omega = 1 gives Gauss–Seidel).
Result<IterativeResult> sor_solve(const CsrMatrix& a, const Vector& b,
                                  const IterativeOptions& opts = {});

/// Flops per CG iteration on a matrix with `nnz` stored entries and order n
/// (2 nnz for the matvec + ~10 n vector work).
double cg_flops_per_iteration(std::size_t n, std::size_t nnz) noexcept;

}  // namespace ns::linalg
