// LU factorization with partial pivoting — the workhorse behind the `dgesv`
// problem every NetSolve server registers, and the kernel timed by the
// LINPACK-style server rating.
#pragma once

#include <vector>

#include "common/error.hpp"
#include "linalg/matrix.hpp"

namespace ns::linalg {

class LuFactorization {
 public:
  /// Factor A = P L U in place (A must be square). Fails with
  /// kExecutionFailed on exact singularity.
  static Result<LuFactorization> factor(Matrix a);

  /// Solve A x = b for one right-hand side.
  Result<Vector> solve(const Vector& b) const;

  /// Solve A X = B column by column.
  Result<Matrix> solve(const Matrix& b) const;

  /// det(A) from the diagonal of U and the pivot parity.
  double determinant() const noexcept;

  std::size_t order() const noexcept { return lu_.rows(); }
  const Matrix& packed() const noexcept { return lu_; }
  const std::vector<int>& pivots() const noexcept { return pivots_; }

 private:
  LuFactorization(Matrix lu, std::vector<int> pivots, int sign)
      : lu_(std::move(lu)), pivots_(std::move(pivots)), pivot_sign_(sign) {}

  Matrix lu_;                // L below diagonal (unit), U on/above
  std::vector<int> pivots_;  // row swapped with i at step i
  int pivot_sign_ = 1;
};

/// LAPACK-style convenience: solve A x = b in one call.
Result<Vector> dgesv(const Matrix& a, const Vector& b);

/// Solve with multiple right-hand sides.
Result<Matrix> dgesv(const Matrix& a, const Matrix& b);

/// Flop count of an n-th order LU solve (2/3 n^3 + 2 n^2), used by the
/// rating and by the agent's complexity model.
double lu_flops(std::size_t n) noexcept;

}  // namespace ns::linalg
