// Cholesky factorization for symmetric positive definite systems (`dposv`).
#pragma once

#include "common/error.hpp"
#include "linalg/matrix.hpp"

namespace ns::linalg {

class CholeskyFactorization {
 public:
  /// Factor A = L L^T. Fails with kExecutionFailed if A is not (numerically)
  /// positive definite. Only the lower triangle of A is read.
  static Result<CholeskyFactorization> factor(const Matrix& a);

  /// Solve A x = b via two triangular solves.
  Result<Vector> solve(const Vector& b) const;

  const Matrix& lower() const noexcept { return l_; }
  std::size_t order() const noexcept { return l_.rows(); }

 private:
  explicit CholeskyFactorization(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

/// LAPACK-style convenience: solve SPD system A x = b.
Result<Vector> dposv(const Matrix& a, const Vector& b);

/// Flops of an n-th order Cholesky solve (n^3/3 + 2 n^2).
double cholesky_flops(std::size_t n) noexcept;

}  // namespace ns::linalg
