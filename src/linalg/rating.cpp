#include "linalg/rating.hpp"

#include <algorithm>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"

namespace ns::linalg {

Rating linpack_rating(std::size_t n, int repeats) {
  Rng rng(0x11795);  // fixed seed: every server rates the same matrix
  const Matrix a = Matrix::random_diag_dominant(n, rng);
  const Vector b = random_vector(n, rng);

  double best = 1e300;
  for (int r = 0; r < std::max(repeats, 1); ++r) {
    const Stopwatch watch;
    auto x = dgesv(a, b);
    const double elapsed = watch.elapsed();
    if (x.ok()) best = std::min(best, elapsed);
  }
  Rating rating;
  rating.order = n;
  rating.seconds = best;
  rating.mflops = best > 0 ? lu_flops(n) / best / 1e6 : 0.0;
  return rating;
}

}  // namespace ns::linalg
