// Singular value decomposition by the one-sided Jacobi method.
//
// Covers the `svd_vals` catalogue problem (condition estimation, low-rank
// analysis). One-sided Jacobi orthogonalizes the columns of A by plane
// rotations; column norms converge to the singular values. Accurate for
// small-to-moderate matrices, which is the catalogue's domain.
#pragma once

#include "common/error.hpp"
#include "linalg/matrix.hpp"

namespace ns::linalg {

struct SvdResult {
  Vector singular_values;  // descending
  Matrix u;                // m x n, orthonormal columns (left vectors)
  Matrix v;                // n x n, orthogonal (right vectors)
};

/// Full thin SVD of an m x n matrix with m >= n.
Result<SvdResult> jacobi_svd(const Matrix& a, double tol = 1e-12,
                             std::size_t max_sweeps = 60);

/// Singular values only (descending).
Result<Vector> singular_values(const Matrix& a);

/// 2-norm condition number estimate sigma_max / sigma_min.
Result<double> condition_number(const Matrix& a);

}  // namespace ns::linalg
