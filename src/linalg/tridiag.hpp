// Tridiagonal solver (Thomas algorithm) — the cheap O(n) problem class in
// the server catalogue, useful for exercising small-request scheduling.
#pragma once

#include "common/error.hpp"
#include "linalg/matrix.hpp"

namespace ns::linalg {

/// Solve a tridiagonal system given the sub-diagonal (size n-1), diagonal
/// (size n) and super-diagonal (size n-1). Requires (numerical)
/// non-singularity along the elimination; diagonally dominant inputs are
/// always safe.
Result<Vector> solve_tridiagonal(const Vector& sub, const Vector& diag, const Vector& super,
                                 const Vector& rhs);

/// Flops of a tridiagonal solve (8n).
double tridiag_flops(std::size_t n) noexcept;

}  // namespace ns::linalg
