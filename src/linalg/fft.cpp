#include "linalg/fft.hpp"

#include <cmath>

namespace ns::linalg {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

bool is_power_of_two(std::size_t n) noexcept { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

Status fft_inplace(Vector& re, Vector& im, bool inverse) {
  const std::size_t n = re.size();
  if (im.size() != n) {
    return make_error(ErrorCode::kBadArguments, "fft: re/im length mismatch");
  }
  if (!is_power_of_two(n)) {
    return make_error(ErrorCode::kBadArguments, "fft: length must be a power of two");
  }
  if (n == 1) return ok_status();

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      std::swap(re[i], re[j]);
      std::swap(im[i], im[j]);
    }
  }

  // Iterative Cooley-Tukey butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * kPi / static_cast<double>(len);
    const double w_re = std::cos(angle);
    const double w_im = std::sin(angle);
    for (std::size_t start = 0; start < n; start += len) {
      double cur_re = 1.0, cur_im = 0.0;
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::size_t a = start + k;
        const std::size_t b = start + k + len / 2;
        const double tr = re[b] * cur_re - im[b] * cur_im;
        const double ti = re[b] * cur_im + im[b] * cur_re;
        re[b] = re[a] - tr;
        im[b] = im[a] - ti;
        re[a] += tr;
        im[a] += ti;
        const double next_re = cur_re * w_re - cur_im * w_im;
        cur_im = cur_re * w_im + cur_im * w_re;
        cur_re = next_re;
      }
    }
  }

  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) {
      re[i] *= scale;
      im[i] *= scale;
    }
  }
  return ok_status();
}

Result<std::pair<Vector, Vector>> fft(const Vector& re, const Vector& im) {
  Vector r = re, i = im;
  NS_RETURN_IF_ERROR(fft_inplace(r, i, /*inverse=*/false));
  return std::make_pair(std::move(r), std::move(i));
}

Result<std::pair<Vector, Vector>> ifft(const Vector& re, const Vector& im) {
  Vector r = re, i = im;
  NS_RETURN_IF_ERROR(fft_inplace(r, i, /*inverse=*/true));
  return std::make_pair(std::move(r), std::move(i));
}

Result<Vector> convolve(const Vector& x, const Vector& y) {
  if (x.empty() || y.empty()) {
    return make_error(ErrorCode::kBadArguments, "convolve: empty input");
  }
  const std::size_t out_len = x.size() + y.size() - 1;
  const std::size_t n = next_power_of_two(out_len);

  Vector xr(n, 0.0), xi(n, 0.0), yr(n, 0.0), yi(n, 0.0);
  std::copy(x.begin(), x.end(), xr.begin());
  std::copy(y.begin(), y.end(), yr.begin());
  NS_RETURN_IF_ERROR(fft_inplace(xr, xi));
  NS_RETURN_IF_ERROR(fft_inplace(yr, yi));
  // Pointwise complex product.
  for (std::size_t i = 0; i < n; ++i) {
    const double pr = xr[i] * yr[i] - xi[i] * yi[i];
    const double pi = xr[i] * yi[i] + xi[i] * yr[i];
    xr[i] = pr;
    xi[i] = pi;
  }
  NS_RETURN_IF_ERROR(fft_inplace(xr, xi, /*inverse=*/true));
  xr.resize(out_len);
  return xr;
}

double fft_flops(std::size_t n) noexcept {
  if (n < 2) return 1.0;
  return 5.0 * static_cast<double>(n) * std::log2(static_cast<double>(n));
}

}  // namespace ns::linalg
