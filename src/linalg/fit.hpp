// Curve fitting — the FitPack role in the server catalogue: polynomial
// least-squares fits and natural cubic spline interpolation.
#pragma once

#include "common/error.hpp"
#include "linalg/matrix.hpp"

namespace ns::linalg {

/// Least-squares polynomial fit of the given degree; returns coefficients
/// c[0..degree] with p(x) = sum_k c[k] x^k. Needs at least degree+1 points.
Result<Vector> polyfit(const Vector& x, const Vector& y, std::size_t degree);

/// Evaluate a polynomial (Horner).
double polyval(const Vector& coeffs, double x) noexcept;

/// Natural cubic spline through (x, y); x strictly increasing.
class CubicSpline {
 public:
  static Result<CubicSpline> fit(Vector x, Vector y);

  /// Evaluate at `t` (clamped extrapolation outside the knot range).
  double operator()(double t) const noexcept;

  std::size_t knots() const noexcept { return x_.size(); }

 private:
  CubicSpline(Vector x, Vector y, Vector m) : x_(std::move(x)), y_(std::move(y)), m_(std::move(m)) {}
  Vector x_;  // knot abscissae
  Vector y_;  // knot values
  Vector m_;  // second derivatives at knots
};

}  // namespace ns::linalg
