#include "net/socket.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>

#include "common/clock.hpp"
#include "net/fault.hpp"

namespace ns::net {

namespace {

std::string errno_string() { return std::string(::strerror(errno)); }

Result<sockaddr_in> make_addr(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    return make_error(ErrorCode::kConnectFailed, "bad IPv4 address: " + ep.host);
  }
  return addr;
}

Endpoint from_addr(const sockaddr_in& addr) {
  char buf[INET_ADDRSTRLEN] = {};
  ::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf));
  return Endpoint{buf, ntohs(addr.sin_port)};
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Poll one fd for the given events; 1 = ready, 0 = timeout, -1 = error.
int poll_fd(int fd, short events, double timeout_secs) {
  pollfd pfd{fd, events, 0};
  const int ms = timeout_secs >= 1e9 ? -1 : static_cast<int>(timeout_secs * 1000.0) + 1;
  return ::poll(&pfd, 1, ms);
}

}  // namespace

void FdHandle::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpConnection> TcpConnection::connect(const Endpoint& remote, double timeout_secs) {
  if (FaultInjector::instance().armed()) {
    NS_RETURN_IF_ERROR(FaultInjector::instance().on_connect(remote));
  }
  return connect_raw(remote, timeout_secs);
}

Result<TcpConnection> TcpConnection::connect_raw(const Endpoint& remote, double timeout_secs) {
  auto addr = make_addr(remote);
  if (!addr.ok()) return addr.error();

  const Deadline deadline(timeout_secs);
  double backoff = 0.002;
  while (true) {
    FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) {
      return make_error(ErrorCode::kConnectFailed, "socket(): " + errno_string());
    }
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr.value()),
                  sizeof(sockaddr_in)) == 0) {
      set_nodelay(fd.get());
      return TcpConnection(std::move(fd));
    }
    const int err = errno;
    if ((err == ECONNREFUSED || err == ETIMEDOUT || err == EAGAIN) && !deadline.expired()) {
      sleep_seconds(std::min(backoff, deadline.remaining()));
      backoff = std::min(backoff * 2, 0.1);
      continue;
    }
    return make_error(ErrorCode::kConnectFailed,
                      "connect(" + remote.to_string() + "): " + errno_string());
  }
}

void TcpConnection::shutdown_both() noexcept {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
}

Status TcpConnection::send_all(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_.get(), bytes + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return make_error(ErrorCode::kConnectionClosed, "send(): " + errno_string());
    }
    sent += static_cast<std::size_t>(n);
  }
  return ok_status();
}

Status TcpConnection::recv_all(void* data, std::size_t size, double timeout_secs) {
  auto* bytes = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  const Deadline deadline(timeout_secs);
  while (got < size) {
    const int ready = poll_fd(fd_.get(), POLLIN, deadline.remaining());
    if (ready < 0) {
      if (errno == EINTR) continue;
      return make_error(ErrorCode::kConnectionClosed, "poll(): " + errno_string());
    }
    if (ready == 0 || deadline.expired()) {
      return make_error(ErrorCode::kTimeout, "recv timed out");
    }
    const ssize_t n = ::recv(fd_.get(), bytes + got, size - got, 0);
    if (n == 0) {
      return make_error(ErrorCode::kConnectionClosed, "peer closed connection");
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return make_error(ErrorCode::kConnectionClosed, "recv(): " + errno_string());
    }
    got += static_cast<std::size_t>(n);
  }
  return ok_status();
}

Status TcpConnection::wait_readable(double timeout_secs) {
  const int ready = poll_fd(fd_.get(), POLLIN, timeout_secs);
  if (ready < 0) return make_error(ErrorCode::kConnectionClosed, "poll(): " + errno_string());
  if (ready == 0) return make_error(ErrorCode::kTimeout, "not readable before timeout");
  return ok_status();
}

Result<Endpoint> TcpConnection::local_endpoint() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return make_error(ErrorCode::kInternal, "getsockname(): " + errno_string());
  }
  return from_addr(addr);
}

Result<Endpoint> TcpConnection::peer_endpoint() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(fd_.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return make_error(ErrorCode::kInternal, "getpeername(): " + errno_string());
  }
  return from_addr(addr);
}

Result<TcpListener> TcpListener::bind(const Endpoint& local, int backlog) {
  auto addr = make_addr(local);
  if (!addr.ok()) return addr.error();

  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return make_error(ErrorCode::kConnectFailed, "socket(): " + errno_string());
  }
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr.value()),
             sizeof(sockaddr_in)) != 0) {
    return make_error(ErrorCode::kConnectFailed,
                      "bind(" + local.to_string() + "): " + errno_string());
  }
  if (::listen(fd.get(), backlog) != 0) {
    return make_error(ErrorCode::kConnectFailed, "listen(): " + errno_string());
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return make_error(ErrorCode::kInternal, "getsockname(): " + errno_string());
  }
  TcpListener listener;
  listener.fd_ = std::move(fd);
  listener.host_ = local.host;
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

Result<TcpConnection> TcpListener::accept(double timeout_secs) {
  if (!fd_.valid()) {
    return make_error(ErrorCode::kConnectionClosed, "listener closed");
  }
  const int ready = poll_fd(fd_.get(), POLLIN, timeout_secs);
  if (ready < 0) {
    return make_error(ErrorCode::kConnectionClosed, "poll(): " + errno_string());
  }
  if (ready == 0) {
    return make_error(ErrorCode::kTimeout, "no incoming connection");
  }
  const int client = ::accept(fd_.get(), nullptr, nullptr);
  if (client < 0) {
    return make_error(ErrorCode::kConnectionClosed, "accept(): " + errno_string());
  }
  set_nodelay(client);
  return TcpConnection(FdHandle(client));
}

}  // namespace ns::net
