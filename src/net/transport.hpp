// Framed message transport: one NetSolve protocol message per frame.
#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "net/shaped_link.hpp"
#include "net/socket.hpp"
#include "serial/codec.hpp"
#include "serial/frame.hpp"

namespace ns::net {

struct Message {
  std::uint16_t type = 0;
  serial::Bytes payload;
};

/// Transport-level backpressure frame. When a reactor's accept governor
/// sheds a dial (connection cap reached with nothing evictable, or buffer
/// budgets hot) it writes this one frame and closes — a peer that speaks the
/// protocol learns it was load-shed (not that the host died) and gets a
/// retry-after hint. Deliberately outside the proto::MessageType range: the
/// frame belongs to the transport, not the application.
inline constexpr std::uint16_t kTransportBusyType = 0xFFF0;

/// Payload for kTransportBusyType: a single f64, seconds to back off.
serial::Bytes encode_busy_payload(double retry_after_s);

/// Parse a kTransportBusyType payload; malformed payloads yield `fallback`.
double decode_busy_retry_after(const serial::Bytes& payload, double fallback = 0.25);

/// Client-role frame cap: the largest payload a reply may claim before the
/// client buffers a byte of it. Servers already enforce a per-role cap at
/// their reactor (GuardConfig::max_frame_bytes); this is the mirror for the
/// dial-out side, where a hostile or corrupted peer could otherwise make a
/// client allocate up to the 1 GiB absolute frame limit from a 16-byte
/// header. Large enough for any legitimate result matrix, small enough that
/// one bad header cannot take out the process.
inline constexpr std::size_t kClientMaxFrameBytes = 256u << 20;  // 256 MiB

/// Serialize `payload` under `type` and send it as one frame, shaped.
Status send_message(TcpConnection& conn, std::uint16_t type, const serial::Bytes& payload,
                    const LinkShape& shape = LinkShape::unshaped());

/// Receive one complete frame; validates magic, version, size and CRC.
/// Payloads over `max_payload` are rejected at header-decode time (counted
/// in net.guard.oversized_total) before any buffering.
Result<Message> recv_message(TcpConnection& conn, double timeout_secs,
                             std::size_t max_payload = kClientMaxFrameBytes);

}  // namespace ns::net
