// Framed message transport: one NetSolve protocol message per frame.
#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "net/shaped_link.hpp"
#include "net/socket.hpp"
#include "serial/codec.hpp"
#include "serial/frame.hpp"

namespace ns::net {

struct Message {
  std::uint16_t type = 0;
  serial::Bytes payload;
};

/// Serialize `payload` under `type` and send it as one frame, shaped.
Status send_message(TcpConnection& conn, std::uint16_t type, const serial::Bytes& payload,
                    const LinkShape& shape = LinkShape::unshaped());

/// Receive one complete frame; validates magic, version, size and CRC.
Result<Message> recv_message(TcpConnection& conn, double timeout_secs);

}  // namespace ns::net
