// RAII TCP sockets (POSIX). The whole NetSolve protocol runs over these;
// loopback deployments get WAN-like behaviour from the ShapedLink layer on
// top, not from faking the sockets themselves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "common/error.hpp"
#include "net/endpoint.hpp"

namespace ns::net {

/// Move-only owner of a file descriptor.
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) noexcept : fd_(fd) {}
  ~FdHandle() { reset(); }

  FdHandle(FdHandle&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  FdHandle& operator=(FdHandle&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// A connected TCP stream.
class TcpConnection {
 public:
  TcpConnection() = default;
  explicit TcpConnection(FdHandle fd) : fd_(std::move(fd)) {}

  /// Connect to an endpoint, retrying on ECONNREFUSED until the deadline —
  /// servers may still be binding when clients start (common in the
  /// multi-process experiments).
  static Result<TcpConnection> connect(const Endpoint& remote, double timeout_secs = 5.0);

  /// connect() without the fault-injector consult, for callers (the
  /// connection pool) that already rolled on_connect for this logical dial
  /// and must not roll it twice.
  static Result<TcpConnection> connect_raw(const Endpoint& remote, double timeout_secs = 5.0);

  bool valid() const noexcept { return fd_.valid(); }
  void close() noexcept { fd_.reset(); }

  /// Shut both directions down without freeing the fd: a blocked reader on
  /// another thread wakes with EOF, and the descriptor number cannot be
  /// recycled under it (that is why this is not close()).
  void shutdown_both() noexcept;

  /// Write the entire buffer; fails on peer reset.
  Status send_all(const void* data, std::size_t size);

  /// Read exactly `size` bytes, waiting up to `timeout_secs` for each chunk.
  /// kConnectionClosed on orderly shutdown, kTimeout on inactivity.
  Status recv_all(void* data, std::size_t size, double timeout_secs);

  /// Wait until at least one byte is readable (or EOF is pending).
  Status wait_readable(double timeout_secs);

  /// Local/peer addresses for metrics and logging.
  Result<Endpoint> local_endpoint() const;
  Result<Endpoint> peer_endpoint() const;

  /// Raw fd for event-loop registration (epoll). Still owned by this object.
  int native_handle() const noexcept { return fd_.get(); }

  /// Detach ownership of the fd (the reactor adopts accepted sockets).
  FdHandle release() noexcept { return std::move(fd_); }

 private:
  FdHandle fd_;
};

/// A listening TCP socket.
class TcpListener {
 public:
  /// Bind + listen; port 0 picks an ephemeral port (query with port()).
  static Result<TcpListener> bind(const Endpoint& local, int backlog = 64);

  std::uint16_t port() const noexcept { return port_; }
  Endpoint endpoint() const { return Endpoint{host_, port_}; }

  /// Accept one connection, waiting up to timeout_secs; kTimeout if none.
  Result<TcpConnection> accept(double timeout_secs);

  /// Wake any accept() blocked in poll by closing the listening socket.
  void close() noexcept { fd_.reset(); }
  bool valid() const noexcept { return fd_.valid(); }

  /// Raw fd for event-loop registration (epoll). Still owned by this object.
  int native_handle() const noexcept { return fd_.get(); }

 private:
  FdHandle fd_;
  std::string host_;
  std::uint16_t port_ = 0;
};

}  // namespace ns::net
