#include "net/task_pool.hpp"

#include <utility>

namespace ns::net {

void TaskPool::start(int core_threads, int max_threads) {
  std::lock_guard lock(mu_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  if (core_threads < 1) core_threads = 1;
  if (max_threads < core_threads) max_threads = core_threads;
  max_threads_ = static_cast<std::size_t>(max_threads);
  threads_.reserve(static_cast<std::size_t>(core_threads));
  for (int i = 0; i < core_threads; ++i) spawn_locked();
}

void TaskPool::spawn_locked() {
  threads_.emplace_back([this] { worker_loop(); });
}

bool TaskPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    if (!started_ || stopping_) return false;
    queue_.push_back(std::move(task));
    // Grow whenever queued demand exceeds the workers parked to serve it
    // (bounded), so a burst of blocking solve handlers cannot strand later
    // control messages (cancels, pings) behind them. Demand-vs-idle, not
    // idle==0: a burst submitted before the just-notified workers wake still
    // counts them as idle, and with no further submits the excess tasks
    // would otherwise sit queued behind the blocked core threads forever.
    if (queue_.size() > idle_ && threads_.size() < max_threads_) spawn_locked();
  }
  cv_.notify_one();
  return true;
}

void TaskPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      ++idle_;
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      --idle_;
      if (stopping_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void TaskPool::stop() {
  std::vector<std::thread> joinable;
  {
    std::lock_guard lock(mu_);
    if (!started_) return;
    stopping_ = true;
    queue_.clear();
    joinable.swap(threads_);
    started_ = false;
  }
  cv_.notify_all();
  for (auto& t : joinable) {
    if (t.joinable()) t.join();
  }
}

std::size_t TaskPool::thread_count() const {
  std::lock_guard lock(mu_);
  return threads_.size();
}

}  // namespace ns::net
