// Event-driven transport core: a non-blocking epoll reactor.
//
// One reactor thread owns the listening socket, an epoll set, and every
// accepted connection's read side. Complete frames are decoded on the
// reactor thread (multiple frames per read — pipelined peers are the point)
// and dispatched to an elastic TaskPool (net/task_pool.hpp), so a blocking
// handler (a solve waiting in the admission queue) never stalls the loop or
// any other connection. This replaces the thread-per-connection accept
// loops the server and agent shipped with: connection count no longer costs
// a thread, and an accepted-but-idle keep-alive connection costs one fd and
// two small buffers.
//
// Writes are buffered per connection and flushed with writev scatter-gather
// (frame header and payload are separate iovecs — no per-send frame
// assembly copy). Handlers call ReactorConn::send() from pool threads; the
// fast path writes directly to the socket when the queue is empty, the slow
// path queues and lets the reactor finish under EPOLLOUT. Link shaping is
// honoured by stamping each queued chunk with a release time (token-bucket
// pacing computed at enqueue, served by the epoll timeout) instead of
// sleeping — a shaped reply never blocks a thread.
//
// Fault-injection parity: net/fault.hpp's send-side faults (reset, stall,
// corrupt, partition) are applied at enqueue time with the same
// peer-then-local endpoint lookup as net::send_message, so every chaos test
// scripted against the thread-per-connection transport observes identical
// failure surfaces on the reactor.
//
// Shutdown discipline (what TSan holds us to): stop() closes the listener,
// marks every connection closing, joins the reactor thread, then stops the
// pool (joining every worker). Handlers hold shared_ptr<ReactorConn>, so a
// connection closed under them stays valid memory; sends after close fail
// with kConnectionClosed.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "net/shaped_link.hpp"
#include "net/socket.hpp"
#include "net/task_pool.hpp"
#include "net/transport.hpp"
#include "serial/frame.hpp"

namespace ns::net {

class Reactor;

/// Resource-governance budgets for one reactor endpoint. Every limit exists
/// because a hostile (or merely broken) peer can otherwise spend the
/// process's memory, fds, or loop time: a header claiming a giant payload, a
/// byte-drip slowloris, a peer that never reads its replies, a connection
/// flood. Every enforcement decision increments a net.guard.* counter so an
/// operator can tell load-shedding from failure. Defaults are sized for a
/// compute server (large matrix blobs are legitimate); agents — metadata-only
/// endpoints — use agent_defaults().
struct GuardConfig {
  /// Largest payload a peer may claim in a frame header. Enforced at
  /// header-decode time, before any payload accumulates, so an oversized
  /// claim costs kHeaderSize bytes, not an allocation.
  std::size_t max_frame_bytes = serial::kMaxPayload;
  /// Per-connection buffered-byte budget (unconsumed read bytes + queued
  /// write bytes). The write side is what bites: a peer that stops reading
  /// while handlers keep replying gets its connection dropped instead of
  /// growing an unbounded queue. Raised to fit max_frame_bytes if smaller.
  std::size_t max_conn_buffer_bytes = 256ull << 20;  // 256 MiB
  /// Process-global buffered-byte ceiling across all connections. When
  /// exceeded the largest-buffered connection is shed; when merely hot
  /// (≥ 7/8) new dials are shed with a transport BUSY.
  std::size_t max_total_buffer_bytes = 1ull << 30;  // 1 GiB
  /// A started frame (read side) must finish within this window, and a
  /// non-empty write queue must drain some bytes within it. Not refreshed by
  /// drip progress — that is the slowloris defence. Shaped (paced) writes
  /// don't count against the peer. 0 disables.
  double frame_progress_timeout_s = 30.0;
  /// Accepted-connection cap. At the cap the accept path first tries to
  /// evict the least-recently-active idle connection (no in-flight handler,
  /// empty write queue); if nothing is evictable the dial is shed with a
  /// transport BUSY frame carrying retry_after_s.
  std::size_t max_connections = 1024;
  /// Back-off hint stamped into transport BUSY frames.
  double retry_after_s = 0.25;

  /// Budgets for a metadata-only endpoint: queries, registrations and
  /// reports are all small, so the agent caps frames at 1 MiB and keeps a
  /// tighter memory budget.
  static GuardConfig agent_defaults() {
    GuardConfig g;
    g.max_frame_bytes = 1u << 20;          // 1 MiB
    g.max_conn_buffer_bytes = 16u << 20;   // 16 MiB
    g.max_total_buffer_bytes = 64u << 20;  // 64 MiB
    return g;
  }
};

/// One accepted connection, shared between the reactor (reads, flushes) and
/// handler threads (sends). Handlers may hold the pointer across blocking
/// work and reply whenever ready — replies from concurrent handlers
/// interleave at frame granularity, which is what makes multiple in-flight
/// requests per connection (demuxed by request id on the client) work.
class ReactorConn : public std::enable_shared_from_this<ReactorConn> {
 public:
  /// Queue one framed message. Thread-safe; applies armed fault plans and
  /// link shaping. Fails with kConnectionClosed once the connection is
  /// closing (handlers treat that like the old synchronous send failing).
  Status send(std::uint16_t type, const serial::Bytes& payload,
              const LinkShape& shape = LinkShape::unshaped());

  /// Close after flushing queued writes; pending reads are dropped.
  void close();

  bool closed() const noexcept { return closing_.load(std::memory_order_acquire); }

  const Endpoint& peer() const noexcept { return peer_; }
  const Endpoint& local() const noexcept { return local_; }

 private:
  friend class Reactor;

  struct Chunk {
    serial::Bytes data;
    std::size_t offset = 0;
    double not_before = 0.0;  // monotonic seconds; 0 = immediately
  };

  explicit ReactorConn(Reactor* reactor, int fd) : reactor_(reactor), fd_(fd) {}

  Reactor* reactor_;
  int fd_;
  Endpoint peer_;
  Endpoint local_;

  // Read side: reactor thread only.
  serial::Bytes rdbuf_;
  std::size_t rd_consumed_ = 0;
  /// When the oldest unconsumed (partial) frame started arriving; 0 = no
  /// partial frame pending. Deliberately NOT refreshed on drip progress —
  /// refreshing is exactly what a slowloris exploits. Reactor thread only.
  double frame_start_ = 0.0;

  // Write side: shared, guarded by wr_mu_.
  std::mutex wr_mu_;
  std::deque<Chunk> wrq_;
  std::size_t wr_bytes_ = 0;         // unsent bytes across wrq_ (guard budget)
  double last_write_progress_ = 0.0; // refreshed when the socket accepts bytes
  double pace_until_ = 0.0;  // shaped-link token bucket (monotonic seconds)
  bool want_write_ = false;  // EPOLLOUT currently armed (reactor bookkeeping)

  std::atomic<bool> closing_{false};
  std::atomic<int> active_handlers_{0};
  std::atomic<double> last_activity_{0.0};
  /// rd-unconsumed + wr-queued bytes, mirrored into the reactor's global
  /// total. Atomic so the accept governor and global-budget sweep can read
  /// it without taking wr_mu_ across every connection.
  std::atomic<std::size_t> buffered_bytes_{0};
};

using ReactorConnPtr = std::shared_ptr<ReactorConn>;

struct ReactorConfig {
  /// Core handler threads; the pool grows on demand (blocking solve
  /// handlers each hold a thread while queued/running) up to max_workers.
  int workers = 4;
  int max_workers = 256;
  /// Close connections with no traffic and no in-flight handler for this
  /// long. Keep-alive peers must send something (or redial) within it.
  double idle_timeout_s = 10.0;
  /// Run handlers on the loop thread instead of dispatching to the pool.
  /// Only for services whose every handler is short and non-blocking (the
  /// agent: metadata lookups) — it saves two context switches per request,
  /// but one blocking handler would stall every connection. Servers keep
  /// pool dispatch (solve handlers block on the admission queue).
  bool inline_handlers = false;
  /// Hostile-peer / resource-exhaustion budgets (see GuardConfig).
  GuardConfig guard;
};

class Reactor {
 public:
  /// Handler for one complete, CRC-valid frame; runs on a pool thread.
  /// Return false to close the connection (protocol violation / shutdown).
  using MessageHandler = std::function<bool(const ReactorConnPtr&, Message&&)>;

  Reactor() = default;
  ~Reactor() { stop(); }

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Take ownership of a bound listener and serve it until stop().
  Status start(TcpListener listener, MessageHandler handler, ReactorConfig config = {});

  /// Close listener + every connection, join the loop and all workers.
  /// Safe to call twice; safe to call without start().
  void stop();

  /// Stop accepting new connections without stopping the loop — an injected
  /// server crash must release its port immediately, but the crashing
  /// handler runs on a pool thread and cannot join the pool. Asynchronous:
  /// the loop thread closes the listener on its next wakeup.
  void stop_accepting();

  Endpoint endpoint() const { return listener_.endpoint(); }
  bool running() const noexcept { return running_.load(std::memory_order_acquire); }
  std::size_t connection_count() const;
  /// Bytes currently buffered across every connection (reads + writes).
  std::size_t buffered_bytes() const noexcept {
    return total_buffered_.load(std::memory_order_relaxed);
  }

 private:
  friend class ReactorConn;

  void loop();
  void handle_accept();
  void handle_readable(const ReactorConnPtr& conn);
  void drain_frames(const ReactorConnPtr& conn);
  /// Flush as much of the write queue as the socket and pacing allow.
  /// Returns the earliest not_before still pending (0 = none).
  double flush_writes(const ReactorConnPtr& conn);
  void finish_close(const ReactorConnPtr& conn);
  void notify_dirty(const ReactorConnPtr& conn);
  void wake();
  void sweep_idle(double now);
  /// Kill connections that violate guard budgets/deadlines (loop thread).
  void sweep_guard(double now);
  /// While the global buffered-byte total exceeds its budget, shed the
  /// largest-buffered connection (loop thread).
  void enforce_global_budget();
  /// Evict the least-recently-active idle connection to make room at the
  /// connection cap; false if nothing is evictable (loop thread).
  bool evict_lru_idle();
  /// Best-effort transport BUSY frame + close on a just-accepted fd.
  void shed_accepted_fd(int fd);
  void track_buffered(ReactorConn& conn, std::ptrdiff_t delta);

  TcpListener listener_;
  MessageHandler handler_;
  ReactorConfig config_;
  TaskPool pool_;

  FdHandle epoll_fd_;
  FdHandle wake_fd_;  // eventfd: send-enqueue / close / stop wakeups
  /// Held open so an EMFILE-exhausted accept path can momentarily free a
  /// descriptor, accept the pending dial, and close it — shedding instead of
  /// letting the level-triggered listener event wedge the loop.
  FdHandle reserve_fd_;

  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> close_listener_{false};

  /// Effective per-connection budget (config, raised to fit max_frame_bytes).
  std::size_t conn_budget_ = 0;
  /// Guard sweep cadence: 1 s, tightened when frame_progress_timeout_s is
  /// sub-second so kills land promptly.
  double sweep_period_s_ = 1.0;
  /// After a persistent (unclassified) accept error the listener is pulled
  /// from the epoll set until this instant — a broken listener must never
  /// busy-spin the loop. 0 = armed.
  double accept_paused_until_ = 0.0;

  std::atomic<std::size_t> total_buffered_{0};

  mutable std::mutex conns_mu_;
  std::vector<ReactorConnPtr> conns_;

  std::mutex dirty_mu_;
  std::vector<std::weak_ptr<ReactorConn>> dirty_;
};

}  // namespace ns::net
