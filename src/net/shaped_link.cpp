#include "net/shaped_link.hpp"

#include <algorithm>

#include "common/clock.hpp"

namespace ns::net {

namespace {
constexpr std::size_t kChunk = 64 * 1024;
}

Status shaped_send(TcpConnection& conn, const void* data, std::size_t size,
                   const LinkShape& shape) {
  if (shape.is_unshaped()) {
    return conn.send_all(data, size);
  }
  if (shape.latency_s > 0) {
    sleep_seconds(shape.latency_s);
  }
  const bool paced = shape.bandwidth_Bps < std::numeric_limits<double>::infinity() &&
                     shape.bandwidth_Bps > 0;
  if (!paced) {
    return conn.send_all(data, size);
  }

  const auto* bytes = static_cast<const std::uint8_t*>(data);
  const Stopwatch watch;
  std::size_t sent = 0;
  while (sent < size) {
    const std::size_t n = std::min(kChunk, size - sent);
    NS_RETURN_IF_ERROR(conn.send_all(bytes + sent, n));
    sent += n;
    // Token bucket: the first `sent` bytes should not complete before
    // sent / bandwidth seconds have elapsed since the transfer started.
    const double due = static_cast<double>(sent) / shape.bandwidth_Bps;
    const double ahead = due - watch.elapsed();
    if (ahead > 0) sleep_seconds(ahead);
  }
  return ok_status();
}

}  // namespace ns::net
