// Deterministic network fault injection.
//
// Real deployments fail in ways an error reply never exercises: connections
// refused while a server reboots, streams reset mid-frame, writes that stall
// until the peer times out, bytes damaged in flight, and partitions that
// silently eat agent<->server control traffic. This layer lets tests and
// benches script those failures over the real loopback sockets the system
// already uses, without faking the sockets themselves.
//
// A FaultPlan is armed per *link*, keyed by the remote endpoint, on the
// process-global FaultInjector. The transport consults the injector at two
// choke points:
//
//   TcpConnection::connect()  -- kConnectRefused / kPartition fail the dial
//   net::send_message()       -- kReset / kStall / kCorrupt / kPartition act
//                                on one outgoing frame
//
// Fault decisions draw from a per-link seeded Rng, so a single-threaded
// caller replays the identical fault sequence run-to-run; concurrent callers
// still see the same marginal probabilities (draws are serialized under the
// injector lock) but may interleave differently.
//
// Injection sites are chosen so every fault is *observable only through the
// public failure surface*: a reset arrives as kConnectionClosed, a stall as
// the peer's kTimeout, a corruption as serial/crc32's kCorruptFrame — never
// as a hang or a crash.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "net/endpoint.hpp"

namespace ns::net {

enum class FaultMode {
  kConnectRefused,  // dial fails immediately (server rebinding / port closed)
  kReset,           // stream closes after a partial frame (peer sees RST-like EOF)
  kStall,           // partial frame then silence: the reader's timeout fires
  kCorrupt,         // frame bytes flipped in flight (CRC must catch)
  kPartition,       // link dead both ways: dials and in-flight sends fail
};

std::string_view fault_mode_name(FaultMode mode) noexcept;

struct FaultRule {
  FaultMode mode = FaultMode::kReset;
  /// Per-operation trigger probability (independent Bernoulli draws).
  double probability = 1.0;
  /// Stop firing after this many triggers (-1 = unbounded).
  int max_triggers = -1;
  /// Restrict the rule to these frame types (proto::MessageType values);
  /// empty = all traffic. Lets a partition cut only the agent<->server
  /// control plane (RegisterServer / WorkloadReport / Ping) while client
  /// queries keep flowing. Type-scoped rules act on frames only, never on
  /// the dial itself (the connect has no frame type yet).
  std::vector<std::uint16_t> only_types;
};

/// A seeded schedule of faults for one link. Rules are evaluated in order
/// per operation; the first that triggers wins.
struct FaultPlan {
  std::uint64_t seed = 0xfa017;
  std::vector<FaultRule> rules;
  /// Byte flips applied per corrupted frame.
  int corrupt_flips = 3;

  static FaultPlan single(FaultMode mode, double probability,
                          std::uint64_t seed = 0xfa017) {
    FaultPlan plan;
    plan.seed = seed;
    plan.rules.push_back(FaultRule{mode, probability, -1, {}});
    return plan;
  }
};

/// Process-global registry of armed fault plans. Cheap when disarmed: the
/// transport checks one relaxed atomic before taking any lock.
class FaultInjector {
 public:
  static FaultInjector& instance();

  /// Arm (or replace) the plan for traffic toward `peer`.
  void arm(const Endpoint& peer, FaultPlan plan);
  void disarm(const Endpoint& peer);
  void disarm_all();

  /// True if any link has a plan armed (fast path for the transport).
  bool armed() const noexcept {
    return armed_links_.load(std::memory_order_relaxed) > 0;
  }

  /// Total faults triggered since the last disarm_all (for test assertions).
  std::uint64_t triggered_count() const noexcept { return triggered_.load(); }

  // ---- transport hooks ----

  /// Called by TcpConnection::connect. Non-OK aborts the dial.
  Status on_connect(const Endpoint& peer);

  /// Called by send_message with the framed bytes about to be written.
  /// `link` is the endpoint the plan was armed on (the transport tries the
  /// connection's peer endpoint, then its local endpoint, so one plan covers
  /// both directions of a server's link). Returns the fault to apply to this
  /// frame, if any; kCorrupt additionally flips `corrupt_flips` bytes in the
  /// CRC-protected region of `frame`.
  std::optional<FaultMode> on_send(const Endpoint& link, std::uint16_t type,
                                   std::uint8_t* frame, std::size_t size);

 private:
  struct LinkState {
    FaultPlan plan;
    Rng rng;
    std::vector<int> fired;  // triggers consumed per rule
  };

  /// First rule that triggers for one frame of `type` on `link` (lock held).
  std::optional<FaultMode> roll_locked(LinkState& link, std::uint16_t type);

  mutable std::mutex mu_;
  std::map<std::string, LinkState> links_;  // keyed by Endpoint::to_string()
  std::atomic<int> armed_links_{0};
  std::atomic<std::uint64_t> triggered_{0};
};

}  // namespace ns::net
