// Link shaping: WAN emulation over loopback sockets.
//
// The original NetSolve evaluation spanned workstations on Ethernet and
// campus networks; the agent's scheduling decisions hinge on the
// latency + size/bandwidth term being non-trivial. On a single machine the
// loopback path is effectively free, so the sender applies a configurable
// LinkShape before/while writing: a one-way propagation delay plus
// token-bucket pacing of the byte stream to the target bandwidth.
//
// Shaping happens at the sender in user space — the receiver observes
// arrival times consistent with the emulated link, and because it is applied
// per logical transfer the agent's predicted transfer cost
// (latency + bytes/bandwidth) matches what the client actually measures.
#pragma once

#include <cstddef>
#include <limits>

#include "common/error.hpp"
#include "net/socket.hpp"

namespace ns::net {

struct LinkShape {
  /// One-way propagation delay in seconds applied once per transfer.
  double latency_s = 0.0;
  /// Sustained bytes/second; infinity disables pacing.
  double bandwidth_Bps = std::numeric_limits<double>::infinity();

  bool is_unshaped() const noexcept {
    return latency_s <= 0.0 && !(bandwidth_Bps < std::numeric_limits<double>::infinity());
  }

  /// Predicted transfer time of `bytes` over this link (the same formula the
  /// agent's scheduler uses for its network term).
  double predict_seconds(std::size_t bytes) const noexcept {
    double t = latency_s > 0 ? latency_s : 0.0;
    if (bandwidth_Bps < std::numeric_limits<double>::infinity() && bandwidth_Bps > 0) {
      t += static_cast<double>(bytes) / bandwidth_Bps;
    }
    return t;
  }

  /// Canonical profiles used across the experiments.
  static LinkShape unshaped() { return {}; }
  static LinkShape lan() { return LinkShape{0.0005, 12.5e6}; }   // ~100 Mb/s, 0.5 ms
  static LinkShape wan() { return LinkShape{0.020, 1.25e6}; }    // ~10 Mb/s, 20 ms
};

/// Sends a buffer over `conn`, honouring the shape. Chunked writes with
/// token-bucket sleeps keep the instantaneous rate near bandwidth_Bps even
/// for transfers much larger than the kernel socket buffer.
Status shaped_send(TcpConnection& conn, const void* data, std::size_t size,
                   const LinkShape& shape);

}  // namespace ns::net
