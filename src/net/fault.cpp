#include "net/fault.hpp"

#include <algorithm>

#include "serial/frame.hpp"

namespace ns::net {

std::string_view fault_mode_name(FaultMode mode) noexcept {
  switch (mode) {
    case FaultMode::kConnectRefused: return "connect_refused";
    case FaultMode::kReset: return "reset";
    case FaultMode::kStall: return "stall";
    case FaultMode::kCorrupt: return "corrupt";
    case FaultMode::kPartition: return "partition";
  }
  return "unknown";
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const Endpoint& peer, FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  LinkState state;
  state.rng.reseed(plan.seed);
  state.fired.assign(plan.rules.size(), 0);
  state.plan = std::move(plan);
  const auto [it, inserted] = links_.insert_or_assign(peer.to_string(), std::move(state));
  (void)it;
  if (inserted) armed_links_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::disarm(const Endpoint& peer) {
  std::lock_guard<std::mutex> lock(mu_);
  if (links_.erase(peer.to_string()) > 0) {
    armed_links_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::disarm_all() {
  std::lock_guard<std::mutex> lock(mu_);
  links_.clear();
  armed_links_.store(0, std::memory_order_relaxed);
  triggered_.store(0);
}

std::optional<FaultMode> FaultInjector::roll_locked(LinkState& link, std::uint16_t type) {
  for (std::size_t i = 0; i < link.plan.rules.size(); ++i) {
    const FaultRule& rule = link.plan.rules[i];
    if (!rule.only_types.empty() &&
        std::find(rule.only_types.begin(), rule.only_types.end(), type) ==
            rule.only_types.end()) {
      continue;
    }
    if (rule.max_triggers >= 0 && link.fired[i] >= rule.max_triggers) continue;
    if (!link.rng.bernoulli(rule.probability)) continue;
    link.fired[i] += 1;
    triggered_.fetch_add(1);
    return rule.mode;
  }
  return std::nullopt;
}

Status FaultInjector::on_connect(const Endpoint& peer) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = links_.find(peer.to_string());
  if (it == links_.end()) return ok_status();
  // Partitions always block the dial (the link is down, not flaky); a
  // refused-connect rule rolls its own dice per dial. Type-scoped rules
  // never act here — there is no frame type at dial time.
  for (std::size_t i = 0; i < it->second.plan.rules.size(); ++i) {
    const FaultRule& rule = it->second.plan.rules[i];
    if (!rule.only_types.empty()) continue;
    if (rule.mode == FaultMode::kPartition) {
      triggered_.fetch_add(1);
      return make_error(ErrorCode::kConnectFailed,
                        "injected partition toward " + peer.to_string());
    }
    if (rule.mode != FaultMode::kConnectRefused) continue;
    if (rule.max_triggers >= 0 && it->second.fired[i] >= rule.max_triggers) continue;
    if (!it->second.rng.bernoulli(rule.probability)) continue;
    it->second.fired[i] += 1;
    triggered_.fetch_add(1);
    return make_error(ErrorCode::kConnectFailed,
                      "injected connection refused by " + peer.to_string());
  }
  return ok_status();
}

std::optional<FaultMode> FaultInjector::on_send(const Endpoint& link, std::uint16_t type,
                                                std::uint8_t* frame, std::size_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = links_.find(link.to_string());
  if (it == links_.end()) return std::nullopt;
  auto fault = roll_locked(it->second, type);
  if (!fault) return std::nullopt;
  // Connect-only modes never fire on an established stream.
  if (*fault == FaultMode::kConnectRefused) return std::nullopt;
  if (*fault == FaultMode::kCorrupt && size >= serial::kHeaderSize) {
    // Flip bytes only in the CRC-protected span (payload); damaging the
    // header would surface as a framing error instead of the corruption
    // path under test. The CRC field itself (header bytes 12..15) is fair
    // game too — a wrong CRC is indistinguishable from a wrong payload.
    for (int flip = 0; flip < it->second.plan.corrupt_flips; ++flip) {
      const auto at = static_cast<std::size_t>(it->second.rng.uniform_int(
          12, static_cast<std::int64_t>(size) - 1));
      frame[at] ^= static_cast<std::uint8_t>(1 + (it->second.rng.next_u64() & 0xfe));
    }
  }
  return fault;
}

}  // namespace ns::net
