#include "net/reactor.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "common/clock.hpp"
#include "common/memgov.hpp"
#include "common/metrics.hpp"
#include "net/fault.hpp"

namespace ns::net {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;
constexpr std::size_t kMaxReadPerEvent = 1024 * 1024;
constexpr std::size_t kShapeChunk = 64 * 1024;  // matches shaped_send pacing
constexpr int kMaxIov = 8;

void set_nodelay_fd(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Endpoint endpoint_from(const sockaddr_in& addr) {
  char buf[INET_ADDRSTRLEN] = {};
  ::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf));
  return Endpoint{buf, ntohs(addr.sin_port)};
}

}  // namespace

// ---- ReactorConn ----

Status ReactorConn::send(std::uint16_t type, const serial::Bytes& payload,
                         const LinkShape& shape) {
  if (closing_.load(std::memory_order_acquire)) {
    return make_error(ErrorCode::kConnectionClosed, "reactor connection closed");
  }

  // Fault parity with net::send_message: same armed() fast path, same
  // peer-then-local plan lookup, same per-mode failure surface.
  std::optional<FaultMode> fault;
  serial::Bytes faulted_frame;
  if (FaultInjector::instance().armed()) {
    faulted_frame = serial::build_frame(type, payload);
    auto& injector = FaultInjector::instance();
    fault = injector.on_send(peer_, type, faulted_frame.data(), faulted_frame.size());
    if (!fault) {
      fault = injector.on_send(local_, type, faulted_frame.data(), faulted_frame.size());
    }
  }

  std::vector<Chunk> chunks;
  bool close_after = false;
  Status result = ok_status();
  if (fault) {
    switch (*fault) {
      case FaultMode::kReset:
      case FaultMode::kPartition: {
        // Half a frame then a hard close, exactly like a mid-flight RST.
        Chunk c;
        c.data.assign(faulted_frame.begin(),
                      faulted_frame.begin() +
                          static_cast<std::ptrdiff_t>(faulted_frame.size() / 2));
        chunks.push_back(std::move(c));
        close_after = true;
        result = make_error(ErrorCode::kConnectionClosed,
                            std::string("injected ") +
                                std::string(fault_mode_name(*fault)) + " on send");
        break;
      }
      case FaultMode::kStall: {
        // Partial frame then silence; the peer's read timeout surfaces it.
        const std::size_t partial =
            faulted_frame.size() > 1 ? faulted_frame.size() / 2 : 1;
        Chunk c;
        c.data.assign(faulted_frame.begin(),
                      faulted_frame.begin() + static_cast<std::ptrdiff_t>(partial));
        chunks.push_back(std::move(c));
        break;
      }
      case FaultMode::kCorrupt: {
        // Bytes already flipped in place; deliver the damaged frame whole and
        // let the CRC catch it on the far side.
        Chunk c;
        c.data = std::move(faulted_frame);
        chunks.push_back(std::move(c));
        break;
      }
      case FaultMode::kConnectRefused:
        fault.reset();  // connect-only, never returned for sends
        break;
    }
  }
  if (chunks.empty()) {
    // Normal path: header and payload stay separate chunks; the flush path
    // gathers them into one writev (scatter-gather, no frame assembly copy).
    Chunk head;
    head.data.resize(serial::kHeaderSize);
    serial::encode_frame_header(type, payload, head.data.data());
    chunks.push_back(std::move(head));
    if (!payload.empty()) {
      Chunk body;
      body.data = payload;
      chunks.push_back(std::move(body));
    }
  }

  std::size_t total = 0;
  for (const auto& c : chunks) total += c.data.size();

  bool queued_behind = false;
  {
    std::lock_guard lock(wr_mu_);
    if (fd_ < 0 || closing_.load(std::memory_order_relaxed)) {
      return make_error(ErrorCode::kConnectionClosed, "reactor connection closed");
    }

    // Per-connection buffered-byte budget: a peer that stops reading while
    // handlers keep replying would otherwise grow wrq_ without bound. Drop
    // the connection instead — the queued replies are undeliverable anyway.
    if (wr_bytes_ + total > reactor_->conn_budget_) {
      metrics::counter("net.guard.conn_overflow_total").inc();
      reactor_->track_buffered(*this, -static_cast<std::ptrdiff_t>(wr_bytes_));
      wrq_.clear();
      wr_bytes_ = 0;
      closing_.store(true, std::memory_order_release);
      reactor_->notify_dirty(shared_from_this());
      return make_error(ErrorCode::kConnectionClosed,
                        "peer write budget exceeded (slow reader)");
    }
    if (wrq_.empty()) last_write_progress_ = now_seconds();

    if (!shape.is_unshaped()) {
      // Token-bucket pacing computed at enqueue: chunk k may hit the wire
      // once latency + (bytes before k)/bandwidth have elapsed, serialized
      // after any transfer already pacing on this connection (pace_until_).
      const double now = now_seconds();
      const double base = std::max(now, pace_until_);
      const bool paced = shape.bandwidth_Bps < std::numeric_limits<double>::infinity() &&
                         shape.bandwidth_Bps > 0;
      // Subdivide large chunks so pacing is smooth (shaped_send uses 64 KiB).
      std::vector<Chunk> paced_chunks;
      for (auto& c : chunks) {
        std::size_t off = 0;
        while (off < c.data.size()) {
          const std::size_t n = std::min(kShapeChunk, c.data.size() - off);
          Chunk piece;
          piece.data.assign(c.data.begin() + static_cast<std::ptrdiff_t>(off),
                            c.data.begin() + static_cast<std::ptrdiff_t>(off + n));
          paced_chunks.push_back(std::move(piece));
          off += n;
        }
      }
      std::size_t sent_before = 0;
      for (auto& c : paced_chunks) {
        c.not_before = base + shape.latency_s +
                       (paced ? static_cast<double>(sent_before) / shape.bandwidth_Bps : 0.0);
        sent_before += c.data.size();
        wrq_.push_back(std::move(c));
      }
      pace_until_ = base + shape.latency_s +
                    (paced ? static_cast<double>(total) / shape.bandwidth_Bps : 0.0);
      wr_bytes_ += total;
      reactor_->track_buffered(*this, static_cast<std::ptrdiff_t>(total));
      queued_behind = true;
    } else if (wrq_.empty() && !close_after) {
      // Fast path: the queue is idle, write straight from the handler thread.
      iovec iov[kMaxIov];
      int iovcnt = 0;
      for (const auto& c : chunks) {
        iov[iovcnt].iov_base = const_cast<std::uint8_t*>(c.data.data());
        iov[iovcnt].iov_len = c.data.size();
        if (++iovcnt == kMaxIov) break;
      }
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
      std::size_t written = 0;
      while (written < total) {
        const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL | MSG_DONTWAIT);
        if (n < 0) {
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          return make_error(ErrorCode::kConnectionClosed,
                            std::string("sendmsg(): ") + ::strerror(errno));
        }
        written += static_cast<std::size_t>(n);
        // Advance the iov past what was written.
        std::size_t left = static_cast<std::size_t>(n);
        while (left > 0 && msg.msg_iovlen > 0) {
          if (left >= msg.msg_iov[0].iov_len) {
            left -= msg.msg_iov[0].iov_len;
            ++msg.msg_iov;
            --msg.msg_iovlen;
          } else {
            msg.msg_iov[0].iov_base = static_cast<std::uint8_t*>(msg.msg_iov[0].iov_base) + left;
            msg.msg_iov[0].iov_len -= left;
            left = 0;
          }
        }
      }
      if (written < total) {
        // Socket buffer full: queue the remainder for the reactor.
        std::size_t skip = written;
        for (auto& c : chunks) {
          if (skip >= c.data.size()) {
            skip -= c.data.size();
            continue;
          }
          c.offset = skip;
          skip = 0;
          wrq_.push_back(std::move(c));
        }
        wr_bytes_ += total - written;
        reactor_->track_buffered(*this, static_cast<std::ptrdiff_t>(total - written));
        queued_behind = true;
      }
    } else {
      for (auto& c : chunks) wrq_.push_back(std::move(c));
      wr_bytes_ += total;
      reactor_->track_buffered(*this, static_cast<std::ptrdiff_t>(total));
      queued_behind = true;
    }
    if (close_after) closing_.store(true, std::memory_order_release);
  }
  last_activity_.store(now_seconds(), std::memory_order_relaxed);
  if (queued_behind || close_after) reactor_->notify_dirty(shared_from_this());
  return result;
}

void ReactorConn::close() {
  closing_.store(true, std::memory_order_release);
  reactor_->notify_dirty(shared_from_this());
}

// ---- Reactor ----

Status Reactor::start(TcpListener listener, MessageHandler handler, ReactorConfig config) {
  if (running_.load()) return make_error(ErrorCode::kInternal, "reactor already running");
  if (!listener.valid()) return make_error(ErrorCode::kInternal, "reactor needs a bound listener");

  epoll_fd_ = FdHandle(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_fd_.valid()) {
    return make_error(ErrorCode::kInternal, std::string("epoll_create1(): ") + ::strerror(errno));
  }
  wake_fd_ = FdHandle(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!wake_fd_.valid()) {
    return make_error(ErrorCode::kInternal, std::string("eventfd(): ") + ::strerror(errno));
  }

  listener_ = std::move(listener);
  handler_ = std::move(handler);
  config_ = config;
  stopping_.store(false);
  total_buffered_.store(0, std::memory_order_relaxed);
  accept_paused_until_ = 0.0;

  // The per-connection budget must at least fit one maximal frame plus read
  // slack, or a legitimate max-size frame could never assemble.
  conn_budget_ = std::max(config_.guard.max_conn_buffer_bytes,
                          config_.guard.max_frame_bytes + serial::kHeaderSize + 2 * kReadChunk);
  // Guard sweeps ride the idle-sweep cadence (1 s) unless the progress
  // deadline is sub-second, in which case kills must land promptly.
  sweep_period_s_ = 1.0;
  if (config_.guard.frame_progress_timeout_s > 0.0) {
    sweep_period_s_ = std::clamp(config_.guard.frame_progress_timeout_s / 4.0, 0.05, 1.0);
  }
  // EMFILE insurance: one descriptor we can momentarily give back to accept
  // (then immediately close) a dial the fd table has no room for.
  reserve_fd_ = FdHandle(::open("/dev/null", O_RDONLY | O_CLOEXEC));

  // The accept drain loop relies on accept4 returning EAGAIN when the
  // pending queue empties; a blocking listener would wedge the loop thread
  // inside the kernel instead.
  const int lflags = ::fcntl(listener_.native_handle(), F_GETFL, 0);
  if (lflags < 0 ||
      ::fcntl(listener_.native_handle(), F_SETFL, lflags | O_NONBLOCK) != 0) {
    return make_error(ErrorCode::kInternal,
                      std::string("fcntl(listener, O_NONBLOCK): ") + ::strerror(errno));
  }

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = nullptr;  // nullptr = listener
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, listener_.native_handle(), &ev) != 0) {
    return make_error(ErrorCode::kInternal, std::string("epoll_ctl(listener): ") + ::strerror(errno));
  }
  epoll_event wev{};
  wev.events = EPOLLIN;
  wev.data.ptr = const_cast<Reactor*>(static_cast<const Reactor*>(this));  // self = wakeup
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &wev) != 0) {
    return make_error(ErrorCode::kInternal, std::string("epoll_ctl(wake): ") + ::strerror(errno));
  }

  pool_.start(config_.workers, config_.max_workers);
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { loop(); });
  return ok_status();
}

void Reactor::stop() {
  if (!running_.exchange(false)) {
    pool_.stop();
    return;
  }
  stopping_.store(true, std::memory_order_release);
  wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  // Join workers after the loop: in-flight handlers may still be replying;
  // their sends fail fast on the closed connections. Callers that block
  // handlers on condition variables (the server's admission queue) must wake
  // those first — see ComputeServer::stop().
  pool_.stop();
  {
    std::lock_guard lock(conns_mu_);
    conns_.clear();
  }
  epoll_fd_.reset();
  wake_fd_.reset();
  reserve_fd_.reset();
}

void Reactor::stop_accepting() {
  close_listener_.store(true, std::memory_order_release);
  wake();
}

std::size_t Reactor::connection_count() const {
  std::lock_guard lock(conns_mu_);
  return conns_.size();
}

void Reactor::wake() {
  if (!wake_fd_.valid()) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_.get(), &one, sizeof(one));
}

void Reactor::notify_dirty(const ReactorConnPtr& conn) {
  {
    std::lock_guard lock(dirty_mu_);
    dirty_.push_back(conn);
  }
  wake();
}

void Reactor::loop() {
  double pace_due = 0.0;
  double last_sweep = now_seconds();
  std::vector<epoll_event> events(64);

  while (!stopping_.load(std::memory_order_acquire)) {
    const double now = now_seconds();
    int timeout_ms = std::min(250, static_cast<int>(sweep_period_s_ * 1000.0) + 1);
    if (pace_due > 0.0) {
      const double wait = std::max(0.0, pace_due - now);
      timeout_ms = std::min(timeout_ms, static_cast<int>(wait * 1000.0) + 1);
    }
    const int n = ::epoll_wait(epoll_fd_.get(), events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0 && errno != EINTR) break;

    // Re-arm a listener parked after a persistent accept error (the pause
    // is what keeps a broken listener from busy-spinning the loop).
    if (accept_paused_until_ > 0.0 && now_seconds() >= accept_paused_until_ &&
        listener_.valid()) {
      accept_paused_until_ = 0.0;
      epoll_event lev{};
      lev.events = EPOLLIN;
      lev.data.ptr = nullptr;
      ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, listener_.native_handle(), &lev);
    }

    if (close_listener_.exchange(false) && listener_.valid()) {
      // Dials the kernel already completed sit in the accept backlog, and
      // closing the listener would reset them. Adopt them first —
      // stop_accepting means "refuse new dials", not "drop handshakes that
      // already finished".
      handle_accept();
      ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, listener_.native_handle(), nullptr);
      listener_.close();
      // A stale listener event in this batch falls through handle_accept's
      // failing accept4 harmlessly.
    }

    for (int i = 0; i < n; ++i) {
      void* tag = events[static_cast<std::size_t>(i)].data.ptr;
      const std::uint32_t ev = events[static_cast<std::size_t>(i)].events;
      if (tag == nullptr) {
        handle_accept();
        continue;
      }
      if (tag == this) {
        std::uint64_t drained = 0;
        while (::read(wake_fd_.get(), &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto* raw = static_cast<ReactorConn*>(tag);
      ReactorConnPtr conn;
      {
        std::lock_guard lock(conns_mu_);
        for (const auto& c : conns_) {
          if (c.get() == raw) {
            conn = c;
            break;
          }
        }
      }
      if (!conn) continue;  // already closed this iteration
      if ((ev & (EPOLLERR | EPOLLHUP)) != 0) {
        finish_close(conn);
        continue;
      }
      if ((ev & EPOLLIN) != 0) handle_readable(conn);
      if ((ev & EPOLLOUT) != 0) {
        const double due = flush_writes(conn);
        if (due > 0.0) pace_due = pace_due > 0.0 ? std::min(pace_due, due) : due;
      }
    }

    // Dirty connections: handler threads enqueued writes or closes.
    std::vector<std::weak_ptr<ReactorConn>> dirty;
    {
      std::lock_guard lock(dirty_mu_);
      dirty.swap(dirty_);
    }
    for (auto& weak : dirty) {
      if (auto conn = weak.lock()) {
        const double due = flush_writes(conn);
        if (due > 0.0) pace_due = pace_due > 0.0 ? std::min(pace_due, due) : due;
      }
    }

    // Paced (shaped) writes whose release time has arrived.
    if (pace_due > 0.0 && now_seconds() >= pace_due) {
      pace_due = 0.0;
      std::vector<ReactorConnPtr> snapshot;
      {
        std::lock_guard lock(conns_mu_);
        snapshot = conns_;
      }
      for (const auto& conn : snapshot) {
        const double due = flush_writes(conn);
        if (due > 0.0) pace_due = pace_due > 0.0 ? std::min(pace_due, due) : due;
      }
    }

    const double sweep_now = now_seconds();
    if (sweep_now - last_sweep >= sweep_period_s_) {
      last_sweep = sweep_now;
      sweep_guard(sweep_now);
      sweep_idle(sweep_now);
    }
  }

  // Shutdown: close the listener first (frees the port for restarts), then
  // every connection.
  listener_.close();
  std::vector<ReactorConnPtr> snapshot;
  {
    std::lock_guard lock(conns_mu_);
    snapshot = conns_;
  }
  for (const auto& conn : snapshot) finish_close(conn);
}

void Reactor::handle_accept() {
  if (!listener_.valid()) return;
  int emfile_shed_budget = 64;  // bound fd-pressure shedding per wakeup
  for (;;) {
    const int fd = ::accept4(listener_.native_handle(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      const int err = errno;
      if (err == EAGAIN || err == EWOULDBLOCK) return;  // backlog drained
      if (err == EINTR) continue;
      metrics::counter("net.guard.accept_errors_total").inc();
      // The dialer gave up between SYN and accept — their problem, next.
      if (err == ECONNABORTED) continue;
      if (err == EMFILE || err == ENFILE) {
        // fd table exhausted. Without intervention the pending dial sits in
        // the backlog and the level-triggered listener event fires forever.
        // Give the reserve descriptor back for a moment, accept the dial,
        // and close it immediately: the peer sees a shed, the loop thread
        // never wedges or spins.
        reserve_fd_.reset();
        const int victim =
            ::accept4(listener_.native_handle(), nullptr, nullptr, SOCK_CLOEXEC);
        if (victim >= 0) {
          ::close(victim);
          metrics::counter("net.guard.accept_shed_total").inc();
        }
        reserve_fd_ = FdHandle(::open("/dev/null", O_RDONLY | O_CLOEXEC));
        if (victim < 0 || --emfile_shed_budget <= 0) return;
        continue;
      }
      // Unclassified (listener broken, ENOBUFS storm, ...): park the
      // listener for a cooldown instead of letting the still-readable event
      // busy-spin the loop; loop() re-arms it.
      ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, listener_.native_handle(), nullptr);
      accept_paused_until_ = now_seconds() + 0.1;
      return;
    }

    // Accept governor: at the connection cap, evict the least-recently
    // active idle connection to make room (keep-alive peers are cheap to
    // re-dial); if nothing is evictable, or buffer budgets are already hot,
    // shed the dial with a transport BUSY so the peer backs off.
    bool over_cap = connection_count() >= config_.guard.max_connections;
    if (over_cap && evict_lru_idle()) over_cap = false;
    const std::size_t hot_mark =
        config_.guard.max_total_buffer_bytes - config_.guard.max_total_buffer_bytes / 8;
    if (over_cap || total_buffered_.load(std::memory_order_relaxed) >= hot_mark) {
      shed_accepted_fd(fd);
      continue;
    }
    set_nodelay_fd(fd);

    auto conn = ReactorConnPtr(new ReactorConn(this, fd));
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      conn->peer_ = endpoint_from(addr);
    }
    len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      conn->local_ = endpoint_from(addr);
    }
    conn->last_activity_.store(now_seconds(), std::memory_order_relaxed);

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = conn.get();
    {
      std::lock_guard lock(conns_mu_);
      conns_.push_back(conn);
    }
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
      finish_close(conn);
    }
  }
}

void Reactor::handle_readable(const ReactorConnPtr& conn) {
  if (conn->closing_.load(std::memory_order_acquire)) return;
  // Process-global buffered-byte ceiling: shed the largest-buffered
  // connection(s) before buffering more. This connection may be the victim.
  if (total_buffered_.load(std::memory_order_relaxed) > config_.guard.max_total_buffer_bytes) {
    enforce_global_budget();
    if (conn->closing_.load(std::memory_order_acquire)) return;
  }
  std::size_t read_total = 0;
  bool eof = false;
  while (read_total < kMaxReadPerEvent) {
    const std::size_t old_size = conn->rdbuf_.size();
    try {
      mem::alloc_trip("net.reactor_read");
      conn->rdbuf_.resize(old_size + kReadChunk);
    } catch (const std::bad_alloc&) {
      // Growing one connection's read buffer failed: shed that connection,
      // never the daemon. The loop thread must not unwind through epoll.
      metrics::counter("mem.bad_alloc_total").inc();
      eof = true;
      break;
    }
    const ssize_t n = ::recv(conn->fd_, conn->rdbuf_.data() + old_size, kReadChunk, 0);
    if (n > 0) {
      conn->rdbuf_.resize(old_size + static_cast<std::size_t>(n));
      read_total += static_cast<std::size_t>(n);
      if (static_cast<std::size_t>(n) < kReadChunk) break;
      continue;
    }
    conn->rdbuf_.resize(old_size);
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    eof = true;  // hard error: treat as peer gone
    break;
  }
  if (read_total > 0) {
    track_buffered(*conn, static_cast<std::ptrdiff_t>(read_total));
    conn->last_activity_.store(now_seconds(), std::memory_order_relaxed);
    drain_frames(conn);
  }
  if (eof) finish_close(conn);
}

void Reactor::drain_frames(const ReactorConnPtr& conn) {
  auto& buf = conn->rdbuf_;
  std::size_t& consumed = conn->rd_consumed_;
  while (buf.size() - consumed >= serial::kHeaderSize) {
    auto header = serial::decode_header(buf.data() + consumed);
    if (!header.ok()) {
      // Protocol violation: drop the connection, exactly like the old
      // blocking recv_message path.
      finish_close(conn);
      return;
    }
    if (header.value().length > config_.guard.max_frame_bytes) {
      // Role frame cap, enforced at header-decode time: the giant payload a
      // hostile header claims is rejected before a single byte of it is
      // buffered or allocated.
      metrics::counter("net.guard.oversized_total").inc();
      finish_close(conn);
      return;
    }
    const std::size_t frame_len = serial::kHeaderSize + header.value().length;
    if (buf.size() - consumed < frame_len) break;  // frame split across reads

    Message msg;
    msg.type = header.value().type;
    msg.payload.assign(buf.begin() + static_cast<std::ptrdiff_t>(consumed + serial::kHeaderSize),
                       buf.begin() + static_cast<std::ptrdiff_t>(consumed + frame_len));
    consumed += frame_len;
    track_buffered(*conn, -static_cast<std::ptrdiff_t>(frame_len));
    if (!serial::check_payload(header.value(), msg.payload).ok()) {
      finish_close(conn);
      return;
    }
    conn->active_handlers_.fetch_add(1, std::memory_order_acq_rel);
    if (config_.inline_handlers) {
      // Loop-thread dispatch for short non-blocking handlers: saves the
      // wake-a-worker and reply-wakeup context switches per request. The
      // send fast path still writes directly from here.
      const bool keep = handler_ ? handler_(conn, std::move(msg)) : false;
      conn->last_activity_.store(now_seconds(), std::memory_order_relaxed);
      conn->active_handlers_.fetch_sub(1, std::memory_order_acq_rel);
      if (!keep) {
        conn->close();
        return;
      }
      continue;
    }
    const bool submitted = pool_.submit([this, conn, msg = std::move(msg)]() mutable {
      const bool keep = handler_ ? handler_(conn, std::move(msg)) : false;
      conn->last_activity_.store(now_seconds(), std::memory_order_relaxed);
      conn->active_handlers_.fetch_sub(1, std::memory_order_acq_rel);
      if (!keep) conn->close();
    });
    if (!submitted) {
      conn->active_handlers_.fetch_sub(1, std::memory_order_acq_rel);
      finish_close(conn);
      return;
    }
  }
  // Compact the consumed prefix once it dominates the buffer.
  if (consumed > 0 && (consumed >= buf.size() || consumed > 256 * 1024)) {
    buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(consumed));
    consumed = 0;
  }
  // Progress deadline bookkeeping: a trailing partial frame keeps (or
  // starts) the clock; an empty buffer clears it. The start time is never
  // refreshed by mere drip progress — that is what defeats a slowloris.
  if (buf.size() - consumed > 0) {
    if (conn->frame_start_ == 0.0) conn->frame_start_ = now_seconds();
  } else {
    conn->frame_start_ = 0.0;
  }
}

double Reactor::flush_writes(const ReactorConnPtr& conn) {
  bool closed_peer = false;
  double next_due = 0.0;
  bool need_epollout = false;
  {
    std::lock_guard lock(conn->wr_mu_);
    if (conn->fd_ < 0) return 0.0;
    const double now = now_seconds();
    while (!conn->wrq_.empty()) {
      if (conn->wrq_.front().not_before > now) {
        next_due = conn->wrq_.front().not_before;
        break;
      }
      iovec iov[kMaxIov];
      int iovcnt = 0;
      std::size_t batched = 0;
      for (const auto& c : conn->wrq_) {
        if (c.not_before > now) break;
        iov[iovcnt].iov_base = const_cast<std::uint8_t*>(c.data.data()) + c.offset;
        iov[iovcnt].iov_len = c.data.size() - c.offset;
        batched += iov[iovcnt].iov_len;
        if (++iovcnt == kMaxIov) break;
      }
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
      const ssize_t n = ::sendmsg(conn->fd_, &msg, MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          need_epollout = true;
          break;
        }
        closed_peer = true;
        break;
      }
      if (n > 0) {
        conn->wr_bytes_ -= std::min(conn->wr_bytes_, static_cast<std::size_t>(n));
        track_buffered(*conn, -static_cast<std::ptrdiff_t>(n));
        conn->last_write_progress_ = now;
      }
      std::size_t left = static_cast<std::size_t>(n);
      while (left > 0 && !conn->wrq_.empty()) {
        auto& front = conn->wrq_.front();
        const std::size_t remain = front.data.size() - front.offset;
        if (left >= remain) {
          left -= remain;
          conn->wrq_.pop_front();
        } else {
          front.offset += left;
          left = 0;
        }
      }
      if (static_cast<std::size_t>(n) < batched) {
        need_epollout = true;
        break;
      }
    }

    // Toggle EPOLLOUT to match whether the socket is what blocks us.
    if (need_epollout != conn->want_write_) {
      epoll_event ev{};
      ev.events = EPOLLIN | (need_epollout ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
      ev.data.ptr = conn.get();
      ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, conn->fd_, &ev);
      conn->want_write_ = need_epollout;
    }
  }
  if (closed_peer) {
    finish_close(conn);
    return 0.0;
  }
  if (conn->closing_.load(std::memory_order_acquire)) {
    bool drained;
    {
      std::lock_guard lock(conn->wr_mu_);
      drained = conn->wrq_.empty();
    }
    if (drained) finish_close(conn);
  }
  return next_due;
}

void Reactor::finish_close(const ReactorConnPtr& conn) {
  conn->closing_.store(true, std::memory_order_release);
  {
    std::lock_guard lock(conn->wr_mu_);
    if (conn->fd_ >= 0) {
      ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, conn->fd_, nullptr);
      ::close(conn->fd_);
      conn->fd_ = -1;
      // Return this connection's buffered bytes to the global budget. Only
      // on the first close (fd guard): finish_close is idempotent.
      const std::size_t rd_pending = conn->rdbuf_.size() - conn->rd_consumed_;
      track_buffered(*conn, -static_cast<std::ptrdiff_t>(conn->wr_bytes_ + rd_pending));
      conn->wr_bytes_ = 0;
      conn->rdbuf_.clear();
      conn->rdbuf_.shrink_to_fit();
      conn->rd_consumed_ = 0;
    }
    conn->wrq_.clear();
  }
  std::lock_guard lock(conns_mu_);
  conns_.erase(std::remove(conns_.begin(), conns_.end(), conn), conns_.end());
}

void Reactor::track_buffered(ReactorConn& conn, std::ptrdiff_t delta) {
  if (delta >= 0) {
    conn.buffered_bytes_.fetch_add(static_cast<std::size_t>(delta), std::memory_order_relaxed);
    total_buffered_.fetch_add(static_cast<std::size_t>(delta), std::memory_order_relaxed);
    return;
  }
  // Clamp-subtract: the accounting feeds shed decisions, and an off-by-one
  // that wrapped a size_t would read as "budget permanently blown".
  const std::size_t d = static_cast<std::size_t>(-delta);
  std::size_t cur = conn.buffered_bytes_.load(std::memory_order_relaxed);
  while (!conn.buffered_bytes_.compare_exchange_weak(cur, cur - std::min(cur, d),
                                                     std::memory_order_relaxed)) {
  }
  std::size_t tot = total_buffered_.load(std::memory_order_relaxed);
  while (!total_buffered_.compare_exchange_weak(tot, tot - std::min(tot, d),
                                                std::memory_order_relaxed)) {
  }
}

void Reactor::shed_accepted_fd(int fd) {
  // One best-effort BUSY frame so a protocol-speaking peer learns this was
  // load shedding (and how long to back off), then close. The socket buffer
  // of a brand-new connection always fits the 24-byte frame; if not, the
  // close alone still sheds.
  const serial::Bytes frame = serial::build_frame(
      kTransportBusyType, encode_busy_payload(config_.guard.retry_after_s));
  (void)::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
  ::close(fd);
  metrics::counter("net.guard.accept_shed_total").inc();
}

bool Reactor::evict_lru_idle() {
  ReactorConnPtr victim;
  double oldest = 0.0;
  {
    std::lock_guard lock(conns_mu_);
    for (const auto& conn : conns_) {
      if (conn->active_handlers_.load(std::memory_order_acquire) > 0) continue;
      bool queue_empty;
      {
        std::lock_guard wlock(conn->wr_mu_);
        queue_empty = conn->wrq_.empty();
      }
      if (!queue_empty) continue;
      const double last = conn->last_activity_.load(std::memory_order_relaxed);
      if (!victim || last < oldest) {
        victim = conn;
        oldest = last;
      }
    }
  }
  if (!victim) return false;
  finish_close(victim);
  metrics::counter("net.guard.evicted_total").inc();
  return true;
}

void Reactor::enforce_global_budget() {
  // Shed largest-buffered connections until the total fits again. The
  // largest buffer is the best proxy for "the peer causing the pressure",
  // and shedding it frees the most budget per kill.
  for (int rounds = 0; rounds < 64; ++rounds) {
    if (total_buffered_.load(std::memory_order_relaxed) <= config_.guard.max_total_buffer_bytes) {
      return;
    }
    ReactorConnPtr victim;
    std::size_t biggest = 0;
    {
      std::lock_guard lock(conns_mu_);
      for (const auto& conn : conns_) {
        const std::size_t b = conn->buffered_bytes_.load(std::memory_order_relaxed);
        if (b > biggest) {
          biggest = b;
          victim = conn;
        }
      }
    }
    if (!victim) return;  // nothing left to shed
    metrics::counter("net.guard.global_overflow_total").inc();
    finish_close(victim);
  }
}

void Reactor::sweep_guard(double now) {
  const double timeout = config_.guard.frame_progress_timeout_s;
  std::vector<ReactorConnPtr> snapshot;
  {
    std::lock_guard lock(conns_mu_);
    snapshot = conns_;
  }
  if (timeout > 0.0) {
    std::vector<ReactorConnPtr> stalled;
    for (const auto& conn : snapshot) {
      // Read side: a frame that started arriving must finish within the
      // window, however steadily the peer drips bytes into it.
      if (conn->frame_start_ > 0.0 && now - conn->frame_start_ > timeout) {
        stalled.push_back(conn);
        continue;
      }
      // Write side: a non-empty queue whose head is eligible (not pacing)
      // must see the socket accept bytes within the window — a peer that
      // stopped reading is indistinguishable from one that never will.
      std::lock_guard wlock(conn->wr_mu_);
      if (conn->wrq_.empty()) continue;
      if (conn->wrq_.front().not_before > now) {
        // Shaped chunk not yet released: our pacing, not peer slowness.
        conn->last_write_progress_ = now;
        continue;
      }
      if (now - conn->last_write_progress_ > timeout) stalled.push_back(conn);
    }
    for (const auto& conn : stalled) {
      metrics::counter("net.guard.progress_kill_total").inc();
      finish_close(conn);
    }
  }
  enforce_global_budget();
  metrics::gauge("net.guard.buffered_bytes")
      .set(static_cast<double>(total_buffered_.load(std::memory_order_relaxed)));
  metrics::gauge("net.guard.connections").set(static_cast<double>(connection_count()));
}

void Reactor::sweep_idle(double now) {
  std::vector<ReactorConnPtr> idle;
  {
    std::lock_guard lock(conns_mu_);
    for (const auto& conn : conns_) {
      if (conn->active_handlers_.load(std::memory_order_acquire) > 0) continue;
      const double last = conn->last_activity_.load(std::memory_order_relaxed);
      bool queue_empty;
      {
        std::lock_guard wlock(conn->wr_mu_);
        queue_empty = conn->wrq_.empty();
      }
      if (queue_empty && now - last > config_.idle_timeout_s) idle.push_back(conn);
    }
  }
  for (const auto& conn : idle) finish_close(conn);
}

}  // namespace ns::net
