// Elastic worker pool that executes the reactor's message handlers.
//
// The reactor thread must never block, so every decoded frame is handed to a
// pool task. Most handlers (ping, query, metrics, cancel) finish in
// microseconds and are served by the core threads; solve handlers block for
// the whole queue-wait + compute and can pile up far beyond the core count,
// so the pool grows on demand: a submit that finds no idle worker spawns a
// new thread up to `max_threads`. Grown threads are kept (not retired) —
// thread lifetime then has exactly two states, started and joined-in-stop,
// which keeps shutdown races impossible by construction (every thread is
// joined exactly once by stop()).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ns::net {

class TaskPool {
 public:
  TaskPool() = default;
  ~TaskPool() { stop(); }

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Spawn `core_threads` workers now; grow lazily up to `max_threads`.
  void start(int core_threads, int max_threads);

  /// Queue a task. Returns false (task dropped) after stop() has begun —
  /// callers treat that exactly like a connection that closed mid-dispatch.
  bool submit(std::function<void()> task);

  /// Drain nothing: pending tasks are dropped, running tasks finish, all
  /// threads are joined. Idempotent.
  void stop();

  std::size_t thread_count() const;

 private:
  void worker_loop();
  void spawn_locked();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  std::size_t idle_ = 0;
  std::size_t max_threads_ = 0;
  bool started_ = false;
  bool stopping_ = false;
};

}  // namespace ns::net
