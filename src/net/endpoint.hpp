// Network endpoint addressing.
#pragma once

#include <cstdint>
#include <string>

namespace ns::net {

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  std::string to_string() const { return host + ":" + std::to_string(port); }

  friend bool operator==(const Endpoint& a, const Endpoint& b) {
    return a.port == b.port && a.host == b.host;
  }
};

}  // namespace ns::net
