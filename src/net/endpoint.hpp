// Network endpoint addressing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ns::net {

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  std::string to_string() const { return host + ":" + std::to_string(port); }

  friend bool operator==(const Endpoint& a, const Endpoint& b) {
    return a.port == b.port && a.host == b.host;
  }
  friend bool operator!=(const Endpoint& a, const Endpoint& b) { return !(a == b); }
};

/// Parse "host:port" (or a bare ":port"/"port", defaulting the host to
/// 127.0.0.1). Returns nullopt on a malformed or out-of-range port.
inline std::optional<Endpoint> parse_endpoint(const std::string& text) {
  Endpoint ep;
  auto colon = text.rfind(':');
  std::string port_text;
  if (colon == std::string::npos) {
    port_text = text;
  } else {
    if (colon > 0) ep.host = text.substr(0, colon);
    port_text = text.substr(colon + 1);
  }
  if (port_text.empty()) return std::nullopt;
  long port = 0;
  for (char c : port_text) {
    if (c < '0' || c > '9') return std::nullopt;
    port = port * 10 + (c - '0');
    if (port > 65535) return std::nullopt;
  }
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

/// Parse a comma-separated "host:port,host:port,..." list, skipping empty
/// segments. Returns nullopt if any non-empty segment is malformed.
inline std::optional<std::vector<Endpoint>> parse_endpoint_list(const std::string& text) {
  std::vector<Endpoint> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    auto comma = text.find(',', start);
    auto end = comma == std::string::npos ? text.size() : comma;
    if (end > start) {
      auto ep = parse_endpoint(text.substr(start, end - start));
      if (!ep) return std::nullopt;
      out.push_back(std::move(*ep));
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace ns::net
