#include "net/transport.hpp"

#include "common/memgov.hpp"
#include "common/metrics.hpp"
#include "net/fault.hpp"

namespace ns::net {

namespace {

/// Apply any armed fault to the outgoing frame. Looks the link up by the
/// connection's peer endpoint first, then by its local endpoint — an accepted
/// server socket's local endpoint is the listen address tests arm plans on,
/// so one plan covers both directions of a server's link.
Result<std::optional<FaultMode>> roll_send_fault(TcpConnection& conn, std::uint16_t type,
                                                 serial::Bytes& frame) {
  auto& injector = FaultInjector::instance();
  auto peer = conn.peer_endpoint();
  if (peer.ok()) {
    auto fault = injector.on_send(peer.value(), type, frame.data(), frame.size());
    if (fault) return fault;
  }
  auto local = conn.local_endpoint();
  if (local.ok()) {
    return injector.on_send(local.value(), type, frame.data(), frame.size());
  }
  return std::optional<FaultMode>{};
}

}  // namespace

Status send_message(TcpConnection& conn, std::uint16_t type, const serial::Bytes& payload,
                    const LinkShape& shape) {
  serial::Bytes frame = serial::build_frame(type, payload);
  if (FaultInjector::instance().armed()) {
    auto fault = roll_send_fault(conn, type, frame);
    if (!fault.ok()) return fault.error();
    if (fault.value()) {
      switch (*fault.value()) {
        case FaultMode::kReset:
        case FaultMode::kPartition: {
          // Half a frame then a hard shutdown: the peer reads a truncated
          // stream and sees kConnectionClosed, exactly like a mid-flight RST.
          // shutdown, not close: on a pooled mux channel a reader thread is
          // concurrently polling this fd, and close() would free the
          // descriptor under it (the owner closes it when the channel dies).
          (void)conn.send_all(frame.data(), frame.size() / 2);
          conn.shutdown_both();
          return make_error(ErrorCode::kConnectionClosed,
                            std::string("injected ") + std::string(fault_mode_name(*fault.value())) +
                                " on send");
        }
        case FaultMode::kStall: {
          // Partial frame then silence. The sender "succeeds" (the bytes left
          // the building); the reader's recv timeout is what surfaces it.
          const std::size_t partial = frame.size() > 1 ? frame.size() / 2 : 1;
          (void)conn.send_all(frame.data(), partial);
          return ok_status();
        }
        case FaultMode::kCorrupt:
          // Bytes already flipped in place by on_send; deliver the damaged
          // frame normally and let the CRC catch it on the far side.
          break;
        case FaultMode::kConnectRefused:
          break;  // connect-only, never returned for sends
      }
    }
  }
  return shaped_send(conn, frame.data(), frame.size(), shape);
}

serial::Bytes encode_busy_payload(double retry_after_s) {
  serial::Encoder enc;
  enc.put_f64(retry_after_s);
  return enc.take();
}

double decode_busy_retry_after(const serial::Bytes& payload, double fallback) {
  serial::Decoder dec(payload);
  auto v = dec.get_f64();
  if (!v.ok() || !(v.value() >= 0.0) || v.value() > 60.0) return fallback;
  return v.value();
}

Result<Message> recv_message(TcpConnection& conn, double timeout_secs,
                             std::size_t max_payload) {
  std::uint8_t header_bytes[serial::kHeaderSize];
  NS_RETURN_IF_ERROR(conn.recv_all(header_bytes, sizeof(header_bytes), timeout_secs));
  auto header = serial::decode_header(header_bytes);
  if (!header.ok()) return header.error();
  if (header.value().length > max_payload) {
    // Role frame cap, mirror of the reactor's: the claim is rejected before
    // the allocation it would cost, and the connection is unusable anyway
    // (the oversized body would still be in the stream).
    metrics::counter("net.guard.oversized_total").inc();
    return make_error(ErrorCode::kProtocol, "frame exceeds client payload cap");
  }

  Message msg;
  msg.type = header.value().type;
  try {
    mem::alloc_trip("net.recv");
    msg.payload.resize(header.value().length);
  } catch (const std::bad_alloc&) {
    metrics::counter("mem.bad_alloc_total").inc();
    return make_error(ErrorCode::kServerOverloaded, "allocation failed buffering frame");
  }
  if (header.value().length > 0) {
    NS_RETURN_IF_ERROR(conn.recv_all(msg.payload.data(), msg.payload.size(), timeout_secs));
  }
  NS_RETURN_IF_ERROR(serial::check_payload(header.value(), msg.payload));
  return msg;
}

}  // namespace ns::net
