#include "net/transport.hpp"

namespace ns::net {

Status send_message(TcpConnection& conn, std::uint16_t type, const serial::Bytes& payload,
                    const LinkShape& shape) {
  const serial::Bytes frame = serial::build_frame(type, payload);
  return shaped_send(conn, frame.data(), frame.size(), shape);
}

Result<Message> recv_message(TcpConnection& conn, double timeout_secs) {
  std::uint8_t header_bytes[serial::kHeaderSize];
  NS_RETURN_IF_ERROR(conn.recv_all(header_bytes, sizeof(header_bytes), timeout_secs));
  auto header = serial::decode_header(header_bytes);
  if (!header.ok()) return header.error();

  Message msg;
  msg.type = header.value().type;
  msg.payload.resize(header.value().length);
  if (header.value().length > 0) {
    NS_RETURN_IF_ERROR(conn.recv_all(msg.payload.data(), msg.payload.size(), timeout_secs));
  }
  NS_RETURN_IF_ERROR(serial::check_payload(header.value(), msg.payload));
  return msg;
}

}  // namespace ns::net
