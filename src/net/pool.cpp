#include "net/pool.hpp"

#include <errno.h>
#include <sys/socket.h>

#include <algorithm>
#include <cstdlib>

#include "common/clock.hpp"
#include "common/memgov.hpp"
#include "common/metrics.hpp"
#include "net/fault.hpp"
#include "serial/frame.hpp"

namespace ns::net {

namespace {

/// Reply frames that can be demultiplexed carry the request id as their
/// first encoded field (u64 little-endian) — SolveResult, CancelAck,
/// ProbeReply and TransferAck all do.
std::uint64_t peek_request_id(const serial::Bytes& payload) {
  if (payload.size() < 8) return 0;
  std::uint64_t id = 0;
  for (std::size_t i = 0; i < 8; ++i) id |= static_cast<std::uint64_t>(payload[i]) << (8 * i);
  return id;
}

/// Mid-frame silence longer than this poisons a channel. Legitimate gaps
/// inside one frame are pacing gaps (≤ 64 KiB / bandwidth, milliseconds on
/// the shaped profiles) — compute time happens *before* a reply frame
/// starts, never in the middle of one. A stall fault is exactly mid-frame
/// silence, and one second bounds how long it can poison a shared channel.
constexpr double kMidFrameProgressTimeout = 1.0;

/// A cached idle connection is reusable only if it is silent and open: a
/// pending EOF means the peer's idle sweep closed it while it sat in the
/// pool, and pending *bytes* mean a previous leaseholder left part of a
/// reply in flight (it should have been discarded, but a racing late frame
/// can still land after release). Either way, reuse would hand the next
/// caller a broken stream — drop it.
bool idle_conn_usable(const TcpConnection& conn) {
  std::uint8_t byte = 0;
  const ssize_t n = ::recv(conn.native_handle(), &byte, 1, MSG_PEEK | MSG_DONTWAIT);
  if (n == 0) return false;                                  // peer closed
  if (n > 0) return false;                                   // stray bytes
  return errno == EAGAIN || errno == EWOULDBLOCK;            // silent + open
}

}  // namespace

// ---- PooledConn ----

PooledConn::~PooledConn() { discard(); }

PooledConn& PooledConn::operator=(PooledConn&& other) noexcept {
  if (this != &other) {
    discard();
    pool_ = std::exchange(other.pool_, nullptr);
    conn_ = std::move(other.conn_);
    key_ = std::move(other.key_);
    reused_ = other.reused_;
  }
  return *this;
}

void PooledConn::release() {
  if (pool_ != nullptr && conn_.valid()) {
    pool_->give_back(key_, std::move(conn_));
  }
  pool_ = nullptr;
  conn_.close();
}

void PooledConn::discard() {
  if (pool_ != nullptr && conn_.valid()) {
    metrics::counter("net.pool.discarded_total").inc();
  }
  pool_ = nullptr;
  conn_.close();
}

// ---- ConnectionPool ----

ConnectionPool& ConnectionPool::instance() {
  // The pool object is deliberately leaked (threads of leaked channels may
  // outlive static destructors), but its *contents* are reaped at exit:
  // destroying the channels joins their reader threads, so a process that
  // never redialed a poisoned endpoint doesn't exit with unjoined threads.
  static ConnectionPool* pool = new ConnectionPool();
  static const int reap_at_exit = std::atexit([] { instance().clear(); });
  (void)reap_at_exit;
  return *pool;
}

void ConnectionPool::configure(const PoolConfig& config) {
  std::lock_guard lock(mu_);
  config_ = config;
  if (!config_.enabled) {
    idle_.clear();
    channels_.clear();
  }
}

PoolConfig ConnectionPool::config() const {
  std::lock_guard lock(mu_);
  return config_;
}

Status ConnectionPool::check_busy_window(const std::string& key) {
  std::lock_guard lock(mu_);
  auto it = busy_until_.find(key);
  if (it == busy_until_.end()) return ok_status();
  if (now_seconds() >= it->second) {
    busy_until_.erase(it);
    return ok_status();
  }
  metrics::counter("net.pool.busy_fastfail_total").inc();
  // Retryable like an application-level overload shed: the caller's backoff
  // loop absorbs it, and — same as kServerOverloaded from the admission
  // queue — it must never be failure-reported against a healthy server.
  return make_error(ErrorCode::kServerOverloaded, "endpoint in transport busy window");
}

void ConnectionPool::note_busy(const Endpoint& remote, double retry_after_s) {
  metrics::counter("net.pool.busy_noted_total").inc();
  std::lock_guard lock(mu_);
  auto& until = busy_until_[remote.to_string()];
  until = std::max(until, now_seconds() + std::max(0.0, retry_after_s));
}

Result<PooledConn> ConnectionPool::lease(const Endpoint& remote, double dial_timeout_s) {
  // The pool is a dial cache: an armed connect fault fires whether or not a
  // warm connection exists, so chaos scripts see identical failure surfaces.
  if (FaultInjector::instance().armed()) {
    NS_RETURN_IF_ERROR(FaultInjector::instance().on_connect(remote));
  }

  const std::string key = remote.to_string();
  NS_RETURN_IF_ERROR(check_busy_window(key));
  {
    std::lock_guard lock(mu_);
    if (config_.enabled) {
      auto it = idle_.find(key);
      if (it != idle_.end()) {
        const double now = now_seconds();
        auto& dq = it->second;
        while (!dq.empty()) {
          IdleConn cand = std::move(dq.front());
          dq.pop_front();
          if (now - cand.since > config_.idle_timeout_s) continue;  // stale, drop
          if (!idle_conn_usable(cand.conn)) continue;  // peer closed / dirty stream
          PooledConn lease;
          lease.pool_ = this;
          lease.conn_ = std::move(cand.conn);
          lease.key_ = key;
          lease.reused_ = true;
          metrics::counter("net.pool.hits_total").inc();
          return lease;
        }
        idle_.erase(it);
      }
    }
  }

  metrics::counter("net.pool.misses_total").inc();
  // on_connect already consulted above; dial raw (connect() would roll the
  // fault a second time for one logical dial).
  auto conn = TcpConnection::connect_raw(remote, dial_timeout_s);
  if (!conn.ok()) return conn.error();
  PooledConn lease;
  lease.pool_ = this;
  lease.conn_ = std::move(conn.value());
  lease.key_ = key;
  lease.reused_ = false;
  return lease;
}

void ConnectionPool::give_back(const std::string& key, TcpConnection conn) {
  std::lock_guard lock(mu_);
  if (!config_.enabled) return;
  auto& dq = idle_[key];
  const double now = now_seconds();
  while (!dq.empty() && (dq.size() >= config_.max_idle_per_endpoint ||
                         now - dq.front().since > config_.idle_timeout_s)) {
    dq.pop_front();
  }
  if (dq.size() >= config_.max_idle_per_endpoint) return;
  dq.push_back(IdleConn{std::move(conn), now});
}

Result<MuxChannelPtr> ConnectionPool::channel(const Endpoint& remote, double dial_timeout_s) {
  if (FaultInjector::instance().armed()) {
    NS_RETURN_IF_ERROR(FaultInjector::instance().on_connect(remote));
  }
  const std::string key = remote.to_string();
  NS_RETURN_IF_ERROR(check_busy_window(key));
  bool pooling = true;
  {
    std::lock_guard lock(mu_);
    pooling = config_.enabled;
    if (pooling) {
      auto it = channels_.find(key);
      if (it != channels_.end()) {
        if (it->second->healthy()) return it->second;
        channels_.erase(it);  // poisoned: evict, redial below
        metrics::counter("net.mux.evicted_total").inc();
      }
    }
  }
  auto conn = TcpConnection::connect_raw(remote, dial_timeout_s);
  if (!conn.ok()) return conn.error();
  auto channel = MuxChannelPtr(new MuxChannel(std::move(conn.value()), remote));
  if (pooling) {
    std::lock_guard lock(mu_);
    auto it = channels_.find(key);
    if (it != channels_.end() && it->second->healthy()) return it->second;
    channels_[key] = channel;
  }
  return channel;
}

void ConnectionPool::evict(const Endpoint& remote) {
  std::lock_guard lock(mu_);
  idle_.erase(remote.to_string());
  channels_.erase(remote.to_string());
  busy_until_.erase(remote.to_string());
}

void ConnectionPool::clear() {
  std::lock_guard lock(mu_);
  idle_.clear();
  channels_.clear();
  busy_until_.clear();
}

std::size_t ConnectionPool::idle_count() const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const auto& [key, dq] : idle_) n += dq.size();
  return n;
}

// ---- MuxChannel ----

MuxChannel::MuxChannel(TcpConnection conn, Endpoint remote)
    : conn_(std::move(conn)), remote_(std::move(remote)) {
  reader_ = std::thread([this] { reader_loop(); });
}

MuxChannel::~MuxChannel() {
  {
    std::lock_guard lock(mu_);
    dead_ = true;
  }
  conn_.shutdown_both();
  if (reader_.joinable()) reader_.join();
}

bool MuxChannel::healthy() const {
  std::lock_guard lock(mu_);
  return !dead_;
}

void MuxChannel::poison(const Error& why) {
  {
    std::lock_guard lock(mu_);
    if (dead_) return;
    dead_ = true;
    death_ = why;
  }
  // Wake the reader (and fail its current read) without freeing the fd: a
  // concurrent reader must never race a recycled descriptor number.
  conn_.shutdown_both();
  cv_.notify_all();
  metrics::counter("net.mux.poisoned_total").inc();
}

Result<Message> MuxChannel::call(std::uint16_t request_type, const serial::Bytes& payload,
                                 std::uint16_t reply_type, std::uint64_t request_id,
                                 double timeout_s, const LinkShape& shape) {
  Waiter waiter;
  const auto key = std::make_pair(request_id, reply_type);
  {
    std::lock_guard lock(mu_);
    if (dead_) return death_;
    waiters_[key] = &waiter;
  }

  Status sent = ok_status();
  {
    // Serialize senders: frames must hit the stream whole. Fault plans and
    // shaping apply exactly as on a dedicated connection.
    std::lock_guard lock(send_mu_);
    sent = send_message(conn_, request_type, payload, shape);
  }
  if (!sent.ok()) {
    {
      std::lock_guard lock(mu_);
      waiters_.erase(key);
    }
    // A send-side failure (injected reset, peer gone) leaves the stream in
    // an unknown state: poison so every sharer redials.
    poison(sent.error());
    return sent.error();
  }

  std::unique_lock lock(mu_);
  const bool got = cv_.wait_for(lock, std::chrono::duration<double>(timeout_s),
                                [&] { return waiter.done || dead_; });
  if (waiter.done) return std::move(waiter.reply);
  waiters_.erase(key);
  if (dead_) return death_;
  // Timed out: the reply may still arrive; the reader will read and discard
  // it whole, so the stream stays framed and the channel stays usable.
  (void)got;
  return make_error(ErrorCode::kTimeout, "mux call timed out");
}

void MuxChannel::reader_loop() {
  for (;;) {
    {
      std::lock_guard lock(mu_);
      if (dead_) return;
    }
    auto readable = conn_.wait_readable(0.25);
    if (!readable.ok()) {
      if (readable.error().code == ErrorCode::kTimeout) continue;
      poison(make_error(ErrorCode::kConnectionClosed, "mux channel closed"));
      return;
    }
    // A frame has started: finish it with a progress-bounded read. The
    // overall frame may take arbitrarily long on a paced link; only
    // *silence* mid-frame is fatal.
    std::uint8_t header_bytes[serial::kHeaderSize];
    auto hdr_read = conn_.recv_all(header_bytes, sizeof(header_bytes),
                                   kMidFrameProgressTimeout);
    if (!hdr_read.ok()) {
      poison(hdr_read.error());
      return;
    }
    auto header = serial::decode_header(header_bytes);
    if (!header.ok()) {
      poison(header.error());
      return;
    }
    if (header.value().length > ConnectionPool::instance().config().max_frame_bytes) {
      // Client-role frame cap: a shared mux socket buffers replies for many
      // concurrent callers, so one hostile length claim would charge them
      // all. Reject before allocating and poison — the oversized body is
      // still in the stream, so the channel cannot be re-framed.
      metrics::counter("net.guard.oversized_total").inc();
      poison(make_error(ErrorCode::kProtocol, "frame exceeds client payload cap"));
      return;
    }
    Message msg;
    msg.type = header.value().type;
    try {
      mem::alloc_trip("net.mux_read");
      msg.payload.resize(header.value().length);
    } catch (const std::bad_alloc&) {
      // Allocation pressure is retryable overload, not peer failure: pending
      // callers back off and redial instead of tearing the process down.
      metrics::counter("mem.bad_alloc_total").inc();
      poison(make_error(ErrorCode::kServerOverloaded,
                        "allocation failed buffering mux frame"));
      return;
    }
    std::size_t got = 0;
    while (got < msg.payload.size()) {
      const std::size_t chunk = std::min<std::size_t>(64 * 1024, msg.payload.size() - got);
      auto body_read = conn_.recv_all(msg.payload.data() + got, chunk,
                                      kMidFrameProgressTimeout);
      if (!body_read.ok()) {
        poison(body_read.error());
        return;
      }
      got += chunk;
    }
    if (auto crc = serial::check_payload(header.value(), msg.payload); !crc.ok()) {
      poison(crc.error());
      return;
    }

    if (msg.type == kTransportBusyType) {
      // Accept-governor shed, delivered just before the peer closed on us:
      // note the busy window so redials back off, and fail every pending
      // call retryably (overload, not server failure).
      ConnectionPool::instance().note_busy(remote_,
                                           decode_busy_retry_after(msg.payload));
      poison(make_error(ErrorCode::kServerOverloaded, "transport busy (accept shed)"));
      return;
    }
    const std::uint64_t id = peek_request_id(msg.payload);
    std::lock_guard lock(mu_);
    auto it = waiters_.find(std::make_pair(id, msg.type));
    if (it != waiters_.end()) {
      it->second->reply = std::move(msg);
      it->second->done = true;
      waiters_.erase(it);
      cv_.notify_all();
    }
    // No waiter (deadline already expired): the frame was consumed whole and
    // dropped — nothing leaks into the next caller's reply.
  }
}

// ---- helpers ----

Result<Message> pool_round_trip(const Endpoint& remote, std::uint16_t type,
                                const serial::Bytes& payload, double timeout_s,
                                double dial_timeout_s, const LinkShape& shape) {
  auto lease = ConnectionPool::instance().lease(remote, dial_timeout_s);
  if (!lease.ok()) return lease.error();
  NS_RETURN_IF_ERROR(send_message(lease.value().conn(), type, payload, shape));
  auto reply = recv_message(lease.value().conn(), timeout_s,
                            ConnectionPool::instance().config().max_frame_bytes);
  if (!reply.ok()) return reply.error();  // lease destructor discards
  if (reply.value().type == kTransportBusyType) {
    // The peer's accept governor shed this dial. Honor the retry-after as a
    // busy window (subsequent dials fail fast instead of re-shedding) and
    // surface a retryable overload to the caller's backoff loop.
    ConnectionPool::instance().note_busy(
        remote, decode_busy_retry_after(reply.value().payload));
    return make_error(ErrorCode::kServerOverloaded, "transport busy (accept shed)");
  }
  lease.value().release();
  return reply;
}

Status pool_post(const Endpoint& remote, std::uint16_t type, const serial::Bytes& payload,
                 double dial_timeout_s, const LinkShape& shape) {
  auto lease = ConnectionPool::instance().lease(remote, dial_timeout_s);
  if (!lease.ok()) return lease.error();
  NS_RETURN_IF_ERROR(send_message(lease.value().conn(), type, payload, shape));
  lease.value().release();
  return ok_status();
}

}  // namespace ns::net
