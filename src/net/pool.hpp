// Client-side connection reuse: a keep-alive pool and a pipelining channel.
//
// Before this layer every call in the system — netsl solves, agent queries,
// workload reports, federation syncs — dialed a fresh TCP connection and
// tore it down after one round trip. The pool removes that per-call setup:
//
//   ConnectionPool::lease()    exclusive keep-alive connection for classic
//                              one-request/one-reply exchanges (agent
//                              queries, reports, metrics scrapes). Dial on
//                              miss, idle timeout, strict drain-or-discard:
//                              a connection is only returned for reuse after
//                              a *complete* successful round trip. Any
//                              failure — including a reply racing a deadline
//                              expiry, which leaves half a frame in flight —
//                              discards the connection instead of leaking
//                              the stale bytes to the next leaseholder.
//
//   ConnectionPool::channel()  shared MuxChannel for request-id-tagged calls
//                              (SOLVE, CANCEL, PROBE, TRANSFER). Many calls
//                              pipeline over one socket: frames interleave
//                              in flight and a reader thread demultiplexes
//                              replies by the request id in the first eight
//                              payload bytes. Non-blocking netsl_nb calls
//                              and hedges share the socket instead of one
//                              socket each. A transport-level error (reset,
//                              CRC damage, mid-frame stall) poisons the
//                              channel: every pending call fails retryably,
//                              the channel is evicted, and the next call
//                              redials.
//
// Fault-injection parity: leases and channel dials consult
// FaultInjector::on_connect even on a pool hit (the pool is a dial cache —
// an armed connect fault must fire whether or not a warm connection
// exists), and every send goes through net::send_message, so per-frame
// fault plans and link shaping behave exactly as they did on fresh dials.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "net/endpoint.hpp"
#include "net/shaped_link.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"

namespace ns::net {

struct PoolConfig {
  /// Master switch: off = every lease is a fresh dial and nothing is kept
  /// (the pre-pool behaviour, used for A/B benching).
  bool enabled = true;
  /// Idle connections older than this are dropped at lease/release time.
  /// Keep it comfortably below the server/agent reactor idle timeout (10 s)
  /// so the client discards before the peer does.
  double idle_timeout_s = 2.5;
  /// Idle connections kept per endpoint beyond which release() discards.
  std::size_t max_idle_per_endpoint = 8;
  /// Client-role frame cap applied to every pooled reply (lease round trips
  /// and mux reader alike) before the payload is buffered. Oversized claims
  /// count in net.guard.oversized_total and poison/discard the connection.
  std::size_t max_frame_bytes = kClientMaxFrameBytes;
};

class ConnectionPool;

/// Exclusive lease of one pooled connection (move-only RAII). Destruction
/// without release() discards the connection — that is the drain-or-discard
/// rule: only a caller that consumed its complete reply may hand the stream
/// to the next leaseholder.
class PooledConn {
 public:
  PooledConn() = default;
  ~PooledConn();
  PooledConn(PooledConn&& other) noexcept { *this = std::move(other); }
  PooledConn& operator=(PooledConn&& other) noexcept;
  PooledConn(const PooledConn&) = delete;
  PooledConn& operator=(const PooledConn&) = delete;

  TcpConnection& conn() noexcept { return conn_; }
  /// True if this lease came from the pool (vs a fresh dial).
  bool reused() const noexcept { return reused_; }
  /// Return the connection for reuse. Only call after a complete round trip.
  void release();
  /// Drop the connection now (bytes may be in flight; it must never be
  /// reused). Also what the destructor does.
  void discard();

 private:
  friend class ConnectionPool;
  ConnectionPool* pool_ = nullptr;
  TcpConnection conn_;
  std::string key_;
  bool reused_ = false;
};

/// One pipelined connection to one endpoint, shared by concurrent callers.
class MuxChannel {
 public:
  ~MuxChannel();

  /// Send a request frame and wait for the reply whose (type, request_id)
  /// matches. Concurrent calls interleave on the socket. On timeout the
  /// waiter just deregisters — the late reply is read and discarded whole by
  /// the reader, so the stream stays framed. Transport errors poison the
  /// channel (all waiters fail, callers redial through the pool).
  Result<Message> call(std::uint16_t request_type, const serial::Bytes& payload,
                       std::uint16_t reply_type, std::uint64_t request_id,
                       double timeout_s, const LinkShape& shape = LinkShape::unshaped());

  bool healthy() const;
  const Endpoint& remote() const noexcept { return remote_; }

 private:
  friend class ConnectionPool;
  MuxChannel(TcpConnection conn, Endpoint remote);

  void reader_loop();
  void poison(const Error& why);

  TcpConnection conn_;
  Endpoint remote_;
  std::mutex send_mu_;

  struct Waiter {
    bool done = false;
    Message reply;
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::pair<std::uint64_t, std::uint16_t>, Waiter*> waiters_;
  bool dead_ = false;
  Error death_;
  std::thread reader_;
};

using MuxChannelPtr = std::shared_ptr<MuxChannel>;

class ConnectionPool {
 public:
  /// Process-wide pool (clients, servers and agents in one test process all
  /// share it; endpoints keep their traffic apart).
  static ConnectionPool& instance();

  void configure(const PoolConfig& config);
  PoolConfig config() const;

  /// Exclusive connection to `remote`: pooled if warm, dialed on miss.
  Result<PooledConn> lease(const Endpoint& remote, double dial_timeout_s);

  /// Shared pipelining channel to `remote`; replaces a poisoned one.
  Result<MuxChannelPtr> channel(const Endpoint& remote, double dial_timeout_s);

  /// Record a transport-level BUSY from `remote`: until `retry_after_s`
  /// elapses, lease() and channel() to it fail fast with a retryable
  /// kServerOverloaded instead of dialing into a shedding accept governor.
  void note_busy(const Endpoint& remote, double retry_after_s);

  /// Drop idle connections and channels for `remote` (or all).
  void evict(const Endpoint& remote);
  void clear();

  std::size_t idle_count() const;

 private:
  friend class PooledConn;

  struct IdleConn {
    TcpConnection conn;
    double since = 0.0;
  };

  void give_back(const std::string& key, TcpConnection conn);
  /// Fails fast (retryable) while `key` is inside a noted busy window.
  Status check_busy_window(const std::string& key);

  mutable std::mutex mu_;
  PoolConfig config_;
  std::map<std::string, std::deque<IdleConn>> idle_;
  std::map<std::string, MuxChannelPtr> channels_;
  /// Endpoint -> monotonic instant until which dials fail fast (transport
  /// BUSY honoring). Cleared with evict()/clear() so a restarted test
  /// cluster is immediately reachable again.
  std::map<std::string, double> busy_until_;
};

/// One-request/one-reply over a pooled lease. Dial-on-miss, strict
/// drain-or-discard on any failure. `expect_type` 0 accepts any reply type.
Result<Message> pool_round_trip(const Endpoint& remote, std::uint16_t type,
                                const serial::Bytes& payload, double timeout_s,
                                double dial_timeout_s,
                                const LinkShape& shape = LinkShape::unshaped());

/// Fire-and-forget over a pooled lease (the peer never replies on this
/// exchange, so the stream stays clean for the next leaseholder).
Status pool_post(const Endpoint& remote, std::uint16_t type, const serial::Bytes& payload,
                 double dial_timeout_s, const LinkShape& shape = LinkShape::unshaped());

}  // namespace ns::net
