// Storage I/O seam with deterministic fault injection.
//
// The durability layer (journal appends, checkpoint compaction) trusts the
// disk; real disks fail in ways an error-free unit test never exercises: a
// full partition (ENOSPC), an fsync that reports EIO after the page cache
// already accepted the bytes, a write torn mid-record by power loss, a crash
// inside the compaction tmp+rename window, and silent bit rot read back long
// after the write "succeeded". This layer routes every journal/checkpoint
// file operation through thin POSIX mirrors so tests and benches can script
// those failures deterministically — the storage analogue of net/fault.hpp.
//
// A StorageFaultPlan is armed per *path prefix* (typically a server's
// data_dir) on the process-global StorageFaultInjector. The vfs wrappers
// consult the injector at four choke points:
//
//   vfs::write()            -- kEnospc / kShortWrite fail the write
//   vfs::fsync/fdatasync()  -- kFsyncEio fails the flush
//   vfs::rename()           -- kCrashBeforeRename / kCrashAfterRename
//                              emulate dying inside the swap window
//   vfs::read()             -- kBitRot flips bytes in the returned buffer
//                              (journal CRC must catch them on replay)
//
// Fault decisions draw from a per-scope seeded Rng, so a single-threaded
// caller replays the identical fault sequence run-to-run.
//
// Crash-point semantics: once a crash mode fires the injector enters the
// "crashed" state — the emulated process is dead at that instant, so every
// later vfs mutation silently succeeds WITHOUT touching the disk. On-disk
// state stays frozen exactly as the crash left it (old journal for
// kCrashBeforeRename, compacted journal for kCrashAfterRename, possibly a
// stray .tmp). Tests pair this with crash_server()+restart_server(): call
// clear_crashed() (or disarm_all()) before the restart so replay reads the
// frozen bytes.
//
// Multi-process kill windows (crash_recovery_test.sh) use vfs::crash_point()
// instead: if the NS_CRASH_POINT environment variable names the point, the
// process _exit(137)s there — a genuine SIGKILL-shaped death for daemons.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"

namespace ns::vfs {

enum class StorageFaultMode {
  kEnospc,            // write() fails with ENOSPC, nothing hits the disk
  kShortWrite,        // half the buffer hits the disk, then ENOSPC (torn record)
  kFsyncEio,          // fsync()/fdatasync() fails with EIO
  kCrashBeforeRename, // die inside compaction before the rename lands
  kCrashAfterRename,  // die inside compaction after the rename lands
  kBitRot,            // read() returns flipped bytes (CRC-caught on replay)
};

std::string_view storage_fault_mode_name(StorageFaultMode mode) noexcept;

struct StorageFaultRule {
  StorageFaultMode mode = StorageFaultMode::kEnospc;
  /// Per-operation trigger probability (independent Bernoulli draws).
  double probability = 1.0;
  /// Stop firing after this many triggers (-1 = unbounded).
  int max_triggers = -1;
};

/// A seeded schedule of storage faults for one path scope. Rules are
/// evaluated in order per operation; the first that triggers wins.
struct StorageFaultPlan {
  std::uint64_t seed = 0x5704a6e;
  std::vector<StorageFaultRule> rules;
  /// Byte flips applied per rotted read.
  int rot_flips = 3;

  static StorageFaultPlan single(StorageFaultMode mode, double probability,
                                 int max_triggers = -1,
                                 std::uint64_t seed = 0x5704a6e) {
    StorageFaultPlan plan;
    plan.seed = seed;
    plan.rules.push_back(StorageFaultRule{mode, probability, max_triggers});
    return plan;
  }
};

/// Process-global registry of armed storage fault plans. Cheap when
/// disarmed: the vfs wrappers check one relaxed atomic before taking any
/// lock or even looking at the path.
class StorageFaultInjector {
 public:
  static StorageFaultInjector& instance();

  /// Arm (or replace) the plan for every path starting with `path_prefix`.
  void arm(std::string path_prefix, StorageFaultPlan plan);
  void disarm(const std::string& path_prefix);
  /// Remove every armed plan and clear the crashed state.
  void disarm_all();

  bool armed() const noexcept {
    return armed_scopes_.load(std::memory_order_relaxed) > 0;
  }

  /// Total faults triggered since the last disarm_all (test assertions).
  std::uint64_t triggered_count() const noexcept { return triggered_.load(); }

  /// True once a crash mode fired: the emulated process is dead and every
  /// vfs mutation is a silent no-op, freezing the on-disk state.
  bool crashed() const noexcept {
    return crashed_.load(std::memory_order_acquire);
  }
  /// "Restart the process": mutations reach the disk again.
  void clear_crashed() noexcept {
    crashed_.store(false, std::memory_order_release);
  }
  /// Enter the dead state (crash modes call this via the rename hook).
  void mark_crashed() noexcept {
    crashed_.store(true, std::memory_order_release);
  }

  // ---- vfs hooks (internal; called with the operation's path) ----

  std::optional<StorageFaultMode> on_write(const std::string& path);
  std::optional<StorageFaultMode> on_sync(const std::string& path);
  std::optional<StorageFaultMode> on_rename(const std::string& path);
  /// Applies bit rot in place when a kBitRot rule triggers.
  void on_read(const std::string& path, std::uint8_t* data, std::size_t size);

 private:
  enum class Op { kWrite, kSync, kRename, kRead };

  struct ScopeState {
    StorageFaultPlan plan;
    Rng rng;
    std::vector<int> fired;  // triggers consumed per rule
  };

  ScopeState* scope_for_locked(const std::string& path);
  std::optional<StorageFaultMode> roll_locked(ScopeState& scope, Op op);

  mutable std::mutex mu_;
  std::map<std::string, ScopeState> scopes_;  // keyed by path prefix
  std::atomic<int> armed_scopes_{0};
  std::atomic<std::uint64_t> triggered_{0};
  std::atomic<bool> crashed_{false};
};

// ---- POSIX mirrors ----
//
// Same return/errno conventions as the syscalls they wrap. Callers that
// write through a long-lived descriptor pass the path alongside the fd so
// the injector can match it against armed scopes (the kernel knows the
// mapping; we just carry it).

int open(const std::string& path, int flags, mode_t mode = 0);
ssize_t write(int fd, const std::string& path, const void* buf, std::size_t count);
ssize_t read(int fd, const std::string& path, void* buf, std::size_t count);
int fsync(int fd, const std::string& path);
int fdatasync(int fd, const std::string& path);
int rename(const std::string& from, const std::string& to);
int unlink(const std::string& path);
int close(int fd);

/// Multi-process kill window: if the NS_CRASH_POINT environment variable
/// equals `name`, _exit(137) here — the in-journal-compaction SIGKILL the
/// crash recovery shell test scripts. No-op otherwise.
void crash_point(const char* name);

}  // namespace ns::vfs
