// Cooperative cancellation.
//
// A cancel::Token is a shared flag a request owner trips to tell the worker
// executing that request to stop. Workers do not get interrupted — they
// *poll*: the long-running linalg kernels (LU factorization, CG/Jacobi/SOR
// iterations, eigen sweeps) and the synthetic workloads check
// `cancel::poll()` at their loop heads and unwind with ErrorCode::kCancelled
// when it fires.
//
// Plumbing is thread-local rather than parameter-passed: the server binds
// the request's token around ProblemRegistry::execute() with a ScopedToken,
// and any kernel running on that thread — however deep in the call stack —
// sees it through poll(). This keeps the kernel signatures (and every
// existing call site) unchanged; the cost of a checkpoint is one
// thread-local pointer read plus one relaxed atomic load, which is noise
// next to a single matrix row update.
//
// Contract for kernels (see DESIGN.md §12): place checkpoints at iteration
// granularity — once per pivot column / CG iteration / eigen sweep — not in
// inner loops; on cancellation return make_error(ErrorCode::kCancelled, …)
// and leave outputs unpublished. Checkpoints must be safe to hit at any
// iteration (no partially-released resources).
#pragma once

#include <atomic>
#include <memory>

#include "common/error.hpp"

namespace ns::cancel {

class Token {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const noexcept { return cancelled_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> cancelled_{false};
};

using TokenPtr = std::shared_ptr<Token>;

namespace detail {
inline thread_local const Token* current_token = nullptr;
}

/// Bind `token` as this thread's current token for the enclosing scope
/// (nests; the previous binding is restored on destruction).
class ScopedToken {
 public:
  explicit ScopedToken(const Token* token) noexcept : previous_(detail::current_token) {
    detail::current_token = token;
  }
  ~ScopedToken() { detail::current_token = previous_; }
  ScopedToken(const ScopedToken&) = delete;
  ScopedToken& operator=(const ScopedToken&) = delete;

 private:
  const Token* previous_;
};

/// Checkpoint: has the current thread's request been cancelled?
/// False when no token is bound (kernels run outside a server unchanged).
inline bool poll() noexcept {
  const Token* token = detail::current_token;
  return token != nullptr && token->cancelled();
}

/// The error a cancelled kernel unwinds with.
inline Error cancelled_error(const char* where) {
  return make_error(ErrorCode::kCancelled, where);
}

}  // namespace ns::cancel
