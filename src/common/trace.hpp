// Request tracing: a trace_id minted per client call, carried hop-to-hop in
// the wire protocol (proto::Query / SolveRequest), with per-hop span timings
// recorded at each process.
//
// A span is (name, start offset, duration) relative to the recording
// process's view of the request. record_span() does two things:
//   - emits one structured log line on the "trace" tag at debug level:
//       trace=<16-hex> span=<name> start_ms=<..> dur_ms=<..>
//     so a grep over interleaved multi-process logs reconstructs any
//     request's path;
//   - folds the duration into the process-wide metrics registry under
//     "span.<name>_s", so per-hop latency distributions (p50/p95/p99) are
//     scrapeable from any live process via METRICS_QUERY.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ns::trace {

using TraceId = std::uint64_t;
inline constexpr TraceId kNoTrace = 0;

/// Mint a process-unique, run-unique trace id (never kNoTrace).
TraceId new_trace_id() noexcept;

/// Canonical 16-hex-digit rendering used in log lines.
std::string trace_id_hex(TraceId id);

/// One hop's timing within a request, offsets in seconds relative to the
/// request's local start (client call entry, or server receipt).
struct Span {
  std::string name;
  double start_s = 0.0;
  double duration_s = 0.0;
};

/// Log the span (debug level, tag "trace") and aggregate its duration into
/// the metrics registry histogram "span.<name>_s".
void record_span(TraceId id, std::string_view name, double start_s, double duration_s);

}  // namespace ns::trace
