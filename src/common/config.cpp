#include "common/config.hpp"

#include <sstream>

#include "common/strings.hpp"

namespace ns {

Result<Config> Config::parse(std::string_view text) {
  Config cfg;
  std::size_t line_no = 0;
  for (const auto& raw_line : strings::split(text, '\n')) {
    ++line_no;
    std::string_view line = raw_line;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = strings::trim(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      std::ostringstream msg;
      msg << "config line " << line_no << " has no '=': '" << line << "'";
      return make_error(ErrorCode::kBadArguments, msg.str());
    }
    const std::string key{strings::trim(line.substr(0, eq))};
    const std::string value{strings::trim(line.substr(eq + 1))};
    if (key.empty()) {
      std::ostringstream msg;
      msg << "config line " << line_no << " has empty key";
      return make_error(ErrorCode::kBadArguments, msg.str());
    }
    cfg.set(key, value);
  }
  return cfg;
}

Result<Config> Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const std::size_t eq = arg.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return make_error(ErrorCode::kBadArguments,
                        "expected key=value argument, got '" + std::string(arg) + "'");
    }
    cfg.set(std::string(strings::trim(arg.substr(0, eq))),
            std::string(strings::trim(arg.substr(eq + 1))));
  }
  return cfg;
}

void Config::set(std::string key, std::string value) {
  entries_.insert_or_assign(std::move(key), std::move(value));
}

bool Config::contains(std::string_view key) const noexcept {
  return entries_.find(key) != entries_.end();
}

std::optional<std::string> Config::get(std::string_view key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_or(std::string_view key, std::string fallback) const {
  const auto v = get(key);
  return v ? *v : std::move(fallback);
}

std::optional<std::int64_t> Config::get_int(std::string_view key) const {
  const auto v = get(key);
  if (!v) return std::nullopt;
  return strings::parse_int(*v);
}

std::int64_t Config::get_int_or(std::string_view key, std::int64_t fallback) const {
  const auto v = get_int(key);
  return v ? *v : fallback;
}

std::optional<double> Config::get_double(std::string_view key) const {
  const auto v = get(key);
  if (!v) return std::nullopt;
  return strings::parse_double(*v);
}

double Config::get_double_or(std::string_view key, double fallback) const {
  const auto v = get_double(key);
  return v ? *v : fallback;
}

bool Config::get_bool_or(std::string_view key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  const std::string lowered = strings::to_lower(strings::trim(*v));
  if (lowered == "1" || lowered == "true" || lowered == "yes" || lowered == "on") return true;
  if (lowered == "0" || lowered == "false" || lowered == "no" || lowered == "off") return false;
  return fallback;
}

void Config::merge(const Config& other) {
  for (const auto& [k, v] : other.entries_) entries_.insert_or_assign(k, v);
}

}  // namespace ns
