#include "common/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ns::metrics {

namespace {

/// Render a double exactly enough to round-trip (and deterministically, so
/// identical snapshots produce identical dumps).
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur && !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Shared quantile walk over a bucket array.
double percentile_of(const std::uint64_t* buckets, std::uint64_t total, double q) noexcept {
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank && cumulative > 0) return bucket_upper_bound(i);
  }
  return bucket_upper_bound(kNumBuckets - 1);
}

}  // namespace

double bucket_upper_bound(std::size_t i) noexcept {
  if (i + 1 >= kNumBuckets) {
    // The last bucket is unbounded; report its lower edge's next step so the
    // value is still finite and plottable.
    return kBucketMin * std::pow(kBucketGrowth, static_cast<double>(kNumBuckets - 1));
  }
  return kBucketMin * std::pow(kBucketGrowth, static_cast<double>(i));
}

std::size_t bucket_index(double v) noexcept {
  if (!(v > kBucketMin)) return 0;  // also catches NaN and negatives
  const double steps = std::log(v / kBucketMin) / std::log(kBucketGrowth);
  const auto i = static_cast<std::size_t>(std::ceil(steps - 1e-9));
  return std::min(i, kNumBuckets - 1);
}

void Gauge::add(double delta) noexcept { atomic_add(value_, delta); }

void Histogram::observe(double v) noexcept {
  if (std::isnan(v)) return;
  const std::uint64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  if (n == 0) {
    // First sample seeds min/max; racing observers fix it up via CAS below.
    double zero = 0.0;
    min_.compare_exchange_strong(zero, v, std::memory_order_relaxed);
    zero = 0.0;
    max_.compare_exchange_strong(zero, v, std::memory_order_relaxed);
  }
  atomic_min(min_, v);
  atomic_max(max_, v);
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

double Histogram::percentile(double q) const noexcept {
  std::uint64_t counts[kNumBuckets];
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  return percentile_of(counts, total, q);
}

double Snapshot::Entry::percentile(double q) const noexcept {
  if (kind != Kind::kHistogram || buckets.size() != kNumBuckets) return 0.0;
  return percentile_of(buckets.data(), count, q);
}

const Snapshot::Entry* Snapshot::find(const std::string& name) const noexcept {
  for (const auto& entry : entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

std::string Snapshot::to_text() const {
  std::string out;
  for (const auto& e : entries) {
    switch (e.kind) {
      case Kind::kCounter:
        out += "counter " + e.name + " " + std::to_string(e.count) + "\n";
        break;
      case Kind::kGauge:
        out += "gauge " + e.name + " " + fmt_double(e.value) + "\n";
        break;
      case Kind::kHistogram:
        out += "hist " + e.name + " count=" + std::to_string(e.count) +
               " sum=" + fmt_double(e.value) + " min=" + fmt_double(e.min) +
               " max=" + fmt_double(e.max) + " p50=" + fmt_double(e.percentile(0.50)) +
               " p95=" + fmt_double(e.percentile(0.95)) +
               " p99=" + fmt_double(e.percentile(0.99)) + "\n";
        break;
    }
  }
  return out;
}

std::string Snapshot::to_json() const {
  // Entries arrive sorted by name within each kind (snapshot() iterates
  // std::map), so emitting kind-by-kind keeps the document deterministic.
  std::string counters, gauges, histograms;
  for (const auto& e : entries) {
    switch (e.kind) {
      case Kind::kCounter:
        if (!counters.empty()) counters += ", ";
        counters += "\"" + e.name + "\": " + std::to_string(e.count);
        break;
      case Kind::kGauge:
        if (!gauges.empty()) gauges += ", ";
        gauges += "\"" + e.name + "\": " + fmt_double(e.value);
        break;
      case Kind::kHistogram: {
        if (!histograms.empty()) histograms += ", ";
        std::string buckets;
        for (const auto b : e.buckets) {
          if (!buckets.empty()) buckets += ", ";
          buckets += std::to_string(b);
        }
        histograms += "\"" + e.name + "\": {\"count\": " + std::to_string(e.count) +
                      ", \"sum\": " + fmt_double(e.value) + ", \"min\": " + fmt_double(e.min) +
                      ", \"max\": " + fmt_double(e.max) +
                      ", \"p50\": " + fmt_double(e.percentile(0.50)) +
                      ", \"p95\": " + fmt_double(e.percentile(0.95)) +
                      ", \"p99\": " + fmt_double(e.percentile(0.99)) + ", \"buckets\": [" +
                      buckets + "]}";
        break;
      }
    }
  }
  return "{\"counters\": {" + counters + "}, \"gauges\": {" + gauges +
         "}, \"histograms\": {" + histograms + "}}";
}

Registry& Registry::instance() {
  // Deliberately leaked: the process-global connection pool keeps mux reader
  // threads alive past the end of main (the pool itself is leaked for the
  // same reason), and they record counters on their way out. A static with a
  // destructor would be torn down under them; the OS reclaims at exit.
  static Registry* registry = new Registry();
  return *registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

Snapshot Registry::snapshot(const std::string& prefix) const {
  const auto matches = [&prefix](const std::string& name) {
    return prefix.empty() || name.rfind(prefix, 0) == 0;
  };
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    if (!matches(name)) continue;
    Snapshot::Entry e;
    e.kind = Snapshot::Kind::kCounter;
    e.name = name;
    e.count = c->value();
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [name, g] : gauges_) {
    if (!matches(name)) continue;
    Snapshot::Entry e;
    e.kind = Snapshot::Kind::kGauge;
    e.name = name;
    e.value = g->value();
    snap.entries.push_back(std::move(e));
  }
  for (const auto& [name, h] : histograms_) {
    if (!matches(name)) continue;
    Snapshot::Entry e;
    e.kind = Snapshot::Kind::kHistogram;
    e.name = name;
    e.count = h->count_.load(std::memory_order_relaxed);
    e.value = h->sum_.load(std::memory_order_relaxed);
    e.min = h->min_.load(std::memory_order_relaxed);
    e.max = h->max_.load(std::memory_order_relaxed);
    e.buckets.resize(kNumBuckets);
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      e.buckets[i] = h->buckets_[i].load(std::memory_order_relaxed);
    }
    snap.entries.push_back(std::move(e));
  }
  return snap;
}

void Registry::reset_all() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Counter& counter(const std::string& name) { return Registry::instance().counter(name); }
Gauge& gauge(const std::string& name) { return Registry::instance().gauge(name); }
Histogram& histogram(const std::string& name) { return Registry::instance().histogram(name); }

}  // namespace ns::metrics
