// Bounded, thread-safe MPMC blocking queue. Used by the server worker pool
// and the client's asynchronous request machinery.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace ns {

template <typename T>
class BlockingQueue {
 public:
  /// capacity == 0 means unbounded.
  explicit BlockingQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Push; blocks while full. Returns false if the queue was closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || capacity_ == 0 || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false if full or closed.
  bool try_push(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || (capacity_ != 0 && items_.size() >= capacity_)) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Pop; blocks while empty. Returns nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Close the queue: pending and future push() calls fail; pop() drains the
  /// remaining items then returns nullopt.
  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace ns
