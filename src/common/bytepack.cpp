#include "common/bytepack.hpp"

#include <cstring>

namespace ns::bytepack {

namespace {

constexpr std::size_t kShuffleStride = 8;  // f64-sized planes

// Byte-plane shuffle: byte k of every stride-sized word goes to plane k.
// The tail (size % stride) is appended verbatim.
serial::Bytes shuffle(const serial::Bytes& in) {
  serial::Bytes out(in.size());
  const std::size_t words = in.size() / kShuffleStride;
  const std::size_t body = words * kShuffleStride;
  for (std::size_t i = 0; i < body; ++i) {
    out[(i % kShuffleStride) * words + i / kShuffleStride] = in[i];
  }
  std::memcpy(out.data() + body, in.data() + body, in.size() - body);
  return out;
}

serial::Bytes unshuffle(const serial::Bytes& in) {
  serial::Bytes out(in.size());
  const std::size_t words = in.size() / kShuffleStride;
  const std::size_t body = words * kShuffleStride;
  for (std::size_t i = 0; i < body; ++i) {
    out[i] = in[(i % kShuffleStride) * words + i / kShuffleStride];
  }
  std::memcpy(out.data() + body, in.data() + body, in.size() - body);
  return out;
}

// PackBits-style RLE. Control byte c:
//   c in [0, 127]   -> copy the next c+1 literal bytes
//   c in [128, 255] -> repeat the next byte c-126 times (run of 2..129)
// Runs shorter than 3 ride inside literals (a 2-run costs the same either
// way and breaking a literal for it would cost an extra control byte).
serial::Bytes rle_encode(const serial::Bytes& in) {
  serial::Bytes out;
  out.reserve(in.size() / 4 + 16);
  std::size_t i = 0;
  while (i < in.size()) {
    // Measure the run starting here.
    std::size_t run = 1;
    while (i + run < in.size() && in[i + run] == in[i] && run < 129) ++run;
    if (run >= 3) {
      out.push_back(static_cast<std::uint8_t>(126 + run));
      out.push_back(in[i]);
      i += run;
      continue;
    }
    // Literal: extend until the next >=3 run or the 128 cap.
    std::size_t lit = 0;
    std::size_t j = i;
    while (j < in.size() && lit < 128) {
      std::size_t r = 1;
      while (j + r < in.size() && in[j + r] == in[j] && r < 3) ++r;
      if (r >= 3) break;
      j += r;
      lit += r;
    }
    if (lit > 128) lit = 128;
    out.push_back(static_cast<std::uint8_t>(lit - 1));
    out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(i),
               in.begin() + static_cast<std::ptrdiff_t>(i + lit));
    i += lit;
  }
  return out;
}

Result<serial::Bytes> rle_decode(const std::uint8_t* in, std::size_t size,
                                 std::size_t expect) {
  // A run pair (control + byte) expands to at most 129 bytes, so any claimed
  // output beyond 129x the input is a corrupt (or hostile) header — refuse
  // before reserving, or a flipped raw_size byte turns into a giant
  // allocation instead of an error.
  if (expect > size * 129) {
    return make_error(ErrorCode::kCorruptFrame, "bytepack: implausible size");
  }
  serial::Bytes out;
  out.reserve(expect);
  std::size_t i = 0;
  while (i < size) {
    const std::uint8_t c = in[i++];
    if (c < 128) {
      const std::size_t lit = static_cast<std::size_t>(c) + 1;
      if (i + lit > size || out.size() + lit > expect) {
        return make_error(ErrorCode::kCorruptFrame, "bytepack: truncated literal");
      }
      out.insert(out.end(), in + i, in + i + lit);
      i += lit;
    } else {
      const std::size_t run = static_cast<std::size_t>(c) - 126;
      if (i >= size || out.size() + run > expect) {
        return make_error(ErrorCode::kCorruptFrame, "bytepack: truncated run");
      }
      out.insert(out.end(), run, in[i++]);
    }
  }
  if (out.size() != expect) {
    return make_error(ErrorCode::kCorruptFrame, "bytepack: size mismatch");
  }
  return out;
}

serial::Bytes frame(Mode mode, std::size_t raw_size, const serial::Bytes& payload) {
  serial::Encoder enc;
  enc.put_u8(static_cast<std::uint8_t>(mode));
  enc.put_u64(raw_size);
  enc.put_bytes(payload.data(), payload.size());
  return enc.take();
}

}  // namespace

serial::Bytes pack_raw(const serial::Bytes& data) {
  return frame(Mode::kRaw, data.size(), data);
}

serial::Bytes pack(const serial::Bytes& data, const serial::Bytes* base) {
  const bool delta = base != nullptr && base->size() == data.size() && !data.empty();
  serial::Bytes work = data;
  if (delta) {
    for (std::size_t i = 0; i < work.size(); ++i) work[i] ^= (*base)[i];
  }
  const serial::Bytes packed = rle_encode(shuffle(work));
  if (packed.size() >= data.size()) return pack_raw(data);
  return frame(delta ? Mode::kPackedDelta : Mode::kPacked, data.size(), packed);
}

bool is_delta(const serial::Bytes& packed) {
  return !packed.empty() &&
         packed.front() == static_cast<std::uint8_t>(Mode::kPackedDelta);
}

Result<serial::Bytes> unpack(const serial::Bytes& packed, const serial::Bytes* base) {
  serial::Decoder dec(packed);
  auto mode = dec.get_u8();
  if (!mode.ok()) return mode.error();
  auto raw_size = dec.get_u64();
  if (!raw_size.ok()) return raw_size.error();
  auto payload = dec.get_blob();
  if (!payload.ok()) return payload.error();
  if (!dec.exhausted()) {
    return make_error(ErrorCode::kCorruptFrame, "bytepack: trailing bytes");
  }
  const std::size_t expect = static_cast<std::size_t>(raw_size.value());

  switch (static_cast<Mode>(mode.value())) {
    case Mode::kRaw: {
      if (payload.value().size() != expect) {
        return make_error(ErrorCode::kCorruptFrame, "bytepack: raw size mismatch");
      }
      return std::move(payload).value();
    }
    case Mode::kPacked:
    case Mode::kPackedDelta: {
      auto body = rle_decode(payload.value().data(), payload.value().size(), expect);
      if (!body.ok()) return body.error();
      serial::Bytes out = unshuffle(body.value());
      if (static_cast<Mode>(mode.value()) == Mode::kPackedDelta) {
        if (base == nullptr || base->size() != expect) {
          return make_error(ErrorCode::kCorruptFrame, "bytepack: delta base mismatch");
        }
        for (std::size_t i = 0; i < out.size(); ++i) out[i] ^= (*base)[i];
      }
      return out;
    }
  }
  return make_error(ErrorCode::kCorruptFrame, "bytepack: unknown mode");
}

}  // namespace ns::bytepack
