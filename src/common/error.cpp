#include "common/error.hpp"

namespace ns {

std::string_view error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kConnectFailed: return "CONNECT_FAILED";
    case ErrorCode::kConnectionClosed: return "CONNECTION_CLOSED";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kProtocol: return "PROTOCOL";
    case ErrorCode::kVersion: return "VERSION";
    case ErrorCode::kUnknownProblem: return "UNKNOWN_PROBLEM";
    case ErrorCode::kNoServer: return "NO_SERVER";
    case ErrorCode::kAgentUnavailable: return "AGENT_UNAVAILABLE";
    case ErrorCode::kBadArguments: return "BAD_ARGUMENTS";
    case ErrorCode::kExecutionFailed: return "EXECUTION_FAILED";
    case ErrorCode::kServerOverloaded: return "SERVER_OVERLOADED";
    case ErrorCode::kServerFailure: return "SERVER_FAILURE";
    case ErrorCode::kRetriesExhausted: return "RETRIES_EXHAUSTED";
    case ErrorCode::kCancelled: return "CANCELLED";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kCorruptFrame: return "CORRUPT_FRAME";
    case ErrorCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case ErrorCode::kMigrated: return "MIGRATED";
  }
  return "UNKNOWN";
}

bool is_retryable(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kConnectFailed:
    case ErrorCode::kConnectionClosed:
    case ErrorCode::kTimeout:
    case ErrorCode::kServerOverloaded:
    case ErrorCode::kServerFailure:
    // A damaged frame says nothing about the request itself; another server
    // (or another attempt) may deliver it intact.
    case ErrorCode::kCorruptFrame:
    // A cancelled attempt says nothing about the request either: the server
    // stopped because it was draining (or a hedge raced past it), and a
    // different server can still produce the answer. The hedging path never
    // reaches this check for its own losers — it discards them directly.
    case ErrorCode::kCancelled:
      return true;
    // kMigrated is deliberately NOT retryable: the job is still running on
    // the destination server, so the client must follow the forwarding
    // address rather than start a duplicate solve elsewhere.
    default:
      return false;
  }
}

}  // namespace ns
