// Deterministic, seedable random number generation.
//
// Every stochastic component (workload generators, failure injection,
// selection policies, synthetic matrices) draws from an ns::Rng seeded
// explicitly, so experiments are reproducible run-to-run.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace ns {

/// xoshiro256** by Blackman & Vigna — small, fast, and high quality; state
/// seeded via SplitMix64 so any 64-bit seed yields a well-mixed stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // SplitMix64 expansion of the seed into the four state words.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& w : state_) w = next();
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * next_double(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) noexcept { return next_double() < p; }

  /// Standard normal via Box–Muller (one value per call; no caching to keep
  /// the generator state trivially reproducible).
  double normal() noexcept {
    // Guard against log(0) by nudging u1 away from zero.
    const double u1 = next_double() + 1e-18;
    const double u2 = next_double();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * kPi * u2);
  }

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) noexcept {
    const double u = next_double() + 1e-18;
    return -std::log(u) / rate;
  }

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }
  result_type operator()() noexcept { return next_u64(); }

 private:
  static constexpr double kPi = 3.14159265358979323846;
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace ns
