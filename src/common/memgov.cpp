#include "common/memgov.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/vfs.hpp"
#include "serial/crc32.hpp"

namespace ns::mem {

namespace {

// Spill file layout: magic, payload length, payload CRC, payload bytes.
// The header is fixed-width little-endian-as-stored (we read it back on the
// same host); the CRC catches bit rot injected through the vfs read hook.
constexpr std::uint32_t kSpillMagic = 0x4e535350;  // "NSSP"

struct SpillHeader {
  std::uint32_t magic = kSpillMagic;
  std::uint32_t crc = 0;
  std::uint64_t length = 0;
};

}  // namespace

// ---- SpillStore ----

void SpillStore::configure(const std::string& dir) {
  dir_ = dir;
  degraded_.store(false, std::memory_order_relaxed);
  if (dir_.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    NS_WARN("mem") << "spill dir '" << dir_ << "' unusable (" << ec.message()
                   << "); spill disabled";
    dir_.clear();
  }
}

std::string SpillStore::path_for(std::uint64_t id) const {
  return dir_ + "/" + std::to_string(id) + ".spill";
}

Status SpillStore::save(std::uint64_t id, const std::vector<std::uint8_t>& bytes) {
  if (!enabled()) return make_error(ErrorCode::kInternal, "spill store disabled");
  const std::string path = path_for(id);
  const std::string tmp = path + ".tmp";
  const int fd = vfs::open(tmp, O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    degrade();
    metrics::counter("mem.spill_degraded_total").inc();
    return make_error(ErrorCode::kInternal,
                      std::string("spill open failed: ") + std::strerror(errno));
  }
  SpillHeader header;
  header.length = bytes.size();
  header.crc = serial::crc32(bytes.data(), bytes.size());
  const auto fail = [&](const char* what) -> Status {
    vfs::close(fd);
    vfs::unlink(tmp);
    degrade();
    metrics::counter("mem.spill_degraded_total").inc();
    return make_error(ErrorCode::kInternal, std::string("spill ") + what + " failed");
  };
  if (vfs::write(fd, tmp, &header, sizeof(header)) !=
      static_cast<ssize_t>(sizeof(header))) {
    return fail("header write");
  }
  if (!bytes.empty() &&
      vfs::write(fd, tmp, bytes.data(), bytes.size()) !=
          static_cast<ssize_t>(bytes.size())) {
    return fail("write");
  }
  if (vfs::fsync(fd, tmp) != 0) return fail("fsync");
  vfs::close(fd);
  if (vfs::rename(tmp, path) != 0) {
    vfs::unlink(tmp);
    degrade();
    metrics::counter("mem.spill_degraded_total").inc();
    return make_error(ErrorCode::kInternal, "spill rename failed");
  }
  return ok_status();
}

Result<std::vector<std::uint8_t>> SpillStore::load(std::uint64_t id) const {
  const std::string path = path_for(id);
  const int fd = vfs::open(path, O_RDONLY);
  if (fd < 0) {
    return make_error(ErrorCode::kInternal,
                      std::string("spill open failed: ") + std::strerror(errno));
  }
  SpillHeader header;
  if (vfs::read(fd, path, &header, sizeof(header)) !=
          static_cast<ssize_t>(sizeof(header)) ||
      header.magic != kSpillMagic) {
    vfs::close(fd);
    return make_error(ErrorCode::kInternal, "spill header corrupt");
  }
  std::vector<std::uint8_t> bytes;
  try {
    alloc_trip("mem.spill_load");
    bytes.resize(header.length);
  } catch (const std::bad_alloc&) {
    vfs::close(fd);
    return make_error(ErrorCode::kServerOverloaded, "allocation failed loading spill");
  }
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = vfs::read(fd, path, bytes.data() + off, bytes.size() - off);
    if (n <= 0) {
      vfs::close(fd);
      return make_error(ErrorCode::kInternal, "spill read truncated");
    }
    off += static_cast<std::size_t>(n);
  }
  vfs::close(fd);
  if (serial::crc32(bytes.data(), bytes.size()) != header.crc) {
    return make_error(ErrorCode::kInternal, "spill CRC mismatch");
  }
  return bytes;
}

void SpillStore::remove(std::uint64_t id) const {
  if (dir_.empty()) return;
  vfs::unlink(path_for(id));
}

// ---- AllocFaultInjector ----

AllocFaultInjector& AllocFaultInjector::instance() {
  static AllocFaultInjector injector;
  return injector;
}

void AllocFaultInjector::arm(AllocFaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_.reseed(plan.seed);
  rules_.clear();
  for (auto& rule : plan.rules) rules_.push_back(RuleState{std::move(rule), 0});
  armed_.store(!rules_.empty(), std::memory_order_relaxed);
}

void AllocFaultInjector::disarm_all() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
  armed_.store(false, std::memory_order_relaxed);
  triggered_.store(0);
}

bool AllocFaultInjector::should_fail(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& state : rules_) {
    const auto& rule = state.rule;
    if (!rule.site.empty() && site.compare(0, rule.site.size(), rule.site) != 0) continue;
    if (rule.max_triggers >= 0 && state.fired >= rule.max_triggers) continue;
    if (!rng_.bernoulli(rule.probability)) continue;
    ++state.fired;
    triggered_.fetch_add(1);
    metrics::counter("mem.bad_alloc_injected_total").inc();
    return true;
  }
  return false;
}

}  // namespace ns::mem
