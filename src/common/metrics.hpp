// Process-wide metrics registry: counters, gauges, and fixed-bucket
// log-scale histograms.
//
// Design goals, in order:
//   1. Lock-cheap hot path. Every instrument is a bundle of atomics;
//      inc()/set()/observe() never take a lock. The registry mutex guards
//      only name -> instrument lookup (first call per name registers it;
//      call sites that care cache the returned reference, which is stable
//      for the life of the process).
//   2. Stable dump formats. snapshot() captures every instrument into plain
//      structs that render to a fixed text format (one line per instrument)
//      and a deterministic JSON document (names sorted, %.17g doubles) so
//      dumps diff cleanly across runs and round-trip through the wire
//      protocol (proto::MetricsDump) byte-for-byte.
//   3. Useful percentiles without per-sample storage. Histograms bucket on a
//      fixed log scale (factor kBucketGrowth per bucket), so p50/p95/p99
//      extraction is a cumulative walk and the reported quantile is an upper
//      bound within one bucket (a factor of kBucketGrowth) of the true
//      sample quantile.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ns::metrics {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, rating factor, ...).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept;
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-scale histogram bucket layout, shared by live histograms and
/// snapshots. Bucket i holds samples in (upper_bound(i-1), upper_bound(i)];
/// the last bucket is unbounded above, and everything at or below
/// kBucketMin lands in bucket 0.
inline constexpr std::size_t kNumBuckets = 60;
inline constexpr double kBucketMin = 1e-6;     // seconds; fits span timings
inline constexpr double kBucketGrowth = 1.5;   // relative quantile error bound

/// Upper bound of bucket `i` (a large sentinel for the last bucket).
double bucket_upper_bound(std::size_t i) noexcept;
/// Bucket index a sample falls into.
std::size_t bucket_index(double v) noexcept;

/// Fixed-bucket log-scale histogram with exact count/sum and min/max.
class Histogram {
 public:
  void observe(double v) noexcept;
  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  void reset() noexcept;

  /// Quantile in [0, 1]: the upper bound of the bucket holding the q-th
  /// sample (0 when empty). At most a factor kBucketGrowth above the true
  /// sample quantile.
  double percentile(double q) const noexcept;

 private:
  friend class Registry;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<std::uint64_t> buckets_[kNumBuckets]{};
};

/// Point-in-time capture of the whole registry. Plain data: safe to ship
/// over the wire (proto::MetricsDump) and render anywhere.
struct Snapshot {
  enum class Kind : std::uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

  struct Entry {
    Kind kind = Kind::kCounter;
    std::string name;
    std::uint64_t count = 0;              // counter value / histogram count
    double value = 0.0;                   // gauge value / histogram sum
    double min = 0.0, max = 0.0;          // histogram only
    std::vector<std::uint64_t> buckets;   // histogram only (kNumBuckets)

    /// Histogram quantile from the captured buckets (same contract as
    /// Histogram::percentile); 0 for non-histograms.
    double percentile(double q) const noexcept;
  };

  std::vector<Entry> entries;  // sorted by name within each kind, then kind

  /// One line per instrument:
  ///   counter <name> <value>
  ///   gauge <name> <value>
  ///   hist <name> count=<n> sum=<s> min=<m> max=<M> p50=<..> p95=<..> p99=<..>
  std::string to_text() const;

  /// Deterministic JSON: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, min, max, p50, p95, p99, buckets}}}.
  /// Identical snapshots render to identical strings (sorted keys, %.17g).
  std::string to_json() const;

  const Entry* find(const std::string& name) const noexcept;
};

/// Name -> instrument directory. One process-wide instance; separate
/// instances exist only for isolation in unit tests.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Capture every instrument whose name starts with `prefix` ("" = all).
  Snapshot snapshot(const std::string& prefix = {}) const;

  /// Zero every instrument (registrations survive; references stay valid).
  /// For benches and tests that want a clean slate per scenario.
  void reset_all();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Process-wide instrument lookup (registers on first use).
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

}  // namespace ns::metrics
