// Process memory governance: byte-accounted admission, payload spill, and
// allocation-fault injection.
//
// Memory is the last ungoverned resource: the transport guards buffered
// bytes (net.guard.*), the disk has fault armor (common/vfs.hpp), but a
// burst of large-matrix solves — the dominant NetSolve workload — used to
// ride through admission unaccounted and kill the server by OOM instead of
// backpressure. This layer closes that gap with three pieces:
//
//   MemGovernor        -- a budgeted byte account in the clamp-subtract
//                         style of Reactor::track_buffered. Every queued
//                         payload, running working set, and replica-store
//                         entry is charged before the bytes exist; a charge
//                         that does not fit is refused and the caller sheds
//                         retryably (mem.shed_total) instead of allocating.
//
//   SpillStore         -- queued-but-cold job payloads written to disk
//                         through the vfs seam (so storage-fault plans hit
//                         them too), CRC-guarded, reloaded at dispatch.
//                         A write failure degrades the store to in-RAM-only;
//                         it never takes a job down.
//
//   AllocFaultInjector -- scriptable std::bad_alloc trip points, the
//                         allocation analogue of net::FaultInjector and
//                         vfs::StorageFaultInjector. Hardened frame-read and
//                         dispatch paths call mem::alloc_trip(site) where
//                         they are about to allocate from untrusted sizes;
//                         tests arm a plan per site name and assert the
//                         failure converts into a counted retryable shed,
//                         never std::terminate.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace ns::mem {

/// Memory budgets and spill policy for one server process. All byte fields
/// use 0 = unlimited; with global_bytes == 0 the governor still tracks
/// accounted bytes (for the workload report) but never refuses a charge.
struct MemBudgetConfig {
  /// Process-wide budget across queued payloads, running working sets, and
  /// replica-store entries.
  std::uint64_t global_bytes = 0;
  /// Largest payload + working set a single job may account for. Jobs that
  /// can never fit are shed at admission rather than queued forever.
  /// 0 = bounded only by global_bytes.
  std::uint64_t per_job_bytes = 0;
  /// Byte bound for the checkpoint replica store (entries evicted
  /// largest-first when exceeded; see ComputeServer::accept_checkpoint).
  std::uint64_t replica_budget_bytes = 64ull << 20;
  /// Spill directory for queued-but-cold payloads (empty = spill off).
  std::string spill_dir;
  /// Payloads smaller than this stay in RAM — a 200-byte request is not
  /// worth a disk round trip.
  std::uint64_t spill_min_bytes = 64 * 1024;
  /// With a global budget, spill engages once accounted bytes pass this
  /// fraction of it; an ungoverned server with a spill_dir spills every
  /// eligible queued payload.
  double spill_watermark = 0.5;
  /// Working-set estimate for a job: factor * payload bytes, floored.
  /// Dense kernels touch each operand plus a result of comparable size,
  /// hence the default 2x.
  double working_set_factor = 2.0;
  std::uint64_t working_set_floor_bytes = 16 * 1024;
};

/// Byte account with a hard budget. Thread-safe and lock-free: charges are
/// CAS loops that refuse to overshoot, releases clamp at zero (the
/// track_buffered idiom), and a peak watermark records the high-water
/// accounted bytes for the budget-invariant assertion in tests.
class MemGovernor {
 public:
  MemGovernor() = default;
  explicit MemGovernor(const MemBudgetConfig& config) { configure(config); }

  void configure(const MemBudgetConfig& config) {
    global_ = config.global_bytes;
    per_job_ = config.per_job_bytes;
  }

  bool governed() const noexcept { return global_ > 0; }
  std::uint64_t budget() const noexcept { return global_; }
  /// The effective single-job cap: per_job_bytes clamped to the global
  /// budget (a job larger than the whole budget can never fit).
  std::uint64_t per_job_budget() const noexcept {
    if (global_ == 0) return per_job_;
    if (per_job_ == 0 || per_job_ > global_) return global_;
    return per_job_;
  }

  /// Charge `bytes` if the result stays within budget. Ungoverned
  /// accounts always succeed but still track the total.
  bool try_charge(std::uint64_t bytes) noexcept {
    std::uint64_t cur = accounted_.load(std::memory_order_relaxed);
    for (;;) {
      if (global_ != 0 && (cur + bytes > global_ || cur + bytes < cur)) return false;
      if (accounted_.compare_exchange_weak(cur, cur + bytes, std::memory_order_relaxed)) break;
    }
    note_peak(cur + bytes);
    return true;
  }

  /// Unconditional charge — the progress-guarantee escape hatch for an idle
  /// server whose head-of-line job must run even if queued payloads hold
  /// the budget. May push accounted past budget; callers count it.
  void charge_forced(std::uint64_t bytes) noexcept {
    const std::uint64_t now = accounted_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    note_peak(now);
  }

  /// Release a prior charge, clamped at zero (never underflows even if a
  /// release races a forced overshoot correction).
  void release(std::uint64_t bytes) noexcept {
    std::uint64_t cur = accounted_.load(std::memory_order_relaxed);
    while (!accounted_.compare_exchange_weak(cur, cur - std::min(cur, bytes),
                                             std::memory_order_relaxed)) {
    }
  }

  std::uint64_t accounted() const noexcept {
    return accounted_.load(std::memory_order_relaxed);
  }
  std::uint64_t peak() const noexcept { return peak_.load(std::memory_order_relaxed); }
  /// Free budget (0 when ungoverned overshoot leaves none).
  std::uint64_t headroom() const noexcept {
    const std::uint64_t used = accounted();
    return global_ > used ? global_ - used : 0;
  }

 private:
  void note_peak(std::uint64_t now) noexcept {
    std::uint64_t prev = peak_.load(std::memory_order_relaxed);
    while (now > prev &&
           !peak_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t global_ = 0;
  std::uint64_t per_job_ = 0;
  std::atomic<std::uint64_t> accounted_{0};
  std::atomic<std::uint64_t> peak_{0};
};

/// Disk parking lot for queued-but-cold payloads. All I/O goes through the
/// vfs wrappers so storage-fault plans armed on the spill directory hit it;
/// files are CRC-guarded so a rotted reload is detected (the caller sheds
/// the job retryably) rather than silently computing on garbage.
class SpillStore {
 public:
  SpillStore() = default;

  /// Set (or clear) the spill directory. Creates it; a directory that
  /// cannot be created leaves the store disabled.
  void configure(const std::string& dir);

  bool enabled() const noexcept {
    return !degraded_.load(std::memory_order_relaxed) && !dir_.empty();
  }
  bool degraded() const noexcept { return degraded_.load(std::memory_order_relaxed); }
  /// A later write failure permanently degrades the store to in-RAM-only
  /// (mem.spill_degraded); the governor keeps payloads charged instead.
  void degrade() noexcept { degraded_.store(true, std::memory_order_relaxed); }

  /// Persist `bytes` under `id` (tmp write + rename, fsynced). On any I/O
  /// failure the store degrades and the error returns — the caller keeps
  /// the payload in RAM.
  Status save(std::uint64_t id, const std::vector<std::uint8_t>& bytes);
  /// Read back a spilled payload, verifying length and CRC.
  Result<std::vector<std::uint8_t>> load(std::uint64_t id) const;
  /// Drop the spill file (idempotent; missing files are fine).
  void remove(std::uint64_t id) const;

 private:
  std::string path_for(std::uint64_t id) const;

  std::string dir_;
  std::atomic<bool> degraded_{false};
};

/// One scripted allocation-failure rule: fire at trip points whose site
/// name starts with `site` (empty = every site).
struct AllocFaultRule {
  std::string site;
  double probability = 1.0;
  /// Stop firing after this many triggers (-1 = unbounded).
  int max_triggers = -1;
};

/// A seeded schedule of allocation faults, the bad_alloc analogue of
/// vfs::StorageFaultPlan.
struct AllocFaultPlan {
  std::uint64_t seed = 0xa110c;
  std::vector<AllocFaultRule> rules;

  static AllocFaultPlan single(std::string site, double probability = 1.0,
                               int max_triggers = -1, std::uint64_t seed = 0xa110c) {
    AllocFaultPlan plan;
    plan.seed = seed;
    plan.rules.push_back(AllocFaultRule{std::move(site), probability, max_triggers});
    return plan;
  }
};

/// Process-global registry of armed allocation-fault plans. Cheap when
/// disarmed: trip points check one relaxed atomic before taking any lock.
class AllocFaultInjector {
 public:
  static AllocFaultInjector& instance();

  void arm(AllocFaultPlan plan);
  void disarm_all();

  bool armed() const noexcept { return armed_.load(std::memory_order_relaxed); }
  /// Total faults triggered since the last disarm_all (test assertions).
  std::uint64_t triggered_count() const noexcept { return triggered_.load(); }

  /// True when an armed rule fires for this trip-point site.
  bool should_fail(std::string_view site);

 private:
  struct RuleState {
    AllocFaultRule rule;
    int fired = 0;
  };

  mutable std::mutex mu_;
  Rng rng_;
  std::vector<RuleState> rules_;
  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> triggered_{0};
};

/// Trip point: throws std::bad_alloc when an armed rule fires for `site`.
/// Placed immediately before allocations sized from untrusted input, so
/// tests can prove the surrounding catch converts the failure into a
/// counted retryable shed.
inline void alloc_trip(std::string_view site) {
  auto& injector = AllocFaultInjector::instance();
  if (injector.armed() && injector.should_fail(site)) throw std::bad_alloc();
}

}  // namespace ns::mem
