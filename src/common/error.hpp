// Error model for the NetSolve reproduction.
//
// Recoverable failures (a server dropped the connection, a problem name is
// unknown, a message failed validation) travel as ns::Error values inside
// ns::Result<T>; programming errors use assertions/exceptions. The error
// codes mirror NetSolve's client-visible failure classes so fault-tolerance
// logic can branch on *why* a request failed.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace ns {

enum class ErrorCode : std::uint16_t {
  kOk = 0,
  // Transport-level.
  kConnectFailed,
  kConnectionClosed,
  kTimeout,
  kProtocol,       // malformed frame / bad magic / crc mismatch
  kVersion,        // incompatible protocol version
  // Directory-level (agent).
  kUnknownProblem,
  kNoServer,       // no alive server implements the problem
  kAgentUnavailable,
  // Execution-level (server).
  kBadArguments,   // argument list does not match the problem spec
  kExecutionFailed,
  kServerOverloaded,
  kServerFailure,  // injected or real crash mid-request
  // Client-level.
  kRetriesExhausted,
  kCancelled,
  kInternal,
  // Appended post-v1 (keep wire values of the codes above stable).
  kCorruptFrame,      // CRC/frame validation failed: bytes damaged in flight
  kDeadlineExceeded,  // the call's deadline budget ran out
  kMigrated,          // job moved to another server (follow migrated_host)
};

/// Human-readable name of an error code (stable, used in wire messages/logs).
std::string_view error_code_name(ErrorCode code) noexcept;

/// Whether the client's fault-tolerance loop may retry the request on a
/// different server after seeing this failure.
bool is_retryable(ErrorCode code) noexcept;

struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  std::string to_string() const {
    std::string out(error_code_name(code));
    if (!message.empty()) {
      out += ": ";
      out += message;
    }
    return out;
  }
};

inline Error make_error(ErrorCode code, std::string message = {}) {
  return Error{code, std::move(message)};
}

/// Thrown by Result::value() when the result holds an error.
class BadResultAccess : public std::runtime_error {
 public:
  explicit BadResultAccess(const Error& err)
      : std::runtime_error("Result holds error: " + err.to_string()), error_(err) {}
  const Error& error() const noexcept { return error_; }

 private:
  Error error_;
};

/// A lightweight expected<T, Error>. Deliberately minimal: exactly the
/// surface the codebase needs (ok/error introspection, value access,
/// map-free monadic composition is done by hand at call sites).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}       // NOLINT(google-explicit-constructor)

  bool ok() const noexcept { return std::holds_alternative<T>(data_); }
  explicit operator bool() const noexcept { return ok(); }

  const T& value() const& {
    if (!ok()) throw BadResultAccess(std::get<Error>(data_));
    return std::get<T>(data_);
  }
  T& value() & {
    if (!ok()) throw BadResultAccess(std::get<Error>(data_));
    return std::get<T>(data_);
  }
  T&& value() && {
    if (!ok()) throw BadResultAccess(std::get<Error>(data_));
    return std::move(std::get<T>(data_));
  }

  T value_or(T fallback) const& { return ok() ? std::get<T>(data_) : std::move(fallback); }

  const Error& error() const& { return std::get<Error>(data_); }
  Error& error() & { return std::get<Error>(data_); }

 private:
  std::variant<T, Error> data_;
};

/// void specialization: success or an Error.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error)), has_error_(true) {}  // NOLINT

  bool ok() const noexcept { return !has_error_; }
  explicit operator bool() const noexcept { return ok(); }

  void value() const {
    if (has_error_) throw BadResultAccess(error_);
  }
  const Error& error() const& { return error_; }

 private:
  Error error_;
  bool has_error_ = false;
};

using Status = Result<void>;

inline Status ok_status() { return Status{}; }

}  // namespace ns

/// Propagate an error from a Result-returning expression inside a
/// Result-returning function.
#define NS_RETURN_IF_ERROR(expr)              \
  do {                                        \
    auto ns_status_ = (expr);                 \
    if (!ns_status_.ok()) {                   \
      return ns_status_.error();              \
    }                                         \
  } while (0)

/// Assign the value of a Result-returning expression or propagate its error.
#define NS_ASSIGN_OR_RETURN(lhs, expr)        \
  auto ns_result_##__LINE__ = (expr);         \
  if (!ns_result_##__LINE__.ok()) {           \
    return ns_result_##__LINE__.error();      \
  }                                           \
  lhs = std::move(ns_result_##__LINE__).value()
