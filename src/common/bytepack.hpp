// Checkpoint frame compression: XOR delta + byte-plane shuffle + run-length.
//
// Iterative-kernel checkpoints are vectors of doubles converging toward a
// fixed point, so consecutive snapshots agree in most of their high-order
// bytes. The codec exploits exactly that structure with three cheap,
// dependency-free stages:
//
//   1. XOR delta against a base snapshot (when the caller holds one of the
//      same size): unchanged bytes become zero.
//   2. Byte-plane shuffle with stride 8: byte k of every f64 lands in one
//      contiguous plane, clustering the zeroed/slow-moving exponent and
//      high-mantissa bytes into long runs.
//   3. PackBits-style run-length coding: runs of >= 3 equal bytes collapse
//      to two bytes (control + value), literals pass through with a one-byte
//      control per 128.
//
// The packed frame is self-describing (mode byte + original size); when the
// pipeline fails to shrink the data the codec falls back to a raw frame, so
// pack() never expands the payload by more than the fixed header. Decode is
// bounds-checked end to end: a damaged frame yields an error, never OOB.
#pragma once

#include "common/error.hpp"
#include "serial/codec.hpp"

namespace ns::bytepack {

enum class Mode : std::uint8_t {
  kRaw = 0,        // header + verbatim bytes
  kPacked = 1,     // shuffle + RLE of the full payload
  kPackedDelta = 2 // shuffle + RLE of payload XOR base
};

/// Compress `data`. With a `base` of identical size, encodes the XOR delta
/// (Mode::kPackedDelta) — the receiver must unpack against the same base.
serial::Bytes pack(const serial::Bytes& data, const serial::Bytes* base = nullptr);

/// Wrap `data` in an uncompressed frame (checkpoint_compress=off path keeps
/// the wire format uniform).
serial::Bytes pack_raw(const serial::Bytes& data);

/// True if `packed` is a delta frame (receiver needs the matching base).
bool is_delta(const serial::Bytes& packed);

/// Decompress a frame produced by pack()/pack_raw(). Delta frames require
/// `base` with the original size; anything inconsistent is an error.
Result<serial::Bytes> unpack(const serial::Bytes& packed,
                             const serial::Bytes* base = nullptr);

}  // namespace ns::bytepack
