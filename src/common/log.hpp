// Minimal thread-safe leveled logger for the NetSolve reproduction.
//
// Intentionally tiny: the system processes (agent, server, client) emit
// diagnostics through this single sink so multi-process experiments on one
// machine produce interleaved but line-atomic output.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace ns::log {

enum class Level : std::uint8_t { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global threshold; messages below it are discarded. Initialized from the
/// NS_LOG environment variable (trace|debug|info|warn|error|off), default Warn
/// so tests and benches stay quiet.
Level threshold() noexcept;
void set_threshold(Level lvl) noexcept;

/// Parse a level name; returns kWarn for unrecognized input.
Level parse_level(std::string_view name) noexcept;

/// Emit one line (timestamp, level, tag, message) atomically to stderr.
void write(Level lvl, std::string_view tag, std::string_view msg);

namespace detail {

class LineBuilder {
 public:
  LineBuilder(Level lvl, std::string_view tag) : lvl_(lvl), tag_(tag) {}
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;
  ~LineBuilder() { write(lvl_, tag_, stream_.str()); }

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  Level lvl_;
  std::string tag_;
  std::ostringstream stream_;
};

}  // namespace detail

inline bool enabled(Level lvl) noexcept { return lvl >= threshold(); }

}  // namespace ns::log

#define NS_LOG(level, tag)                            \
  if (!ns::log::enabled(level)) {                     \
  } else                                              \
    ns::log::detail::LineBuilder(level, tag)

#define NS_TRACE(tag) NS_LOG(ns::log::Level::kTrace, tag)
#define NS_DEBUG(tag) NS_LOG(ns::log::Level::kDebug, tag)
#define NS_INFO(tag) NS_LOG(ns::log::Level::kInfo, tag)
#define NS_WARN(tag) NS_LOG(ns::log::Level::kWarn, tag)
#define NS_ERROR(tag) NS_LOG(ns::log::Level::kError, tag)
