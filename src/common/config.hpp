// Key=value configuration, used by the standalone agent/server/client
// binaries and by the experiment harnesses. Mirrors the flat config files
// the original NetSolve daemons read at startup.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/error.hpp"

namespace ns {

class Config {
 public:
  Config() = default;

  /// Parse "key = value" lines; '#' starts a comment; blank lines ignored.
  static Result<Config> parse(std::string_view text);

  /// Parse argv-style overrides of the form key=value (used by the CLIs).
  static Result<Config> from_args(int argc, const char* const* argv);

  void set(std::string key, std::string value);
  bool contains(std::string_view key) const noexcept;

  std::optional<std::string> get(std::string_view key) const;
  std::string get_or(std::string_view key, std::string fallback) const;
  std::optional<std::int64_t> get_int(std::string_view key) const;
  std::int64_t get_int_or(std::string_view key, std::int64_t fallback) const;
  std::optional<double> get_double(std::string_view key) const;
  double get_double_or(std::string_view key, double fallback) const;
  bool get_bool_or(std::string_view key, bool fallback) const;

  /// Merge other's entries over this one's (other wins on conflicts).
  void merge(const Config& other);

  const std::map<std::string, std::string, std::less<>>& entries() const noexcept {
    return entries_;
  }

 private:
  std::map<std::string, std::string, std::less<>> entries_;
};

}  // namespace ns
