#include "common/clock.hpp"

#include <thread>

namespace ns {

double now_seconds() noexcept {
  return std::chrono::duration<double>(SteadyClock::now().time_since_epoch()).count();
}

std::int64_t wall_micros() noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void sleep_seconds(double secs) {
  if (secs <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(secs));
}

double busy_spin_seconds(double secs) noexcept {
  if (secs <= 0) return 0.0;
  const TimePoint start = SteadyClock::now();
  const TimePoint due = start + std::chrono::duration_cast<Duration>(
                                    std::chrono::duration<double>(secs));
  // Volatile sink keeps the loop from being optimized away.
  volatile std::uint64_t sink = 0;
  while (SteadyClock::now() < due) {
    for (int i = 0; i < 64; ++i) sink = sink + 1;
  }
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

Deadline::Deadline(double timeout_secs) {
  due_ = SteadyClock::now() +
         std::chrono::duration_cast<Duration>(std::chrono::duration<double>(timeout_secs));
}

Deadline Deadline::never() noexcept {
  Deadline d;
  d.never_ = true;
  return d;
}

bool Deadline::expired() const noexcept {
  if (never_) return false;
  return SteadyClock::now() >= due_;
}

double Deadline::remaining() const noexcept {
  if (never_) return 1e18;
  const double rem = std::chrono::duration<double>(due_ - SteadyClock::now()).count();
  return rem > 0 ? rem : 0.0;
}

}  // namespace ns
