#include "common/vfs.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ns::vfs {

std::string_view storage_fault_mode_name(StorageFaultMode mode) noexcept {
  switch (mode) {
    case StorageFaultMode::kEnospc: return "enospc";
    case StorageFaultMode::kShortWrite: return "short_write";
    case StorageFaultMode::kFsyncEio: return "fsync_eio";
    case StorageFaultMode::kCrashBeforeRename: return "crash_before_rename";
    case StorageFaultMode::kCrashAfterRename: return "crash_after_rename";
    case StorageFaultMode::kBitRot: return "bit_rot";
  }
  return "unknown";
}

StorageFaultInjector& StorageFaultInjector::instance() {
  static StorageFaultInjector injector;
  return injector;
}

void StorageFaultInjector::arm(std::string path_prefix, StorageFaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  ScopeState state;
  state.rng.reseed(plan.seed);
  state.fired.assign(plan.rules.size(), 0);
  state.plan = std::move(plan);
  scopes_[std::move(path_prefix)] = std::move(state);
  armed_scopes_.store(static_cast<int>(scopes_.size()), std::memory_order_relaxed);
}

void StorageFaultInjector::disarm(const std::string& path_prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  scopes_.erase(path_prefix);
  armed_scopes_.store(static_cast<int>(scopes_.size()), std::memory_order_relaxed);
}

void StorageFaultInjector::disarm_all() {
  std::lock_guard<std::mutex> lock(mu_);
  scopes_.clear();
  armed_scopes_.store(0, std::memory_order_relaxed);
  triggered_.store(0);
  crashed_.store(false, std::memory_order_release);
}

StorageFaultInjector::ScopeState* StorageFaultInjector::scope_for_locked(
    const std::string& path) {
  for (auto& [prefix, state] : scopes_) {
    if (path.size() >= prefix.size() && path.compare(0, prefix.size(), prefix) == 0) {
      return &state;
    }
  }
  return nullptr;
}

namespace {

bool mode_applies(StorageFaultMode mode, int op) {
  using M = StorageFaultMode;
  switch (mode) {
    case M::kEnospc:
    case M::kShortWrite:
      return op == 0;  // write
    case M::kFsyncEio:
      return op == 1;  // sync
    case M::kCrashBeforeRename:
    case M::kCrashAfterRename:
      return op == 2;  // rename
    case M::kBitRot:
      return op == 3;  // read
  }
  return false;
}

}  // namespace

std::optional<StorageFaultMode> StorageFaultInjector::roll_locked(ScopeState& scope,
                                                                  Op op) {
  for (std::size_t i = 0; i < scope.plan.rules.size(); ++i) {
    const StorageFaultRule& rule = scope.plan.rules[i];
    if (!mode_applies(rule.mode, static_cast<int>(op))) continue;
    if (rule.max_triggers >= 0 && scope.fired[i] >= rule.max_triggers) continue;
    if (!scope.rng.bernoulli(rule.probability)) continue;
    ++scope.fired[i];
    triggered_.fetch_add(1);
    return rule.mode;
  }
  return std::nullopt;
}

std::optional<StorageFaultMode> StorageFaultInjector::on_write(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  ScopeState* scope = scope_for_locked(path);
  if (!scope) return std::nullopt;
  return roll_locked(*scope, Op::kWrite);
}

std::optional<StorageFaultMode> StorageFaultInjector::on_sync(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  ScopeState* scope = scope_for_locked(path);
  if (!scope) return std::nullopt;
  return roll_locked(*scope, Op::kSync);
}

std::optional<StorageFaultMode> StorageFaultInjector::on_rename(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  ScopeState* scope = scope_for_locked(path);
  if (!scope) return std::nullopt;
  return roll_locked(*scope, Op::kRename);
}

void StorageFaultInjector::on_read(const std::string& path, std::uint8_t* data,
                                   std::size_t size) {
  if (size == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  ScopeState* scope = scope_for_locked(path);
  if (!scope) return;
  if (!roll_locked(*scope, Op::kRead)) return;
  const int flips = scope->plan.rot_flips > 0 ? scope->plan.rot_flips : 1;
  for (int i = 0; i < flips; ++i) {
    const std::size_t at =
        static_cast<std::size_t>(scope->rng.uniform_int(0, static_cast<std::int64_t>(size) - 1));
    // XOR with a non-zero byte so the flip is guaranteed to change the data.
    data[at] ^= static_cast<std::uint8_t>(1 + (scope->rng.next_u64() & 0xfe));
  }
}

// ---- POSIX mirrors ----

int open(const std::string& path, int flags, mode_t mode) {
  auto& injector = StorageFaultInjector::instance();
  if (injector.armed() && injector.crashed() && (flags & (O_WRONLY | O_RDWR))) {
    // The emulated process is dead: hand back a descriptor whose writes the
    // wrappers below will swallow anyway, without creating the real file.
    return ::open("/dev/null", O_WRONLY | O_CLOEXEC);
  }
  return ::open(path.c_str(), flags, mode);
}

ssize_t write(int fd, const std::string& path, const void* buf, std::size_t count) {
  auto& injector = StorageFaultInjector::instance();
  if (injector.armed()) {
    if (injector.crashed()) return static_cast<ssize_t>(count);  // frozen disk
    if (auto fault = injector.on_write(path)) {
      if (*fault == StorageFaultMode::kShortWrite && count > 1) {
        // Half the buffer reaches the media before the device fills: the
        // caller sees a clean error, the disk holds a torn record.
        const std::size_t torn = count / 2;
        std::size_t off = 0;
        while (off < torn) {
          const ssize_t n = ::write(fd, static_cast<const char*>(buf) + off, torn - off);
          if (n < 0) {
            if (errno == EINTR) continue;
            break;
          }
          off += static_cast<std::size_t>(n);
        }
      }
      errno = ENOSPC;
      return -1;
    }
  }
  return ::write(fd, buf, count);
}

ssize_t read(int fd, const std::string& path, void* buf, std::size_t count) {
  const ssize_t n = ::read(fd, buf, count);
  auto& injector = StorageFaultInjector::instance();
  if (n > 0 && injector.armed()) {
    injector.on_read(path, static_cast<std::uint8_t*>(buf), static_cast<std::size_t>(n));
  }
  return n;
}

int fsync(int fd, const std::string& path) {
  auto& injector = StorageFaultInjector::instance();
  if (injector.armed()) {
    if (injector.crashed()) return 0;
    if (injector.on_sync(path)) {
      errno = EIO;
      return -1;
    }
  }
  return ::fsync(fd);
}

int fdatasync(int fd, const std::string& path) {
  auto& injector = StorageFaultInjector::instance();
  if (injector.armed()) {
    if (injector.crashed()) return 0;
    if (injector.on_sync(path)) {
      errno = EIO;
      return -1;
    }
  }
  return ::fdatasync(fd);
}

int rename(const std::string& from, const std::string& to) {
  auto& injector = StorageFaultInjector::instance();
  if (injector.armed()) {
    if (injector.crashed()) return 0;
    if (auto fault = injector.on_rename(to)) {
      if (*fault == StorageFaultMode::kCrashAfterRename) {
        ::rename(from.c_str(), to.c_str());  // the swap landed, then we died
      }
      injector.mark_crashed();  // every later mutation freezes out
      return 0;
    }
  }
  return ::rename(from.c_str(), to.c_str());
}

int unlink(const std::string& path) {
  auto& injector = StorageFaultInjector::instance();
  if (injector.armed() && injector.crashed()) return 0;
  return ::unlink(path.c_str());
}

int close(int fd) { return ::close(fd); }

void crash_point(const char* name) {
  const char* want = std::getenv("NS_CRASH_POINT");
  if (!want || std::strcmp(want, name) != 0) return;
  // NS_CRASH_POINT_SKIP=N survives the first N hits before dying — the
  // journal compacts once at startup, and the kill-window scripts want to
  // die inside a *runtime* compaction, not while booting.
  static std::atomic<long> remaining{[] {
    const char* skip = std::getenv("NS_CRASH_POINT_SKIP");
    return skip != nullptr ? std::atol(skip) : 0L;
  }()};
  if (remaining.fetch_sub(1) > 0) return;
  std::fprintf(stderr, "vfs: crash point '%s' hit, dying\n", name);
  std::fflush(stderr);
  ::_exit(137);
}

}  // namespace ns::vfs
