// Small string utilities used by the config parser, the problem-description
// file parser, and the CLI front ends.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ns::strings {

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s) noexcept;

/// Split on a delimiter character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Split on runs of ASCII whitespace; no empty fields.
std::vector<std::string> split_ws(std::string_view s);

/// Case-sensitive prefix/suffix tests.
bool starts_with(std::string_view s, std::string_view prefix) noexcept;
bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// Strict numeric parsers: the whole (trimmed) string must parse.
std::optional<std::int64_t> parse_int(std::string_view s) noexcept;
std::optional<double> parse_double(std::string_view s) noexcept;

/// "1.5 KB/s"-style human formatting helpers for bench output.
std::string format_bytes(double bytes);
std::string format_seconds(double secs);

}  // namespace ns::strings
