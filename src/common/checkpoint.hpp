// Iteration-granular checkpointing.
//
// A checkpoint::Token extends the cooperative-cancellation idea of
// common/cancel.hpp from "stop here" to "persist progress here". The server
// binds a token around ProblemRegistry::execute() with a ScopedToken; the
// iterative kernels (CG/Jacobi/SOR, the synthetic workloads) call
// checkpoint::tick() at their loop heads — the same places they poll for
// cancellation — and the token decides, based on its configured interval,
// whether this iteration's state gets serialized and handed to the server's
// write-ahead journal.
//
// The token also carries the reverse direction: when a server restarts (or
// receives a migrated job), it installs the last persisted snapshot before
// execute(), and the kernel's checkpoint::restore() call at entry returns the
// iteration to resume from instead of 0. Kernels that cannot cheaply snapshot
// (dense LU, eigen sweeps) call checkpoint::progress() instead, which only
// publishes iteration/residual for probe reporting and never serializes.
//
// Contract for kernels (mirrors DESIGN.md §12 for cancellation): tick at
// iteration granularity, never in inner loops; a snapshot must capture
// exactly the state needed to re-enter the loop at iteration+1; restore() is
// consumed once and returns 0 when there is nothing to resume (fresh run,
// corrupt snapshot, or no token bound — kernels outside a server run
// unchanged).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <utility>

#include "serial/codec.hpp"

namespace ns::checkpoint {

/// One persisted point-in-time of a running job: the iteration it was taken
/// at, the residual (or other progress figure) at that point, and the
/// kernel-specific serialized loop state.
struct Snapshot {
  std::uint64_t iteration = 0;
  double residual = 0.0;
  serial::Bytes state;
};

class Token {
 public:
  /// Snapshot every `interval` iterations (0 = never snapshot; progress
  /// publishing still works).
  void set_interval(std::uint64_t interval) noexcept { interval_ = interval; }
  std::uint64_t interval() const noexcept { return interval_; }

  /// Callback invoked (on the kernel's thread) each time a snapshot is
  /// saved; the server uses this to append a CHECKPOINT journal record.
  void set_on_snapshot(std::function<void(const Snapshot&)> fn) {
    on_snapshot_ = std::move(fn);
  }

  /// Install the snapshot a resumed kernel should restart from.
  void install_restore(Snapshot snapshot) {
    std::lock_guard<std::mutex> lock(mu_);
    restore_ = std::move(snapshot);
    restore_iteration_ = restore_ ? restore_->iteration : 0;
  }
  bool has_restore() const {
    std::lock_guard<std::mutex> lock(mu_);
    return restore_.has_value();
  }
  /// Consume the installed restore snapshot (at most once). Also primes the
  /// snapshot interval clock so the first new snapshot lands a full interval
  /// after the restored iteration.
  std::optional<Snapshot> take_restore() {
    std::lock_guard<std::mutex> lock(mu_);
    std::optional<Snapshot> out = std::move(restore_);
    restore_.reset();
    if (out) last_saved_ = out->iteration;
    return out;
  }
  /// The iteration of the snapshot handed to install_restore() (0 if none).
  /// Survives take_restore(), so tests can assert where a job resumed.
  std::uint64_t restore_iteration() const noexcept {
    return restore_iteration_.load(std::memory_order_acquire);
  }

  /// Publish live progress (probe reporting; no serialization).
  void publish(std::uint64_t iteration, double residual) noexcept {
    iteration_.store(iteration, std::memory_order_relaxed);
    residual_.store(residual, std::memory_order_relaxed);
  }
  std::uint64_t iteration() const noexcept {
    return iteration_.load(std::memory_order_relaxed);
  }
  double residual() const noexcept { return residual_.load(std::memory_order_relaxed); }

  /// Is a snapshot due at `iteration`?
  bool due(std::uint64_t iteration) const noexcept {
    return interval_ != 0 && iteration >= last_saved_ + interval_;
  }

  /// Store `state` as the latest snapshot and notify the journal callback.
  void save(std::uint64_t iteration, double residual, serial::Bytes state) {
    Snapshot snap{iteration, residual, std::move(state)};
    {
      std::lock_guard<std::mutex> lock(mu_);
      latest_ = snap;
    }
    last_saved_ = iteration;
    if (on_snapshot_) on_snapshot_(snap);
  }

  bool has_snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return latest_.has_value();
  }
  /// Copy of the latest snapshot (empty Snapshot if none was taken).
  Snapshot latest() const {
    std::lock_guard<std::mutex> lock(mu_);
    return latest_ ? *latest_ : Snapshot{};
  }

 private:
  std::uint64_t interval_ = 0;
  std::uint64_t last_saved_ = 0;  // touched only from the kernel thread
  std::function<void(const Snapshot&)> on_snapshot_;
  std::atomic<std::uint64_t> iteration_{0};
  std::atomic<double> residual_{0.0};
  std::atomic<std::uint64_t> restore_iteration_{0};
  mutable std::mutex mu_;
  std::optional<Snapshot> latest_;
  std::optional<Snapshot> restore_;
};

namespace detail {
inline thread_local Token* current_token = nullptr;
}

/// Bind `token` as this thread's checkpoint token for the enclosing scope
/// (nests; the previous binding is restored on destruction).
class ScopedToken {
 public:
  explicit ScopedToken(Token* token) noexcept : previous_(detail::current_token) {
    detail::current_token = token;
  }
  ~ScopedToken() { detail::current_token = previous_; }
  ScopedToken(const ScopedToken&) = delete;
  ScopedToken& operator=(const ScopedToken&) = delete;

 private:
  Token* previous_;
};

inline Token* current() noexcept { return detail::current_token; }

/// Kernel-side per-iteration hook: publish progress, and when a snapshot is
/// due serialize the loop state via `encode` (called with a serial::Encoder&)
/// and hand it to the token. No-op without a bound token.
template <typename EncodeFn>
inline void tick(std::uint64_t iteration, double residual, EncodeFn&& encode) {
  Token* token = detail::current_token;
  if (token == nullptr) return;
  token->publish(iteration, residual);
  if (!token->due(iteration)) return;
  serial::Encoder enc;
  encode(enc);
  token->save(iteration, residual, enc.take());
}

/// Progress-only variant for kernels whose state is too large to snapshot
/// profitably (dense LU panels, eigen sweeps): probes still see iteration
/// movement, nothing is serialized.
inline void progress(std::uint64_t iteration, double residual = 0.0) noexcept {
  Token* token = detail::current_token;
  if (token != nullptr) token->publish(iteration, residual);
}

/// Kernel-side resume hook, called once at loop entry: if a restore snapshot
/// is installed, `decode` (called with a serial::Decoder&, returning bool)
/// rebuilds the loop state and the snapshot's iteration is returned — the
/// kernel continues at iteration+1. Returns 0 (fresh start) without a token,
/// without a snapshot, or when `decode` rejects the payload: a corrupt or
/// mismatched snapshot costs a from-scratch run, never a crash.
template <typename DecodeFn>
inline std::uint64_t restore(DecodeFn&& decode) {
  Token* token = detail::current_token;
  if (token == nullptr) return 0;
  std::optional<Snapshot> snap = token->take_restore();
  if (!snap || snap->iteration == 0) return 0;
  serial::Decoder dec(snap->state);
  if (!decode(dec)) return 0;
  token->publish(snap->iteration, snap->residual);
  return snap->iteration;
}

}  // namespace ns::checkpoint
