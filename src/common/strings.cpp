#include "common/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace ns::strings {

namespace {
bool is_space(char c) noexcept { return std::isspace(static_cast<unsigned char>(c)) != 0; }
}  // namespace

std::string_view trim(std::string_view s) noexcept {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && is_space(s[begin])) ++begin;
  while (end > begin && is_space(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    const std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::optional<std::int64_t> parse_int(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::int64_t value = 0;
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  double value = 0;
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::string format_bytes(double bytes) {
  static const char* units[] = {"B", "KiB", "MiB", "GiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 3) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, units[unit]);
  return buf;
}

std::string format_seconds(double secs) {
  char buf[64];
  if (secs < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", secs * 1e6);
  } else if (secs < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", secs * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", secs);
  }
  return buf;
}

}  // namespace ns::strings
