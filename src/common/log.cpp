#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace ns::log {

namespace {

std::atomic<Level>& threshold_storage() {
  static std::atomic<Level> lvl = [] {
    const char* env = std::getenv("NS_LOG");
    return env != nullptr ? parse_level(env) : Level::kWarn;
  }();
  return lvl;
}

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo:  return "INFO ";
    case Level::kWarn:  return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff:   return "OFF  ";
  }
  return "?????";
}

}  // namespace

Level threshold() noexcept { return threshold_storage().load(std::memory_order_relaxed); }

void set_threshold(Level lvl) noexcept {
  threshold_storage().store(lvl, std::memory_order_relaxed);
}

Level parse_level(std::string_view name) noexcept {
  if (name == "trace") return Level::kTrace;
  if (name == "debug") return Level::kDebug;
  if (name == "info") return Level::kInfo;
  if (name == "warn") return Level::kWarn;
  if (name == "error") return Level::kError;
  if (name == "off") return Level::kOff;
  return Level::kWarn;
}

void write(Level lvl, std::string_view tag, std::string_view msg) {
  static std::mutex mu;
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  const double secs = std::chrono::duration<double>(now).count();
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%12.6f] %s [%.*s] %.*s\n", secs, level_name(lvl),
               static_cast<int>(tag.size()), tag.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace ns::log
