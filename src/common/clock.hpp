// Timing utilities shared by the scheduler, the benchmarks, and the
// shaped-link network emulation.
#pragma once

#include <chrono>
#include <cstdint>

namespace ns {

using SteadyClock = std::chrono::steady_clock;
using TimePoint = SteadyClock::time_point;
using Duration = SteadyClock::duration;

/// Seconds since an arbitrary (process-local) epoch; monotonic.
double now_seconds() noexcept;

/// Wall-clock microseconds since the UNIX epoch (for log correlation only;
/// never used for interval measurement).
std::int64_t wall_micros() noexcept;

/// Sleep for the given number of seconds (no-op for values <= 0). Uses
/// nanosleep-grade precision via std::this_thread.
void sleep_seconds(double secs);

/// Busy-spin for approximately `secs` seconds. The compute servers use this
/// to emulate heterogeneous processor speeds deterministically even when the
/// host is a single-core machine (sleeping would under-report contention;
/// spinning models an occupied CPU). Returns the actual elapsed seconds.
double busy_spin_seconds(double secs) noexcept;

/// Simple interval stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(SteadyClock::now()) {}

  void reset() noexcept { start_ = SteadyClock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double elapsed() const noexcept {
    return std::chrono::duration<double>(SteadyClock::now() - start_).count();
  }

 private:
  TimePoint start_;
};

/// Deadline helper: construct with a timeout, query remaining budget.
class Deadline {
 public:
  /// A deadline `timeout_secs` from now; non-positive means "already due",
  /// and infinity() means "never".
  explicit Deadline(double timeout_secs);

  static Deadline never() noexcept;

  bool expired() const noexcept;
  /// Remaining seconds (clamped at 0); a large sentinel for never().
  double remaining() const noexcept;

 private:
  Deadline() = default;
  TimePoint due_{};
  bool never_ = false;
};

}  // namespace ns
