#include "common/trace.hpp"

#include <atomic>
#include <cstdio>

#include "common/clock.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"

namespace ns::trace {

TraceId new_trace_id() noexcept {
  // Wall-clock seed decorrelates ids across processes (every process in a
  // multi-process deployment mints from its own stream); the counter and a
  // splitmix64-style mix keep ids unique and well-spread within one.
  static std::atomic<std::uint64_t> next{static_cast<std::uint64_t>(wall_micros())};
  std::uint64_t x = next.fetch_add(0x9e3779b97f4a7c15ull, std::memory_order_relaxed);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x == kNoTrace ? 1 : x;
}

std::string trace_id_hex(TraceId id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(id));
  return buf;
}

void record_span(TraceId id, std::string_view name, double start_s, double duration_s) {
  NS_DEBUG("trace") << "trace=" << trace_id_hex(id) << " span=" << name
                    << " start_ms=" << start_s * 1e3 << " dur_ms=" << duration_s * 1e3;
  metrics::histogram("span." + std::string(name) + "_s").observe(duration_s);
}

}  // namespace ns::trace
