#include "agent/registry.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace ns::agent {

proto::ServerId ServerRegistry::add(const proto::RegisterServer& reg) {
  std::lock_guard<std::mutex> lock(mu_);

  // A returning server (same name + endpoint) is revived in place.
  for (auto& [id, record] : servers_) {
    if (record.name == reg.server_name && record.endpoint == reg.endpoint) {
      record.mflops = reg.mflops;
      record.alive = true;
      record.consecutive_failures = 0;
      record.last_report_time = now_seconds();
      record.problems.clear();
      for (const auto& spec : reg.problems) {
        record.problems.insert(spec.name);
        specs_.try_emplace(spec.name, spec);
      }
      NS_INFO("agent") << "revived server " << record.name << " id=" << id;
      return id;
    }
  }

  ServerRecord record;
  record.id = next_id_++;
  record.name = reg.server_name;
  record.endpoint = reg.endpoint;
  record.mflops = reg.mflops;
  record.latency_s = config_.default_latency_s;
  record.bandwidth_Bps = config_.default_bandwidth_Bps;
  record.last_report_time = now_seconds();
  for (const auto& spec : reg.problems) {
    record.problems.insert(spec.name);
    specs_.try_emplace(spec.name, spec);
  }
  const auto id = record.id;
  NS_INFO("agent") << "registered server " << record.name << " id=" << id
                   << " mflops=" << record.mflops << " problems=" << record.problems.size();
  servers_.emplace(id, std::move(record));
  return id;
}

void ServerRegistry::update_workload(const proto::WorkloadReport& report) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = servers_.find(report.server_id);
  if (it == servers_.end()) return;
  it->second.workload = report.workload;
  it->second.completed = report.completed;
  it->second.last_report_time = now_seconds();
  it->second.alive = true;
  // A fresh report supersedes the assignment-based estimate.
  it->second.pending = 0.0;
}

void ServerRegistry::record_failure(proto::ServerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = servers_.find(id);
  if (it == servers_.end()) return;
  it->second.consecutive_failures += 1;
  if (it->second.consecutive_failures >= config_.max_failures) {
    it->second.alive = false;
    NS_WARN("agent") << "server " << it->second.name << " marked dead after "
                     << it->second.consecutive_failures << " failures";
  }
}

void ServerRegistry::record_metrics(proto::ServerId id, std::uint64_t bytes, double seconds) {
  if (seconds <= 0 || bytes == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = servers_.find(id);
  if (it == servers_.end()) return;
  auto& record = it->second;
  record.consecutive_failures = 0;
  // Interpret the sample as latency + bytes/bandwidth with the current
  // latency estimate; fold the implied bandwidth into the EWMA. Tiny
  // transfers update latency instead.
  const double alpha = config_.ewma_alpha;
  if (bytes < 4096) {
    record.latency_s = (1 - alpha) * record.latency_s + alpha * seconds;
  } else {
    // Subtract the latency estimate, but never attribute less than half the
    // sample to transfer: a sample faster than the current latency estimate
    // would otherwise imply near-infinite bandwidth and poison the EWMA.
    const double transfer = std::max(seconds - record.latency_s, 0.5 * seconds);
    const double implied_bw = static_cast<double>(bytes) / transfer;
    record.bandwidth_Bps = (1 - alpha) * record.bandwidth_Bps + alpha * implied_bw;
    // Fast samples also mean the latency estimate was too high.
    if (seconds < record.latency_s) {
      record.latency_s = (1 - alpha) * record.latency_s + alpha * seconds;
    }
  }
}

void ServerRegistry::record_assignment(proto::ServerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = servers_.find(id);
  if (it != servers_.end()) {
    it->second.assigned += 1;
    it->second.pending += 1.0;
  }
}

void ServerRegistry::expire_stale_locked() {
  if (config_.report_timeout_s <= 0) return;
  const double now = now_seconds();
  for (auto& [id, record] : servers_) {
    if (record.alive && now - record.last_report_time > config_.report_timeout_s) {
      record.alive = false;
      NS_WARN("agent") << "server " << record.name << " expired (no report for "
                       << now - record.last_report_time << "s)";
    }
  }
}

std::vector<proto::SyncEntry> ServerRegistry::snapshot_for_sync() {
  std::lock_guard<std::mutex> lock(mu_);
  const double now = now_seconds();
  std::vector<proto::SyncEntry> out;
  out.reserve(servers_.size());
  for (const auto& [id, record] : servers_) {
    proto::SyncEntry entry;
    entry.server_name = record.name;
    entry.endpoint = record.endpoint;
    entry.mflops = record.mflops;
    entry.workload = record.workload;
    entry.completed = record.completed;
    entry.alive = record.alive;
    entry.age_seconds = std::max(now - record.last_report_time, 0.0);
    for (const auto& problem : record.problems) {
      const auto it = specs_.find(problem);
      if (it != specs_.end()) entry.problems.push_back(it->second);
    }
    out.push_back(std::move(entry));
  }
  return out;
}

bool ServerRegistry::apply_sync(const proto::SyncEntry& entry) {
  std::lock_guard<std::mutex> lock(mu_);
  const double entry_time = now_seconds() - std::max(entry.age_seconds, 0.0);

  for (auto& [id, record] : servers_) {
    if (record.name != entry.server_name || !(record.endpoint == entry.endpoint)) continue;
    // Known server: apply only if the peer's information is fresher.
    if (entry_time <= record.last_report_time) return false;
    record.mflops = entry.mflops;
    record.workload = entry.workload;
    record.completed = entry.completed;
    record.alive = entry.alive;
    record.last_report_time = entry_time;
    for (const auto& spec : entry.problems) {
      record.problems.insert(spec.name);
      specs_.try_emplace(spec.name, spec);
    }
    return true;
  }

  // Foreign server: adopt it with a local id.
  ServerRecord record;
  record.id = next_id_++;
  record.name = entry.server_name;
  record.endpoint = entry.endpoint;
  record.mflops = entry.mflops;
  record.workload = entry.workload;
  record.completed = entry.completed;
  record.alive = entry.alive;
  record.latency_s = config_.default_latency_s;
  record.bandwidth_Bps = config_.default_bandwidth_Bps;
  record.last_report_time = entry_time;
  for (const auto& spec : entry.problems) {
    record.problems.insert(spec.name);
    specs_.try_emplace(spec.name, spec);
  }
  NS_INFO("agent") << "adopted server " << record.name << " from peer sync, id=" << record.id;
  servers_.emplace(record.id, std::move(record));
  return true;
}

std::vector<ServerRecord> ServerRegistry::candidates_for(const std::string& problem) {
  std::lock_guard<std::mutex> lock(mu_);
  expire_stale_locked();
  std::vector<ServerRecord> out;
  for (const auto& [id, record] : servers_) {
    if (record.alive && record.problems.count(problem) > 0) out.push_back(record);
  }
  return out;
}

std::vector<ServerRecord> ServerRegistry::all() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ServerRecord> out;
  out.reserve(servers_.size());
  for (const auto& [id, record] : servers_) out.push_back(record);
  return out;
}

std::optional<ServerRecord> ServerRegistry::find(proto::ServerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = servers_.find(id);
  if (it == servers_.end()) return std::nullopt;
  return it->second;
}

std::vector<dsl::ProblemSpec> ServerRegistry::catalog() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<dsl::ProblemSpec> out;
  out.reserve(specs_.size());
  for (const auto& [name, spec] : specs_) out.push_back(spec);
  return out;
}

std::optional<dsl::ProblemSpec> ServerRegistry::problem_spec(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = specs_.find(name);
  if (it == specs_.end()) return std::nullopt;
  return it->second;
}

std::size_t ServerRegistry::alive_count() {
  std::lock_guard<std::mutex> lock(mu_);
  expire_stale_locked();
  return static_cast<std::size_t>(
      std::count_if(servers_.begin(), servers_.end(),
                    [](const auto& kv) { return kv.second.alive; }));
}

}  // namespace ns::agent
