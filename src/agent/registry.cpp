#include "agent/registry.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace ns::agent {

std::string_view breaker_state_name(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "unknown";
}

void ServerRegistry::open_breaker_locked(ServerRecord& record, bool escalate) {
  if (escalate || record.breaker == BreakerState::kClosed) record.open_count += 1;
  const double cooldown =
      std::min(config_.quarantine_s *
                   std::pow(config_.quarantine_backoff,
                            static_cast<double>(std::max(record.open_count - 1, 0))),
               config_.quarantine_max_s);
  record.breaker = BreakerState::kOpen;
  record.open_until = now_seconds() + cooldown;
  record.probe_successes = 0;
  record.alive = false;
  NS_WARN("agent") << "server " << record.name << " quarantined for " << cooldown
                   << "s (open #" << record.open_count << ")";
}

void ServerRegistry::probe_success_locked(ServerRecord& record) {
  if (record.breaker == BreakerState::kOpen && now_seconds() >= record.open_until) {
    record.breaker = BreakerState::kHalfOpen;
    record.rating_factor = config_.readmit_rating_factor;
  }
  if (record.breaker != BreakerState::kHalfOpen) return;
  record.probe_successes += 1;
  if (record.probe_successes < config_.probes_to_close) return;
  record.breaker = BreakerState::kClosed;
  record.alive = true;
  record.consecutive_failures = 0;
  record.rating_factor = config_.readmit_rating_factor;
  record.last_report_time = now_seconds();
  NS_INFO("agent") << "server " << record.name << " re-admitted at "
                   << record.rating_factor << "x rating after "
                   << record.probe_successes << " successful probes";
}

void ServerRegistry::tick_breakers_locked() {
  if (!breaker_enabled()) return;
  const double now = now_seconds();
  for (auto& [id, record] : servers_) {
    if (record.breaker == BreakerState::kOpen && now >= record.open_until) {
      record.breaker = BreakerState::kHalfOpen;
      record.rating_factor = config_.readmit_rating_factor;
      NS_INFO("agent") << "server " << record.name << " half-open (probing)";
    }
  }
}

proto::ServerId ServerRegistry::add(const proto::RegisterServer& reg) {
  std::lock_guard<std::mutex> lock(mu_);

  // A returning server (same name + endpoint) keeps its record and id.
  for (auto& [id, record] : servers_) {
    if (record.name == reg.server_name && record.endpoint == reg.endpoint) {
      record.mflops = reg.mflops;
      record.last_report_time = now_seconds();
      record.problems.clear();
      for (const auto& spec : reg.problems) {
        record.problems.insert(spec.name);
        specs_.try_emplace(spec.name, spec);
      }
      // A registration from a NEW process lifetime is a restart: the old
      // quarantine history no longer describes this incarnation, so revive
      // fully. The SAME incarnation is a periodic keep-alive refresh; with
      // the breaker active it proves liveness but must not bust an open
      // quarantine — the failures were observed on the client path, which a
      // self-refresh says nothing about. Without the breaker (legacy mode)
      // an explicit re-registration always revives.
      const bool restart = reg.incarnation != record.incarnation;
      record.incarnation = reg.incarnation;
      if (restart || !breaker_enabled()) {
        record.alive = true;
        record.consecutive_failures = 0;
        record.breaker = BreakerState::kClosed;
        record.open_count = 0;
        record.probe_successes = 0;
        record.rating_factor = 1.0;
        NS_INFO("agent") << "revived server " << record.name << " id=" << id;
      } else if (record.breaker == BreakerState::kClosed) {
        record.alive = true;
      }
      return id;
    }
  }

  ServerRecord record;
  record.id = next_id_++;
  record.name = reg.server_name;
  record.endpoint = reg.endpoint;
  record.mflops = reg.mflops;
  record.incarnation = reg.incarnation;
  record.latency_s = config_.default_latency_s;
  record.bandwidth_Bps = config_.default_bandwidth_Bps;
  record.last_report_time = now_seconds();
  for (const auto& spec : reg.problems) {
    record.problems.insert(spec.name);
    specs_.try_emplace(spec.name, spec);
  }
  const auto id = record.id;
  NS_INFO("agent") << "registered server " << record.name << " id=" << id
                   << " mflops=" << record.mflops << " problems=" << record.problems.size();
  servers_.emplace(id, std::move(record));
  return id;
}

void ServerRegistry::update_workload(const proto::WorkloadReport& report) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = servers_.find(report.server_id);
  if (it == servers_.end()) return;
  it->second.workload = report.workload;
  it->second.completed = report.completed;
  it->second.sojourn_p95_s = report.sojourn_p95_s;
  it->second.free_slots = report.free_slots;
  it->second.durable = report.durable;
  it->second.mem_free_bytes = report.mem_free_bytes;
  it->second.spill_active = report.spill_active;
  it->second.last_report_time = now_seconds();
  // A workload report proves the process is up, but a quarantined server
  // stays quarantined: its failures were observed on the client path, which
  // a self-report says nothing about. Probes decide re-admission.
  if (it->second.breaker == BreakerState::kClosed) it->second.alive = true;
  // A fresh report supersedes the assignment-based estimate.
  it->second.pending = 0.0;
}

bool ServerRegistry::deregister(proto::ServerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = servers_.find(id);
  if (it == servers_.end()) return false;
  auto& record = it->second;
  record.alive = false;
  // Fresh timestamp: sync entries carry age = now - last contact, so peers
  // prefer this deliberate deadness over their own stale "alive" view.
  record.last_report_time = now_seconds();
  record.pending = 0.0;
  NS_INFO("agent") << "server " << record.name << " id=" << id
                   << " deregistered (draining)";
  return true;
}

void ServerRegistry::record_failure(proto::ServerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = servers_.find(id);
  if (it == servers_.end()) return;
  auto& record = it->second;
  record.consecutive_failures += 1;

  if (breaker_enabled()) {
    if (record.breaker == BreakerState::kHalfOpen) {
      // The probe traffic failed: back to quarantine, longer cooldown.
      open_breaker_locked(record, /*escalate=*/true);
      return;
    }
    if (record.breaker == BreakerState::kOpen) {
      // Still failing while quarantined (e.g. straggling client reports):
      // push the probe window out without escalating the cooldown tier.
      open_breaker_locked(record, /*escalate=*/false);
      return;
    }
    if (record.consecutive_failures >= config_.max_failures) {
      open_breaker_locked(record, /*escalate=*/true);
    }
    return;
  }

  if (record.consecutive_failures >= config_.max_failures) {
    record.alive = false;
    NS_WARN("agent") << "server " << record.name << " marked dead after "
                     << record.consecutive_failures << " failures";
  }
}

void ServerRegistry::record_metrics(proto::ServerId id, std::uint64_t bytes, double seconds) {
  if (seconds <= 0 || bytes == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = servers_.find(id);
  if (it == servers_.end()) return;
  auto& record = it->second;
  record.consecutive_failures = 0;
  if (breaker_enabled()) {
    if (record.breaker != BreakerState::kClosed) {
      // A client completed real work against this server — the strongest
      // probe there is.
      probe_success_locked(record);
    } else if (record.rating_factor < 1.0) {
      // Earn the rating back success by success.
      record.rating_factor = std::min(
          1.0, record.rating_factor +
                   config_.rating_recovery * (1.0 - record.rating_factor));
    }
  }
  // Interpret the sample as latency + bytes/bandwidth with the current
  // latency estimate; fold the implied bandwidth into the EWMA. Tiny
  // transfers update latency instead.
  const double alpha = config_.ewma_alpha;
  if (bytes < 4096) {
    record.latency_s = (1 - alpha) * record.latency_s + alpha * seconds;
  } else {
    // Subtract the latency estimate, but never attribute less than half the
    // sample to transfer: a sample faster than the current latency estimate
    // would otherwise imply near-infinite bandwidth and poison the EWMA.
    const double transfer = std::max(seconds - record.latency_s, 0.5 * seconds);
    const double implied_bw = static_cast<double>(bytes) / transfer;
    record.bandwidth_Bps = (1 - alpha) * record.bandwidth_Bps + alpha * implied_bw;
    // Fast samples also mean the latency estimate was too high.
    if (seconds < record.latency_s) {
      record.latency_s = (1 - alpha) * record.latency_s + alpha * seconds;
    }
  }
}

std::vector<ServerRecord> ServerRegistry::probe_candidates() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!breaker_enabled()) return {};
  tick_breakers_locked();
  std::vector<ServerRecord> out;
  for (const auto& [id, record] : servers_) {
    if (record.breaker == BreakerState::kHalfOpen) out.push_back(record);
  }
  return out;
}

void ServerRegistry::record_probe(proto::ServerId id, bool success) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!breaker_enabled()) return;
  const auto it = servers_.find(id);
  if (it == servers_.end()) return;
  if (success) {
    probe_success_locked(it->second);
  } else if (it->second.breaker != BreakerState::kClosed) {
    open_breaker_locked(it->second, /*escalate=*/true);
  }
}

void ServerRegistry::record_assignment(proto::ServerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = servers_.find(id);
  if (it != servers_.end()) {
    it->second.assigned += 1;
    it->second.pending += 1.0;
  }
}

void ServerRegistry::expire_stale_locked() {
  if (config_.report_timeout_s <= 0) return;
  const double now = now_seconds();
  for (auto& [id, record] : servers_) {
    if (record.alive && now - record.last_report_time > config_.report_timeout_s) {
      record.alive = false;
      NS_WARN("agent") << "server " << record.name << " expired (no report for "
                       << now - record.last_report_time << "s)";
    }
  }
}

std::vector<proto::SyncEntry> ServerRegistry::snapshot_for_sync() {
  std::lock_guard<std::mutex> lock(mu_);
  const double now = now_seconds();
  std::vector<proto::SyncEntry> out;
  out.reserve(servers_.size());
  for (const auto& [id, record] : servers_) {
    proto::SyncEntry entry;
    entry.server_name = record.name;
    entry.endpoint = record.endpoint;
    entry.mflops = record.mflops;
    entry.workload = record.workload;
    entry.completed = record.completed;
    entry.alive = record.alive;
    entry.age_seconds = std::max(now - record.last_report_time, 0.0);
    for (const auto& problem : record.problems) {
      const auto it = specs_.find(problem);
      if (it != specs_.end()) entry.problems.push_back(it->second);
    }
    out.push_back(std::move(entry));
  }
  return out;
}

bool ServerRegistry::apply_sync(const proto::SyncEntry& entry) {
  std::lock_guard<std::mutex> lock(mu_);
  const double entry_time = now_seconds() - std::max(entry.age_seconds, 0.0);

  for (auto& [id, record] : servers_) {
    if (record.name != entry.server_name || !(record.endpoint == entry.endpoint)) continue;
    // Known server: apply only if the peer's information is fresher.
    if (entry_time <= record.last_report_time) return false;
    record.mflops = entry.mflops;
    record.workload = entry.workload;
    record.completed = entry.completed;
    record.alive = entry.alive;
    record.last_report_time = entry_time;
    for (const auto& spec : entry.problems) {
      record.problems.insert(spec.name);
      specs_.try_emplace(spec.name, spec);
    }
    return true;
  }

  // Foreign server: adopt it with a local id.
  ServerRecord record;
  record.id = next_id_++;
  record.name = entry.server_name;
  record.endpoint = entry.endpoint;
  record.mflops = entry.mflops;
  record.workload = entry.workload;
  record.completed = entry.completed;
  record.alive = entry.alive;
  record.latency_s = config_.default_latency_s;
  record.bandwidth_Bps = config_.default_bandwidth_Bps;
  record.last_report_time = entry_time;
  for (const auto& spec : entry.problems) {
    record.problems.insert(spec.name);
    specs_.try_emplace(spec.name, spec);
  }
  NS_INFO("agent") << "adopted server " << record.name << " from peer sync, id=" << record.id;
  servers_.emplace(record.id, std::move(record));
  return true;
}

std::vector<ServerRecord> ServerRegistry::candidates_for(const std::string& problem) {
  std::lock_guard<std::mutex> lock(mu_);
  expire_stale_locked();
  tick_breakers_locked();
  std::vector<ServerRecord> out;
  for (const auto& [id, record] : servers_) {
    // Half-open servers are rankable too: a slice of real traffic is what
    // proves (or disproves) recovery. Their reduced rating keeps them at the
    // back of the list while healthy servers are available.
    const bool rankable = record.alive || record.breaker == BreakerState::kHalfOpen;
    if (!rankable || record.problems.count(problem) == 0) continue;
    out.push_back(record);
    if (record.rating_factor < 1.0) out.back().mflops *= record.rating_factor;
  }
  return out;
}

std::vector<ServerRecord> ServerRegistry::all() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ServerRecord> out;
  out.reserve(servers_.size());
  for (const auto& [id, record] : servers_) out.push_back(record);
  return out;
}

std::optional<ServerRecord> ServerRegistry::find(proto::ServerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = servers_.find(id);
  if (it == servers_.end()) return std::nullopt;
  return it->second;
}

std::vector<dsl::ProblemSpec> ServerRegistry::catalog() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<dsl::ProblemSpec> out;
  out.reserve(specs_.size());
  for (const auto& [name, spec] : specs_) out.push_back(spec);
  return out;
}

std::optional<dsl::ProblemSpec> ServerRegistry::problem_spec(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = specs_.find(name);
  if (it == specs_.end()) return std::nullopt;
  return it->second;
}

std::size_t ServerRegistry::alive_count() {
  std::lock_guard<std::mutex> lock(mu_);
  expire_stale_locked();
  return static_cast<std::size_t>(
      std::count_if(servers_.begin(), servers_.end(),
                    [](const auto& kv) { return kv.second.alive; }));
}

}  // namespace ns::agent
