#include "agent/policy.hpp"

#include <algorithm>

namespace ns::agent {

namespace {

std::vector<proto::ServerCandidate> to_candidates(const std::vector<ServerRecord>& records,
                                                  const RequestProfile& profile) {
  std::vector<proto::ServerCandidate> out;
  out.reserve(records.size());
  for (const auto& r : records) {
    proto::ServerCandidate c;
    c.server_id = r.id;
    c.server_name = r.name;
    c.endpoint = r.endpoint;
    c.predicted_seconds = predict_seconds(r, profile);
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace

std::vector<proto::ServerCandidate> MinCompletionTimePolicy::rank(
    const std::vector<ServerRecord>& candidates, const RequestProfile& profile) {
  auto out = to_candidates(candidates, profile);
  std::stable_sort(out.begin(), out.end(),
                   [](const proto::ServerCandidate& a, const proto::ServerCandidate& b) {
                     return a.predicted_seconds < b.predicted_seconds;
                   });
  return out;
}

std::vector<proto::ServerCandidate> RoundRobinPolicy::rank(
    const std::vector<ServerRecord>& candidates, const RequestProfile& profile) {
  auto out = to_candidates(candidates, profile);
  std::stable_sort(out.begin(), out.end(),
                   [](const proto::ServerCandidate& a, const proto::ServerCandidate& b) {
                     return a.server_id < b.server_id;
                   });
  if (!out.empty()) {
    std::rotate(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(counter_ % out.size()),
                out.end());
    ++counter_;
  }
  return out;
}

std::vector<proto::ServerCandidate> RandomPolicy::rank(
    const std::vector<ServerRecord>& candidates, const RequestProfile& profile) {
  auto out = to_candidates(candidates, profile);
  std::shuffle(out.begin(), out.end(), rng_);
  return out;
}

std::vector<proto::ServerCandidate> LeastLoadedPolicy::rank(
    const std::vector<ServerRecord>& candidates, const RequestProfile& profile) {
  auto out = to_candidates(candidates, profile);
  // Need workloads/ratings: build a side index from the records.
  std::vector<std::pair<double, double>> key(out.size());  // (workload, -mflops)
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    key[i] = {candidates[i].workload, -candidates[i].mflops};
  }
  std::vector<std::size_t> order(out.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&key](std::size_t a, std::size_t b) { return key[a] < key[b]; });
  std::vector<proto::ServerCandidate> sorted;
  sorted.reserve(out.size());
  for (const std::size_t i : order) sorted.push_back(std::move(out[i]));
  return sorted;
}

Result<std::unique_ptr<SelectionPolicy>> make_policy(std::string_view name, std::uint64_t seed) {
  if (name == "mct") return std::unique_ptr<SelectionPolicy>(new MinCompletionTimePolicy());
  if (name == "round_robin") return std::unique_ptr<SelectionPolicy>(new RoundRobinPolicy());
  if (name == "random") return std::unique_ptr<SelectionPolicy>(new RandomPolicy(seed));
  if (name == "least_loaded") return std::unique_ptr<SelectionPolicy>(new LeastLoadedPolicy());
  return make_error(ErrorCode::kBadArguments, "unknown policy: " + std::string(name));
}

}  // namespace ns::agent
