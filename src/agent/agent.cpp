#include "agent/agent.hpp"

#include <algorithm>

#include "common/clock.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "net/pool.hpp"

namespace ns::agent {

namespace {

using proto::MessageType;

serial::Bytes encode_payload(const auto& msg) {
  serial::Encoder enc;
  msg.encode(enc);
  return enc.take();
}

Status send_error(const net::ReactorConnPtr& conn, ErrorCode code,
                  const std::string& message) {
  proto::ErrorReply reply;
  reply.error_code = static_cast<std::uint16_t>(code);
  reply.message = message;
  return conn->send(static_cast<std::uint16_t>(MessageType::kErrorReply),
                    encode_payload(reply));
}

}  // namespace

Result<std::unique_ptr<Agent>> Agent::start(AgentConfig config) {
  auto policy = make_policy(config.policy, config.policy_seed);
  if (!policy.ok()) return policy.error();
  auto listener = net::TcpListener::bind(config.listen);
  if (!listener.ok()) return listener.error();
  std::unique_ptr<Agent> agent(
      new Agent(std::move(config), std::move(listener).value(), std::move(policy).value()));
  for (const auto& peer : agent->config_.peers) {
    agent->peers_.push_back(PeerState{peer});
  }
  // Warm the registry from peers before serving: a restarted agent then
  // answers queries from the mesh's directory instead of an empty one.
  if (agent->config_.sync_period_s > 0 && agent->config_.bootstrap_from_peers) {
    agent->bootstrap_from_peers();
  }
  net::ReactorConfig reactor_config;
  reactor_config.idle_timeout_s = std::max(agent->config_.io_timeout_s, 5.0);
  // Every agent handler is a short metadata lookup (registry read/write,
  // policy ranking) — run them on the loop thread and skip the two context
  // switches per request that pool dispatch costs.
  reactor_config.inline_handlers = true;
  reactor_config.guard = agent->config_.guard;
  NS_RETURN_IF_ERROR(agent->reactor_.start(
      std::move(agent->listener_),
      [raw = agent.get()](const net::ReactorConnPtr& conn, net::Message&& msg) {
        return raw->handle_message(conn, std::move(msg));
      },
      reactor_config));
  if (agent->config_.ping_period_s > 0) {
    agent->ping_thread_ = std::thread([raw = agent.get()] { raw->ping_loop(); });
  }
  // Started even with no initial peers: add_peer() may grow the mesh later.
  if (agent->config_.sync_period_s > 0) {
    agent->sync_thread_ = std::thread([raw = agent.get()] { raw->sync_loop(); });
  }
  return agent;
}

void Agent::add_peer(const net::Endpoint& peer) {
  std::lock_guard<std::mutex> lock(peers_mu_);
  for (const auto& p : peers_) {
    if (p.endpoint == peer) return;
  }
  peers_.push_back(PeerState{peer});
}

std::vector<net::Endpoint> Agent::peer_endpoints() {
  std::lock_guard<std::mutex> lock(peers_mu_);
  std::vector<net::Endpoint> out;
  out.reserve(peers_.size());
  for (const auto& p : peers_) out.push_back(p.endpoint);
  return out;
}

void Agent::note_peer_result(const net::Endpoint& peer, bool ok) {
  std::lock_guard<std::mutex> lock(peers_mu_);
  for (auto& p : peers_) {
    if (!(p.endpoint == peer)) continue;
    p.alive = ok;
    if (ok) p.last_ok_time = now_seconds();
    return;
  }
}

void Agent::bootstrap_from_peers() {
  for (const auto& peer : peer_endpoints()) {
    auto reply = net::pool_round_trip(peer, static_cast<std::uint16_t>(MessageType::kSyncPull),
                                      {}, /*timeout_s=*/2.0, /*dial_timeout_s=*/0.5);
    if (!reply.ok() ||
        reply.value().type != static_cast<std::uint16_t>(MessageType::kSyncState)) {
      note_peer_result(peer, false);
      continue;
    }
    serial::Decoder dec(reply.value().payload);
    auto state = proto::SyncState::decode(dec);
    if (!state.ok()) {
      note_peer_result(peer, false);
      continue;
    }
    std::size_t applied = 0;
    for (const auto& entry : state.value().entries) {
      if (registry_.apply_sync(entry)) ++applied;
    }
    metrics::counter("agent.bootstrap_entries_total").inc(applied);
    note_peer_result(peer, true);
    NS_INFO("agent") << "bootstrapped " << applied << "/" << state.value().entries.size()
                     << " registry entries from peer " << peer.to_string();
  }
}

Agent::Agent(AgentConfig config, net::TcpListener listener,
             std::unique_ptr<SelectionPolicy> policy)
    : config_(std::move(config)),
      listener_(std::move(listener)),
      endpoint_(listener_.endpoint()),
      registry_(config_.registry),
      policy_(std::move(policy)) {}

Agent::~Agent() { stop(); }

void Agent::stop() {
  // Single flow whether the stop is local or was flagged remotely via
  // kShutdown: flag, stop the reactor (closes the listener and every
  // connection, joins the loop and all handler threads — agent handlers
  // never block, so no pre-join wakeups are needed), then join the
  // periodic threads.
  stopping_.store(true);
  reactor_.stop();
  listener_.close();  // only still bound if start() failed before the reactor adopted it
  if (ping_thread_.joinable()) ping_thread_.join();
  if (sync_thread_.joinable()) sync_thread_.join();
}

void Agent::ping_loop() {
  while (!stopping_.load()) {
    // Sleep in small increments so stop() stays prompt.
    const Deadline next(config_.ping_period_s);
    while (!next.expired() && !stopping_.load()) {
      sleep_seconds(std::min(0.02, next.remaining()));
    }
    if (stopping_.load()) return;

    const auto ping_ok = [](const net::Endpoint& endpoint) {
      auto conn = net::TcpConnection::connect(endpoint, 0.5);
      if (!conn.ok() ||
          !net::send_message(conn.value(), static_cast<std::uint16_t>(MessageType::kPing), {})
               .ok()) {
        return false;
      }
      auto reply = net::recv_message(conn.value(), 1.0);
      return reply.ok() &&
             reply.value().type == static_cast<std::uint16_t>(MessageType::kPong);
    };

    for (const auto& record : registry_.all()) {
      if (!record.alive || stopping_.load()) continue;
      if (!ping_ok(record.endpoint)) {
        NS_WARN("agent") << "ping to " << record.name << " failed";
        registry_.record_failure(record.id);
      }
    }

    // Half-open probing: quarantined servers whose cooldown elapsed get an
    // active ping so recovery is detected even when healthy peers absorb all
    // client traffic. Pongs accumulate toward re-admission; silence re-arms
    // the quarantine.
    for (const auto& record : registry_.probe_candidates()) {
      if (stopping_.load()) break;
      registry_.record_probe(record.id, ping_ok(record.endpoint));
    }
  }
}

void Agent::sync_loop() {
  while (!stopping_.load()) {
    const Deadline next(config_.sync_period_s);
    while (!next.expired() && !stopping_.load()) {
      sleep_seconds(std::min(0.02, next.remaining()));
    }
    if (stopping_.load()) return;

    proto::SyncState state;
    state.entries = registry_.snapshot_for_sync();
    if (state.entries.empty()) continue;
    const serial::Bytes payload = encode_payload(state);
    for (const auto& peer : peer_endpoints()) {
      // Snapshots ride the keep-alive pool: one warm connection per peer
      // instead of a dial per period. A down peer fails the dial and is
      // retried next period.
      const bool sent =
          net::pool_post(peer, static_cast<std::uint16_t>(MessageType::kSyncState), payload,
                         /*dial_timeout_s=*/0.5)
              .ok();
      note_peer_result(peer, sent);
    }
  }
}

bool Agent::handle_message(const net::ReactorConnPtr& conn, net::Message&& msg) {
  if (stopping_.load()) return false;
  serial::Decoder dec(msg.payload);
  switch (static_cast<MessageType>(msg.type)) {
    case MessageType::kRegisterServer: {
      auto reg = proto::RegisterServer::decode(dec);
      if (!reg.ok()) {
        (void)send_error(conn, reg.error().code, reg.error().message);
        return false;
      }
      stat_registrations_.fetch_add(1);
      metrics::counter("agent.registrations_total").inc();
      proto::RegisterAck ack;
      ack.server_id = registry_.add(reg.value());
      // Hand the server our peer list so it can register with the whole
      // mesh even when configured with a single agent endpoint.
      ack.peer_agents = peer_endpoints();
      return conn->send(static_cast<std::uint16_t>(MessageType::kRegisterAck),
                               encode_payload(ack))
          .ok();
    }

    case MessageType::kWorkloadReport: {
      auto report = proto::WorkloadReport::decode(dec);
      if (report.ok()) {
        stat_workload_reports_.fetch_add(1);
        metrics::counter("agent.workload_reports_total").inc();
        registry_.update_workload(report.value());
      }
      return true;  // fire-and-forget
    }

    case MessageType::kDeregisterServer: {
      auto dereg = proto::DeregisterServer::decode(dec);
      if (dereg.ok() && registry_.deregister(dereg.value().server_id)) {
        metrics::counter("agent.deregistrations_total").inc();
        refresh_server_gauges();
      }
      return true;  // fire-and-forget, like workload reports
    }

    case MessageType::kQuery: {
      auto query = proto::Query::decode(dec);
      if (!query.ok()) {
        (void)send_error(conn, query.error().code, query.error().message);
        return false;
      }
      stat_queries_.fetch_add(1);
      metrics::counter("agent.queries_total").inc();
      const auto spec = registry_.problem_spec(query.value().problem);
      if (!spec) {
        metrics::counter("agent.unknown_problem_total").inc();
        return send_error(conn, ErrorCode::kUnknownProblem, query.value().problem).ok();
      }
      auto records = registry_.candidates_for(query.value().problem);
      if (records.empty()) {
        metrics::counter("agent.no_server_total").inc();
        return send_error(conn, ErrorCode::kNoServer,
                          "no alive server offers " + query.value().problem)
            .ok();
      }
      const RequestProfile profile = profile_request(
          *spec, query.value().size_hint, query.value().input_bytes, query.value().output_bytes);
      if (!config_.count_pending) {
        for (auto& r : records) r.pending = 0.0;  // ablation: report-only load view
      }
      // The scheduling decision is a traced hop: its duration travels back
      // to the client in the ServerList and lands in this process's
      // span.agent.schedule_s histogram.
      const Stopwatch schedule_watch;
      proto::ServerList list;
      {
        std::lock_guard<std::mutex> lock(policy_mu_);
        list.candidates = policy_->rank(records, profile);
      }
      list.schedule_seconds = schedule_watch.elapsed();
      trace::record_span(query.value().trace_id, "agent.schedule", 0.0, list.schedule_seconds);
      if (list.candidates.size() > query.value().max_candidates) {
        list.candidates.resize(query.value().max_candidates);
      }
      if (!list.candidates.empty()) {
        registry_.record_assignment(list.candidates.front().server_id);
      }
      return conn->send(static_cast<std::uint16_t>(MessageType::kServerList),
                               encode_payload(list))
          .ok();
    }

    case MessageType::kFailureReport: {
      auto report = proto::FailureReport::decode(dec);
      if (report.ok()) {
        stat_failure_reports_.fetch_add(1);
        metrics::counter("agent.failure_reports_total").inc();
        registry_.record_failure(report.value().server_id);
      }
      return true;
    }

    case MessageType::kMetricsReport: {
      auto report = proto::MetricsReport::decode(dec);
      if (report.ok()) {
        registry_.record_metrics(report.value().server_id, report.value().bytes,
                                 report.value().transfer_seconds);
      }
      return true;
    }

    case MessageType::kListProblems: {
      proto::ProblemCatalog catalog;
      catalog.problems = registry_.catalog();
      return conn->send(static_cast<std::uint16_t>(MessageType::kProblemCatalog),
                               encode_payload(catalog))
          .ok();
    }

    case MessageType::kPing: {
      return conn->send(static_cast<std::uint16_t>(MessageType::kPong), {}).ok();
    }

    case MessageType::kAgentStatsRequest: {
      return conn->send(static_cast<std::uint16_t>(MessageType::kAgentStatsReply),
                        encode_payload(stats()))
          .ok();
    }

    case MessageType::kMetricsQuery: {
      auto query = proto::MetricsQuery::decode(dec);
      refresh_server_gauges();
      proto::MetricsDump dump;
      dump.snapshot = metrics::Registry::instance().snapshot(
          query.ok() ? query.value().prefix : std::string{});
      return conn->send(static_cast<std::uint16_t>(MessageType::kMetricsDump),
                               encode_payload(dump))
          .ok();
    }

    case MessageType::kSyncState: {
      auto state = proto::SyncState::decode(dec);
      if (state.ok()) {
        for (const auto& entry : state.value().entries) {
          (void)registry_.apply_sync(entry);
        }
      }
      return true;  // fire-and-forget
    }

    case MessageType::kSyncPull: {
      // Anti-entropy: a (re)starting peer asks for our full directory.
      proto::SyncState state;
      state.entries = registry_.snapshot_for_sync();
      return conn->send(static_cast<std::uint16_t>(MessageType::kSyncState),
                               encode_payload(state))
          .ok();
    }

    case MessageType::kShutdown: {
      // Flag the stop and release the port asynchronously: this handler runs
      // on a reactor pool thread and cannot join the reactor from here; the
      // owner's stop() does the full teardown.
      stopping_.store(true);
      reactor_.stop_accepting();
      return false;
    }

    default:
      (void)send_error(conn, ErrorCode::kProtocol,
                       "unexpected message type " + std::to_string(msg.type));
      return false;
  }
}

void Agent::refresh_server_gauges() {
  // Gauges are last-write-wins snapshots of directory state, refreshed at
  // scrape time: breaker state (0 closed / 1 open / 2 half-open), the
  // recovering rating factor, reported workload and liveness per server.
  for (const auto& record : registry_.all()) {
    const std::string base = "agent.server." + record.name + ".";
    metrics::gauge(base + "breaker").set(static_cast<double>(record.breaker));
    metrics::gauge(base + "rating_factor").set(record.rating_factor);
    metrics::gauge(base + "workload").set(record.workload);
    metrics::gauge(base + "alive").set(record.alive ? 1.0 : 0.0);
    metrics::gauge(base + "sojourn_p95_s").set(record.sojourn_p95_s);
    metrics::gauge(base + "free_slots").set(record.free_slots);
    metrics::gauge(base + "mem_free_bytes").set(record.mem_free_bytes);
    metrics::gauge(base + "spill_active").set(static_cast<double>(record.spill_active));
  }
  metrics::gauge("agent.alive_servers").set(static_cast<double>(registry_.alive_count()));
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    std::size_t alive_peers = 0;
    for (const auto& p : peers_) {
      if (p.alive) ++alive_peers;
      metrics::gauge("agent.peer." + p.endpoint.to_string() + ".alive")
          .set(p.alive ? 1.0 : 0.0);
    }
    metrics::gauge("agent.alive_peers").set(static_cast<double>(alive_peers));
  }
}

proto::AgentStats Agent::stats() {
  proto::AgentStats s;
  s.queries = stat_queries_.load();
  s.registrations = stat_registrations_.load();
  s.workload_reports = stat_workload_reports_.load();
  s.failure_reports = stat_failure_reports_.load();
  s.alive_servers = static_cast<std::uint32_t>(registry_.alive_count());
  {
    std::lock_guard<std::mutex> lock(peers_mu_);
    const double now = now_seconds();
    s.peers.reserve(peers_.size());
    for (const auto& p : peers_) {
      proto::PeerStatus status;
      status.endpoint = p.endpoint;
      status.alive = p.alive;
      status.age_seconds = p.last_ok_time < 0 ? -1.0 : now - p.last_ok_time;
      s.peers.push_back(std::move(status));
    }
  }
  return s;
}

}  // namespace ns::agent
