// Server-selection policies.
//
// MinCompletionTime is NetSolve's policy (rank by the predictor); the other
// three are the baselines the load-balancing experiments compare against.
// Every policy returns a full ranked list, not a single winner — the
// client's fault-tolerance loop walks the list on failure.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "agent/predictor.hpp"
#include "agent/registry.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace ns::agent {

class SelectionPolicy {
 public:
  virtual ~SelectionPolicy() = default;

  /// Rank `candidates` best-first for the given request. Implementations
  /// must fill ServerCandidate::predicted_seconds (the client reports it in
  /// the prediction-accuracy experiment) regardless of their ranking key.
  virtual std::vector<proto::ServerCandidate> rank(
      const std::vector<ServerRecord>& candidates, const RequestProfile& profile) = 0;

  virtual std::string_view name() const noexcept = 0;
};

/// NetSolve's policy: ascending predicted completion time.
class MinCompletionTimePolicy final : public SelectionPolicy {
 public:
  std::vector<proto::ServerCandidate> rank(const std::vector<ServerRecord>& candidates,
                                           const RequestProfile& profile) override;
  std::string_view name() const noexcept override { return "mct"; }
};

/// Rotates through servers in id order, ignoring all state.
class RoundRobinPolicy final : public SelectionPolicy {
 public:
  std::vector<proto::ServerCandidate> rank(const std::vector<ServerRecord>& candidates,
                                           const RequestProfile& profile) override;
  std::string_view name() const noexcept override { return "round_robin"; }

 private:
  std::uint64_t counter_ = 0;
};

/// Uniform random shuffle.
class RandomPolicy final : public SelectionPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed = 0xc0ffee) : rng_(seed) {}
  std::vector<proto::ServerCandidate> rank(const std::vector<ServerRecord>& candidates,
                                           const RequestProfile& profile) override;
  std::string_view name() const noexcept override { return "random"; }

 private:
  Rng rng_;
};

/// Ascending reported workload, ties broken by descending rating. Uses load
/// but ignores problem size and network distance.
class LeastLoadedPolicy final : public SelectionPolicy {
 public:
  std::vector<proto::ServerCandidate> rank(const std::vector<ServerRecord>& candidates,
                                           const RequestProfile& profile) override;
  std::string_view name() const noexcept override { return "least_loaded"; }
};

/// Factory by name ("mct", "round_robin", "random", "least_loaded").
Result<std::unique_ptr<SelectionPolicy>> make_policy(std::string_view name,
                                                     std::uint64_t seed = 0xc0ffee);

}  // namespace ns::agent
