#include "agent/predictor.hpp"

#include <algorithm>

namespace ns::agent {

RequestProfile profile_request(const dsl::ProblemSpec& spec, std::uint64_t size_hint,
                               std::uint64_t input_bytes, std::uint64_t output_bytes) {
  RequestProfile profile;
  profile.flops = spec.complexity.flops(static_cast<std::size_t>(std::max<std::uint64_t>(size_hint, 1)));
  profile.input_bytes = input_bytes;
  profile.output_bytes = output_bytes;
  // Resident footprint at the server: the decoded operands plus a result
  // of comparable size — the same 2x the server's own working-set estimate
  // uses, so the agent's feasibility check and the server's admission gate
  // agree about which requests fit.
  profile.mem_bytes =
      2.0 * (static_cast<double>(input_bytes) + static_cast<double>(output_bytes));
  return profile;
}

double predict_seconds(const ServerRecord& server, const RequestProfile& profile) noexcept {
  constexpr double kPenalty = 1e6;  // seconds; sorts unusable servers last

  double t = std::max(server.latency_s, 0.0);

  const double total_bytes =
      static_cast<double>(profile.input_bytes) + static_cast<double>(profile.output_bytes);
  if (total_bytes > 0) {
    if (server.bandwidth_Bps > 0) {
      t += total_bytes / server.bandwidth_Bps;
    } else {
      t += kPenalty;
    }
  }

  if (profile.flops > 0) {
    // Effective load = last reported workload + requests routed here since
    // that report (see ServerRecord::pending).
    const double load = std::max(server.workload, 0.0) + std::max(server.pending, 0.0);
    const double rate = server.mflops * 1e6 / (1.0 + load);
    if (rate > 0) {
      t += profile.flops / rate;
    } else {
      t += kPenalty;
    }
  }

  // Saturation steering: a server that reported no free worker slots will
  // queue this request, and its own measured p95 sojourn is the best
  // estimate of that wait — better than the workload divisor above, which
  // models processor sharing, not a bounded worker pool. Servers that
  // predate the field (free_slots < 0) are left alone.
  if (server.free_slots >= 0.0 && server.free_slots < 0.5 && server.sojourn_p95_s > 0.0) {
    t += server.sojourn_p95_s;
  }

  // Durability steering: a server whose journal fail-stopped (durable == 0)
  // still computes fine, but anything checkpointable sent there loses crash
  // protection — and durable-required requests get shed outright, costing a
  // round trip. A mild multiplicative penalty de-prefers it while load is
  // comparable without blacklisting it (it may be the only server left).
  // durable < 0 means "never journaled / pre-field" and is left alone: that
  // is the configured steady state, not a fault.
  if (server.durable == 0) {
    t *= 4.0;
  }

  // Memory feasibility: a server whose reported MemGovernor headroom cannot
  // fit this request's operands would only shed it (mem.shed_total) and
  // cost the client a retry — rank it out, additively like the other
  // unusable-server cases so it still sorts ahead of dead servers when the
  // whole pool is full. mem_free_bytes < 0 means "ungoverned / pre-field"
  // and is left alone; that is the configured steady state, not pressure.
  if (server.mem_free_bytes >= 0.0 && profile.mem_bytes > 0.0 &&
      profile.mem_bytes > server.mem_free_bytes) {
    t += kPenalty;
  }
  // A server actively spilling payloads to disk still completes work, but
  // every queued job pays a disk round trip — mild multiplicative
  // de-preference, same shape as the durability steering above.
  if (server.spill_active == 1) {
    t *= 2.0;
  }
  return t;
}

}  // namespace ns::agent
