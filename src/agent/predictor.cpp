#include "agent/predictor.hpp"

#include <algorithm>

namespace ns::agent {

RequestProfile profile_request(const dsl::ProblemSpec& spec, std::uint64_t size_hint,
                               std::uint64_t input_bytes, std::uint64_t output_bytes) {
  RequestProfile profile;
  profile.flops = spec.complexity.flops(static_cast<std::size_t>(std::max<std::uint64_t>(size_hint, 1)));
  profile.input_bytes = input_bytes;
  profile.output_bytes = output_bytes;
  return profile;
}

double predict_seconds(const ServerRecord& server, const RequestProfile& profile) noexcept {
  constexpr double kPenalty = 1e6;  // seconds; sorts unusable servers last

  double t = std::max(server.latency_s, 0.0);

  const double total_bytes =
      static_cast<double>(profile.input_bytes) + static_cast<double>(profile.output_bytes);
  if (total_bytes > 0) {
    if (server.bandwidth_Bps > 0) {
      t += total_bytes / server.bandwidth_Bps;
    } else {
      t += kPenalty;
    }
  }

  if (profile.flops > 0) {
    // Effective load = last reported workload + requests routed here since
    // that report (see ServerRecord::pending).
    const double load = std::max(server.workload, 0.0) + std::max(server.pending, 0.0);
    const double rate = server.mflops * 1e6 / (1.0 + load);
    if (rate > 0) {
      t += profile.flops / rate;
    } else {
      t += kPenalty;
    }
  }

  // Saturation steering: a server that reported no free worker slots will
  // queue this request, and its own measured p95 sojourn is the best
  // estimate of that wait — better than the workload divisor above, which
  // models processor sharing, not a bounded worker pool. Servers that
  // predate the field (free_slots < 0) are left alone.
  if (server.free_slots >= 0.0 && server.free_slots < 0.5 && server.sojourn_p95_s > 0.0) {
    t += server.sojourn_p95_s;
  }

  // Durability steering: a server whose journal fail-stopped (durable == 0)
  // still computes fine, but anything checkpointable sent there loses crash
  // protection — and durable-required requests get shed outright, costing a
  // round trip. A mild multiplicative penalty de-prefers it while load is
  // comparable without blacklisting it (it may be the only server left).
  // durable < 0 means "never journaled / pre-field" and is left alone: that
  // is the configured steady state, not a fault.
  if (server.durable == 0) {
    t *= 4.0;
  }
  return t;
}

}  // namespace ns::agent
