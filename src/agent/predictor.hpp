// Completion-time prediction — the heart of NetSolve's load balancing.
//
// For a request of problem p with input/output payloads of known size, the
// agent estimates, for each candidate server s:
//
//   T(s) = latency(s)                       (connection / message overhead)
//        + (in_bytes + out_bytes) / bandwidth(s)    (argument transfer)
//        + flops(p, N) / effective_rate(s)          (computation)
//
//   effective_rate(s) = mflops(s) * 1e6 / (1 + workload(s))
//
// The workload divisor models processor sharing: a server already running W
// jobs gives the new request ~1/(1+W) of the machine. flops(p, N) comes from
// the problem description's complexity model (a * N^b).
#pragma once

#include "agent/registry.hpp"
#include "dsl/problem.hpp"

namespace ns::agent {

struct RequestProfile {
  double flops = 0.0;             // complexity model output for this request
  std::uint64_t input_bytes = 0;
  std::uint64_t output_bytes = 0;
  /// Estimated resident operand footprint at the server: payload plus a
  /// result of comparable size. Compared against the candidate's reported
  /// MemGovernor headroom (ServerRecord::mem_free_bytes) — a server that
  /// cannot fit the operands would only shed the request.
  double mem_bytes = 0.0;
};

/// Build a profile from a spec and the client's query metadata.
RequestProfile profile_request(const dsl::ProblemSpec& spec, std::uint64_t size_hint,
                               std::uint64_t input_bytes, std::uint64_t output_bytes);

/// The completion-time formula above. Degenerate server data (zero rating or
/// bandwidth) yields a large-but-finite penalty so such servers sort last
/// instead of producing NaN/inf orderings.
double predict_seconds(const ServerRecord& server, const RequestProfile& profile) noexcept;

}  // namespace ns::agent
