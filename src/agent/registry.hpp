// Agent-side server directory.
//
// Tracks every registered computational server: what problems it offers,
// its LINPACK-style rating, its most recent workload report, client-observed
// network metrics (EWMA latency/bandwidth), and liveness. This is the state
// the load-balancing policies rank against.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "dsl/problem.hpp"
#include "net/endpoint.hpp"
#include "proto/messages.hpp"

namespace ns::agent {

/// Per-server circuit breaker state (see RegistryConfig::quarantine_s).
///   kClosed   -- healthy; requests flow normally.
///   kOpen     -- quarantined after repeated failures; no traffic until the
///                cooldown elapses.
///   kHalfOpen -- cooldown elapsed; probe traffic (agent pings and a reduced
///                share of client requests) decides between re-admission and
///                another quarantine round.
enum class BreakerState { kClosed, kOpen, kHalfOpen };

std::string_view breaker_state_name(BreakerState state) noexcept;

struct ServerRecord {
  proto::ServerId id = proto::kInvalidServerId;
  std::string name;
  net::Endpoint endpoint;
  double mflops = 0.0;

  double workload = 0.0;            // latest report (running + queued jobs)
  std::uint64_t completed = 0;      // lifetime completions (from reports)
  double last_report_time = 0.0;    // now_seconds() of last contact

  // Queue pressure piggybacked on workload reports (overload steering).
  double sojourn_p95_s = 0.0;       // p95 queue sojourn at the server
  double free_slots = -1.0;         // free worker slots (-1 = not reported)
  /// Durability from the latest workload report: 1 = journaling, 0 = journal
  /// fail-stopped (degraded), -1 = not journaling / pre-field server. The
  /// predictor de-prefers degraded servers for checkpointable work.
  int durable = -1;
  /// Memory headroom from the latest workload report: free bytes under the
  /// server's MemGovernor budget, -1 = ungoverned / pre-field server. The
  /// predictor ranks out servers that cannot fit a request's operands.
  double mem_free_bytes = -1.0;
  /// Payload-spill ternary mirroring `durable`: 1 = actively paging queued
  /// payloads to disk, 0 = spill configured and idle, -1 = off / pre-field.
  int spill_active = -1;

  // Client-observed network estimates, EWMA-updated from MetricsReports.
  double latency_s = 0.0;
  double bandwidth_Bps = 0.0;

  std::uint64_t assigned = 0;       // times this server topped a ranking
  /// Requests handed to this server since its last workload report. The
  /// predictor adds this to the reported workload so a burst of concurrent
  /// queries spreads across the pool instead of dog-piling the one server
  /// that looked idle in the (slightly stale) last report.
  double pending = 0.0;
  int consecutive_failures = 0;
  bool alive = true;
  /// Server process lifetime that produced the latest registration (0 =
  /// pre-incarnation server). See proto::RegisterServer::incarnation.
  std::uint64_t incarnation = 0;

  // Circuit breaker (active only when RegistryConfig::quarantine_s > 0).
  BreakerState breaker = BreakerState::kClosed;
  double open_until = 0.0;          // now_seconds() when probes are admitted
  int open_count = 0;               // consecutive opens (cooldown backoff)
  int probe_successes = 0;          // half-open progress toward closing
  /// Multiplies the rated mflops in ranking snapshots. Re-admitted servers
  /// start reduced and earn their rating back through observed successes.
  double rating_factor = 1.0;

  std::set<std::string> problems;   // names offered
};

struct RegistryConfig {
  /// Seed values for network estimates before any client measurement.
  double default_latency_s = 0.001;
  double default_bandwidth_Bps = 100e6;
  /// EWMA weight of a new measurement.
  double ewma_alpha = 0.3;
  /// Consecutive client-reported failures before a server is marked dead.
  int max_failures = 1;
  /// A server silent for longer than this is considered dead at query time;
  /// <= 0 disables expiry.
  double report_timeout_s = 0.0;

  // ---- circuit breaker ----
  /// Base quarantine cooldown after the breaker opens; 0 disables the
  /// breaker entirely (legacy behavior: a dead server stays dead until it
  /// re-registers).
  double quarantine_s = 0.0;
  /// Cooldown multiplier per consecutive re-open (exponential), capped at
  /// quarantine_max_s.
  double quarantine_backoff = 2.0;
  double quarantine_max_s = 5.0;
  /// Successful probes required in half-open before the breaker closes.
  int probes_to_close = 2;
  /// Rating multiplier applied while half-open and on re-admission; each
  /// client-reported success recovers it toward 1 (see rating_recovery).
  double readmit_rating_factor = 0.5;
  /// Per-success recovery step: factor += step * (1 - factor).
  double rating_recovery = 0.25;
};

class ServerRegistry {
 public:
  explicit ServerRegistry(RegistryConfig config = {}) : config_(config) {}

  /// Add (or re-add) a server; returns its id. A returning server (same
  /// name + endpoint) keeps its id. A registration with a NEW incarnation is
  /// a process restart and fully revives the record (breaker reset); the
  /// SAME incarnation is a periodic keep-alive refresh — it updates the
  /// rating/problem set and proves liveness, but with the circuit breaker
  /// active it cannot bust an open quarantine (the failures were observed on
  /// the client path; the server refreshing itself says nothing about them).
  proto::ServerId add(const proto::RegisterServer& reg);

  /// Apply a workload report. Unknown ids are ignored (stale reports from a
  /// server the agent already dropped).
  void update_workload(const proto::WorkloadReport& report);

  /// Server announced it is draining (graceful shutdown): drop it from
  /// rankings immediately. The record stays, marked dead with a fresh
  /// timestamp, so federation sync propagates the deadness instead of
  /// letting a stale peer entry resurrect it; a registration from a new
  /// incarnation fully revives it. Returns false for unknown ids.
  bool deregister(proto::ServerId id);

  /// Client reported a failed interaction; marks the server dead once
  /// consecutive failures reach the configured threshold.
  void record_failure(proto::ServerId id);

  /// Client reported a successful transfer of `bytes` in `seconds`; folds
  /// the implied bandwidth into the EWMA estimates and clears the failure
  /// streak.
  void record_metrics(proto::ServerId id, std::uint64_t bytes, double seconds);

  /// Bump the "assigned" counter (the ranking's round-robin state).
  void record_assignment(proto::ServerId id);

  /// Quarantined servers whose cooldown has elapsed (transitioning them to
  /// half-open). The agent's ping loop probes these actively so a recovered
  /// server is re-admitted even when healthy peers absorb all client
  /// traffic.
  std::vector<ServerRecord> probe_candidates();

  /// Outcome of a half-open probe: enough successes close the breaker
  /// (re-admitting the server at a reduced rating); a failure re-arms the
  /// quarantine with a longer cooldown.
  void record_probe(proto::ServerId id, bool success);

  /// Snapshot of alive servers offering `problem` (expiring stale ones if a
  /// report timeout is configured).
  std::vector<ServerRecord> candidates_for(const std::string& problem);

  /// Snapshot of everything (tests, stats, CLI).
  std::vector<ServerRecord> all();

  std::optional<ServerRecord> find(proto::ServerId id);

  /// The union problem catalogue with each problem's spec (first
  /// registration of a name wins; specs are expected identical across
  /// servers, as in the original system's shared description files).
  std::vector<dsl::ProblemSpec> catalog();
  std::optional<dsl::ProblemSpec> problem_spec(const std::string& name);

  std::size_t alive_count();

  // ---- federation ----

  /// Snapshot the registry as sync entries for peer agents. Each entry's
  /// age is now - last contact, so the receiver can judge freshness.
  std::vector<proto::SyncEntry> snapshot_for_sync();

  /// Merge one peer entry: unknown servers are added (with a local id);
  /// known servers are updated only if the entry is fresher than local
  /// state. Returns true if the entry was applied.
  bool apply_sync(const proto::SyncEntry& entry);

 private:
  void expire_stale_locked();
  bool breaker_enabled() const noexcept { return config_.quarantine_s > 0.0; }
  /// Move due kOpen records to kHalfOpen (no-op when the breaker is off).
  void tick_breakers_locked();
  /// Open (or re-arm) the quarantine for a failing server.
  void open_breaker_locked(ServerRecord& record, bool escalate);
  /// One half-open success; closes the breaker at the configured count.
  void probe_success_locked(ServerRecord& record);

  RegistryConfig config_;
  std::mutex mu_;
  std::map<proto::ServerId, ServerRecord> servers_;
  std::map<std::string, dsl::ProblemSpec> specs_;
  proto::ServerId next_id_ = 1;
};

}  // namespace ns::agent
