// The NetSolve agent: resource directory + scheduler daemon.
//
// Servers register their problem catalogues and stream workload reports;
// clients ask "who should run problem p with this much data?" and receive a
// ranked candidate list. The agent never touches argument data — exactly the
// original design, where the agent is a lightweight broker and all heavy
// traffic flows client <-> server directly.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "agent/policy.hpp"
#include "agent/registry.hpp"
#include "common/error.hpp"
#include "net/reactor.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "proto/messages.hpp"

namespace ns::agent {

struct AgentConfig {
  net::Endpoint listen{"127.0.0.1", 0};  // port 0 = ephemeral
  std::string policy = "mct";
  std::uint64_t policy_seed = 0xc0ffee;
  RegistryConfig registry;
  double io_timeout_s = 10.0;
  /// Transport hostile-peer armor. The agent is a metadata-only endpoint:
  /// frames cap at 1 MiB and buffer budgets are tight (see
  /// GuardConfig::agent_defaults) — a giant-frame bomb aimed at the
  /// directory costs a header, not an allocation.
  net::GuardConfig guard = net::GuardConfig::agent_defaults();
  /// Active liveness probing: ping every alive server this often and record
  /// a failure on no Pong. 0 disables (liveness then comes only from
  /// client failure reports and the report timeout).
  double ping_period_s = 0.0;
  /// Count not-yet-reported assignments toward each server's load in the
  /// predictor (ServerRecord::pending). Disabling this is the E9 ablation:
  /// concurrent request bursts then dog-pile the server that looked idle in
  /// the last workload report.
  bool count_pending = true;
  /// Federation: peer agents to exchange registry snapshots with. Servers
  /// registered at any agent in the mesh become visible to clients of every
  /// agent; freshness is resolved per entry (see ServerRegistry::apply_sync).
  std::vector<net::Endpoint> peers;
  /// Snapshot exchange period; 0 disables federation even if peers are set.
  double sync_period_s = 0.0;
  /// Anti-entropy bootstrap: pull a full registry snapshot from each peer at
  /// startup so a restarted agent serves a warm directory before the first
  /// server re-registration arrives. Requires sync_period_s > 0.
  bool bootstrap_from_peers = true;
};

class Agent {
 public:
  /// Bind, start the serving reactor, and return a running agent.
  static Result<std::unique_ptr<Agent>> start(AgentConfig config);

  ~Agent();
  Agent(const Agent&) = delete;
  Agent& operator=(const Agent&) = delete;

  /// Where clients and servers reach this agent.
  net::Endpoint endpoint() const { return endpoint_; }

  /// Close the listener and wait for in-flight connections to drain.
  void stop();

  /// Direct registry access for tests and experiment harnesses.
  ServerRegistry& registry() noexcept { return registry_; }

  /// Non-const: computing alive_servers expires stale registrations.
  proto::AgentStats stats();

  /// Add a federation peer at runtime (testkit meshes learn peer ports only
  /// after every agent has bound its ephemeral listener). Duplicates are
  /// ignored. The sync loop picks the peer up on its next period.
  void add_peer(const net::Endpoint& peer);

 private:
  Agent(AgentConfig config, net::TcpListener listener,
        std::unique_ptr<SelectionPolicy> policy);

  /// Health of one federation peer, updated by every snapshot exchange.
  struct PeerState {
    net::Endpoint endpoint;
    bool alive = false;
    double last_ok_time = -1.0;  // now_seconds() of last success; < 0 = never
  };

  /// Reactor dispatch: one complete frame from one connection, on a pool
  /// thread. Returns false when the connection should be dropped.
  bool handle_message(const net::ReactorConnPtr& conn, net::Message&& msg);
  void ping_loop();
  void sync_loop();
  /// Synchronous startup pull of peer registries (anti-entropy bootstrap).
  void bootstrap_from_peers();
  std::vector<net::Endpoint> peer_endpoints();
  void note_peer_result(const net::Endpoint& peer, bool ok);
  /// Re-publish per-server directory state (breaker, rating factor,
  /// workload, liveness) as registry gauges; called at metrics-scrape time.
  void refresh_server_gauges();

  AgentConfig config_;
  /// Held only between construction and reactor start (which adopts it).
  net::TcpListener listener_;
  net::Endpoint endpoint_;
  net::Reactor reactor_;
  ServerRegistry registry_;

  std::mutex policy_mu_;
  std::unique_ptr<SelectionPolicy> policy_;

  std::mutex peers_mu_;
  std::vector<PeerState> peers_;

  std::atomic<bool> stopping_{false};
  std::thread ping_thread_;
  std::thread sync_thread_;

  std::atomic<std::uint64_t> stat_queries_{0};
  std::atomic<std::uint64_t> stat_registrations_{0};
  std::atomic<std::uint64_t> stat_workload_reports_{0};
  std::atomic<std::uint64_t> stat_failure_reports_{0};
};

}  // namespace ns::agent
