// The standard problem catalogue every computational server ships.
//
// Mirrors the original NetSolve server's wrapping of LAPACK / BLAS / ITPACK
// / FitPack: each entry binds a problem description (see dsl/specfile) to an
// executor implemented with ns::linalg. Complexity models use the textbook
// flop counts so the agent's predictor has honest inputs.
#pragma once

#include "dsl/registry.hpp"

namespace ns::server {

/// Register the full catalogue into `registry`.
///
/// `native_mflops` is the host's measured LINPACK-style rate; it calibrates
/// the synthetic `busywork` problem (N Mflop of machine-independent work) so
/// that its wall time matches what an N-Mflop dense kernel would take on
/// this host.
void register_builtin_problems(dsl::ProblemRegistry& registry, double native_mflops);

/// The problem-description file for the catalogue, in the @PROBLEM format
/// (round-trips through dsl::parse_spec_file; used by tests and the CLI).
std::string builtin_spec_text();

}  // namespace ns::server
