#include "server/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/vfs.hpp"
#include "serial/crc32.hpp"

namespace ns::server {

namespace {

serial::Bytes encode_record_payload(const JournalRecord& record) {
  serial::Encoder enc;
  enc.put_u8(static_cast<std::uint8_t>(record.type));
  enc.put_u64(record.request_id);
  enc.put_i64(record.wall_micros);
  enc.put_f64(record.deadline_remaining_s);
  enc.put_u64(record.iteration);
  enc.put_f64(record.residual);
  enc.put_bytes(record.data.data(), record.data.size());
  return enc.take();
}

// fsync the directory holding `path`. rename() and O_CREAT make the new
// *name* durable only once the directory inode itself is flushed; without
// this a crash right after journal compaction can leave the directory entry
// pointing at nothing — the torn-write window the checkpoint/journal audit
// found. Best-effort by design: some filesystems refuse O_RDONLY|O_DIRECTORY
// fsync, and the data-file fsync already happened.
void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

Status write_all(int fd, const std::string& path, const serial::Bytes& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = vfs::write(fd, path, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return make_error(ErrorCode::kInternal,
                        std::string("journal write: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  return ok_status();
}

}  // namespace

void JournalRecord::frame(serial::Bytes& out) const {
  const serial::Bytes payload = encode_record_payload(*this);
  serial::Encoder header;
  header.put_u32(static_cast<std::uint32_t>(payload.size()));
  header.put_u32(serial::crc32(payload.data(), payload.size()));
  const serial::Bytes& head = header.bytes();
  out.insert(out.end(), head.begin(), head.end());
  out.insert(out.end(), payload.begin(), payload.end());
}

Status Journal::open(std::string path, bool fsync_each) {
  close();
  const int fd = vfs::open(path, O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    return make_error(ErrorCode::kInternal,
                      "journal open " + path + ": " + std::strerror(errno));
  }
  struct stat st{};
  fd_ = fd;
  fsync_each_ = fsync_each;
  frozen_ = false;
  poisoned_ = false;
  path_ = std::move(path);
  appends_ = 0;
  bytes_ = (::fstat(fd, &st) == 0) ? static_cast<std::uint64_t>(st.st_size) : 0;
  // A freshly created journal's directory entry must survive a crash too,
  // or replay-on-restart opens a directory that never heard of the file.
  if (bytes_ == 0) fsync_parent_dir(path_);
  return ok_status();
}

// Fail-stop: after the first failed write or sync the journal's on-disk tail
// is in an unknown state (possibly torn). Appending more records behind a
// torn one would be worse than useless — replay stops at the first bad frame,
// so everything after it would be silently lost while looking durable. Poison
// the journal instead: close the descriptor, fail every later append fast,
// and let the server drop to explicitly non-durable mode.
void Journal::poison() {
  if (fd_ >= 0) vfs::close(fd_);
  fd_ = -1;
  poisoned_ = true;
}

Status Journal::append(const JournalRecord& record) {
  if (frozen_) return ok_status();  // crash emulation: writes vanish
  if (poisoned_) {
    return make_error(ErrorCode::kInternal, "journal poisoned (fail-stop)");
  }
  if (fd_ < 0) return make_error(ErrorCode::kInternal, "journal not open");
  serial::Bytes framed;
  record.frame(framed);
  auto written = write_all(fd_, path_, framed);
  if (!written.ok()) {
    poison();
    return written;
  }
  if (fsync_each_ && vfs::fdatasync(fd_, path_) != 0) {
    poison();
    return make_error(ErrorCode::kInternal,
                      std::string("journal fsync: ") + std::strerror(errno));
  }
  ++appends_;
  bytes_ += framed.size();
  return ok_status();
}

Status Journal::rewrite(const std::vector<JournalRecord>& records) {
  if (frozen_) return ok_status();
  if (poisoned_) {
    return make_error(ErrorCode::kInternal, "journal poisoned (fail-stop)");
  }
  if (fd_ < 0) return make_error(ErrorCode::kInternal, "journal not open");
  const std::string tmp = path_ + ".tmp";
  const int fd = vfs::open(tmp, O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return make_error(ErrorCode::kInternal,
                      "journal compact open " + tmp + ": " + std::strerror(errno));
  }
  serial::Bytes framed;
  for (const auto& record : records) record.frame(framed);
  auto written = write_all(fd, tmp, framed);
  if (written.ok() && vfs::fsync(fd, tmp) != 0) {
    written = make_error(ErrorCode::kInternal,
                         std::string("journal compact fsync: ") + std::strerror(errno));
  }
  vfs::close(fd);
  if (!written.ok()) {
    vfs::unlink(tmp);
    return written;  // old journal intact; not poisoned — appends still valid
  }
  vfs::crash_point("journal.compact.before_rename");
  if (vfs::rename(tmp, path_) != 0) {
    vfs::unlink(tmp);
    return make_error(ErrorCode::kInternal,
                      std::string("journal compact rename: ") + std::strerror(errno));
  }
  vfs::crash_point("journal.compact.after_rename");
  // The rename is atomic but not durable until the directory flushes: a
  // crash here could resurrect the pre-compaction journal — or nothing.
  fsync_parent_dir(path_);
  // Swing the append descriptor onto the new file.
  vfs::close(fd_);
  fd_ = vfs::open(path_, O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) {
    // No descriptor to append through: the journal is effectively dead.
    poisoned_ = true;
    return make_error(ErrorCode::kInternal,
                      "journal reopen " + path_ + ": " + std::strerror(errno));
  }
  bytes_ = framed.size();
  return ok_status();
}

void Journal::freeze() {
  if (fd_ >= 0) vfs::close(fd_);
  fd_ = -1;
  frozen_ = true;
}

void Journal::close() {
  if (fd_ >= 0) vfs::close(fd_);
  fd_ = -1;
  frozen_ = false;
  poisoned_ = false;
}

namespace {

/// Per-id replay state, folded record by record.
struct JobTrace {
  bool admitted = false;
  bool terminal = false;
  RecoveredJob job;
};

bool apply_record(const JournalRecord& record, std::map<std::uint64_t, JobTrace>& traces,
                  std::vector<std::uint64_t>& order, ReplaySummary& summary) {
  auto& trace = traces[record.request_id];
  switch (record.type) {
    case JournalRecordType::kAdmitted: {
      if (trace.terminal || trace.admitted) return true;  // duplicate: idempotent
      serial::Decoder dec(record.data);
      auto request = proto::SolveRequest::decode(dec);
      if (!request.ok()) return false;
      trace.admitted = true;
      trace.job.request = std::move(request).value();
      trace.job.admitted_wall_micros = record.wall_micros;
      trace.job.deadline_remaining_s = record.deadline_remaining_s;
      order.push_back(record.request_id);
      return true;
    }
    case JournalRecordType::kStarted:
      trace.job.started = true;
      return true;
    case JournalRecordType::kCheckpoint:
      trace.job.snapshot.iteration = record.iteration;
      trace.job.snapshot.residual = record.residual;
      trace.job.snapshot.state = record.data;
      return true;
    case JournalRecordType::kCompleted:
    case JournalRecordType::kCancelled: {
      trace.terminal = true;
      if (record.data.empty()) return true;
      serial::Decoder dec(record.data);
      auto result = proto::SolveResult::decode(dec);
      if (!result.ok()) return false;
      // First terminal record wins; duplicates are skipped cleanly.
      summary.completed.emplace(record.request_id, std::move(result).value());
      return true;
    }
  }
  return false;  // unknown record type: corrupt byte, skip
}

}  // namespace

ReplaySummary replay_journal_bytes(const serial::Bytes& bytes) {
  ReplaySummary summary;
  std::map<std::uint64_t, JobTrace> traces;
  std::vector<std::uint64_t> order;

  std::size_t pos = 0;
  while (bytes.size() - pos >= 8) {
    serial::Decoder header(bytes.data() + pos, 8);
    const std::uint32_t len = header.get_u32().value();
    const std::uint32_t crc = header.get_u32().value();
    if (len > bytes.size() - pos - 8) break;  // torn tail: stop cleanly
    const std::uint8_t* payload = bytes.data() + pos + 8;
    pos += 8 + len;
    if (serial::crc32(payload, len) != crc) {
      ++summary.skipped;  // damaged record; the length prefix still frames it
      continue;
    }
    serial::Decoder dec(payload, len);
    JournalRecord record;
    auto type = dec.get_u8();
    auto request_id = dec.get_u64();
    auto stamp = dec.get_i64();
    auto deadline = dec.get_f64();
    auto iteration = dec.get_u64();
    auto residual = dec.get_f64();
    if (!type.ok() || !request_id.ok() || !stamp.ok() || !deadline.ok() ||
        !iteration.ok() || !residual.ok()) {
      ++summary.skipped;
      continue;
    }
    auto data = dec.get_blob();
    if (!data.ok() || !dec.exhausted()) {
      ++summary.skipped;
      continue;
    }
    record.type = static_cast<JournalRecordType>(type.value());
    record.request_id = request_id.value();
    record.wall_micros = stamp.value();
    record.deadline_remaining_s = deadline.value();
    record.iteration = iteration.value();
    record.residual = residual.value();
    record.data = std::move(data).value();
    if (apply_record(record, traces, order, summary)) {
      ++summary.records;
    } else {
      ++summary.skipped;
    }
  }

  for (const std::uint64_t id : order) {
    auto& trace = traces[id];
    if (!trace.terminal) summary.unfinished.push_back(std::move(trace.job));
  }
  return summary;
}

Result<ReplaySummary> replay_journal(const std::string& path) {
  const int fd = vfs::open(path, O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return ReplaySummary{};  // first boot: empty journal
    return make_error(ErrorCode::kInternal,
                      "journal read " + path + ": " + std::strerror(errno));
  }
  serial::Bytes bytes;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = vfs::read(fd, path, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      vfs::close(fd);
      return make_error(ErrorCode::kInternal,
                        "journal read " + path + ": " + std::strerror(err));
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buf, buf + n);
  }
  vfs::close(fd);
  return replay_journal_bytes(bytes);
}

}  // namespace ns::server
