// Write-ahead job journal.
//
// Durability for the server's job lifecycle, in the spirit of the NEOS
// Server's job database: every state transition is appended to a per-server
// journal file *before* the transition takes externally visible effect
// (ADMITTED before the job enters the queue, STARTED before the kernel runs,
// COMPLETED before the reply leaves). On a crash the next incarnation
// replays the journal, re-enqueues admitted-but-unfinished jobs with their
// deadline budget decayed by the downtime, and resumes started jobs from
// their last CHECKPOINT record.
//
// Record framing (little-endian, self-delimiting):
//
//   u32 payload_len | u32 crc32(payload) | payload
//
// and the payload itself is codec-encoded:
//
//   u8  type        (RecordType)
//   u64 request_id
//   i64 wall_micros (append time; wall clock so budgets survive restarts)
//   f64 deadline_remaining_s (0 = no deadline)
//   u64 iteration
//   f64 residual
//   blob data       (ADMITTED: SolveRequest; CHECKPOINT: kernel state;
//                    COMPLETED: SolveResult; else empty)
//
// Replay is forgiving by construction: a truncated tail (torn final write)
// ends replay cleanly; a record whose CRC or payload does not parse is
// skipped (the length prefix still frames it); duplicate COMPLETED records
// are idempotent. A corrupt journal can cost re-running a job from an
// earlier checkpoint — it can never re-run a *completed* job (COMPLETED
// wins over every other record for the same id) and never crashes the
// server.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/checkpoint.hpp"
#include "common/error.hpp"
#include "proto/messages.hpp"
#include "serial/codec.hpp"

namespace ns::server {

enum class JournalRecordType : std::uint8_t {
  kAdmitted = 1,
  kStarted = 2,
  kCheckpoint = 3,
  kCompleted = 4,
  kCancelled = 5,
};

struct JournalRecord {
  JournalRecordType type = JournalRecordType::kAdmitted;
  std::uint64_t request_id = 0;
  std::int64_t wall_micros = 0;
  double deadline_remaining_s = 0.0;
  std::uint64_t iteration = 0;
  double residual = 0.0;
  serial::Bytes data;

  /// Frame the record (length + CRC + payload) onto `out`.
  void frame(serial::Bytes& out) const;
};

/// Append-only journal file. Thread-compatible: the server serializes
/// appends and compaction under its own journal mutex.
class Journal {
 public:
  Journal() = default;
  ~Journal() { close(); }
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Open (creating if absent) the journal at `path`. With `fsync_each`,
  /// every append is fdatasync'd before returning — the WAL guarantee; off
  /// trades durability of the last few records for throughput.
  Status open(std::string path, bool fsync_each);

  /// Append one record (framed, then optionally synced). Fail-stop: the
  /// first write/sync failure poisons the journal — the on-disk tail may be
  /// torn, and appending behind a torn record would silently lose everything
  /// after it on replay. Once poisoned every append fails fast until the
  /// journal is re-opened.
  Status append(const JournalRecord& record);

  /// Atomically replace the journal contents with `records` (compaction):
  /// write a sibling temp file, fsync it, rename over the journal.
  Status rewrite(const std::vector<JournalRecord>& records);

  /// Emulate a crash: drop the file descriptor without flushing anything
  /// further. Every later append/rewrite becomes a silent no-op, exactly as
  /// if the process had been SIGKILLed at this instant.
  void freeze();

  void close();

  bool is_open() const noexcept { return fd_ >= 0; }
  /// True after a failed append/sync fail-stopped the journal.
  bool poisoned() const noexcept { return poisoned_; }
  const std::string& path() const noexcept { return path_; }
  std::uint64_t appends() const noexcept { return appends_; }
  /// Bytes appended since open/rewrite (compaction trigger).
  std::uint64_t byte_size() const noexcept { return bytes_; }

 private:
  void poison();

  int fd_ = -1;
  bool fsync_each_ = true;
  bool frozen_ = false;
  bool poisoned_ = false;
  std::string path_;
  std::uint64_t appends_ = 0;
  std::uint64_t bytes_ = 0;
};

/// One unfinished job reconstructed from the journal.
struct RecoveredJob {
  proto::SolveRequest request;
  /// Wall-clock stamp of the ADMITTED record (deadline decay baseline).
  std::int64_t admitted_wall_micros = 0;
  /// Deadline budget remaining at admission (0 = none).
  double deadline_remaining_s = 0.0;
  bool started = false;
  /// Last checkpoint (iteration 0 = none; restart from scratch).
  checkpoint::Snapshot snapshot;
};

struct ReplaySummary {
  std::vector<RecoveredJob> unfinished;  // journal order (admission order)
  /// Terminal results (COMPLETED records) by request id, for reattaching
  /// clients that missed the original reply.
  std::map<std::uint64_t, proto::SolveResult> completed;
  std::size_t records = 0;  // well-formed records consumed
  std::size_t skipped = 0;  // corrupt/undecodable records skipped
};

/// Parse journal bytes. Never fails: corrupt records are skipped, a
/// truncated tail ends the scan.
ReplaySummary replay_journal_bytes(const serial::Bytes& bytes);

/// Read and parse the journal at `path`. A missing file is an empty journal.
Result<ReplaySummary> replay_journal(const std::string& path);

}  // namespace ns::server
