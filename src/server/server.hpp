// The computational server daemon.
//
// Registers its problem catalogue and rating with an agent, then serves
// SolveRequests from clients. Connections live on an epoll reactor
// (net/reactor.hpp): frames from any number of keep-alive connections are
// decoded on one event loop and dispatched to an elastic handler pool, so
// concurrent requests pipeline over a single client connection. Admission
// past the handler is still the bounded worker-slot queue; workload — the
// number of requests running or waiting plus any configured synthetic
// background load — is reported to the agent periodically with a change
// threshold, reproducing the original system's traffic-bounded reporting.
//
// Heterogeneous pools on one machine are emulated with `speed_factor`
// in (0, 1]: after executing a request natively, the server busy-spins
// elapsed * (1/speed - 1) extra seconds, and it registers a rating scaled by
// the same factor, so the agent's predictions and the observed service
// times stay mutually consistent.
//
// Failure injection hooks exercise the client's fault-tolerance path:
// error replies, dropped connections mid-request, or a full crash.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <utility>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/checkpoint.hpp"
#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/memgov.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "dsl/registry.hpp"
#include "net/reactor.hpp"
#include "net/shaped_link.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "proto/messages.hpp"
#include "server/journal.hpp"

namespace ns::server {

struct FailureSpec {
  enum class Mode {
    kNone,          // healthy
    kErrorReply,    // reply with SERVER_FAILURE instead of executing
    kDropRequest,   // close the connection mid-request, no reply
    kHangRequest,   // accept the request, never reply (client must time out)
    kCrash,         // kill the whole server (listener closed, all drops)
  };
  Mode mode = Mode::kNone;
  /// Per-request probability of triggering (independent Bernoulli draws).
  double probability = 0.0;
  /// Additionally trigger once after exactly this many requests (<0 = off).
  std::int64_t after_requests = -1;
};

/// How a speed_factor < 1 stretches service time. kSpin occupies the host
/// CPU for the extra time (honest when emulated servers share one
/// processor); kSleep yields it (honest when each server stands in for an
/// independent remote machine — the multi-machine scheduling experiments).
enum class SlowdownMode { kSpin, kSleep };

/// Overload control for the admission queue (see DESIGN.md §13). The
/// defaults keep the pre-existing behavior observable by tests — EDF is
/// benign without deadlines (it degrades to FIFO), the CoDel shedder and
/// per-client quotas are opt-in, and the AIMD limit starts disabled so the
/// static worker count still rules unless a deployment turns it on.
struct AdmissionConfig {
  /// Order the wait queue earliest-deadline-first instead of by arrival.
  /// Jobs without a deadline sort last (FIFO among themselves).
  bool edf = true;
  /// Shed at admission when the remaining deadline budget is already below
  /// the predicted service time (complexity model / rated speed), and shed
  /// at dequeue when the predicted completion would overshoot the deadline.
  bool shed_infeasible = true;
  /// Shed jobs whose deadline lapsed while they queued at dequeue time,
  /// retryably, instead of computing an answer nobody is waiting for.
  /// Exists as a knob only so benches can measure the uncontrolled baseline.
  bool shed_expired = true;
  /// Headroom added to the predicted service time in both feasibility
  /// checks. EDF serves the most-urgent feasible job, which under overload
  /// is always the one at the feasibility edge — without slack for the
  /// reply transfer and thread scheduling, those jobs complete a hair past
  /// their deadline: compute spent, client already gone.
  double dispatch_slack_s = 0.02;
  /// CoDel-style sojourn shedder: once the queue wait of dequeued jobs has
  /// stayed above `codel_target_s` for a full `codel_interval_s`, shed
  /// queued jobs at dequeue with the classic interval/sqrt(count) cadence
  /// until the sojourn drops back under the target. 0 disables.
  double codel_target_s = 0.0;
  double codel_interval_s = 0.5;
  /// Per-client fair share: with a bounded queue (max_queue > 0), one
  /// client may occupy at most max(1, quota_fraction * max_queue) waiting
  /// slots; requests beyond that are rejected retryably so a greedy client
  /// cannot starve the rest. 0 disables. Requests without a client id
  /// (older peers) are exempt.
  double quota_fraction = 0.0;
  /// AIMD concurrency limit replacing the static worker count: additive
  /// increase (+1 after a limit's worth of clean completions, up to
  /// aimd_max), multiplicative decrease (* aimd_beta, floored at aimd_min)
  /// on every overload signal (deadline or CoDel shed), decreases spaced at
  /// least 100 ms apart so one burst does not collapse the limit.
  bool aimd = false;
  int aimd_min = 1;
  /// Upper bound for additive growth; 0 = the configured worker count.
  int aimd_max = 0;
  double aimd_beta = 0.7;
};

struct ServerConfig {
  std::string name = "server";
  net::Endpoint listen{"127.0.0.1", 0};
  /// Agents to register with. Startup succeeds if at least one registration
  /// lands; the rest are retried in the background with decorrelated-jitter
  /// backoff, and workload reports fan out to every registered agent. The
  /// RegisterAck's peer list grows this set automatically, so pointing a
  /// server at one agent of a federated mesh reaches the whole mesh.
  std::vector<net::Endpoint> agents;
  /// Max requests executing concurrently; excess waits (and counts toward
  /// the reported workload).
  int workers = 2;
  /// Reject (SERVER_OVERLOADED, retryable) instead of queueing once this
  /// many requests are already waiting; 0 disables the hard queue bound.
  int max_queue = 0;
  /// Adaptive overload control layered on top of the queue bound.
  AdmissionConfig admission;
  /// Emulated relative speed in (0, 1]; see the file comment.
  double speed_factor = 1.0;
  SlowdownMode slowdown_mode = SlowdownMode::kSpin;
  /// Reported Mflop rating; 0 measures the host with linpack_rating().
  double rating_override = 0.0;
  /// Workload report cadence.
  double report_period_s = 0.1;
  /// Re-register with every agent this often (0 = only at startup).
  /// Registration is idempotent (the agent refreshes by name+endpoint and
  /// judges restarts by incarnation), so this makes servers survive an agent
  /// restart: the new agent learns the pool within one period. Each period
  /// is jittered by uniform(0.5, 1.5)x so a fleet does not re-register in
  /// lockstep after an agent reboot.
  double reregister_period_s = 5.0;
  /// Suppress a report unless the workload moved at least this much (in job
  /// units) since the last transmitted value. 0 reports every period.
  double report_threshold = 0.0;
  /// Synthetic competing load of L jobs: added to the reported workload AND
  /// stretching every service time by (1 + L) — the processor-sharing model
  /// the agent's predictor assumes.
  double background_load = 0.0;
  /// Shape applied to server->client reply traffic.
  net::LinkShape link;
  double io_timeout_s = 10.0;
  /// Transport hostile-peer armor (frame caps, buffer budgets, progress
  /// deadlines, connection cap). Server defaults keep kMaxPayload frames —
  /// large matrix blobs are the workload — but bound buffers and kill
  /// no-progress peers.
  net::GuardConfig guard;
  FailureSpec failure;
  std::uint64_t seed = 0x5e1f;
  /// Offer only these problems from the builtin catalogue (empty = all).
  /// Models the original deployments where different hosts wrapped
  /// different libraries (one machine has LAPACK, another ITPACK, ...).
  std::vector<std::string> problem_filter;
  /// Optional problem-description overrides in the @PROBLEM file format
  /// (see dsl/specfile.hpp). Lets an administrator re-tune descriptions and
  /// complexity models without recompiling — the original system's config
  /// workflow. Each overriding spec must match the builtin's signature
  /// (input/output names may change, types and arity may not).
  std::string spec_overrides;

  // ---- durability (write-ahead journal / checkpoint / migration) ----
  /// When non-empty, the server keeps a write-ahead job journal at
  /// <data_dir>/<name>.journal: every job transition is persisted before it
  /// takes externally visible effect, and a restarted server replays the
  /// journal to re-enqueue unfinished jobs (deadline budgets decayed by the
  /// downtime) and resume started ones from their last checkpoint. Empty
  /// (the default) disables the journal.
  std::string data_dir;
  /// fdatasync every journal append (the WAL guarantee). Off trades the
  /// durability of the last few records for append throughput.
  bool journal_fsync = true;
  /// Iterations between kernel state snapshots (0 = publish progress only,
  /// never serialize). Also the granularity drain migration can resume at.
  std::uint64_t checkpoint_interval = 25;
  /// Compact the journal (rewrite it with only live records) once it grows
  /// past this many bytes. 0 = compact only at startup.
  std::uint64_t journal_compact_bytes = 4u << 20;
  /// When the drain deadline lapses, hand running jobs (with their latest
  /// checkpoint) to a peer server via JOB_TRANSFER instead of plainly
  /// cancelling them; the displaced client gets a kMigrated forwarding
  /// address to re-attach to.
  bool migrate_on_drain = false;
  /// Peer servers to stream checkpoint frames to (CHECKPOINT_PUT). With
  /// replicas configured, every kernel snapshot also lands — delta/RLE
  /// compressed — on each peer, so a *crash* (not a drain) of this server
  /// loses at most one checkpoint interval: clients re-dispatch to a replica
  /// holder via CHECKPOINT_FETCH(adopt) and the job resumes there.
  std::vector<net::Endpoint> replicas;
  /// Compress replicated frames (XOR delta against the previous snapshot +
  /// byte-plane shuffle + run-length; see common/bytepack.hpp). Off sends
  /// raw frames — the bench baseline.
  bool checkpoint_compress = true;

  // ---- memory governance (byte-accounted admission + payload spill) ----
  /// Budgets and spill policy for the per-server MemGovernor: queued
  /// payloads, running working sets, and replica-store entries are charged
  /// against mem.global_bytes; jobs that cannot fit are shed retryably with
  /// a retry_after hint, and queued-but-cold payloads spill to
  /// mem.spill_dir through the vfs seam. See common/memgov.hpp.
  mem::MemBudgetConfig mem;
};

class ComputeServer {
 public:
  /// Rate the host (or take the override), register the builtin catalogue
  /// with the agent, and start serving.
  static Result<std::unique_ptr<ComputeServer>> start(ServerConfig config);

  ~ComputeServer();
  ComputeServer(const ComputeServer&) = delete;
  ComputeServer& operator=(const ComputeServer&) = delete;

  net::Endpoint endpoint() const { return endpoint_; }
  proto::ServerId server_id() const noexcept { return server_id_.load(); }
  const std::string& name() const noexcept { return config_.name; }
  double rated_mflops() const noexcept { return rated_mflops_; }

  /// Runtime controls for the experiments.
  void inject_failure(const FailureSpec& failure);
  void set_background_load(double load);

  /// Requests fully executed (successful replies sent).
  std::uint64_t completed() const noexcept { return completed_.load(); }
  /// Requests shed because their deadline budget lapsed before execution
  /// (admission-infeasible + expired-at-dequeue; the legacy aggregate).
  std::uint64_t shed() const noexcept { return shed_.load(); }
  /// Requests shed at admission: remaining budget below predicted service.
  std::uint64_t shed_admission() const noexcept { return shed_admission_.load(); }
  /// Requests shed at dequeue: deadline lapsed while queued, dropped
  /// retryably before any compute happened.
  std::uint64_t shed_dequeue() const noexcept { return shed_dequeue_.load(); }
  /// Requests shed by the CoDel sojourn controller.
  std::uint64_t shed_codel() const noexcept { return shed_codel_.load(); }
  /// Requests rejected by the per-client fair-share quota.
  std::uint64_t shed_quota() const noexcept { return shed_quota_.load(); }
  /// The current (possibly AIMD-adapted) concurrency limit.
  int concurrency_limit() const;
  /// Recent p95 of queue sojourn (the value piggybacked on workload
  /// reports); 0 until anything has been dequeued.
  double sojourn_p95() const;
  /// Requests cancelled while still waiting for a worker slot.
  std::uint64_t cancelled_queued() const noexcept { return cancelled_queued_.load(); }
  /// Requests cancelled mid-compute (kernel checkpoint unwound).
  std::uint64_t cancelled_running() const noexcept { return cancelled_running_.load(); }
  /// New requests refused because the server was draining.
  std::uint64_t drain_rejected() const noexcept { return drain_rejected_.load(); }
  /// Current workload as would be reported (running + waiting + background).
  double current_workload() const;
  /// Transport guard observability: live accepted connections and bytes
  /// buffered across them (read + write sides). The hostile-peer tests
  /// assert these stay inside the configured GuardConfig budgets.
  std::size_t transport_connections() const { return reactor_.connection_count(); }
  std::size_t transport_buffered_bytes() const noexcept { return reactor_.buffered_bytes(); }

  // ---- graceful drain (rolling restarts) ----
  //
  // State machine: serving -> draining -> drained. Entering `draining`
  // deregisters from every agent (traffic steers away immediately) and
  // rejects new SolveRequests with a retryable SERVER_OVERLOADED; queued and
  // in-flight jobs get `deadline_s` (default: the io timeout) to finish,
  // then anything still outstanding is cancelled through its token. The
  // listener stays up throughout — pings, metrics scrapes and CANCELs are
  // still served — so `drained` means "quiescent", not "stopped"; call
  // stop() (or exit the process) afterwards.

  /// Start draining without blocking. Returns true if this call initiated
  /// the drain, false if one was already running (idempotent).
  bool start_drain(double deadline_s = 0.0);
  /// Drain and block until quiescent.
  void drain(double deadline_s = 0.0);
  bool draining() const noexcept { return draining_.load(); }
  bool drained() const noexcept { return drained_.load(); }

  /// Stop serving and wait for in-flight work to drain.
  void stop();
  bool crashed() const noexcept { return crashed_.load(); }

  // ---- durability ----
  /// Unfinished jobs re-admitted from the journal at startup.
  std::uint64_t jobs_recovered() const noexcept { return jobs_recovered_.load(); }
  /// Running jobs handed to a peer server during drain.
  std::uint64_t jobs_migrated() const noexcept { return jobs_migrated_.load(); }
  /// Recovered/transferred jobs whose kernel resumed from a checkpoint
  /// rather than restarting from scratch.
  std::uint64_t jobs_resumed() const noexcept { return jobs_resumed_.load(); }
  /// Highest checkpoint iteration any resumed job restarted from.
  std::uint64_t last_resume_iteration() const noexcept {
    return last_resume_iteration_.load();
  }
  /// Journal records appended since startup.
  std::uint64_t journal_appends() const;
  /// True once a persistent write failure fail-stopped the journal and the
  /// server dropped to explicitly non-durable mode (advertised as
  /// durable=false in workload reports; durable-required jobs are shed
  /// retryably).
  bool durability_degraded() const noexcept { return degraded_.load(); }
  /// Checkpoint frames accepted by replica peers.
  std::uint64_t checkpoints_replicated() const noexcept {
    return ckpt_replicated_.load();
  }
  /// Jobs adopted here from the replica store after an origin crash.
  std::uint64_t failover_resumes() const noexcept { return failover_resumes_.load(); }
  /// Replicated checkpoints currently held for other servers' jobs.
  std::size_t replica_holds() const;
  /// Bytes the replica store currently accounts for.
  std::size_t replica_bytes() const;

  // ---- memory governance ----
  /// The byte account charged by admission, dispatch, and the replica
  /// store; tests assert peak() never exceeds budget().
  const mem::MemGovernor& governor() const noexcept { return governor_; }
  /// Queued payloads currently parked in the spill store.
  std::int64_t spilled_jobs() const noexcept { return spilled_jobs_.load(); }
  /// Jobs shed because their payload or working set did not fit a budget.
  std::uint64_t mem_shed() const noexcept { return mem_shed_.load(); }
  /// Emulated unclean death (SIGKILL): freeze the journal (nothing further
  /// reaches disk), suppress all replies and terminal accounting, and tear
  /// the threads down. Unlike stop(), in-flight jobs look — to clients and
  /// to the journal — as if the power was cut mid-write; a restart is
  /// expected to replay the journal and finish them.
  void crash();

 private:
  /// Registry handles resolved once at startup; the instruments themselves
  /// are process-wide atomics, so the request path stays lock-free. Counters
  /// and histograms aggregate across all servers in the process; the queue
  /// depth gauge is per-server (keyed by name) since depths do not sum.
  struct ServerMetrics {
    explicit ServerMetrics(const std::string& name);
    metrics::Counter& requests;
    metrics::Counter& completed;
    metrics::Counter& admit;
    metrics::Counter& shed;
    metrics::Counter& shed_admission;
    metrics::Counter& shed_dequeue;
    metrics::Counter& shed_codel;
    metrics::Counter& shed_quota;
    metrics::Counter& aimd_backoff;
    metrics::Counter& rejected;
    metrics::Counter& exec_errors;
    metrics::Counter& cancelled_queued;
    metrics::Counter& cancelled_running;
    metrics::Counter& cancel_requests;
    metrics::Counter& drain_rejected;
    metrics::Counter& journal_appends;
    metrics::Counter& jobs_recovered;
    metrics::Counter& jobs_migrated;
    metrics::Counter& jobs_resumed;
    // Storage-fault armor (store.*): disk failures survived, degradation,
    // and checkpoint replication. Raw vs wire bytes expose the compression
    // ratio (the `store.ckpt_bytes_total{raw,wire}` pair of DESIGN.md §17).
    metrics::Counter& store_write_errors;
    metrics::Counter& store_degraded_shed;
    metrics::Counter& store_ckpt_replicated;
    metrics::Counter& store_ckpt_raw_bytes;
    metrics::Counter& store_ckpt_wire_bytes;
    metrics::Counter& store_failover_resume;
    metrics::Gauge& store_degraded;
    // Memory governance (mem.*): byte-accounted admission, payload spill,
    // and allocation-failure hardening. Counters are process-wide; the
    // accounted/peak/budget gauges are per-server (keyed by name) since
    // byte accounts do not sum meaningfully across servers.
    metrics::Counter& mem_shed;
    metrics::Counter& mem_spilled_bytes;
    metrics::Counter& mem_spill_reloads;
    metrics::Counter& mem_spill_reload_errors;
    metrics::Counter& mem_bad_alloc;
    metrics::Counter& mem_replica_evicted;
    metrics::Counter& mem_forced_charge;
    metrics::Gauge& mem_accounted;
    metrics::Gauge& mem_peak;
    metrics::Gauge& mem_budget;
    metrics::Gauge& mem_spill_active;
    metrics::Histogram& queue_wait_s;
    metrics::Histogram& queue_sojourn_s;
    metrics::Histogram& compute_s;
    metrics::Gauge& queue_depth;
    metrics::Gauge& concurrency_limit;
    metrics::Gauge& draining;
  };

  /// One admitted SolveRequest, visible (keyed by request_id) from its
  /// admission until its reply: the CANCEL handler and the drain sweep trip
  /// the token; the owning connection thread polls it while queued (cv
  /// predicate) and while computing (kernel checkpoints). request_ids are
  /// client-minted, so collisions across clients are possible — hence a
  /// multimap; a cancel simply trips every job carrying the id.
  struct ActiveJob {
    cancel::Token token;
    std::atomic<bool> queued{true};
    /// The request itself lives with the job (not on the connection thread's
    /// stack) so journal compaction and drain migration can re-serialize it.
    proto::SolveRequest request;
    /// Iteration-granular progress/snapshot channel bound around execute().
    checkpoint::Token ckpt;
    std::atomic<bool> started{false};
    /// Set by the drain sweep just before cancelling: the owning thread
    /// forwards the latest checkpoint to a peer instead of replying
    /// kCancelled.
    std::atomic<bool> migrate{false};
    /// Recovered or transferred-in jobs bypass the admission rejections
    /// (queue bound, quota, infeasibility) — they were already admitted
    /// once; shedding them now would lose accepted work.
    bool readmit = false;
    /// An ADMITTED record for this job is on disk (terminal record owed).
    bool journaled = false;
    // ---- memory accounting (mutated under jobs_mu_ until dispatch; owner-
    // thread-only afterwards) ----
    /// Serialized payload size charged to the governor at admission.
    std::uint64_t payload_bytes = 0;
    /// Working-set estimate charged by the dispatcher at slot grant.
    std::uint64_t ws_bytes = 0;
    /// Bytes currently charged to the governor on this job's behalf;
    /// released in one step when the job reaches any terminal path.
    std::uint64_t mem_charged_bytes = 0;
    /// Payload parked in the spill store; request.args is empty until the
    /// dispatch-time reload (guarded by active_jobs_mu_ against concurrent
    /// journal compaction, which must read the spill file instead).
    bool spilled = false;
    std::int64_t admitted_wall_us = 0;        // ADMITTED record stamp
    double admit_deadline_remaining_s = 0.0;  // budget left at admission
    /// Absolute deadline fixed at enqueue (1e300 = none); read by the
    /// migration path to compute the hand-off budget.
    double deadline_abs = 1e300;

    // ---- checkpoint replication state ----
    // Touched only from the owning kernel thread (the on_snapshot callback
    // fires synchronously at loop heads), so no lock is needed.
    /// One replica peer's view of this job.
    struct ReplPeer {
      bool sent_request = false;      // peer holds the SolveRequest already
      std::uint64_t acked_iteration = 0;  // last frame the peer accepted
      double retry_at = 0.0;          // now_seconds() backoff after a failure
    };
    std::vector<ReplPeer> repl_peers;
    /// Previous snapshot (uncompressed) — the delta base for the next frame.
    serial::Bytes repl_prev_state;
    std::uint64_t repl_prev_iteration = 0;
  };

  /// One agent this server registers with. `id` is agent-local (each agent
  /// assigns its own), so reports carry the per-link id. Owned exclusively
  /// by the report thread once the server is running (startup registration
  /// happens-before the thread spawns); no lock needed.
  struct AgentLink {
    net::Endpoint endpoint;
    proto::ServerId id = proto::kInvalidServerId;
    double next_attempt_time = 0.0;  // now_seconds() of the next (re)register
    double backoff_s = 0.0;          // decorrelated-jitter failure backoff
  };

  /// One request waiting in the admission queue. Lives on the owning
  /// connection thread's stack; registered in `wait_queue_` (under
  /// `jobs_mu_`) between admission and the dispatcher's decision. The
  /// dispatcher either grants it a worker slot (`ready`) or sheds it
  /// (`dropped` + the retryable reply to send); the owner wakes on the
  /// shared condvar and acts on whichever flag is set.
  struct WaitEntry {
    std::pair<double, std::uint64_t> key;  // EDF (deadline, seq) or (0, seq)
    double enqueue_time = 0.0;             // now_seconds() at admission
    double deadline_abs = 0.0;             // absolute deadline; huge if none
    double est_service_s = 0.0;            // predicted compute time (0 = unknown)
    std::uint64_t client_id = 0;
    bool ready = false;
    bool dropped = false;
    const char* drop_reason = "";
    double retry_after_s = 0.0;            // backpressure hint for the reply
    // ---- memory accounting (all under jobs_mu_) ----
    /// Working-set bytes the dispatcher must charge before granting.
    std::uint64_t ws_bytes = 0;
    /// Payload bytes released to the spill store while waiting; the
    /// dispatcher re-charges them at grant (the reload re-materializes the
    /// payload in RAM).
    std::uint64_t spilled_bytes = 0;
    /// Bytes the dispatcher actually charged at grant; the owner folds this
    /// into ActiveJob::mem_charged_bytes after waking.
    std::uint64_t granted_bytes = 0;
  };

  ComputeServer(ServerConfig config, net::TcpListener listener, double rated_mflops);

  /// Register with one agent; on success updates the link id and merges the
  /// ack's peer agents into `discovered`.
  Status register_link(AgentLink& link, std::vector<net::Endpoint>* discovered);
  /// (Re)register every link whose attempt time is due; schedules the next
  /// attempt per link (jittered period on success, backoff on failure) and
  /// adopts newly discovered peer agents.
  void maintain_registrations();
  /// Reactor dispatch: one complete, CRC-valid frame from one connection.
  /// Runs on a pool thread; returns false to drop the connection (protocol
  /// violation, injected drop, shutdown).
  bool handle_message(const net::ReactorConnPtr& conn, net::Message&& msg);
  /// The SolveRequest path: failure injection, admission, execution, reply.
  bool handle_solve(const net::ReactorConnPtr& conn, const serial::Bytes& payload);
  void report_loop();
  void send_workload_report(double workload);
  /// Predicted service time for one request from the problem's complexity
  /// model and this server's rating (0 = no model / unknown problem).
  double estimate_service_seconds(const proto::SolveRequest& request) const;
  // ---- admission queue internals; all *_locked require jobs_mu_ ----
  /// Fill free worker slots from the wait queue in EDF order, shedding
  /// expired / CoDel-flagged entries along the way. Called after every
  /// enqueue and every slot release.
  void dispatch_locked();
  int effective_concurrency_locked() const;
  /// Backpressure hint: expected time until a waiting slot frees, from the
  /// service-time EWMA and the current queue depth.
  double retry_after_locked() const;
  /// The CoDel control law, evaluated on the head-of-queue sojourn.
  bool codel_should_drop_locked(double sojourn, double now);
  void aimd_on_success_locked();
  void aimd_on_overload_locked(double now);
  void record_sojourn_locked(double sojourn);
  double sojourn_p95_locked() const;
  /// Remove `entry` from the wait queue if the dispatcher has not already
  /// taken it (cancel / shutdown while queued).
  void remove_wait_entry_locked(WaitEntry& entry);
  /// Decide failure injection for one request; returns the triggered mode.
  FailureSpec::Mode roll_failure();
  /// Trip the token of every active job carrying `request_id`; returns the
  /// most-advanced state found (running > queued > completed/unknown).
  proto::CancelOutcome cancel_jobs(std::uint64_t request_id);
  /// The drain worker: deregister, wait out the queue, cancel stragglers.
  void drain_work(double deadline_s);
  /// Fire-and-forget DeregisterServer to every agent this server registered
  /// with, so rankings exclude it immediately.
  void deregister_from_agents();

  // ---- durability internals ----
  //
  // Lock order: journal_mu_ before results_mu_ / active_jobs_mu_; never the
  // reverse, and jobs_mu_ is never held across a journal append. The
  // terminal protocol (finish_job) runs entirely under journal_mu_ so a
  // concurrent compaction sees each job either still active (re-journals
  // its ADMITTED chain) or already in the result store (re-journals
  // COMPLETED) — never in between, which is what makes compaction unable
  // to drop a job.

  /// mkdir the data dir, replay + open the journal, rebuild unfinished jobs
  /// (launched by launch_recovered_jobs() once the threads are up), and
  /// compact the replayed history. Called once from start().
  Status open_journal();
  void restore_from_replay(ReplaySummary replay);
  void launch_recovered_jobs();
  /// Append one record; silent no-op without an open journal.
  void journal_append(const JournalRecord& record);
  void journal_append_locked(const JournalRecord& record);
  /// Persist the ADMITTED record and stamp the job's recovery fields.
  void journal_admit(ActiveJob& job, double deadline_remaining_s);
  /// Terminal accounting: journal the terminal record, store the result for
  /// late probes, and drop the job from the active table.
  void finish_job(const std::shared_ptr<ActiveJob>& job,
                  const proto::SolveResult& result);
  void store_result(std::uint64_t request_id, const proto::SolveResult& result);
  /// Rewrite the journal with only live records once it outgrows the bound.
  void maybe_compact();
  std::vector<JournalRecord> collect_live_records_locked();
  /// Admission queue + execution + terminal accounting for one registered
  /// job. Returns the reply to send, or nullopt when the server is stopping
  /// or crashed (no reply must leave).
  std::optional<proto::SolveResult> run_job(const std::shared_ptr<ActiveJob>& job,
                                            const Stopwatch& since_receipt);
  void erase_active_job(const std::shared_ptr<ActiveJob>& job,
                        std::uint64_t request_id);
  /// PROBE: the most-advanced state known for request_id.
  proto::ProbeReply probe_job(const proto::ProbeRequest& probe);
  /// JOB_TRANSFER receive side: admit the handed-over job and seed its
  /// checkpoint token from the carried snapshot.
  proto::TransferAck accept_transfer(proto::JobTransfer transfer);
  /// Persistent journal failure: fail-stop durability and advertise it.
  /// Requires journal_mu_ (the trigger sites already hold it).
  void enter_degraded_locked(const char* what);
  /// Stream one checkpoint frame for `job` to every configured replica.
  /// Runs on the job's kernel thread (on_snapshot callback).
  void replicate_checkpoint(ActiveJob& job, const checkpoint::Snapshot& snap);
  /// CHECKPOINT_PUT receive side: store (or delta-patch) a peer's frame.
  proto::CheckpointPutAck accept_checkpoint(proto::CheckpointPut put);
  /// CHECKPOINT_FETCH: report a held checkpoint; with adopt, re-admit the
  /// job here (the crash-time analogue of accept_transfer).
  proto::CheckpointFetchReply handle_checkpoint_fetch(const proto::CheckpointFetch& fetch);
  /// Drain-side migration: hand `job`'s latest checkpoint to a peer. On
  /// success rewrites `result` into kMigrated + the forwarding address.
  bool migrate_job(ActiveJob& job, proto::SolveResult& result);

  // ---- memory governance internals ----
  /// Working-set estimate for one request (factor * payload, floored).
  std::uint64_t estimate_working_set_bytes(const proto::SolveRequest& request) const;
  /// True when a queued job's payload should go to disk: spill enabled,
  /// payload large enough, and (when governed) accounted bytes past the
  /// watermark.
  bool should_spill_locked(const ActiveJob& job) const;
  /// Park `job`'s encoded request in the spill store. Called with jobs_mu_
  /// NOT held (does I/O); takes active_jobs_mu_ to swap the args out so a
  /// concurrent journal compaction never sees a half-cleared request.
  bool spill_job(const std::shared_ptr<ActiveJob>& job);
  /// Re-materialize a spilled payload at dispatch. On failure the caller
  /// sheds the job retryably.
  Status reload_spilled(const std::shared_ptr<ActiveJob>& job);
  /// Release every byte charged on `job`'s behalf and drop its spill file.
  /// Safe on every terminal path (idempotent via mem_charged_bytes = 0).
  void release_job_memory(const std::shared_ptr<ActiveJob>& job);
  /// Largest-first eviction until the replica store fits `incoming` more
  /// bytes under both the replica budget and the governor. Requires
  /// replica_mu_. Returns false when even an empty store cannot fit it.
  bool make_replica_room_locked(std::size_t incoming,
                                const std::pair<std::string, std::uint64_t>& keep);
  void drop_replica_entry_locked(const std::pair<std::string, std::uint64_t>& key);
  /// Ask the registered agents which peers can run this request's problem.
  std::vector<proto::ServerCandidate> query_candidates(
      const proto::SolveRequest& request);

  ServerConfig config_;
  /// Held only between construction and reactor start (which adopts it);
  /// endpoint_ keeps the bound address for registration and migration.
  net::TcpListener listener_;
  net::Endpoint endpoint_;
  net::Reactor reactor_;
  dsl::ProblemRegistry registry_;
  double rated_mflops_ = 0.0;
  std::atomic<proto::ServerId> server_id_{proto::kInvalidServerId};
  /// This process lifetime's identity (see proto::RegisterServer).
  std::uint64_t incarnation_ = 0;
  /// Guards agent_links_: normally report-thread-only, but the drain worker
  /// reads the link table for its deregistration fan-out.
  std::mutex links_mu_;
  std::vector<AgentLink> agent_links_;
  Rng reregister_rng_;  // report-thread only

  std::atomic<bool> stopping_{false};
  std::atomic<bool> crashed_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> drained_{false};
  std::thread drain_thread_;
  std::atomic<int> active_connections_{0};

  std::mutex active_jobs_mu_;
  std::multimap<std::uint64_t, std::shared_ptr<ActiveJob>> active_jobs_;

  // Admission queue + worker-pool capacity gate. Connection threads insert
  // a WaitEntry and block on jobs_cv_; dispatch_locked() hands out worker
  // slots in EDF order and sheds what cannot meet its deadline.
  mutable std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;
  int running_jobs_ = 0;
  int waiting_jobs_ = 0;
  std::multimap<std::pair<double, std::uint64_t>, WaitEntry*> wait_queue_;
  std::uint64_t queue_seq_ = 0;
  std::map<std::uint64_t, int> waiting_by_client_;
  /// AIMD state: the fractional limit (effective limit = floor, >= aimd_min)
  /// and the clean-completion count toward the next additive increase.
  double concurrency_limit_f_ = 0.0;
  int aimd_successes_ = 0;
  double aimd_last_decrease_ = 0.0;
  /// CoDel controller state.
  double codel_first_above_ = 0.0;  // 0 = sojourn currently under target
  double codel_drop_next_ = 0.0;
  std::uint32_t codel_drop_count_ = 0;
  bool codel_dropping_ = false;
  /// EWMA of successful service times, feeding the retry_after hints.
  double service_ewma_s_ = 0.0;
  /// Ring of recent sojourns; p95 over it is the queue-pressure piggyback.
  std::array<double, 128> sojourn_ring_{};
  std::size_t sojourn_count_ = 0;

  mutable std::mutex failure_mu_;
  Rng failure_rng_;
  std::atomic<std::int64_t> requests_seen_{0};
  std::atomic<double> background_load_;

  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> shed_admission_{0};
  std::atomic<std::uint64_t> shed_dequeue_{0};
  std::atomic<std::uint64_t> shed_codel_{0};
  std::atomic<std::uint64_t> shed_quota_{0};
  std::atomic<std::uint64_t> cancelled_queued_{0};
  std::atomic<std::uint64_t> cancelled_running_{0};
  std::atomic<std::uint64_t> drain_rejected_{0};

  /// Guards the journal and the terminal-record protocol (see above).
  mutable std::mutex journal_mu_;
  Journal journal_;
  /// Jobs rebuilt from the journal, waiting for launch_recovered_jobs().
  std::vector<std::shared_ptr<ActiveJob>> recovered_jobs_;
  /// Terminal results kept for re-attaching probes, bounded FIFO.
  static constexpr std::size_t kMaxStoredResults = 512;
  mutable std::mutex results_mu_;
  std::map<std::uint64_t, proto::SolveResult> results_;
  std::deque<std::uint64_t> results_order_;
  /// Set by crash(): suppress replies and terminal accounting so the
  /// emulated kill looks like a power cut, not a graceful unwind.
  std::atomic<bool> crash_mode_{false};
  std::atomic<std::uint64_t> jobs_recovered_{0};
  std::atomic<std::uint64_t> jobs_migrated_{0};
  std::atomic<std::uint64_t> jobs_resumed_{0};
  std::atomic<std::uint64_t> last_resume_iteration_{0};

  // ---- storage-fault armor ----
  /// Journal fail-stopped; the server runs explicitly non-durable.
  std::atomic<bool> degraded_{false};
  /// Durability state changed since the last workload report (forces a
  /// report past the change threshold so agents learn promptly).
  std::atomic<bool> durable_dirty_{false};
  std::atomic<std::uint64_t> ckpt_replicated_{0};
  std::atomic<std::uint64_t> failover_resumes_{0};
  /// Replica store: checkpoints held for peers' jobs, keyed by
  /// (origin server name, request id), bounded FIFO like the result store.
  struct ReplicaEntry {
    proto::SolveRequest request;
    bool has_request = false;
    double deadline_remaining_s = 0.0;  // budget at the last PUT
    std::int64_t stored_wall_us = 0;    // PUT stamp (deadline decay baseline)
    checkpoint::Snapshot snapshot;      // decompressed state
    /// Bytes this entry accounts for (snapshot state + request payload),
    /// charged to the governor and bounded by mem.replica_budget_bytes.
    std::size_t bytes = 0;
  };
  static constexpr std::size_t kMaxReplicaEntries = 256;
  mutable std::mutex replica_mu_;
  std::map<std::pair<std::string, std::uint64_t>, ReplicaEntry> replica_store_;
  std::deque<std::pair<std::string, std::uint64_t>> replica_order_;
  std::size_t replica_bytes_ = 0;  // under replica_mu_

  // ---- memory governance ----
  mem::MemGovernor governor_;
  mem::SpillStore spill_;
  /// Payloads currently parked on disk (drives the spill_active ternary).
  std::atomic<std::int64_t> spilled_jobs_{0};
  std::atomic<std::uint64_t> mem_shed_{0};
  /// Memory-pressure state changed since the last workload report (same
  /// force-a-report contract as durable_dirty_).
  std::atomic<bool> mem_dirty_{false};

  ServerMetrics metrics_;

  std::thread report_thread_;
};

}  // namespace ns::server
