// The computational server daemon.
//
// Registers its problem catalogue and rating with an agent, then serves
// SolveRequests from clients. Concurrency is a bounded worker pool
// (thread-per-connection gated by a capacity semaphore); workload — the
// number of requests running or waiting plus any configured synthetic
// background load — is reported to the agent periodically with a change
// threshold, reproducing the original system's traffic-bounded reporting.
//
// Heterogeneous pools on one machine are emulated with `speed_factor`
// in (0, 1]: after executing a request natively, the server busy-spins
// elapsed * (1/speed - 1) extra seconds, and it registers a rating scaled by
// the same factor, so the agent's predictions and the observed service
// times stay mutually consistent.
//
// Failure injection hooks exercise the client's fault-tolerance path:
// error replies, dropped connections mid-request, or a full crash.
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "dsl/registry.hpp"
#include "net/shaped_link.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "proto/messages.hpp"

namespace ns::server {

struct FailureSpec {
  enum class Mode {
    kNone,          // healthy
    kErrorReply,    // reply with SERVER_FAILURE instead of executing
    kDropRequest,   // close the connection mid-request, no reply
    kHangRequest,   // accept the request, never reply (client must time out)
    kCrash,         // kill the whole server (listener closed, all drops)
  };
  Mode mode = Mode::kNone;
  /// Per-request probability of triggering (independent Bernoulli draws).
  double probability = 0.0;
  /// Additionally trigger once after exactly this many requests (<0 = off).
  std::int64_t after_requests = -1;
};

/// How a speed_factor < 1 stretches service time. kSpin occupies the host
/// CPU for the extra time (honest when emulated servers share one
/// processor); kSleep yields it (honest when each server stands in for an
/// independent remote machine — the multi-machine scheduling experiments).
enum class SlowdownMode { kSpin, kSleep };

struct ServerConfig {
  std::string name = "server";
  net::Endpoint listen{"127.0.0.1", 0};
  /// Agents to register with. Startup succeeds if at least one registration
  /// lands; the rest are retried in the background with decorrelated-jitter
  /// backoff, and workload reports fan out to every registered agent. The
  /// RegisterAck's peer list grows this set automatically, so pointing a
  /// server at one agent of a federated mesh reaches the whole mesh.
  std::vector<net::Endpoint> agents;
  /// Max requests executing concurrently; excess waits (and counts toward
  /// the reported workload).
  int workers = 2;
  /// Reject (SERVER_OVERLOADED, retryable) instead of queueing once this
  /// many requests are already waiting; 0 disables admission control.
  int max_queue = 0;
  /// Emulated relative speed in (0, 1]; see the file comment.
  double speed_factor = 1.0;
  SlowdownMode slowdown_mode = SlowdownMode::kSpin;
  /// Reported Mflop rating; 0 measures the host with linpack_rating().
  double rating_override = 0.0;
  /// Workload report cadence.
  double report_period_s = 0.1;
  /// Re-register with every agent this often (0 = only at startup).
  /// Registration is idempotent (the agent refreshes by name+endpoint and
  /// judges restarts by incarnation), so this makes servers survive an agent
  /// restart: the new agent learns the pool within one period. Each period
  /// is jittered by uniform(0.5, 1.5)x so a fleet does not re-register in
  /// lockstep after an agent reboot.
  double reregister_period_s = 5.0;
  /// Suppress a report unless the workload moved at least this much (in job
  /// units) since the last transmitted value. 0 reports every period.
  double report_threshold = 0.0;
  /// Synthetic competing load of L jobs: added to the reported workload AND
  /// stretching every service time by (1 + L) — the processor-sharing model
  /// the agent's predictor assumes.
  double background_load = 0.0;
  /// Shape applied to server->client reply traffic.
  net::LinkShape link;
  double io_timeout_s = 10.0;
  FailureSpec failure;
  std::uint64_t seed = 0x5e1f;
  /// Offer only these problems from the builtin catalogue (empty = all).
  /// Models the original deployments where different hosts wrapped
  /// different libraries (one machine has LAPACK, another ITPACK, ...).
  std::vector<std::string> problem_filter;
  /// Optional problem-description overrides in the @PROBLEM file format
  /// (see dsl/specfile.hpp). Lets an administrator re-tune descriptions and
  /// complexity models without recompiling — the original system's config
  /// workflow. Each overriding spec must match the builtin's signature
  /// (input/output names may change, types and arity may not).
  std::string spec_overrides;
};

class ComputeServer {
 public:
  /// Rate the host (or take the override), register the builtin catalogue
  /// with the agent, and start serving.
  static Result<std::unique_ptr<ComputeServer>> start(ServerConfig config);

  ~ComputeServer();
  ComputeServer(const ComputeServer&) = delete;
  ComputeServer& operator=(const ComputeServer&) = delete;

  net::Endpoint endpoint() const { return listener_.endpoint(); }
  proto::ServerId server_id() const noexcept { return server_id_.load(); }
  const std::string& name() const noexcept { return config_.name; }
  double rated_mflops() const noexcept { return rated_mflops_; }

  /// Runtime controls for the experiments.
  void inject_failure(const FailureSpec& failure);
  void set_background_load(double load);

  /// Requests fully executed (successful replies sent).
  std::uint64_t completed() const noexcept { return completed_.load(); }
  /// Requests shed because their deadline budget lapsed before execution.
  std::uint64_t shed() const noexcept { return shed_.load(); }
  /// Requests cancelled while still waiting for a worker slot.
  std::uint64_t cancelled_queued() const noexcept { return cancelled_queued_.load(); }
  /// Requests cancelled mid-compute (kernel checkpoint unwound).
  std::uint64_t cancelled_running() const noexcept { return cancelled_running_.load(); }
  /// New requests refused because the server was draining.
  std::uint64_t drain_rejected() const noexcept { return drain_rejected_.load(); }
  /// Current workload as would be reported (running + waiting + background).
  double current_workload() const;

  // ---- graceful drain (rolling restarts) ----
  //
  // State machine: serving -> draining -> drained. Entering `draining`
  // deregisters from every agent (traffic steers away immediately) and
  // rejects new SolveRequests with a retryable SERVER_OVERLOADED; queued and
  // in-flight jobs get `deadline_s` (default: the io timeout) to finish,
  // then anything still outstanding is cancelled through its token. The
  // listener stays up throughout — pings, metrics scrapes and CANCELs are
  // still served — so `drained` means "quiescent", not "stopped"; call
  // stop() (or exit the process) afterwards.

  /// Start draining without blocking. Returns true if this call initiated
  /// the drain, false if one was already running (idempotent).
  bool start_drain(double deadline_s = 0.0);
  /// Drain and block until quiescent.
  void drain(double deadline_s = 0.0);
  bool draining() const noexcept { return draining_.load(); }
  bool drained() const noexcept { return drained_.load(); }

  /// Stop serving and wait for in-flight work to drain.
  void stop();
  bool crashed() const noexcept { return crashed_.load(); }

 private:
  /// Registry handles resolved once at startup; the instruments themselves
  /// are process-wide atomics, so the request path stays lock-free. Counters
  /// and histograms aggregate across all servers in the process; the queue
  /// depth gauge is per-server (keyed by name) since depths do not sum.
  struct ServerMetrics {
    explicit ServerMetrics(const std::string& name);
    metrics::Counter& requests;
    metrics::Counter& completed;
    metrics::Counter& shed;
    metrics::Counter& rejected;
    metrics::Counter& exec_errors;
    metrics::Counter& cancelled_queued;
    metrics::Counter& cancelled_running;
    metrics::Counter& cancel_requests;
    metrics::Counter& drain_rejected;
    metrics::Histogram& queue_wait_s;
    metrics::Histogram& compute_s;
    metrics::Gauge& queue_depth;
    metrics::Gauge& draining;
  };

  /// One admitted SolveRequest, visible (keyed by request_id) from its
  /// admission until its reply: the CANCEL handler and the drain sweep trip
  /// the token; the owning connection thread polls it while queued (cv
  /// predicate) and while computing (kernel checkpoints). request_ids are
  /// client-minted, so collisions across clients are possible — hence a
  /// multimap; a cancel simply trips every job carrying the id.
  struct ActiveJob {
    cancel::Token token;
    std::atomic<bool> queued{true};
  };

  /// One agent this server registers with. `id` is agent-local (each agent
  /// assigns its own), so reports carry the per-link id. Owned exclusively
  /// by the report thread once the server is running (startup registration
  /// happens-before the thread spawns); no lock needed.
  struct AgentLink {
    net::Endpoint endpoint;
    proto::ServerId id = proto::kInvalidServerId;
    double next_attempt_time = 0.0;  // now_seconds() of the next (re)register
    double backoff_s = 0.0;          // decorrelated-jitter failure backoff
  };

  ComputeServer(ServerConfig config, net::TcpListener listener, double rated_mflops);

  /// Register with one agent; on success updates the link id and merges the
  /// ack's peer agents into `discovered`.
  Status register_link(AgentLink& link, std::vector<net::Endpoint>* discovered);
  /// (Re)register every link whose attempt time is due; schedules the next
  /// attempt per link (jittered period on success, backoff on failure) and
  /// adopts newly discovered peer agents.
  void maintain_registrations();
  void accept_loop();
  void handle_connection(net::TcpConnection conn);
  void report_loop();
  void send_workload_report(double workload);
  /// Decide failure injection for one request; returns the triggered mode.
  FailureSpec::Mode roll_failure();
  /// Trip the token of every active job carrying `request_id`; returns the
  /// most-advanced state found (running > queued > completed/unknown).
  proto::CancelOutcome cancel_jobs(std::uint64_t request_id);
  /// The drain worker: deregister, wait out the queue, cancel stragglers.
  void drain_work(double deadline_s);
  /// Fire-and-forget DeregisterServer to every agent this server registered
  /// with, so rankings exclude it immediately.
  void deregister_from_agents();

  ServerConfig config_;
  net::TcpListener listener_;
  dsl::ProblemRegistry registry_;
  double rated_mflops_ = 0.0;
  std::atomic<proto::ServerId> server_id_{proto::kInvalidServerId};
  /// This process lifetime's identity (see proto::RegisterServer).
  std::uint64_t incarnation_ = 0;
  /// Guards agent_links_: normally report-thread-only, but the drain worker
  /// reads the link table for its deregistration fan-out.
  std::mutex links_mu_;
  std::vector<AgentLink> agent_links_;
  Rng reregister_rng_;  // report-thread only

  std::atomic<bool> stopping_{false};
  std::atomic<bool> crashed_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> drained_{false};
  std::thread drain_thread_;
  std::atomic<int> active_connections_{0};

  std::mutex active_jobs_mu_;
  std::multimap<std::uint64_t, std::shared_ptr<ActiveJob>> active_jobs_;

  // Worker-pool capacity gate.
  mutable std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;
  int running_jobs_ = 0;
  int waiting_jobs_ = 0;

  mutable std::mutex failure_mu_;
  Rng failure_rng_;
  std::atomic<std::int64_t> requests_seen_{0};
  std::atomic<double> background_load_;

  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> cancelled_queued_{0};
  std::atomic<std::uint64_t> cancelled_running_{0};
  std::atomic<std::uint64_t> drain_rejected_{0};
  ServerMetrics metrics_;

  std::thread accept_thread_;
  std::thread report_thread_;
};

}  // namespace ns::server
