#include "server/server.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>

#include "common/bytepack.hpp"
#include "common/clock.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "dsl/specfile.hpp"
#include "dsl/value.hpp"
#include "linalg/rating.hpp"
#include "net/pool.hpp"
#include "server/builtin_problems.hpp"

namespace ns::server {

namespace {

using proto::MessageType;

serial::Bytes encode_payload(const auto& msg) {
  serial::Encoder enc;
  msg.encode(enc);
  return enc.take();
}

}  // namespace

Result<std::unique_ptr<ComputeServer>> ComputeServer::start(ServerConfig config) {
  if (config.speed_factor <= 0.0 || config.speed_factor > 1.0) {
    return make_error(ErrorCode::kBadArguments, "speed_factor must be in (0, 1]");
  }
  if (config.workers < 1) {
    return make_error(ErrorCode::kBadArguments, "workers must be >= 1");
  }

  double native = config.rating_override;
  if (native <= 0.0) {
    native = linalg::linpack_rating(/*n=*/160, /*repeats=*/2).mflops;
  }
  const double rated = native * config.speed_factor;

  auto listener = net::TcpListener::bind(config.listen);
  if (!listener.ok()) return listener.error();

  std::unique_ptr<ComputeServer> server(
      new ComputeServer(std::move(config), std::move(listener).value(), rated));
  register_builtin_problems(server->registry_, native);
  if (!server->config_.problem_filter.empty()) {
    server->registry_.retain_only(server->config_.problem_filter);
    if (server->registry_.size() == 0) {
      return make_error(ErrorCode::kBadArguments,
                        "problem_filter matches nothing in the catalogue");
    }
  }
  if (!server->config_.spec_overrides.empty()) {
    auto overrides = dsl::parse_spec_file(server->config_.spec_overrides);
    if (!overrides.ok()) return overrides.error();
    for (const auto& spec : overrides.value()) {
      NS_RETURN_IF_ERROR(server->registry_.override_spec(spec));
    }
  }

  if (server->config_.agents.empty()) {
    return make_error(ErrorCode::kBadArguments, "no agents configured");
  }
  // Durability: replay whatever the previous incarnation left behind and
  // open the journal before any traffic can arrive. Recovered jobs are
  // registered in active_jobs_ here — before the accept thread exists — so
  // a re-attaching client's first probe can never miss them.
  if (!server->config_.data_dir.empty()) {
    NS_RETURN_IF_ERROR(server->open_journal());
  }
  // Initial registration sweep: every configured agent gets one synchronous
  // try; startup succeeds if at least one lands. Unreachable agents stay in
  // the link table and the report thread keeps retrying them with backoff.
  server->maintain_registrations();
  if (server->server_id_.load() == proto::kInvalidServerId) {
    return make_error(ErrorCode::kAgentUnavailable,
                      "could not register with any of " +
                          std::to_string(server->config_.agents.size()) + " agent(s)");
  }

  // The reactor adopts the listener: reads and frame decode live on its
  // event loop, handlers (including blocking solves waiting in the admission
  // queue) on its elastic pool. Its idle sweep stays above the client pool's
  // keep-alive window so the client side discards idle connections first.
  net::ReactorConfig reactor_config;
  reactor_config.idle_timeout_s = std::max(server->config_.io_timeout_s, 5.0);
  reactor_config.guard = server->config_.guard;
  NS_RETURN_IF_ERROR(server->reactor_.start(
      std::move(server->listener_),
      [raw = server.get()](const net::ReactorConnPtr& conn, net::Message&& msg) {
        return raw->handle_message(conn, std::move(msg));
      },
      reactor_config));
  server->report_thread_ = std::thread([raw = server.get()] { raw->report_loop(); });
  server->launch_recovered_jobs();
  return server;
}

ComputeServer::ServerMetrics::ServerMetrics(const std::string& name)
    : requests(metrics::counter("server.requests_total")),
      completed(metrics::counter("server.completed_total")),
      admit(metrics::counter("server.admit_total")),
      shed(metrics::counter("server.shed_total")),
      shed_admission(metrics::counter("server.shed_admission_total")),
      shed_dequeue(metrics::counter("server.shed_dequeue_total")),
      shed_codel(metrics::counter("server.shed_codel_total")),
      shed_quota(metrics::counter("server.shed_quota_total")),
      aimd_backoff(metrics::counter("server.aimd_backoff_total")),
      rejected(metrics::counter("server.rejected_total")),
      exec_errors(metrics::counter("server.exec_errors_total")),
      cancelled_queued(metrics::counter("server.cancelled_queued_total")),
      cancelled_running(metrics::counter("server.cancelled_running_total")),
      cancel_requests(metrics::counter("server.cancel_requests_total")),
      drain_rejected(metrics::counter("server.drain_rejected_total")),
      journal_appends(metrics::counter("server.journal_appends_total")),
      jobs_recovered(metrics::counter("server.jobs_recovered_total")),
      jobs_migrated(metrics::counter("server.jobs_migrated_total")),
      jobs_resumed(metrics::counter("server.jobs_resumed_total")),
      store_write_errors(metrics::counter("store.write_errors_total")),
      store_degraded_shed(metrics::counter("store.degraded_shed_total")),
      store_ckpt_replicated(metrics::counter("store.ckpt_replicated_total")),
      store_ckpt_raw_bytes(metrics::counter("store.ckpt_raw_bytes_total")),
      store_ckpt_wire_bytes(metrics::counter("store.ckpt_wire_bytes_total")),
      store_failover_resume(metrics::counter("store.failover_resume_total")),
      store_degraded(metrics::gauge("store." + name + ".degraded")),
      mem_shed(metrics::counter("mem.shed_total")),
      mem_spilled_bytes(metrics::counter("mem.spilled_bytes_total")),
      mem_spill_reloads(metrics::counter("mem.spill_reloads_total")),
      mem_spill_reload_errors(metrics::counter("mem.spill_reload_errors_total")),
      mem_bad_alloc(metrics::counter("mem.bad_alloc_total")),
      mem_replica_evicted(metrics::counter("mem.replica_evicted_total")),
      mem_forced_charge(metrics::counter("mem.forced_charge_total")),
      mem_accounted(metrics::gauge("mem." + name + ".accounted_bytes")),
      mem_peak(metrics::gauge("mem." + name + ".peak_bytes")),
      mem_budget(metrics::gauge("mem." + name + ".budget_bytes")),
      mem_spill_active(metrics::gauge("mem." + name + ".spill_active")),
      queue_wait_s(metrics::histogram("server.queue_wait_s")),
      queue_sojourn_s(metrics::histogram("server.queue_sojourn_s")),
      compute_s(metrics::histogram("server.compute_s")),
      queue_depth(metrics::gauge("server." + name + ".queue_depth")),
      concurrency_limit(metrics::gauge("server." + name + ".concurrency_limit")),
      draining(metrics::gauge("server." + name + ".draining")) {}

ComputeServer::ComputeServer(ServerConfig config, net::TcpListener listener,
                             double rated_mflops)
    : config_(std::move(config)),
      listener_(std::move(listener)),
      rated_mflops_(rated_mflops),
      // Fresh per process lifetime: lets agents tell a restart (full revive)
      // from a periodic keep-alive refresh of the same process.
      incarnation_((static_cast<std::uint64_t>(now_seconds() * 1e6) ^ (config_.seed << 1)) | 1u),
      reregister_rng_(config_.seed ^ 0x9e3779b97f4a7c15ull),
      failure_rng_(config_.seed),
      background_load_(config_.background_load),
      metrics_(config_.name) {
  endpoint_ = listener_.endpoint();
  concurrency_limit_f_ = static_cast<double>(config_.workers);
  metrics_.concurrency_limit.set(static_cast<double>(config_.workers));
  governor_.configure(config_.mem);
  spill_.configure(config_.mem.spill_dir);
  metrics_.mem_budget.set(static_cast<double>(config_.mem.global_bytes));
  for (const auto& agent : config_.agents) {
    agent_links_.push_back(AgentLink{agent});
  }
}

ComputeServer::~ComputeServer() { stop(); }

Status ComputeServer::register_link(AgentLink& link, std::vector<net::Endpoint>* discovered) {
  proto::RegisterServer reg;
  reg.server_name = config_.name;
  reg.endpoint = endpoint_;
  reg.mflops = rated_mflops_;
  reg.problems = registry_.all_specs();
  reg.incarnation = incarnation_;
  auto reply = net::pool_round_trip(link.endpoint,
                                    static_cast<std::uint16_t>(MessageType::kRegisterServer),
                                    encode_payload(reg), config_.io_timeout_s,
                                    /*dial_timeout_s=*/5.0);
  if (!reply.ok()) return reply.error();
  if (reply.value().type != static_cast<std::uint16_t>(MessageType::kRegisterAck)) {
    return make_error(ErrorCode::kProtocol, "expected RegisterAck");
  }
  serial::Decoder dec(reply.value().payload);
  auto ack = proto::RegisterAck::decode(dec);
  if (!ack.ok()) return ack.error();
  link.id = ack.value().server_id;
  if (discovered != nullptr) {
    for (const auto& peer : ack.value().peer_agents) discovered->push_back(peer);
  }
  // The first agent to answer is the "primary" whose id server_id() reports.
  proto::ServerId expected = proto::kInvalidServerId;
  server_id_.compare_exchange_strong(expected, link.id);
  NS_INFO("server") << config_.name << " registered as id=" << link.id << " at "
                    << link.endpoint.to_string() << " rating=" << rated_mflops_
                    << " Mflop/s";
  return ok_status();
}

void ComputeServer::maintain_registrations() {
  std::lock_guard<std::mutex> links_lock(links_mu_);
  const double now = now_seconds();
  std::vector<net::Endpoint> discovered;
  for (auto& link : agent_links_) {
    if (now < link.next_attempt_time) continue;
    if (register_link(link, &discovered).ok()) {
      link.backoff_s = 0.0;
      if (config_.reregister_period_s > 0) {
        // Jittered so a fleet does not re-register in lockstep.
        link.next_attempt_time =
            now + config_.reregister_period_s * reregister_rng_.uniform(0.5, 1.5);
      } else {
        link.next_attempt_time = 1e300;  // legacy: register once, never again
      }
    } else {
      // Decorrelated-jitter backoff toward the dead agent; capped well below
      // the re-register period so a rebooted agent is re-learned promptly.
      link.backoff_s = std::min(
          1.0, reregister_rng_.uniform(0.05, std::max(0.05, link.backoff_s * 3.0)));
      link.next_attempt_time = now + link.backoff_s;
    }
  }
  // Adopt mesh peers the acks told us about (mesh growth is idempotent:
  // known endpoints are skipped).
  for (const auto& peer : discovered) {
    bool known = false;
    for (const auto& link : agent_links_) {
      if (link.endpoint == peer) {
        known = true;
        break;
      }
    }
    if (!known) {
      NS_INFO("server") << config_.name << " discovered peer agent " << peer.to_string();
      agent_links_.push_back(AgentLink{peer});
    }
  }
}

FailureSpec::Mode ComputeServer::roll_failure() {
  std::lock_guard<std::mutex> lock(failure_mu_);
  const std::int64_t seen = requests_seen_.fetch_add(1) + 1;
  if (config_.failure.mode == FailureSpec::Mode::kNone) return FailureSpec::Mode::kNone;
  if (config_.failure.after_requests >= 0 && seen > config_.failure.after_requests) {
    return config_.failure.mode;
  }
  if (config_.failure.probability > 0 && failure_rng_.bernoulli(config_.failure.probability)) {
    return config_.failure.mode;
  }
  return FailureSpec::Mode::kNone;
}

double ComputeServer::estimate_service_seconds(const proto::SolveRequest& request) const {
  const auto spec = registry_.spec(request.problem);
  if (!spec.has_value() || rated_mflops_ <= 0.0) return 0.0;
  const double flops = spec->predicted_flops(request.args);
  if (flops <= 0.0) return 0.0;
  // The rating already folds in speed_factor; background load stretches
  // service by (1 + L) under the processor-sharing model.
  return flops / (rated_mflops_ * 1e6) *
         (1.0 + std::max(background_load_.load(), 0.0));
}

int ComputeServer::effective_concurrency_locked() const {
  if (!config_.admission.aimd) return config_.workers;
  return std::max(config_.admission.aimd_min,
                  static_cast<int>(concurrency_limit_f_));
}

int ComputeServer::concurrency_limit() const {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  return effective_concurrency_locked();
}

double ComputeServer::retry_after_locked() const {
  const int limit = std::max(1, effective_concurrency_locked());
  const double per_job = service_ewma_s_ > 0.0 ? service_ewma_s_ : 0.02;
  const double horizon = per_job * static_cast<double>(waiting_jobs_ + 1) / limit;
  return std::clamp(horizon, 0.002, 2.0);
}

void ComputeServer::aimd_on_success_locked() {
  const auto& adm = config_.admission;
  if (!adm.aimd) return;
  const int limit = effective_concurrency_locked();
  if (++aimd_successes_ < limit) return;
  aimd_successes_ = 0;
  const double max_limit =
      static_cast<double>(adm.aimd_max > 0 ? adm.aimd_max : config_.workers);
  concurrency_limit_f_ = std::min(concurrency_limit_f_ + 1.0, max_limit);
  metrics_.concurrency_limit.set(effective_concurrency_locked());
}

void ComputeServer::aimd_on_overload_locked(double now) {
  const auto& adm = config_.admission;
  if (!adm.aimd) return;
  // Space decreases out: one congestion episode sheds many jobs at once,
  // and each shed must not each take its own multiplicative bite.
  if (now - aimd_last_decrease_ < 0.1) return;
  aimd_last_decrease_ = now;
  aimd_successes_ = 0;
  concurrency_limit_f_ =
      std::max(static_cast<double>(adm.aimd_min), concurrency_limit_f_ * adm.aimd_beta);
  metrics_.aimd_backoff.inc();
  metrics_.concurrency_limit.set(effective_concurrency_locked());
}

bool ComputeServer::codel_should_drop_locked(double sojourn, double now) {
  const double target = config_.admission.codel_target_s;
  const double interval = std::max(config_.admission.codel_interval_s, 1e-3);
  if (sojourn < target) {
    // Back under target: leave the dropping state, but remember the drop
    // count briefly (classic CoDel resumes near the previous rate if the
    // queue re-congests right away).
    codel_first_above_ = 0.0;
    codel_dropping_ = false;
    return false;
  }
  if (codel_first_above_ == 0.0) {
    // Above target: arm, but only drop once it stays above for a full
    // interval (bursts shorter than the interval are fine).
    codel_first_above_ = now + interval;
    return false;
  }
  if (now < codel_first_above_) return false;
  if (!codel_dropping_) {
    codel_dropping_ = true;
    codel_drop_count_ = codel_drop_count_ > 2 ? codel_drop_count_ - 2 : 1;
    codel_drop_next_ = now;
  }
  if (now >= codel_drop_next_) {
    ++codel_drop_count_;
    codel_drop_next_ = now + interval / std::sqrt(static_cast<double>(codel_drop_count_));
    return true;
  }
  return false;
}

void ComputeServer::record_sojourn_locked(double sojourn) {
  sojourn_ring_[sojourn_count_ % sojourn_ring_.size()] = sojourn;
  ++sojourn_count_;
}

double ComputeServer::sojourn_p95_locked() const {
  const std::size_t n = std::min(sojourn_count_, sojourn_ring_.size());
  if (n == 0) return 0.0;
  std::array<double, 128> sorted;
  std::copy_n(sojourn_ring_.begin(), n, sorted.begin());
  const auto rank = static_cast<std::size_t>(0.95 * static_cast<double>(n - 1) + 0.5);
  std::nth_element(sorted.begin(), sorted.begin() + rank, sorted.begin() + n);
  return sorted[rank];
}

double ComputeServer::sojourn_p95() const {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  return sojourn_p95_locked();
}

void ComputeServer::remove_wait_entry_locked(WaitEntry& entry) {
  auto [it, end] = wait_queue_.equal_range(entry.key);
  for (; it != end; ++it) {
    if (it->second == &entry) {
      wait_queue_.erase(it);
      return;
    }
  }
}

void ComputeServer::dispatch_locked() {
  const auto& adm = config_.admission;
  bool woke_any = false;
  while (running_jobs_ < effective_concurrency_locked() && !wait_queue_.empty()) {
    const double now = now_seconds();
    const auto it = wait_queue_.begin();
    WaitEntry* entry = it->second;
    const double sojourn = now - entry->enqueue_time;
    record_sojourn_locked(sojourn);
    metrics_.queue_sojourn_s.observe(sojourn);

    // Deadline sheds at dequeue: the budget lapsed while the job queued, or
    // (predictively) the remaining budget cannot cover the predicted
    // service — either way computing would only waste the slot. Dropped
    // retryably: a faster or idler server may still make the deadline.
    const bool expired = adm.shed_expired && now >= entry->deadline_abs;
    const bool infeasible =
        adm.shed_infeasible && entry->est_service_s > 0.0 &&
        now + entry->est_service_s + adm.dispatch_slack_s > entry->deadline_abs;
    if (expired || infeasible) {
      wait_queue_.erase(it);
      entry->dropped = true;
      entry->drop_reason = "overload control: deadline budget lapsed in queue";
      // The hint damps re-enqueue churn: without it the client's next
      // attempt lands right back in the same congested queue.
      entry->retry_after_s = retry_after_locked();
      shed_dequeue_.fetch_add(1);
      metrics_.shed_dequeue.inc();
      shed_.fetch_add(1);  // legacy aggregate: deadline sheds before compute
      metrics_.shed.inc();
      aimd_on_overload_locked(now);
      woke_any = true;
      continue;
    }

    // CoDel-style sojourn shedder: under sustained pressure, shedding the
    // head (and telling its client to back off) is what keeps the queue
    // wait of everything behind it bounded. Work-conserving tweak: never
    // shed the only waiter when a slot is free for it.
    if (adm.codel_target_s > 0.0 && wait_queue_.size() > 1 &&
        codel_should_drop_locked(sojourn, now)) {
      wait_queue_.erase(it);
      entry->dropped = true;
      entry->drop_reason = "overload control: queue sojourn above CoDel target";
      entry->retry_after_s = retry_after_locked();
      shed_codel_.fetch_add(1);
      metrics_.shed_codel.inc();
      aimd_on_overload_locked(now);
      woke_any = true;
      continue;
    }

    // Memory gate: charge the working set (plus any spilled payload about
    // to be re-materialized) before granting the slot. When the charge does
    // not fit, stop dispatching — a completion will release bytes and rerun
    // this loop; EDF order is preserved by blocking on the head. Progress
    // guarantee: an otherwise-idle server force-charges its head-of-line
    // job (counted, may overshoot the budget) rather than deadlocking
    // against queued payloads that hold the budget.
    const std::uint64_t need = entry->ws_bytes + entry->spilled_bytes;
    if (need > 0 && !governor_.try_charge(need)) {
      if (running_jobs_ > 0) break;
      governor_.charge_forced(need);
      metrics_.mem_forced_charge.inc();
    }
    entry->granted_bytes = need;
    wait_queue_.erase(it);
    entry->ready = true;
    ++running_jobs_;
    woke_any = true;
  }
  // One notify_all covers every decision made above: entries wake, find
  // their ready/dropped flag, and proceed. Waiters that were not picked
  // re-check their predicate and sleep again.
  if (woke_any) jobs_cv_.notify_all();
}

bool ComputeServer::handle_message(const net::ReactorConnPtr& conn, net::Message&& msg) {
  if (stopping_.load()) return false;

  if (msg.type == static_cast<std::uint16_t>(MessageType::kPing)) {
    return conn->send(static_cast<std::uint16_t>(MessageType::kPong), {}).ok();
  }
  if (msg.type == static_cast<std::uint16_t>(MessageType::kMetricsQuery)) {
    serial::Decoder query_dec(msg.payload);
    auto query = proto::MetricsQuery::decode(query_dec);
    proto::MetricsDump dump;
    dump.snapshot = metrics::Registry::instance().snapshot(
        query.ok() ? query.value().prefix : std::string{});
    return conn->send(static_cast<std::uint16_t>(MessageType::kMetricsDump),
                      encode_payload(dump))
        .ok();
  }
  if (msg.type == static_cast<std::uint16_t>(MessageType::kCancelRequest)) {
    serial::Decoder cancel_dec(msg.payload);
    auto cancel = proto::CancelRequest::decode(cancel_dec);
    if (!cancel.ok()) return false;  // protocol violation: drop
    metrics_.cancel_requests.inc();
    proto::CancelAck ack;
    ack.request_id = cancel.value().request_id;
    ack.outcome = cancel_jobs(cancel.value().request_id);
    {
      // Lock-then-notify so a queued job that checked its token just
      // before blocking cannot miss the wakeup.
      std::lock_guard<std::mutex> lock(jobs_mu_);
    }
    jobs_cv_.notify_all();
    return conn->send(static_cast<std::uint16_t>(MessageType::kCancelAck),
                      encode_payload(ack))
        .ok();
  }
  if (msg.type == static_cast<std::uint16_t>(MessageType::kDrainRequest)) {
    serial::Decoder drain_dec(msg.payload);
    auto drain_msg = proto::DrainRequest::decode(drain_dec);
    if (!drain_msg.ok()) return false;  // protocol violation: drop
    proto::DrainAck ack;
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      ack.running = static_cast<std::uint32_t>(running_jobs_);
      ack.queued = static_cast<std::uint32_t>(waiting_jobs_);
    }
    ack.started = start_drain(drain_msg.value().deadline_s);
    return conn->send(static_cast<std::uint16_t>(MessageType::kDrainAck),
                      encode_payload(ack))
        .ok();
  }
  if (msg.type == static_cast<std::uint16_t>(MessageType::kProbeRequest)) {
    serial::Decoder probe_dec(msg.payload);
    auto probe = proto::ProbeRequest::decode(probe_dec);
    if (!probe.ok()) return false;  // protocol violation: drop
    return conn->send(static_cast<std::uint16_t>(MessageType::kProbeReply),
                      encode_payload(probe_job(probe.value())))
        .ok();
  }
  if (msg.type == static_cast<std::uint16_t>(MessageType::kJobTransfer)) {
    serial::Decoder transfer_dec(msg.payload);
    auto transfer = proto::JobTransfer::decode(transfer_dec);
    if (!transfer.ok()) return false;  // protocol violation: drop
    return conn->send(static_cast<std::uint16_t>(MessageType::kTransferAck),
                      encode_payload(accept_transfer(std::move(transfer).value())))
        .ok();
  }
  if (msg.type == static_cast<std::uint16_t>(MessageType::kCheckpointPut)) {
    serial::Decoder put_dec(msg.payload);
    auto put = proto::CheckpointPut::decode(put_dec);
    if (!put.ok()) return false;  // protocol violation: drop
    return conn->send(static_cast<std::uint16_t>(MessageType::kCheckpointPutAck),
                      encode_payload(accept_checkpoint(std::move(put).value())))
        .ok();
  }
  if (msg.type == static_cast<std::uint16_t>(MessageType::kCheckpointFetch)) {
    serial::Decoder fetch_dec(msg.payload);
    auto fetch = proto::CheckpointFetch::decode(fetch_dec);
    if (!fetch.ok()) return false;  // protocol violation: drop
    return conn->send(static_cast<std::uint16_t>(MessageType::kCheckpointFetchReply),
                      encode_payload(handle_checkpoint_fetch(fetch.value())))
        .ok();
  }
  if (msg.type != static_cast<std::uint16_t>(MessageType::kSolveRequest)) {
    return false;  // protocol violation: drop
  }
  return handle_solve(conn, msg.payload);
}

bool ComputeServer::handle_solve(const net::ReactorConnPtr& conn,
                                 const serial::Bytes& payload) {
  const auto solve_result = static_cast<std::uint16_t>(MessageType::kSolveResult);
  serial::Decoder dec(payload);
  const Stopwatch since_receipt;
  // Decoding materializes the full argument set from untrusted bytes — the
  // single largest allocation on the request path. An allocation failure
  // here (real pressure or an armed mem::AllocFaultPlan) must convert into
  // a counted connection drop the client retries elsewhere, never
  // std::terminate.
  auto request = [&]() -> Result<proto::SolveRequest> {
    try {
      mem::alloc_trip("server.solve_decode");
      return proto::SolveRequest::decode(dec);
    } catch (const std::bad_alloc&) {
      metrics_.mem_bad_alloc.inc();
      return make_error(ErrorCode::kServerOverloaded,
                        "allocation failed decoding request");
    }
  }();
  proto::SolveResult result;
  if (!request.ok()) {
    result.error_code = static_cast<std::uint16_t>(request.error().code);
    result.error_message = request.error().message;
    (void)conn->send(solve_result, encode_payload(result), config_.link);
    return false;
  }
  result.request_id = request.value().request_id;

  // Failure injection happens after the request is fully received — the
  // client has already paid the transfer cost, which is the expensive
  // failure the retry logic must absorb.
  switch (roll_failure()) {
    case FailureSpec::Mode::kCrash:
      NS_WARN("server") << config_.name << " injected crash";
      crashed_.store(true);
      stopping_.store(true);
      // The crash runs on a reactor pool thread, so it cannot join the
      // reactor from here; release the port asynchronously and let stop()
      // (from the owner) do the full teardown. handle_message rejects all
      // further frames meanwhile.
      reactor_.stop_accepting();
      jobs_cv_.notify_all();
      return false;
    case FailureSpec::Mode::kDropRequest:
      NS_DEBUG("server") << config_.name << " injected connection drop";
      return false;
    case FailureSpec::Mode::kHangRequest:
      // The reply simply never leaves; the connection stays open and the
      // client's io timeout is the only way out. (Unlike the blocking
      // transport no thread is held hostage meanwhile.)
      NS_DEBUG("server") << config_.name << " injected hang";
      return true;
    case FailureSpec::Mode::kErrorReply:
      result.error_code = static_cast<std::uint16_t>(ErrorCode::kServerFailure);
      result.error_message = "injected failure";
      return conn->send(solve_result, encode_payload(result), config_.link).ok();
    case FailureSpec::Mode::kNone:
      break;
  }

  // Acquire a worker slot; waiting requests count toward workload.
  metrics_.requests.inc();
  if (draining_.load()) {
    // Retryable: the client's failover moves this request to another
    // server, which is the whole point of draining.
    drain_rejected_.fetch_add(1);
    metrics_.drain_rejected.inc();
    result.error_code = static_cast<std::uint16_t>(ErrorCode::kServerOverloaded);
    result.error_message = "server draining";
    return conn->send(solve_result, encode_payload(result), config_.link).ok();
  }
  // A job that insists on durability cannot run where the journal has
  // fail-stopped (or never existed). Shed retryably — the agent already
  // de-prefers this server (durable=false in workload reports), and the
  // client's retry finds a healthy peer. Accepting silently would turn the
  // client's durability requirement into a coin flip.
  if (request.value().require_durable &&
      (config_.data_dir.empty() || degraded_.load())) {
    metrics_.store_degraded_shed.inc();
    result.error_code = static_cast<std::uint16_t>(ErrorCode::kServerOverloaded);
    result.error_message = "durability degraded: journal unavailable";
    return conn->send(solve_result, encode_payload(result), config_.link).ok();
  }
  // Visible to CANCEL, PROBE and the drain sweep from admission to reply.
  // The request moves into the job so compaction and migration can
  // re-serialize it without this handler thread's cooperation.
  auto job = std::make_shared<ActiveJob>();
  job->request = std::move(request).value();
  {
    std::lock_guard<std::mutex> lock(active_jobs_mu_);
    active_jobs_.emplace(result.request_id, job);
  }
  // WAL discipline: the ADMITTED record (full request + remaining budget)
  // is on disk before the job enters the queue — from here on, a crash
  // cannot lose it.
  journal_admit(*job, job->request.deadline_s > 0.0
                          ? job->request.deadline_s - since_receipt.elapsed()
                          : 0.0);
  auto reply = run_job(job, since_receipt);
  if (!reply.has_value()) return false;  // stopping or crashed: no reply leaves
  return conn->send(solve_result, encode_payload(*reply), config_.link).ok();
}

std::optional<proto::SolveResult> ComputeServer::run_job(
    const std::shared_ptr<ActiveJob>& job, const Stopwatch& since_receipt) {
  const proto::SolveRequest& request = job->request;
  proto::SolveResult result;
  result.request_id = request.request_id;

  const Stopwatch queue_watch;
  const double est_service = estimate_service_seconds(request);
  job->payload_bytes = dsl::args_byte_size(request.args);
  job->ws_bytes = estimate_working_set_bytes(request);
  WaitEntry entry;
  {
    std::unique_lock<std::mutex> lock(jobs_mu_);
    const auto& adm = config_.admission;
    const double now = now_seconds();
    // Recovered and transferred-in jobs (readmit) skip the admission
    // rejections: they were accepted once already, and shedding them now
    // would turn a durability guarantee into a coin flip.
    if (!job->readmit && config_.max_queue > 0 && waiting_jobs_ >= config_.max_queue) {
      result.retry_after_s = retry_after_locked();
      lock.unlock();
      metrics_.rejected.inc();
      result.error_code = static_cast<std::uint16_t>(ErrorCode::kServerOverloaded);
      result.error_message = "admission control: queue full";
      finish_job(job, result);
      return result;
    }
    // Per-client fair share: when quotas are on, a single client id may
    // occupy at most its fraction of the queue slots. Anonymous requests
    // (client_id 0 — older clients) are exempt rather than lumped into
    // one shared bucket that they would starve each other out of.
    if (!job->readmit && adm.quota_fraction > 0.0 && config_.max_queue > 0 &&
        request.client_id != 0) {
      const int quota = std::max(
          1, static_cast<int>(std::llround(adm.quota_fraction * config_.max_queue)));
      const auto used = waiting_by_client_.find(request.client_id);
      if (used != waiting_by_client_.end() && used->second >= quota) {
        result.retry_after_s = retry_after_locked();
        lock.unlock();
        shed_quota_.fetch_add(1);
        metrics_.shed_quota.inc();
        result.error_code = static_cast<std::uint16_t>(ErrorCode::kServerOverloaded);
        result.error_message = "admission control: per-client quota exceeded";
        finish_job(job, result);
        return result;
      }
    }
    // Infeasible at admission: the predicted service time alone already
    // exceeds the remaining budget, so even an empty queue cannot save
    // this job. Shedding now (retryably) lets the client spend its budget
    // on a faster server instead of on our queue.
    if (!job->readmit && adm.shed_infeasible && request.deadline_s > 0.0 &&
        est_service > 0.0) {
      const double remaining = request.deadline_s - since_receipt.elapsed();
      if (est_service + adm.dispatch_slack_s > remaining) {
        lock.unlock();
        shed_admission_.fetch_add(1);
        metrics_.shed_admission.inc();
        shed_.fetch_add(1);  // legacy aggregate: deadline sheds before compute
        metrics_.shed.inc();
        NS_DEBUG("server") << config_.name << " shed request " << result.request_id
                           << " at admission (predicted " << est_service
                           << "s > remaining " << remaining << "s)";
        result.error_code = static_cast<std::uint16_t>(ErrorCode::kServerOverloaded);
        result.error_message =
            "admission control: predicted service time exceeds deadline budget";
        finish_job(job, result);
        return result;
      }
    }
    // Memory admission: the payload is charged to the governor before the
    // job may queue (the bytes already exist in RAM — the account must say
    // so), and a job whose payload + working set exceed the per-job budget
    // can never run here, so queueing it would only waste its deadline.
    // Both refusals shed retryably with a backpressure hint: the agent
    // already de-prefers this server (mem_free_bytes in workload reports),
    // so the client's retry lands on a peer with headroom. Recovered and
    // transferred-in jobs charge unconditionally — shedding them would
    // break the durability contract.
    if (job->mem_charged_bytes == 0 && job->payload_bytes > 0) {
      const std::uint64_t need = job->payload_bytes + job->ws_bytes;
      const std::uint64_t cap = governor_.per_job_budget();
      const bool oversized = governor_.governed() && need > cap;
      if (!job->readmit && (oversized || !governor_.try_charge(job->payload_bytes))) {
        result.retry_after_s = retry_after_locked();
        lock.unlock();
        mem_shed_.fetch_add(1);
        metrics_.mem_shed.inc();
        mem_dirty_.store(true);
        result.error_code = static_cast<std::uint16_t>(ErrorCode::kServerOverloaded);
        result.error_message =
            oversized ? "memory governor: payload + working set exceed per-job budget"
                      : "memory governor: payload does not fit the budget";
        finish_job(job, result);
        return result;
      }
      if (job->readmit && !governor_.try_charge(job->payload_bytes)) {
        governor_.charge_forced(job->payload_bytes);
        metrics_.mem_forced_charge.inc();
      }
      job->mem_charged_bytes += job->payload_bytes;
    }
    // Admit into the EDF wait queue. With EDF off the key degenerates to
    // the arrival sequence number, i.e. plain FIFO. No-deadline jobs sort
    // last under EDF (deadline_abs ~ +inf) — they can afford to wait.
    metrics_.admit.inc();
    entry.enqueue_time = now;
    entry.deadline_abs = request.deadline_s > 0.0
                             ? now + (request.deadline_s - since_receipt.elapsed())
                             : 1e300;
    entry.est_service_s = est_service;
    entry.client_id = request.client_id;
    entry.ws_bytes = job->ws_bytes;
    entry.key = {adm.edf ? entry.deadline_abs : 0.0, queue_seq_++};
    job->deadline_abs = entry.deadline_abs;
    wait_queue_.emplace(entry.key, &entry);
    if (entry.client_id != 0) ++waiting_by_client_[entry.client_id];
    ++waiting_jobs_;
    metrics_.queue_depth.set(waiting_jobs_);
    dispatch_locked();
    // Queued-but-cold payload spill: a job the dispatcher did not grant
    // immediately parks its encoded request on disk (through the vfs seam)
    // and releases the RAM charge, so the budget funds *running* jobs
    // instead of queue ballast. The I/O happens with jobs_mu_ dropped;
    // a grant or drop that raced the spill simply leaves the payload
    // charged and the wake path reloads it right away.
    if (!entry.ready && !entry.dropped && should_spill_locked(*job)) {
      lock.unlock();
      const bool parked = spill_job(job);
      lock.lock();
      if (parked && !entry.ready && !entry.dropped && !stopping_.load() &&
          !job->token.cancelled()) {
        governor_.release(job->payload_bytes);
        job->mem_charged_bytes -= std::min<std::uint64_t>(job->mem_charged_bytes,
                                                          job->payload_bytes);
        entry.spilled_bytes = job->payload_bytes;
        // The freed bytes may be exactly what the memory-blocked head of
        // the queue was waiting for.
        dispatch_locked();
      }
    }
    jobs_cv_.wait(lock, [this, &job, &entry] {
      return entry.ready || entry.dropped || stopping_.load() || job->token.cancelled();
    });
    --waiting_jobs_;
    metrics_.queue_depth.set(waiting_jobs_);
    if (entry.client_id != 0) {
      const auto used = waiting_by_client_.find(entry.client_id);
      if (used != waiting_by_client_.end() && --used->second <= 0) {
        waiting_by_client_.erase(used);
      }
    }
    // Whatever happens next, the dispatcher's grant-time charge is now this
    // job's to release (release_job_memory on every terminal path).
    job->mem_charged_bytes += entry.granted_bytes;
    if (!entry.ready && !entry.dropped) {
      // Woken by stop or cancel while still queued: unlink our stack
      // entry before the dispatcher can hand out a dangling pointer.
      remove_wait_entry_locked(entry);
    } else if (entry.ready && (stopping_.load() || job->token.cancelled())) {
      // Slot granted but we will not use it; hand it to the next waiter.
      --running_jobs_;
      entry.ready = false;
      dispatch_locked();
    }
    if (stopping_.load()) {
      // No terminal record on purpose: a stop with an open journal is
      // indistinguishable from a crash for queued jobs, and replay will
      // re-admit them — exactly what a durable queue is for.
      lock.unlock();
      release_job_memory(job);
      erase_active_job(job, result.request_id);
      return std::nullopt;
    }
    if (job->token.cancelled()) {
      // Cancelled while queued: checked before taking the slot so a
      // cancel can never also count as a shed or a completion.
      lock.unlock();
      cancelled_queued_.fetch_add(1);
      metrics_.cancelled_queued.inc();
      NS_DEBUG("server") << config_.name << " dropped queued request "
                         << result.request_id << " (cancelled)";
      result.error_code = static_cast<std::uint16_t>(ErrorCode::kCancelled);
      result.error_message = "cancelled while queued";
      finish_job(job, result);
      return result;
    }
    if (entry.dropped) {
      // Shed-at-dequeue: the dispatcher decided computing this job is not
      // worth a slot (budget lapsed in queue, or CoDel pressure). Reply
      // retryably — another, less loaded server may still make it — with
      // the dispatcher's backpressure hint attached.
      result.retry_after_s = entry.retry_after_s;
      lock.unlock();
      result.queue_seconds = queue_watch.elapsed();
      NS_DEBUG("server") << config_.name << " shed queued request "
                         << result.request_id << " (" << entry.drop_reason << ")";
      result.error_code = static_cast<std::uint16_t>(ErrorCode::kServerOverloaded);
      result.error_message = entry.drop_reason;
      finish_job(job, result);
      return result;
    }
    job->queued.store(false);
  }
  // Re-materialize a spilled payload before touching the kernel: the
  // dispatcher already charged the bytes at grant, so the reload cannot
  // overrun the budget. A reload failure (storage fault, bit rot, injected
  // bad_alloc) gives the slot back and sheds retryably — the client's
  // resubmission carries the payload again.
  if (job->spilled) {
    if (auto reloaded = reload_spilled(job); !reloaded.ok()) {
      {
        std::lock_guard<std::mutex> lock(jobs_mu_);
        --running_jobs_;
        dispatch_locked();
      }
      metrics_.mem_spill_reload_errors.inc();
      mem_shed_.fetch_add(1);
      metrics_.mem_shed.inc();
      NS_WARN("server") << config_.name << " spill reload failed for request "
                        << result.request_id << ": "
                        << reloaded.error().to_string();
      result.error_code = static_cast<std::uint16_t>(ErrorCode::kServerOverloaded);
      result.error_message = "memory governor: spill reload failed";
      finish_job(job, result);
      return result;
    }
  }
  const double queue_wait = queue_watch.elapsed();
  result.queue_seconds = queue_wait;
  metrics_.queue_wait_s.observe(queue_wait);
  trace::record_span(request.trace_id, "server.queue_wait",
                     since_receipt.elapsed() - queue_wait, queue_wait);

  // Checkpoint wiring: the kernel snapshots its loop state every interval;
  // with a journal open each snapshot also lands as a CHECKPOINT record, and
  // with replicas configured each snapshot is also streamed to the peer set.
  job->ckpt.set_interval(config_.checkpoint_interval);
  {
    std::lock_guard<std::mutex> journal_lock(journal_mu_);
    const bool journal_ckpt = journal_.is_open() && job->journaled;
    const bool replicate = !config_.replicas.empty();
    if (journal_ckpt || replicate) {
      // Raw pointer on purpose: capturing the shared_ptr would cycle
      // (job -> ckpt -> callback -> job). The callback only fires from the
      // kernel thread inside run_job, which holds the shared_ptr.
      job->ckpt.set_on_snapshot([this, id = result.request_id, journal_ckpt,
                                 replicate, jp = job.get()](
                                    const checkpoint::Snapshot& snap) {
        if (journal_ckpt) {
          JournalRecord rec;
          rec.type = JournalRecordType::kCheckpoint;
          rec.request_id = id;
          rec.wall_micros = wall_micros();
          rec.iteration = snap.iteration;
          rec.residual = snap.residual;
          rec.data = snap.state;
          journal_append(rec);
        }
        if (replicate) replicate_checkpoint(*jp, snap);
      });
    }
  }
  // STARTED before execute (once per job — a recovered job that already has
  // its STARTED record on disk carries started=true from replay).
  if (!job->started.exchange(true) && job->journaled) {
    JournalRecord rec;
    rec.type = JournalRecordType::kStarted;
    rec.request_id = result.request_id;
    rec.wall_micros = wall_micros();
    journal_append(rec);
  }
  if (job->ckpt.has_restore()) {
    jobs_resumed_.fetch_add(1);
    metrics_.jobs_resumed.inc();
    std::uint64_t seen = last_resume_iteration_.load();
    const std::uint64_t at = job->ckpt.restore_iteration();
    while (at > seen && !last_resume_iteration_.compare_exchange_weak(seen, at)) {
    }
    NS_INFO("server") << config_.name << " resuming job " << result.request_id
                      << " from checkpoint iteration " << at;
  }

  const Stopwatch watch;
  Result<std::vector<dsl::DataObject>> outputs =
      [&]() -> Result<std::vector<dsl::DataObject>> {
    // Bind the job's tokens for this thread: the kernels' checkpoints (and
    // the simwork/busywork slices) poll the cancel token and unwind with
    // kCancelled, and tick the checkpoint token at the same loop heads.
    cancel::ScopedToken bound(&job->token);
    checkpoint::ScopedToken ckpt_bound(&job->ckpt);
    // Kernels allocate result operands sized by the problem; a bad_alloc
    // here (or an armed trip point) is an overload condition the client
    // should retry elsewhere, not a process abort.
    try {
      mem::alloc_trip("server.execute");
      return registry_.execute(request.problem, request.args);
    } catch (const std::bad_alloc&) {
      metrics_.mem_bad_alloc.inc();
      return make_error(ErrorCode::kServerOverloaded,
                        "allocation failed during execute");
    }
  }();
  double elapsed = watch.elapsed();
  // Heterogeneity emulation: a speed-s server takes 1/s as long, and a
  // synthetic background load of L competing jobs stretches service by
  // (1 + L) under processor sharing. Sliced so a cancel (or stop) does not
  // have to wait out a long stretch.
  const double bg = background_load_.load();
  const double stretch = (1.0 / config_.speed_factor) * (1.0 + std::max(bg, 0.0)) - 1.0;
  if (stretch > 0.0 && outputs.ok()) {
    double extra = elapsed * stretch;
    while (extra > 0.0 && !stopping_.load()) {
      if (job->token.cancelled()) {
        outputs = cancel::cancelled_error("service-time stretch");
        break;
      }
      const double slice = std::min(extra, 0.01);
      if (config_.slowdown_mode == SlowdownMode::kSpin) {
        elapsed += busy_spin_seconds(slice);
      } else {
        const Stopwatch extra_watch;
        sleep_seconds(slice);
        elapsed += extra_watch.elapsed();
      }
      extra -= slice;
    }
  }

  // Release the byte account *before* freeing the slot: the dispatch below
  // runs with running_jobs_ back at 0 when this was the only job, and must
  // see this job's bytes gone or it would force-charge the next grant past
  // the budget. Idempotent — finish_job / the crash path release again.
  release_job_memory(job);
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    --running_jobs_;
    if (outputs.ok()) {
      aimd_on_success_locked();
      // Service-time EWMA feeds the retry_after backpressure hint.
      service_ewma_s_ =
          service_ewma_s_ == 0.0 ? elapsed : 0.8 * service_ewma_s_ + 0.2 * elapsed;
    }
    dispatch_locked();
  }

  result.exec_seconds = elapsed;
  metrics_.compute_s.observe(elapsed);
  trace::record_span(request.trace_id, "server.compute",
                     since_receipt.elapsed() - elapsed, elapsed);
  if (outputs.ok()) {
    result.outputs = std::move(outputs).value();
    completed_.fetch_add(1);
    metrics_.completed.inc();
  } else if (outputs.error().code == ErrorCode::kCancelled) {
    // The partial outputs died with the kernel's stack frame; nothing of
    // the cancelled attempt is published.
    cancelled_running_.fetch_add(1);
    metrics_.cancelled_running.inc();
    NS_DEBUG("server") << config_.name << " cancelled running request "
                       << result.request_id << " after " << elapsed << "s";
    result.error_code = static_cast<std::uint16_t>(ErrorCode::kCancelled);
    result.error_message = outputs.error().message;
    // Drain-time migration: the drain sweep marked this job for hand-off
    // before tripping its token. Ship the latest checkpoint to a peer; on
    // success the reply becomes kMigrated + a forwarding address instead
    // of a bare cancel, and no compute is lost.
    if (job->migrate.load() && config_.migrate_on_drain && !crash_mode_.load()) {
      (void)migrate_job(*job, result);
    }
  } else {
    metrics_.exec_errors.inc();
    result.error_code = static_cast<std::uint16_t>(outputs.error().code);
    result.error_message = outputs.error().message;
  }
  if (crash_mode_.load()) {
    // Crashed mid-execution: the journal is frozen and the reply must not
    // leave — to the outside world this job died with the process. The
    // byte account is process memory, not durable state, so it is still
    // released (the emulated-dead server shares this address space).
    release_job_memory(job);
    erase_active_job(job, result.request_id);
    return std::nullopt;
  }
  finish_job(job, result);
  return result;
}

double ComputeServer::current_workload() const {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  return static_cast<double>(running_jobs_ + waiting_jobs_) + background_load_.load();
}

void ComputeServer::send_workload_report(double workload) {
  // Queue-pressure piggyback: the agent steers new work away from servers
  // whose queues are hot before they start shedding.
  double sojourn_p95 = 0.0;
  double free_slots = 0.0;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    sojourn_p95 = sojourn_p95_locked();
    free_slots =
        static_cast<double>(std::max(0, effective_concurrency_locked() - running_jobs_));
  }
  // Fan out to every agent we ever registered with; ids are agent-local so
  // each link carries its own. Reports ride the keep-alive pool — one warm
  // connection per agent instead of a dial per period. A dead agent costs
  // one failed dial; the next period retries.
  std::lock_guard<std::mutex> links_lock(links_mu_);
  for (const auto& link : agent_links_) {
    if (link.id == proto::kInvalidServerId) continue;
    proto::WorkloadReport report;
    report.server_id = link.id;
    report.workload = workload;
    report.completed = completed_.load();
    report.sojourn_p95_s = sojourn_p95;
    report.free_slots = free_slots;
    report.durable = config_.data_dir.empty() ? -1 : (degraded_.load() ? 0 : 1);
    // Memory tri-state mirrors durable: -1 = ungoverned / never configured
    // (the steady state, left alone by the predictor), otherwise the live
    // headroom and whether payloads are currently parked on disk.
    report.mem_free_bytes =
        governor_.governed() ? static_cast<double>(governor_.headroom()) : -1.0;
    report.spill_active =
        spill_.enabled() ? (spilled_jobs_.load() > 0 ? 1 : 0) : -1;
    (void)net::pool_post(link.endpoint,
                         static_cast<std::uint16_t>(MessageType::kWorkloadReport),
                         encode_payload(report), /*dial_timeout_s=*/1.0);
  }
}

void ComputeServer::report_loop() {
  double last_sent = -1e300;  // force an initial report
  while (!stopping_.load()) {
    // A draining server has deregistered: re-registering or reporting load
    // would resurrect its record and pull traffic back in.
    if (!draining_.load()) {
      // Agent-restart resilience: refresh due registrations (idempotent at
      // the agent; a rebooted agent re-learns us this way) and keep retrying
      // agents that were down at startup.
      maintain_registrations();
      const double workload = current_workload();
      // A durability transition is news the agent must hear regardless of
      // how little the load moved — it changes where checkpointable work
      // should land.
      // Memory pressure transitions (spill engage/release) are likewise
      // routing-relevant news the agent should not wait a threshold for.
      if (std::abs(workload - last_sent) >= config_.report_threshold ||
          last_sent == -1e300 || durable_dirty_.exchange(false) ||
          mem_dirty_.exchange(false)) {
        send_workload_report(workload);
        last_sent = workload;
      }
      metrics_.mem_accounted.set(static_cast<double>(governor_.accounted()));
      metrics_.mem_peak.set(static_cast<double>(governor_.peak()));
      metrics_.mem_spill_active.set(spilled_jobs_.load() > 0 ? 1.0 : 0.0);
    }
    // Sleep in small steps so stop() is prompt.
    const Deadline next(config_.report_period_s);
    while (!next.expired() && !stopping_.load()) {
      sleep_seconds(std::min(0.02, next.remaining()));
    }
  }
}

void ComputeServer::inject_failure(const FailureSpec& failure) {
  std::lock_guard<std::mutex> lock(failure_mu_);
  config_.failure = failure;
}

void ComputeServer::set_background_load(double load) { background_load_.store(load); }

proto::CancelOutcome ComputeServer::cancel_jobs(std::uint64_t request_id) {
  // request_ids are client-minted: trip every job carrying the id and report
  // the most-advanced state found. An unknown id reports kCompleted — the
  // reply already left (or never arrived), so there is nothing to reclaim.
  std::lock_guard<std::mutex> lock(active_jobs_mu_);
  auto outcome = proto::CancelOutcome::kCompleted;
  auto [it, end] = active_jobs_.equal_range(request_id);
  for (; it != end; ++it) {
    it->second->token.cancel();
    if (!it->second->queued.load()) {
      outcome = proto::CancelOutcome::kRunning;
    } else if (outcome == proto::CancelOutcome::kCompleted) {
      outcome = proto::CancelOutcome::kQueued;
    }
  }
  return outcome;
}

// ---- durability ----

Status ComputeServer::open_journal() {
  if (::mkdir(config_.data_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return make_error(ErrorCode::kInternal, "cannot create data_dir " +
                                                config_.data_dir + ": " +
                                                std::strerror(errno));
  }
  const std::string path = config_.data_dir + "/" + config_.name + ".journal";
  auto replay = replay_journal(path);
  if (!replay.ok()) return replay.error();
  NS_RETURN_IF_ERROR(journal_.open(path, config_.journal_fsync));
  restore_from_replay(std::move(replay).value());
  // Startup compaction: the replayed history collapses to one record chain
  // per live job plus the stored results; downtime noise drops out.
  {
    std::lock_guard<std::mutex> lock(journal_mu_);
    (void)journal_.rewrite(collect_live_records_locked());
  }
  return ok_status();
}

void ComputeServer::restore_from_replay(ReplaySummary replay) {
  if (replay.records == 0 && replay.skipped == 0) return;
  NS_INFO("server") << config_.name << " journal replay: " << replay.records
                    << " record(s), " << replay.skipped << " skipped, "
                    << replay.unfinished.size() << " unfinished job(s), "
                    << replay.completed.size() << " stored result(s)";
  for (auto& [id, result] : replay.completed) {
    store_result(id, result);
  }
  const std::int64_t now_us = wall_micros();
  for (auto& recovered : replay.unfinished) {
    const std::uint64_t id = recovered.request.request_id;
    auto job = std::make_shared<ActiveJob>();
    job->readmit = true;
    job->journaled = true;
    job->admitted_wall_us = recovered.admitted_wall_micros;
    job->started.store(recovered.started);
    // Deadline budgets decay across the downtime: the client's clock kept
    // running while this server was dead.
    if (recovered.deadline_remaining_s > 0.0) {
      const double downtime =
          static_cast<double>(now_us - recovered.admitted_wall_micros) / 1e6;
      const double remaining = recovered.deadline_remaining_s - downtime;
      if (remaining <= 0.0) {
        // Nothing left to spend. Journal the terminal record and store a
        // DEADLINE_EXCEEDED result so a re-attaching probe learns the fate.
        proto::SolveResult result;
        result.request_id = id;
        result.error_code = static_cast<std::uint16_t>(ErrorCode::kDeadlineExceeded);
        result.error_message = "deadline budget lapsed during server downtime";
        {
          std::lock_guard<std::mutex> lock(journal_mu_);
          JournalRecord rec;
          rec.type = JournalRecordType::kCompleted;
          rec.request_id = id;
          rec.wall_micros = now_us;
          rec.data = encode_payload(result);
          journal_append_locked(rec);
          store_result(id, result);
        }
        continue;
      }
      recovered.request.deadline_s = remaining;
    } else {
      recovered.request.deadline_s = 0.0;
    }
    job->admit_deadline_remaining_s = recovered.request.deadline_s;
    job->request = std::move(recovered.request);
    if (recovered.snapshot.iteration > 0) {
      job->ckpt.install_restore(std::move(recovered.snapshot));
    }
    {
      std::lock_guard<std::mutex> lock(active_jobs_mu_);
      active_jobs_.emplace(id, job);
    }
    jobs_recovered_.fetch_add(1);
    metrics_.jobs_recovered.inc();
    recovered_jobs_.push_back(std::move(job));
  }
}

void ComputeServer::launch_recovered_jobs() {
  std::vector<std::shared_ptr<ActiveJob>> jobs;
  jobs.swap(recovered_jobs_);
  // Launch in journal (= original admission) order; EDF re-sorts by the
  // decayed deadlines anyway, and the sequence numbers keep FIFO ties.
  for (auto& job : jobs) {
    active_connections_.fetch_add(1);
    std::thread([this, job] {
      const Stopwatch since_receipt;
      // No client connection to answer — the original caller re-attaches
      // with a PROBE and reads the stored result.
      (void)run_job(job, since_receipt);
      active_connections_.fetch_sub(1);
    }).detach();
  }
}

std::uint64_t ComputeServer::journal_appends() const {
  std::lock_guard<std::mutex> lock(journal_mu_);
  return journal_.appends();
}

void ComputeServer::journal_append_locked(const JournalRecord& record) {
  if (!journal_.is_open()) return;
  if (journal_.append(record).ok()) {
    metrics_.journal_appends.inc();
  } else {
    // The journal fail-stopped itself (see Journal::append): the fd is
    // closed and every later append fails fast. Degrade loudly instead of
    // pretending records still land.
    metrics_.store_write_errors.inc();
    enter_degraded_locked("journal append failed");
  }
}

void ComputeServer::enter_degraded_locked(const char* what) {
  if (degraded_.exchange(true)) return;
  metrics_.store_degraded.set(1.0);
  durable_dirty_.store(true);  // report_loop pushes the news immediately
  NS_WARN("server") << config_.name << " durability degraded: " << what << " ("
                    << journal_.path()
                    << ") — running non-durable, shedding durable-required jobs";
}

void ComputeServer::journal_append(const JournalRecord& record) {
  std::lock_guard<std::mutex> lock(journal_mu_);
  journal_append_locked(record);
}

void ComputeServer::journal_admit(ActiveJob& job, double deadline_remaining_s) {
  std::lock_guard<std::mutex> lock(journal_mu_);
  if (!journal_.is_open()) return;
  job.journaled = true;
  job.admitted_wall_us = wall_micros();
  job.admit_deadline_remaining_s = std::max(deadline_remaining_s, 0.0);
  JournalRecord rec;
  rec.type = JournalRecordType::kAdmitted;
  rec.request_id = job.request.request_id;
  rec.wall_micros = job.admitted_wall_us;
  rec.deadline_remaining_s = job.admit_deadline_remaining_s;
  rec.data = encode_payload(job.request);
  journal_append_locked(rec);
}

void ComputeServer::finish_job(const std::shared_ptr<ActiveJob>& job,
                               const proto::SolveResult& result) {
  release_job_memory(job);
  {
    std::lock_guard<std::mutex> lock(journal_mu_);
    const auto code = static_cast<ErrorCode>(result.error_code);
    // "Answered" = the job reached a fate a re-attaching client should see
    // (success, a hard failure, or a migration forwarding address).
    // Retryable rejections are journaled kCancelled: the client was told to
    // go elsewhere, so replay must not resurrect the job here.
    const bool answered = code == ErrorCode::kOk || !is_retryable(code);
    if (journal_.is_open() && job->journaled) {
      JournalRecord rec;
      rec.type = answered ? JournalRecordType::kCompleted
                          : JournalRecordType::kCancelled;
      rec.request_id = result.request_id;
      rec.wall_micros = wall_micros();
      if (answered) rec.data = encode_payload(result);
      journal_append_locked(rec);
    }
    if (answered && (job->journaled || job->started.load())) {
      store_result(result.request_id, result);
    }
    erase_active_job(job, result.request_id);
  }
  maybe_compact();
}

void ComputeServer::store_result(std::uint64_t request_id,
                                 const proto::SolveResult& result) {
  std::lock_guard<std::mutex> lock(results_mu_);
  if (results_.insert_or_assign(request_id, result).second) {
    results_order_.push_back(request_id);
    while (results_order_.size() > kMaxStoredResults) {
      results_.erase(results_order_.front());
      results_order_.pop_front();
    }
  }
}

void ComputeServer::maybe_compact() {
  if (config_.journal_compact_bytes == 0) return;
  std::lock_guard<std::mutex> lock(journal_mu_);
  if (!journal_.is_open() || journal_.byte_size() < config_.journal_compact_bytes) {
    return;
  }
  if (!journal_.rewrite(collect_live_records_locked()).ok()) {
    NS_WARN("server") << config_.name << " journal compaction failed";
    if (journal_.poisoned()) {
      // Rewrite lost the live journal (reopen after rename failed): no
      // record will ever land again, so this is a durability transition.
      metrics_.store_write_errors.inc();
      enter_degraded_locked("journal compaction failed");
    }
  }
}

std::vector<JournalRecord> ComputeServer::collect_live_records_locked() {
  // Caller holds journal_mu_, which freezes the terminal protocol: every
  // job is either still in active_jobs_ (re-journal its ADMITTED chain) or
  // has its result in results_ (re-journal COMPLETED) — never in between.
  std::vector<JournalRecord> live;
  const std::int64_t now_us = wall_micros();
  {
    std::lock_guard<std::mutex> jobs_lock(active_jobs_mu_);
    for (const auto& [id, job] : active_jobs_) {
      if (!job->journaled) continue;
      JournalRecord admitted;
      admitted.type = JournalRecordType::kAdmitted;
      admitted.request_id = id;
      admitted.wall_micros = job->admitted_wall_us;
      admitted.deadline_remaining_s = job->admit_deadline_remaining_s;
      if (job->spilled) {
        // The parked payload lives on disk; the spill file holds the full
        // encoded SolveRequest, so it doubles as the ADMITTED record. If the
        // file is unreadable the reload path will shed this job retryably,
        // so the argless fallback below only ever feeds a kCancelled chain.
        auto spilled = spill_.load(job->request.request_id);
        admitted.data =
            spilled.ok() ? std::move(spilled).value() : encode_payload(job->request);
      } else {
        admitted.data = encode_payload(job->request);
      }
      live.push_back(std::move(admitted));
      if (job->started.load()) {
        JournalRecord started;
        started.type = JournalRecordType::kStarted;
        started.request_id = id;
        started.wall_micros = now_us;
        live.push_back(std::move(started));
      }
      if (job->ckpt.has_snapshot()) {
        const auto snap = job->ckpt.latest();
        JournalRecord ckpt;
        ckpt.type = JournalRecordType::kCheckpoint;
        ckpt.request_id = id;
        ckpt.wall_micros = now_us;
        ckpt.iteration = snap.iteration;
        ckpt.residual = snap.residual;
        ckpt.data = snap.state;
        live.push_back(std::move(ckpt));
      }
    }
  }
  {
    std::lock_guard<std::mutex> results_lock(results_mu_);
    for (const std::uint64_t id : results_order_) {
      const auto it = results_.find(id);
      if (it == results_.end()) continue;
      JournalRecord done;
      done.type = JournalRecordType::kCompleted;
      done.request_id = id;
      done.wall_micros = now_us;
      done.data = encode_payload(it->second);
      live.push_back(std::move(done));
    }
  }
  return live;
}

void ComputeServer::erase_active_job(const std::shared_ptr<ActiveJob>& job,
                                     std::uint64_t request_id) {
  std::lock_guard<std::mutex> lock(active_jobs_mu_);
  auto [it, end] = active_jobs_.equal_range(request_id);
  for (; it != end; ++it) {
    if (it->second == job) {
      active_jobs_.erase(it);
      return;
    }
  }
}

// ---- memory governance ----

std::uint64_t ComputeServer::estimate_working_set_bytes(
    const proto::SolveRequest& request) const {
  // Working set ~ the decoded operands plus outputs of comparable size —
  // the resident footprint while the kernel runs. The factor and floor are
  // config knobs; the estimate only needs to be monotone in problem size
  // for the budget arithmetic (and the agent's feasibility term, which
  // mirrors this 2x) to hold.
  const double payload = static_cast<double>(dsl::args_byte_size(request.args));
  const double estimate = config_.mem.working_set_factor * payload;
  return std::max<std::uint64_t>(static_cast<std::uint64_t>(estimate),
                                 config_.mem.working_set_floor_bytes);
}

bool ComputeServer::should_spill_locked(const ActiveJob& job) const {
  if (!spill_.enabled() || job.spilled) return false;
  if (job.payload_bytes < config_.mem.spill_min_bytes) return false;
  if (!governor_.governed()) return true;  // spill_dir set, no budget: always park
  // Governed: only pay the disk round trip once the account is actually
  // under pressure.
  const double watermark =
      config_.mem.spill_watermark * static_cast<double>(governor_.budget());
  return static_cast<double>(governor_.accounted()) >= watermark;
}

bool ComputeServer::spill_job(const std::shared_ptr<ActiveJob>& job) {
  // The whole encoded SolveRequest goes to disk (not just the args): the
  // spill file then doubles as the ADMITTED payload for a journal
  // compaction that runs while the job is parked.
  serial::Bytes encoded;
  try {
    mem::alloc_trip("server.spill_save");
    encoded = encode_payload(job->request);
  } catch (const std::bad_alloc&) {
    metrics_.mem_bad_alloc.inc();
    return false;  // stay in RAM; the payload is still charged
  }
  if (!spill_.save(job->request.request_id, encoded).ok()) {
    // save() already degraded the store; every later job skips the spill
    // path entirely (graceful in-RAM-only degradation).
    NS_WARN("server") << config_.name << " payload spill degraded to in-RAM-only";
    return false;
  }
  {
    // Swap the args out under active_jobs_mu_ so a concurrent journal
    // compaction sees either the in-RAM request or the spilled flag —
    // never a half-cleared argument vector.
    std::lock_guard<std::mutex> lock(active_jobs_mu_);
    job->request.args.clear();
    job->request.args.shrink_to_fit();
    job->spilled = true;
  }
  spilled_jobs_.fetch_add(1);
  mem_dirty_.store(true);
  metrics_.mem_spilled_bytes.inc(job->payload_bytes);
  return true;
}

Status ComputeServer::reload_spilled(const std::shared_ptr<ActiveJob>& job) {
  auto bytes = spill_.load(job->request.request_id);
  if (!bytes.ok()) return bytes.error();
  serial::Decoder dec(bytes.value());
  auto request = [&]() -> Result<proto::SolveRequest> {
    try {
      mem::alloc_trip("server.spill_reload");
      return proto::SolveRequest::decode(dec);
    } catch (const std::bad_alloc&) {
      metrics_.mem_bad_alloc.inc();
      return make_error(ErrorCode::kServerOverloaded,
                        "allocation failed reloading spilled payload");
    }
  }();
  if (!request.ok()) return request.error();
  {
    std::lock_guard<std::mutex> lock(active_jobs_mu_);
    job->request.args = std::move(request.value().args);
    job->spilled = false;
  }
  spilled_jobs_.fetch_sub(1);
  mem_dirty_.store(true);
  spill_.remove(job->request.request_id);
  metrics_.mem_spill_reloads.inc();
  return ok_status();
}

void ComputeServer::release_job_memory(const std::shared_ptr<ActiveJob>& job) {
  bool was_spilled = false;
  {
    // Clear the flag before unlinking so a racing compaction never reads a
    // spilled=true job whose file is already gone.
    std::lock_guard<std::mutex> lock(active_jobs_mu_);
    was_spilled = job->spilled;
    job->spilled = false;
  }
  if (was_spilled) {
    spilled_jobs_.fetch_sub(1);
    mem_dirty_.store(true);
    spill_.remove(job->request.request_id);
  }
  if (job->mem_charged_bytes > 0) {
    governor_.release(job->mem_charged_bytes);
    job->mem_charged_bytes = 0;
  }
}

proto::ProbeReply ComputeServer::probe_job(const proto::ProbeRequest& probe) {
  proto::ProbeReply reply;
  reply.request_id = probe.request_id;
  {
    // Most-advanced state across duplicates (request_ids are client-minted,
    // collisions possible): running beats queued beats unknown.
    std::lock_guard<std::mutex> lock(active_jobs_mu_);
    auto [it, end] = active_jobs_.equal_range(probe.request_id);
    for (; it != end; ++it) {
      const auto& job = it->second;
      if (!job->queued.load()) {
        reply.state = proto::JobState::kRunning;
        reply.iteration = job->ckpt.iteration();
        reply.residual = job->ckpt.residual();
      } else if (reply.state == proto::JobState::kUnknown) {
        reply.state = proto::JobState::kQueued;
      }
    }
  }
  if (reply.state != proto::JobState::kUnknown) return reply;
  std::lock_guard<std::mutex> lock(results_mu_);
  const auto it = results_.find(probe.request_id);
  if (it == results_.end()) return reply;  // kUnknown
  reply.state = it->second.error_code == 0 ? proto::JobState::kCompleted
                                           : proto::JobState::kFailed;
  if (probe.fetch_result) {
    reply.has_result = true;
    reply.result = it->second;
  }
  return reply;
}

proto::TransferAck ComputeServer::accept_transfer(proto::JobTransfer transfer) {
  proto::TransferAck ack;
  ack.request_id = transfer.request.request_id;
  if (draining_.load() || stopping_.load()) {
    ack.reason = "server draining";
    return ack;
  }
  if (!registry_.spec(transfer.request.problem).has_value()) {
    ack.reason = "problem not in catalogue: " + transfer.request.problem;
    return ack;
  }
  metrics_.requests.inc();
  auto job = std::make_shared<ActiveJob>();
  job->readmit = true;
  transfer.request.deadline_s = transfer.deadline_remaining_s;
  job->request = std::move(transfer.request);
  const std::uint64_t ck_iteration = transfer.checkpoint_iteration;
  const double ck_residual = transfer.checkpoint_residual;
  if (ck_iteration > 0) {
    checkpoint::Snapshot snap;
    snap.iteration = ck_iteration;
    snap.residual = ck_residual;
    snap.state = transfer.checkpoint_state;  // keep the original for the journal
    job->ckpt.install_restore(std::move(snap));
  }
  {
    std::lock_guard<std::mutex> lock(active_jobs_mu_);
    active_jobs_.emplace(ack.request_id, job);
  }
  journal_admit(*job, job->request.deadline_s);
  if (job->journaled && ck_iteration > 0) {
    // Persist the carried snapshot too: a crash right after the hand-off
    // must still resume mid-iteration, not from scratch.
    JournalRecord rec;
    rec.type = JournalRecordType::kCheckpoint;
    rec.request_id = ack.request_id;
    rec.wall_micros = wall_micros();
    rec.iteration = ck_iteration;
    rec.residual = ck_residual;
    rec.data = std::move(transfer.checkpoint_state);
    journal_append(rec);
  }
  NS_INFO("server") << config_.name << " accepted transferred job " << ack.request_id
                    << " from " << transfer.from_server << " at checkpoint iteration "
                    << ck_iteration;
  ack.accepted = true;
  active_connections_.fetch_add(1);
  std::thread([this, job] {
    const Stopwatch since_receipt;
    (void)run_job(job, since_receipt);
    active_connections_.fetch_sub(1);
  }).detach();
  return ack;
}

void ComputeServer::replicate_checkpoint(ActiveJob& job,
                                         const checkpoint::Snapshot& snap) {
  if (job.repl_peers.size() != config_.replicas.size()) {
    job.repl_peers.assign(config_.replicas.size(), ActiveJob::ReplPeer{});
  }
  const double now = now_seconds();
  const bool has_deadline = job.deadline_abs < 1e299;
  const double deadline_remaining =
      has_deadline ? std::max(job.deadline_abs - now, 0.0) : 0.0;

  // Frames are built lazily and shared across peers: most snapshots go to
  // every peer in the same shape, so compress once.
  serial::Bytes full_frame;   // self-contained (compressed or raw)
  serial::Bytes delta_frame;  // against repl_prev_state, if viable
  auto full = [&]() -> const serial::Bytes& {
    if (full_frame.empty()) {
      full_frame = config_.checkpoint_compress ? bytepack::pack(snap.state)
                                               : bytepack::pack_raw(snap.state);
    }
    return full_frame;
  };
  const bool have_prev =
      job.repl_prev_iteration > 0 && job.repl_prev_state.size() == snap.state.size();
  auto delta = [&]() -> const serial::Bytes& {
    if (delta_frame.empty()) {
      delta_frame = bytepack::pack(snap.state, &job.repl_prev_state);
    }
    return delta_frame;
  };

  for (std::size_t i = 0; i < config_.replicas.size(); ++i) {
    auto& peer = job.repl_peers[i];
    if (now < peer.retry_at) continue;  // recent failure: don't stall the kernel

    // A delta only helps if the peer holds exactly the base we would diff
    // against, and the codec actually produced a delta (it falls back to a
    // self-contained frame when the delta wouldn't shrink).
    const bool can_delta = config_.checkpoint_compress && have_prev &&
                           peer.acked_iteration == job.repl_prev_iteration &&
                           bytepack::is_delta(delta());

    proto::CheckpointPut put;
    put.origin = config_.name;
    put.request_id = job.request.request_id;
    put.deadline_remaining_s = deadline_remaining;
    put.iteration = snap.iteration;
    put.residual = snap.residual;
    put.base_iteration = can_delta ? job.repl_prev_iteration : 0;
    put.frame = can_delta ? delta() : full();
    if (!peer.sent_request) {
      put.has_request = true;
      put.request = job.request;
    }

    auto reply = net::pool_round_trip(
        config_.replicas[i], static_cast<std::uint16_t>(MessageType::kCheckpointPut),
        encode_payload(put), /*timeout_s=*/2.0, /*dial_timeout_s=*/1.0);
    bool accepted = false;
    bool need_full = false;
    if (reply.ok() &&
        reply.value().type == static_cast<std::uint16_t>(MessageType::kCheckpointPutAck)) {
      serial::Decoder dec(reply.value().payload);
      auto ack = proto::CheckpointPutAck::decode(dec);
      if (ack.ok()) {
        accepted = ack.value().accepted;
        need_full = ack.value().reason == "need full";
      }
    }
    if (accepted) {
      peer.sent_request = true;
      peer.acked_iteration = snap.iteration;
      ckpt_replicated_.fetch_add(1);
      metrics_.store_ckpt_replicated.inc();
      metrics_.store_ckpt_raw_bytes.inc(snap.state.size());
      metrics_.store_ckpt_wire_bytes.inc(put.frame.size());
    } else {
      // Forget the peer's state: the next attempt sends a self-contained
      // frame (and the request again if "need full" — a restarted replica
      // lost both). Back off so a dead peer costs one dial per second, not
      // one per checkpoint.
      peer.acked_iteration = 0;
      if (need_full) peer.sent_request = false;
      peer.retry_at = now + 1.0;
    }
  }
  job.repl_prev_state = snap.state;
  job.repl_prev_iteration = snap.iteration;
}

proto::CheckpointPutAck ComputeServer::accept_checkpoint(proto::CheckpointPut put) {
  proto::CheckpointPutAck ack;
  ack.request_id = put.request_id;
  if (draining_.load() || stopping_.load()) {
    ack.reason = "server draining";
    return ack;
  }
  const auto key = std::make_pair(put.origin, put.request_id);
  std::lock_guard<std::mutex> lock(replica_mu_);
  auto it = replica_store_.find(key);

  serial::Bytes state;
  std::uint64_t args_bytes = 0;
  if (put.has_request) {
    args_bytes = dsl::args_byte_size(put.request.args);
  } else if (it != replica_store_.end() && it->second.has_request) {
    args_bytes = dsl::args_byte_size(it->second.request.args);
  }
  if (put.base_iteration > 0) {
    // Delta frame: we must hold exactly the base it was diffed against.
    if (it == replica_store_.end() ||
        it->second.snapshot.iteration != put.base_iteration) {
      ack.reason = "need full";
      return ack;
    }
    auto unpacked = bytepack::unpack(put.frame, &it->second.snapshot.state);
    if (!unpacked.ok()) {
      ack.reason = "need full";  // also covers bit-rot caught by the codec
      return ack;
    }
    state = std::move(unpacked).value();
  } else {
    auto unpacked = bytepack::unpack(put.frame);
    if (!unpacked.ok()) {
      ack.reason = "bad frame: " + unpacked.error().message;
      return ack;
    }
    state = std::move(unpacked).value();
  }

  // Byte accounting before any mutation: a refused PUT must leave the store
  // untouched. Eviction only removes *other* keys (std::map iterators to
  // surviving elements stay valid), so `it` is safe across the call.
  const std::size_t old_bytes = it != replica_store_.end() ? it->second.bytes : 0;
  const std::size_t new_bytes = state.size() + static_cast<std::size_t>(args_bytes);
  if (new_bytes > old_bytes) {
    if (!make_replica_room_locked(new_bytes - old_bytes, key)) {
      ack.reason = "replica budget";
      return ack;
    }
    replica_bytes_ += new_bytes - old_bytes;
  } else {
    const std::size_t freed = old_bytes - new_bytes;
    replica_bytes_ -= std::min(replica_bytes_, freed);
    governor_.release(freed);
  }

  if (it == replica_store_.end()) {
    // A checkpoint without its SolveRequest could never be adopted — refuse
    // so the origin resends with the request attached.
    if (!put.has_request) {
      // Roll the charge back; nothing was stored.
      replica_bytes_ -= std::min(replica_bytes_, new_bytes);
      governor_.release(new_bytes);
      ack.reason = "need full";
      return ack;
    }
    it = replica_store_.emplace(key, ReplicaEntry{}).first;
    replica_order_.push_back(key);
    while (replica_order_.size() > kMaxReplicaEntries) {
      drop_replica_entry_locked(replica_order_.front());
    }
    // The eviction above can only remove older keys: `key` was just pushed
    // to the back, so `it` stays valid past the loop.
  }
  ReplicaEntry& entry = it->second;
  entry.bytes = new_bytes;
  if (put.has_request) {
    entry.request = std::move(put.request);
    entry.has_request = true;
  }
  entry.deadline_remaining_s = put.deadline_remaining_s;
  entry.stored_wall_us = wall_micros();
  entry.snapshot.iteration = put.iteration;
  entry.snapshot.residual = put.residual;
  entry.snapshot.state = std::move(state);
  ack.accepted = true;
  return ack;
}

proto::CheckpointFetchReply ComputeServer::handle_checkpoint_fetch(
    const proto::CheckpointFetch& fetch) {
  proto::CheckpointFetchReply reply;
  reply.request_id = fetch.request_id;

  ReplicaEntry entry;
  {
    std::lock_guard<std::mutex> lock(replica_mu_);
    auto match = replica_store_.end();
    for (auto it = replica_store_.begin(); it != replica_store_.end(); ++it) {
      if (it->first.second != fetch.request_id) continue;
      if (!fetch.origin.empty() && it->first.first != fetch.origin) continue;
      match = it;
      break;
    }
    if (match == replica_store_.end()) return reply;
    reply.found = true;
    reply.iteration = match->second.snapshot.iteration;
    reply.residual = match->second.snapshot.residual;
    reply.origin = match->first.first;
    if (!fetch.adopt) return reply;
    if (draining_.load() || stopping_.load()) return reply;
    if (!match->second.has_request ||
        !registry_.spec(match->second.request.problem).has_value()) {
      return reply;
    }
    entry = std::move(match->second);
    // Adopt-once: remove before running so a racing second FETCH cannot
    // start the same job twice.
    replica_bytes_ -= std::min(replica_bytes_, entry.bytes);
    governor_.release(entry.bytes);
    replica_store_.erase(match);
    for (auto it = replica_order_.begin(); it != replica_order_.end(); ++it) {
      if (it->first == reply.origin && it->second == fetch.request_id) {
        replica_order_.erase(it);
        break;
      }
    }
  }

  // Decay the deadline by the time the checkpoint sat here: the origin
  // measured the remaining budget at PUT time, and the clock kept running
  // while it was down.
  double deadline = entry.request.deadline_s;
  if (deadline > 0.0) {
    const double held_s =
        static_cast<double>(wall_micros() - entry.stored_wall_us) / 1e6;
    deadline = entry.deadline_remaining_s - held_s;
    if (deadline <= 0.0) {
      // Budget lapsed while the origin was down; adopting would just burn a
      // slot to produce kDeadlineExceeded. Put the entry back for inspection.
      std::lock_guard<std::mutex> lock(replica_mu_);
      const auto key = std::make_pair(reply.origin, fetch.request_id);
      // Re-charge what the adopt path released moments ago; force if another
      // thread grabbed the headroom in between rather than drop the entry.
      if (!governor_.try_charge(entry.bytes)) {
        governor_.charge_forced(entry.bytes);
        metrics_.mem_forced_charge.inc();
      }
      replica_bytes_ += entry.bytes;
      replica_store_.emplace(key, std::move(entry));
      replica_order_.push_back(key);
      return reply;
    }
  }

  metrics_.requests.inc();
  auto job = std::make_shared<ActiveJob>();
  job->readmit = true;
  job->request = std::move(entry.request);
  job->request.deadline_s = deadline;
  const std::uint64_t ck_iteration = entry.snapshot.iteration;
  serial::Bytes journal_state = entry.snapshot.state;  // keep for the journal
  if (ck_iteration > 0) {
    job->ckpt.install_restore(std::move(entry.snapshot));
  }
  {
    std::lock_guard<std::mutex> lock(active_jobs_mu_);
    active_jobs_.emplace(fetch.request_id, job);
  }
  journal_admit(*job, job->request.deadline_s);
  if (job->journaled && ck_iteration > 0) {
    JournalRecord rec;
    rec.type = JournalRecordType::kCheckpoint;
    rec.request_id = fetch.request_id;
    rec.wall_micros = wall_micros();
    rec.iteration = ck_iteration;
    rec.residual = reply.residual;
    rec.data = std::move(journal_state);
    journal_append(rec);
  }
  failover_resumes_.fetch_add(1);
  metrics_.store_failover_resume.inc();
  NS_INFO("server") << config_.name << " adopted job " << fetch.request_id
                    << " from crashed peer " << reply.origin
                    << " at replicated checkpoint iteration " << ck_iteration;
  reply.adopted = true;
  active_connections_.fetch_add(1);
  std::thread([this, job] {
    const Stopwatch since_receipt;
    (void)run_job(job, since_receipt);
    active_connections_.fetch_sub(1);
  }).detach();
  return reply;
}

std::size_t ComputeServer::replica_holds() const {
  std::lock_guard<std::mutex> lock(replica_mu_);
  return replica_store_.size();
}

std::size_t ComputeServer::replica_bytes() const {
  std::lock_guard<std::mutex> lock(replica_mu_);
  return replica_bytes_;
}

bool ComputeServer::make_replica_room_locked(
    std::size_t incoming, const std::pair<std::string, std::uint64_t>& keep) {
  auto evict_largest = [&]() -> bool {
    auto victim = replica_store_.end();
    for (auto it = replica_store_.begin(); it != replica_store_.end(); ++it) {
      if (it->first == keep) continue;
      if (victim == replica_store_.end() || it->second.bytes > victim->second.bytes) {
        victim = it;
      }
    }
    if (victim == replica_store_.end()) return false;
    drop_replica_entry_locked(victim->first);
    metrics_.mem_replica_evicted.inc();
    return true;
  };
  // Largest-first beats FIFO here: one oversized snapshot can hold the
  // budget hostage while dozens of small, cheap-to-re-replicate entries
  // would have to be evicted to match it.
  while (replica_bytes_ + incoming > config_.mem.replica_budget_bytes) {
    if (!evict_largest()) return false;
  }
  while (!governor_.try_charge(incoming)) {
    if (!evict_largest()) return false;
  }
  return true;
}

void ComputeServer::drop_replica_entry_locked(
    const std::pair<std::string, std::uint64_t>& key_in) {
  auto it = replica_store_.find(key_in);
  if (it == replica_store_.end()) return;
  // Callers pass references into the containers erased below (map node key,
  // deque front); copy before mutating so the comparisons stay valid.
  const auto key = it->first;
  const std::size_t bytes = it->second.bytes;
  replica_bytes_ -= std::min(replica_bytes_, bytes);
  governor_.release(bytes);
  replica_store_.erase(it);
  for (auto oit = replica_order_.begin(); oit != replica_order_.end(); ++oit) {
    if (*oit == key) {
      replica_order_.erase(oit);
      break;
    }
  }
}

std::vector<proto::ServerCandidate> ComputeServer::query_candidates(
    const proto::SolveRequest& request) {
  std::vector<net::Endpoint> agents;
  {
    std::lock_guard<std::mutex> lock(links_mu_);
    for (const auto& link : agent_links_) agents.push_back(link.endpoint);
  }
  proto::Query query;
  query.problem = request.problem;
  query.max_candidates = 4;
  for (const auto& arg : request.args) {
    query.input_bytes += arg.byte_size();
    query.size_hint = std::max<std::uint64_t>(query.size_hint, arg.size_hint());
  }
  query.output_bytes = query.input_bytes;
  for (const auto& agent : agents) {
    auto reply = net::pool_round_trip(agent, static_cast<std::uint16_t>(MessageType::kQuery),
                                      encode_payload(query), /*timeout_s=*/2.0,
                                      /*dial_timeout_s=*/2.0);
    if (!reply.ok() ||
        reply.value().type != static_cast<std::uint16_t>(MessageType::kServerList)) {
      continue;
    }
    serial::Decoder dec(reply.value().payload);
    auto list = proto::ServerList::decode(dec);
    if (!list.ok()) continue;
    if (!list.value().candidates.empty()) return std::move(list.value().candidates);
  }
  return {};
}

bool ComputeServer::migrate_job(ActiveJob& job, proto::SolveResult& result) {
  const bool has_deadline = job.deadline_abs < 1e299;
  const double remaining = has_deadline ? job.deadline_abs - now_seconds() : 0.0;
  if (has_deadline && remaining <= 0.0) return false;  // nothing left to hand over

  proto::JobTransfer transfer;
  transfer.request = job.request;
  transfer.deadline_remaining_s = std::max(remaining, 0.0);
  if (job.ckpt.has_snapshot()) {
    auto snap = job.ckpt.latest();
    transfer.checkpoint_iteration = snap.iteration;
    transfer.checkpoint_residual = snap.residual;
    transfer.checkpoint_state = std::move(snap.state);
  }
  transfer.from_server = config_.name;

  // The drain already deregistered this server, so the agents' rankings no
  // longer contain us; every candidate is a genuine peer.
  for (const auto& candidate : query_candidates(job.request)) {
    if (candidate.endpoint == endpoint_) continue;
    auto reply = net::pool_round_trip(candidate.endpoint,
                                      static_cast<std::uint16_t>(MessageType::kJobTransfer),
                                      encode_payload(transfer), /*timeout_s=*/2.0,
                                      /*dial_timeout_s=*/2.0);
    if (!reply.ok() ||
        reply.value().type != static_cast<std::uint16_t>(MessageType::kTransferAck)) {
      continue;
    }
    serial::Decoder dec(reply.value().payload);
    auto ack = proto::TransferAck::decode(dec);
    if (!ack.ok() || !ack.value().accepted) continue;
    result.error_code = static_cast<std::uint16_t>(ErrorCode::kMigrated);
    result.error_message = "migrated to " + candidate.server_name;
    result.migrated_host = candidate.endpoint.host;
    result.migrated_port = candidate.endpoint.port;
    jobs_migrated_.fetch_add(1);
    metrics_.jobs_migrated.inc();
    NS_INFO("server") << config_.name << " migrated job " << result.request_id
                      << " to " << candidate.server_name << " at checkpoint iteration "
                      << transfer.checkpoint_iteration;
    return true;
  }
  NS_WARN("server") << config_.name << " found no peer to take job "
                    << result.request_id;
  return false;
}

void ComputeServer::crash() {
  NS_WARN("server") << config_.name << " crashing (journal frozen)";
  {
    std::lock_guard<std::mutex> lock(journal_mu_);
    journal_.freeze();
  }
  crash_mode_.store(true);
  crashed_.store(true);
  // Trip every in-flight job so kernels unwind promptly; with crash_mode_
  // set their replies and terminal records are suppressed, so to clients
  // and to the journal the process simply went dark mid-write.
  {
    std::lock_guard<std::mutex> lock(active_jobs_mu_);
    for (auto& [id, job] : active_jobs_) job->token.cancel();
  }
  stop();
}

void ComputeServer::deregister_from_agents() {
  std::lock_guard<std::mutex> links_lock(links_mu_);
  for (const auto& link : agent_links_) {
    if (link.id == proto::kInvalidServerId) continue;
    proto::DeregisterServer msg;
    msg.server_id = link.id;
    // Fire-and-forget; a dead agent already thinks we are gone.
    (void)net::pool_post(link.endpoint,
                         static_cast<std::uint16_t>(MessageType::kDeregisterServer),
                         encode_payload(msg), /*dial_timeout_s=*/1.0);
  }
}

bool ComputeServer::start_drain(double deadline_s) {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) return false;
  metrics_.draining.set(1.0);
  NS_INFO("server") << config_.name << " draining (deadline "
                    << (deadline_s > 0.0 ? deadline_s : config_.io_timeout_s) << "s)";
  drain_thread_ = std::thread([this, deadline_s] { drain_work(deadline_s); });
  return true;
}

void ComputeServer::drain(double deadline_s) {
  start_drain(deadline_s);
  while (!drained_.load() && !stopping_.load()) sleep_seconds(0.005);
}

void ComputeServer::drain_work(double deadline_s) {
  // Steer traffic away first: new arrivals are already being rejected
  // (draining_ is set), and deregistering drops us from every agent's
  // ranking so clients stop being sent here at all.
  deregister_from_agents();

  const double budget = deadline_s > 0.0 ? deadline_s : config_.io_timeout_s;
  const Deadline deadline(budget);
  // Quiescence needs both views: the scheduler's counters drop as soon as a
  // kernel unwinds, but a drain-migrated job is still doing network hand-off
  // after that — it leaves active_jobs_ only once the transfer (or its
  // fallback cancel reply) has been resolved. Reporting drained before then
  // would let callers read jobs_migrated() mid-flight.
  auto quiescent = [this] {
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      if (running_jobs_ + waiting_jobs_ != 0) return false;
    }
    std::lock_guard<std::mutex> lock(active_jobs_mu_);
    return active_jobs_.empty();
  };
  while (!quiescent() && !deadline.expired() && !stopping_.load()) {
    sleep_seconds(0.02);
  }

  if (!quiescent()) {
    // Deadline lapsed: cancel everything still in flight. The owning
    // connection threads unwind through their checkpoints and reply
    // kCancelled (retryable — the work moves to another server).
    std::size_t tripped = 0;
    {
      std::lock_guard<std::mutex> lock(active_jobs_mu_);
      for (auto& [id, job] : active_jobs_) {
        // Migration marks running jobs before the token trips: the owning
        // thread then packages the latest checkpoint and forwards it
        // instead of replying a bare kCancelled. Queued jobs stay plainly
        // cancelled — the client's own retry moves them cheaply.
        if (config_.migrate_on_drain && !job->queued.load()) {
          job->migrate.store(true);
        }
        job->token.cancel();
        ++tripped;
      }
    }
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
    }
    jobs_cv_.notify_all();
    NS_WARN("server") << config_.name << " drain deadline lapsed; cancelled " << tripped
                      << " outstanding job(s)";
    const Deadline grace(config_.io_timeout_s);
    while (!quiescent() && !grace.expired() && !stopping_.load()) {
      sleep_seconds(0.01);
    }
  }

  drained_.store(true);
  NS_INFO("server") << config_.name << " drained";
}

void ComputeServer::stop() {
  // Single flow whether the stop is local or was flagged by an injected
  // crash. Order matters: solve handlers block on jobs_cv_ inside reactor
  // pool threads, so the condvar must be woken (with stopping_ visible)
  // *before* reactor_.stop() joins those threads, or the join deadlocks.
  stopping_.store(true);
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
  }
  jobs_cv_.notify_all();
  reactor_.stop();
  listener_.close();  // only still bound if start() failed before the reactor adopted it
  if (report_thread_.joinable()) report_thread_.join();
  if (drain_thread_.joinable()) drain_thread_.join();
  // Recovered-job and transfer threads are detached; give them the same
  // bounded drain the connection threads used to get.
  const Deadline deadline(config_.io_timeout_s + 1.0);
  while (active_connections_.load() > 0 && !deadline.expired()) {
    sleep_seconds(0.001);
  }
}

}  // namespace ns::server
