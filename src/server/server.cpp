#include "server/server.hpp"

#include <algorithm>
#include <cmath>

#include "common/clock.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "dsl/specfile.hpp"
#include "linalg/rating.hpp"
#include "server/builtin_problems.hpp"

namespace ns::server {

namespace {

using proto::MessageType;

serial::Bytes encode_payload(const auto& msg) {
  serial::Encoder enc;
  msg.encode(enc);
  return enc.take();
}

}  // namespace

Result<std::unique_ptr<ComputeServer>> ComputeServer::start(ServerConfig config) {
  if (config.speed_factor <= 0.0 || config.speed_factor > 1.0) {
    return make_error(ErrorCode::kBadArguments, "speed_factor must be in (0, 1]");
  }
  if (config.workers < 1) {
    return make_error(ErrorCode::kBadArguments, "workers must be >= 1");
  }

  double native = config.rating_override;
  if (native <= 0.0) {
    native = linalg::linpack_rating(/*n=*/160, /*repeats=*/2).mflops;
  }
  const double rated = native * config.speed_factor;

  auto listener = net::TcpListener::bind(config.listen);
  if (!listener.ok()) return listener.error();

  std::unique_ptr<ComputeServer> server(
      new ComputeServer(std::move(config), std::move(listener).value(), rated));
  register_builtin_problems(server->registry_, native);
  if (!server->config_.problem_filter.empty()) {
    server->registry_.retain_only(server->config_.problem_filter);
    if (server->registry_.size() == 0) {
      return make_error(ErrorCode::kBadArguments,
                        "problem_filter matches nothing in the catalogue");
    }
  }
  if (!server->config_.spec_overrides.empty()) {
    auto overrides = dsl::parse_spec_file(server->config_.spec_overrides);
    if (!overrides.ok()) return overrides.error();
    for (const auto& spec : overrides.value()) {
      NS_RETURN_IF_ERROR(server->registry_.override_spec(spec));
    }
  }

  if (server->config_.agents.empty()) {
    return make_error(ErrorCode::kBadArguments, "no agents configured");
  }
  // Initial registration sweep: every configured agent gets one synchronous
  // try; startup succeeds if at least one lands. Unreachable agents stay in
  // the link table and the report thread keeps retrying them with backoff.
  server->maintain_registrations();
  if (server->server_id_.load() == proto::kInvalidServerId) {
    return make_error(ErrorCode::kAgentUnavailable,
                      "could not register with any of " +
                          std::to_string(server->config_.agents.size()) + " agent(s)");
  }

  server->accept_thread_ = std::thread([raw = server.get()] { raw->accept_loop(); });
  server->report_thread_ = std::thread([raw = server.get()] { raw->report_loop(); });
  return server;
}

ComputeServer::ServerMetrics::ServerMetrics(const std::string& name)
    : requests(metrics::counter("server.requests_total")),
      completed(metrics::counter("server.completed_total")),
      shed(metrics::counter("server.shed_total")),
      rejected(metrics::counter("server.rejected_total")),
      exec_errors(metrics::counter("server.exec_errors_total")),
      cancelled_queued(metrics::counter("server.cancelled_queued_total")),
      cancelled_running(metrics::counter("server.cancelled_running_total")),
      cancel_requests(metrics::counter("server.cancel_requests_total")),
      drain_rejected(metrics::counter("server.drain_rejected_total")),
      queue_wait_s(metrics::histogram("server.queue_wait_s")),
      compute_s(metrics::histogram("server.compute_s")),
      queue_depth(metrics::gauge("server." + name + ".queue_depth")),
      draining(metrics::gauge("server." + name + ".draining")) {}

ComputeServer::ComputeServer(ServerConfig config, net::TcpListener listener,
                             double rated_mflops)
    : config_(std::move(config)),
      listener_(std::move(listener)),
      rated_mflops_(rated_mflops),
      // Fresh per process lifetime: lets agents tell a restart (full revive)
      // from a periodic keep-alive refresh of the same process.
      incarnation_((static_cast<std::uint64_t>(now_seconds() * 1e6) ^ (config_.seed << 1)) | 1u),
      reregister_rng_(config_.seed ^ 0x9e3779b97f4a7c15ull),
      failure_rng_(config_.seed),
      background_load_(config_.background_load),
      metrics_(config_.name) {
  for (const auto& agent : config_.agents) {
    agent_links_.push_back(AgentLink{agent});
  }
}

ComputeServer::~ComputeServer() { stop(); }

Status ComputeServer::register_link(AgentLink& link, std::vector<net::Endpoint>* discovered) {
  auto conn = net::TcpConnection::connect(link.endpoint, 5.0);
  if (!conn.ok()) return conn.error();

  proto::RegisterServer reg;
  reg.server_name = config_.name;
  reg.endpoint = listener_.endpoint();
  reg.mflops = rated_mflops_;
  reg.problems = registry_.all_specs();
  reg.incarnation = incarnation_;
  NS_RETURN_IF_ERROR(net::send_message(conn.value(),
                                       static_cast<std::uint16_t>(MessageType::kRegisterServer),
                                       encode_payload(reg)));

  auto reply = net::recv_message(conn.value(), config_.io_timeout_s);
  if (!reply.ok()) return reply.error();
  if (reply.value().type != static_cast<std::uint16_t>(MessageType::kRegisterAck)) {
    return make_error(ErrorCode::kProtocol, "expected RegisterAck");
  }
  serial::Decoder dec(reply.value().payload);
  auto ack = proto::RegisterAck::decode(dec);
  if (!ack.ok()) return ack.error();
  link.id = ack.value().server_id;
  if (discovered != nullptr) {
    for (const auto& peer : ack.value().peer_agents) discovered->push_back(peer);
  }
  // The first agent to answer is the "primary" whose id server_id() reports.
  proto::ServerId expected = proto::kInvalidServerId;
  server_id_.compare_exchange_strong(expected, link.id);
  NS_INFO("server") << config_.name << " registered as id=" << link.id << " at "
                    << link.endpoint.to_string() << " rating=" << rated_mflops_
                    << " Mflop/s";
  return ok_status();
}

void ComputeServer::maintain_registrations() {
  std::lock_guard<std::mutex> links_lock(links_mu_);
  const double now = now_seconds();
  std::vector<net::Endpoint> discovered;
  for (auto& link : agent_links_) {
    if (now < link.next_attempt_time) continue;
    if (register_link(link, &discovered).ok()) {
      link.backoff_s = 0.0;
      if (config_.reregister_period_s > 0) {
        // Jittered so a fleet does not re-register in lockstep.
        link.next_attempt_time =
            now + config_.reregister_period_s * reregister_rng_.uniform(0.5, 1.5);
      } else {
        link.next_attempt_time = 1e300;  // legacy: register once, never again
      }
    } else {
      // Decorrelated-jitter backoff toward the dead agent; capped well below
      // the re-register period so a rebooted agent is re-learned promptly.
      link.backoff_s = std::min(
          1.0, reregister_rng_.uniform(0.05, std::max(0.05, link.backoff_s * 3.0)));
      link.next_attempt_time = now + link.backoff_s;
    }
  }
  // Adopt mesh peers the acks told us about (mesh growth is idempotent:
  // known endpoints are skipped).
  for (const auto& peer : discovered) {
    bool known = false;
    for (const auto& link : agent_links_) {
      if (link.endpoint == peer) {
        known = true;
        break;
      }
    }
    if (!known) {
      NS_INFO("server") << config_.name << " discovered peer agent " << peer.to_string();
      agent_links_.push_back(AgentLink{peer});
    }
  }
}

void ComputeServer::accept_loop() {
  while (!stopping_.load()) {
    auto conn = listener_.accept(0.05);
    if (!conn.ok()) {
      if (conn.error().code == ErrorCode::kTimeout) continue;
      break;
    }
    active_connections_.fetch_add(1);
    std::thread([this, c = std::make_shared<net::TcpConnection>(std::move(conn).value())]() mutable {
      handle_connection(std::move(*c));
      active_connections_.fetch_sub(1);
    }).detach();
  }
  // The loop owns the listener while running, so it also closes it: an
  // injected crash stops accepting promptly and stop()'s own close (after
  // the join) is an ordered no-op.
  listener_.close();
}

FailureSpec::Mode ComputeServer::roll_failure() {
  std::lock_guard<std::mutex> lock(failure_mu_);
  const std::int64_t seen = requests_seen_.fetch_add(1) + 1;
  if (config_.failure.mode == FailureSpec::Mode::kNone) return FailureSpec::Mode::kNone;
  if (config_.failure.after_requests >= 0 && seen > config_.failure.after_requests) {
    return config_.failure.mode;
  }
  if (config_.failure.probability > 0 && failure_rng_.bernoulli(config_.failure.probability)) {
    return config_.failure.mode;
  }
  return FailureSpec::Mode::kNone;
}

void ComputeServer::handle_connection(net::TcpConnection conn) {
  while (!stopping_.load()) {
    auto msg = net::recv_message(conn, config_.io_timeout_s);
    if (!msg.ok()) return;

    if (msg.value().type == static_cast<std::uint16_t>(MessageType::kPing)) {
      (void)net::send_message(conn, static_cast<std::uint16_t>(MessageType::kPong), {});
      continue;
    }
    if (msg.value().type == static_cast<std::uint16_t>(MessageType::kMetricsQuery)) {
      serial::Decoder query_dec(msg.value().payload);
      auto query = proto::MetricsQuery::decode(query_dec);
      proto::MetricsDump dump;
      dump.snapshot = metrics::Registry::instance().snapshot(
          query.ok() ? query.value().prefix : std::string{});
      (void)net::send_message(conn, static_cast<std::uint16_t>(MessageType::kMetricsDump),
                              encode_payload(dump));
      continue;
    }
    if (msg.value().type == static_cast<std::uint16_t>(MessageType::kCancelRequest)) {
      serial::Decoder cancel_dec(msg.value().payload);
      auto cancel = proto::CancelRequest::decode(cancel_dec);
      if (!cancel.ok()) return;  // protocol violation: drop
      metrics_.cancel_requests.inc();
      proto::CancelAck ack;
      ack.request_id = cancel.value().request_id;
      ack.outcome = cancel_jobs(cancel.value().request_id);
      {
        // Lock-then-notify so a queued job that checked its token just
        // before blocking cannot miss the wakeup.
        std::lock_guard<std::mutex> lock(jobs_mu_);
      }
      jobs_cv_.notify_all();
      (void)net::send_message(conn, static_cast<std::uint16_t>(MessageType::kCancelAck),
                              encode_payload(ack));
      continue;
    }
    if (msg.value().type == static_cast<std::uint16_t>(MessageType::kDrainRequest)) {
      serial::Decoder drain_dec(msg.value().payload);
      auto drain_msg = proto::DrainRequest::decode(drain_dec);
      if (!drain_msg.ok()) return;  // protocol violation: drop
      proto::DrainAck ack;
      {
        std::lock_guard<std::mutex> lock(jobs_mu_);
        ack.running = static_cast<std::uint32_t>(running_jobs_);
        ack.queued = static_cast<std::uint32_t>(waiting_jobs_);
      }
      ack.started = start_drain(drain_msg.value().deadline_s);
      (void)net::send_message(conn, static_cast<std::uint16_t>(MessageType::kDrainAck),
                              encode_payload(ack));
      continue;
    }
    if (msg.value().type != static_cast<std::uint16_t>(MessageType::kSolveRequest)) {
      return;  // protocol violation: drop
    }

    serial::Decoder dec(msg.value().payload);
    const Stopwatch since_receipt;
    auto request = proto::SolveRequest::decode(dec);
    proto::SolveResult result;
    if (!request.ok()) {
      result.error_code = static_cast<std::uint16_t>(request.error().code);
      result.error_message = request.error().message;
      (void)net::send_message(conn, static_cast<std::uint16_t>(MessageType::kSolveResult),
                              encode_payload(result), config_.link);
      return;
    }
    result.request_id = request.value().request_id;

    // Failure injection happens after the request is fully received — the
    // client has already paid the transfer cost, which is the expensive
    // failure the retry logic must absorb.
    switch (roll_failure()) {
      case FailureSpec::Mode::kCrash:
        NS_WARN("server") << config_.name << " injected crash";
        crashed_.store(true);
        // Only flag the stop: the accept loop owns the listener and closes
        // it on its way out (closing it from this handler thread would race
        // the accept poll and the destructor).
        stopping_.store(true);
        jobs_cv_.notify_all();
        return;
      case FailureSpec::Mode::kDropRequest:
        NS_DEBUG("server") << config_.name << " injected connection drop";
        return;
      case FailureSpec::Mode::kHangRequest:
        // Hold the connection silently; the client's io timeout is the only
        // way out. Bounded so stop() stays prompt.
        NS_DEBUG("server") << config_.name << " injected hang";
        while (!stopping_.load()) sleep_seconds(0.02);
        return;
      case FailureSpec::Mode::kErrorReply:
        result.error_code = static_cast<std::uint16_t>(ErrorCode::kServerFailure);
        result.error_message = "injected failure";
        (void)net::send_message(conn, static_cast<std::uint16_t>(MessageType::kSolveResult),
                                encode_payload(result), config_.link);
        continue;
      case FailureSpec::Mode::kNone:
        break;
    }

    // Acquire a worker slot; waiting requests count toward workload.
    metrics_.requests.inc();
    if (draining_.load()) {
      // Retryable: the client's failover moves this request to another
      // server, which is the whole point of draining.
      drain_rejected_.fetch_add(1);
      metrics_.drain_rejected.inc();
      result.error_code = static_cast<std::uint16_t>(ErrorCode::kServerOverloaded);
      result.error_message = "server draining";
      (void)net::send_message(conn, static_cast<std::uint16_t>(MessageType::kSolveResult),
                              encode_payload(result), config_.link);
      continue;
    }
    // Visible to CANCEL and the drain sweep from admission to reply.
    auto job = std::make_shared<ActiveJob>();
    {
      std::lock_guard<std::mutex> lock(active_jobs_mu_);
      active_jobs_.emplace(result.request_id, job);
    }
    const auto erase_job = [this, &job, id = result.request_id] {
      std::lock_guard<std::mutex> lock(active_jobs_mu_);
      auto [it, end] = active_jobs_.equal_range(id);
      for (; it != end; ++it) {
        if (it->second == job) {
          active_jobs_.erase(it);
          break;
        }
      }
    };
    const Stopwatch queue_watch;
    {
      std::unique_lock<std::mutex> lock(jobs_mu_);
      if (config_.max_queue > 0 && waiting_jobs_ >= config_.max_queue) {
        lock.unlock();
        erase_job();
        metrics_.rejected.inc();
        result.error_code = static_cast<std::uint16_t>(ErrorCode::kServerOverloaded);
        result.error_message = "admission control: queue full";
        (void)net::send_message(conn, static_cast<std::uint16_t>(MessageType::kSolveResult),
                                encode_payload(result), config_.link);
        continue;
      }
      ++waiting_jobs_;
      metrics_.queue_depth.set(waiting_jobs_);
      jobs_cv_.wait(lock, [this, &job] {
        return running_jobs_ < config_.workers || stopping_.load() || job->token.cancelled();
      });
      --waiting_jobs_;
      metrics_.queue_depth.set(waiting_jobs_);
      if (stopping_.load()) {
        lock.unlock();
        erase_job();
        return;
      }
      if (job->token.cancelled()) {
        // Cancelled while queued: checked before taking the slot so a
        // cancel can never also count as a shed or a completion.
        lock.unlock();
        erase_job();
        cancelled_queued_.fetch_add(1);
        metrics_.cancelled_queued.inc();
        NS_DEBUG("server") << config_.name << " dropped queued request "
                           << result.request_id << " (cancelled)";
        result.error_code = static_cast<std::uint16_t>(ErrorCode::kCancelled);
        result.error_message = "cancelled while queued";
        (void)net::send_message(conn, static_cast<std::uint16_t>(MessageType::kSolveResult),
                                encode_payload(result), config_.link);
        continue;
      }
      ++running_jobs_;
      job->queued.store(false);
    }
    const double queue_wait = queue_watch.elapsed();
    result.queue_seconds = queue_wait;
    metrics_.queue_wait_s.observe(queue_wait);
    trace::record_span(request.value().trace_id, "server.queue_wait",
                       since_receipt.elapsed() - queue_wait, queue_wait);

    // Deadline shedding: if the client's budget lapsed while this request
    // waited for a worker slot, computing the answer only wastes the slot —
    // the client has already given up or moved on. Reply with a terminal
    // code so well-behaved clients stop retrying too.
    if (request.value().deadline_s > 0.0 &&
        since_receipt.elapsed() > request.value().deadline_s) {
      {
        std::lock_guard<std::mutex> lock(jobs_mu_);
        --running_jobs_;
        jobs_cv_.notify_one();
      }
      erase_job();
      shed_.fetch_add(1);
      metrics_.shed.inc();
      NS_DEBUG("server") << config_.name << " shed request " << result.request_id
                         << " (budget " << request.value().deadline_s << "s lapsed)";
      result.error_code = static_cast<std::uint16_t>(ErrorCode::kDeadlineExceeded);
      result.error_message = "deadline budget exhausted before execution";
      (void)net::send_message(conn, static_cast<std::uint16_t>(MessageType::kSolveResult),
                              encode_payload(result), config_.link);
      continue;
    }

    const Stopwatch watch;
    Result<std::vector<dsl::DataObject>> outputs = [&] {
      // Bind the job's token for this thread: the kernels' checkpoints (and
      // the simwork/busywork slices) poll it and unwind with kCancelled.
      cancel::ScopedToken bound(&job->token);
      return registry_.execute(request.value().problem, request.value().args);
    }();
    double elapsed = watch.elapsed();
    // Heterogeneity emulation: a speed-s server takes 1/s as long, and a
    // synthetic background load of L competing jobs stretches service by
    // (1 + L) under processor sharing. Sliced so a cancel (or stop) does not
    // have to wait out a long stretch.
    const double bg = background_load_.load();
    const double stretch = (1.0 / config_.speed_factor) * (1.0 + std::max(bg, 0.0)) - 1.0;
    if (stretch > 0.0 && outputs.ok()) {
      double extra = elapsed * stretch;
      while (extra > 0.0 && !stopping_.load()) {
        if (job->token.cancelled()) {
          outputs = cancel::cancelled_error("service-time stretch");
          break;
        }
        const double slice = std::min(extra, 0.01);
        if (config_.slowdown_mode == SlowdownMode::kSpin) {
          elapsed += busy_spin_seconds(slice);
        } else {
          const Stopwatch extra_watch;
          sleep_seconds(slice);
          elapsed += extra_watch.elapsed();
        }
        extra -= slice;
      }
    }

    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
      --running_jobs_;
      jobs_cv_.notify_one();
    }
    erase_job();

    result.exec_seconds = elapsed;
    metrics_.compute_s.observe(elapsed);
    trace::record_span(request.value().trace_id, "server.compute",
                       since_receipt.elapsed() - elapsed, elapsed);
    if (outputs.ok()) {
      result.outputs = std::move(outputs).value();
      completed_.fetch_add(1);
      metrics_.completed.inc();
    } else if (outputs.error().code == ErrorCode::kCancelled) {
      // The partial outputs died with the kernel's stack frame; nothing of
      // the cancelled attempt is published.
      cancelled_running_.fetch_add(1);
      metrics_.cancelled_running.inc();
      NS_DEBUG("server") << config_.name << " cancelled running request "
                         << result.request_id << " after " << elapsed << "s";
      result.error_code = static_cast<std::uint16_t>(ErrorCode::kCancelled);
      result.error_message = outputs.error().message;
    } else {
      metrics_.exec_errors.inc();
      result.error_code = static_cast<std::uint16_t>(outputs.error().code);
      result.error_message = outputs.error().message;
    }
    if (!net::send_message(conn, static_cast<std::uint16_t>(MessageType::kSolveResult),
                           encode_payload(result), config_.link)
             .ok()) {
      return;
    }
  }
}

double ComputeServer::current_workload() const {
  std::lock_guard<std::mutex> lock(jobs_mu_);
  return static_cast<double>(running_jobs_ + waiting_jobs_) + background_load_.load();
}

void ComputeServer::send_workload_report(double workload) {
  // Fan out to every agent we ever registered with; ids are agent-local so
  // each link carries its own. A dead agent costs one fast refused connect.
  std::lock_guard<std::mutex> links_lock(links_mu_);
  for (const auto& link : agent_links_) {
    if (link.id == proto::kInvalidServerId) continue;
    auto conn = net::TcpConnection::connect(link.endpoint, 1.0);
    if (!conn.ok()) continue;  // agent temporarily unreachable; next period retries
    proto::WorkloadReport report;
    report.server_id = link.id;
    report.workload = workload;
    report.completed = completed_.load();
    (void)net::send_message(conn.value(),
                            static_cast<std::uint16_t>(MessageType::kWorkloadReport),
                            encode_payload(report));
  }
}

void ComputeServer::report_loop() {
  double last_sent = -1e300;  // force an initial report
  while (!stopping_.load()) {
    // A draining server has deregistered: re-registering or reporting load
    // would resurrect its record and pull traffic back in.
    if (!draining_.load()) {
      // Agent-restart resilience: refresh due registrations (idempotent at
      // the agent; a rebooted agent re-learns us this way) and keep retrying
      // agents that were down at startup.
      maintain_registrations();
      const double workload = current_workload();
      if (std::abs(workload - last_sent) >= config_.report_threshold ||
          last_sent == -1e300) {
        send_workload_report(workload);
        last_sent = workload;
      }
    }
    // Sleep in small steps so stop() is prompt.
    const Deadline next(config_.report_period_s);
    while (!next.expired() && !stopping_.load()) {
      sleep_seconds(std::min(0.02, next.remaining()));
    }
  }
}

void ComputeServer::inject_failure(const FailureSpec& failure) {
  std::lock_guard<std::mutex> lock(failure_mu_);
  config_.failure = failure;
}

void ComputeServer::set_background_load(double load) { background_load_.store(load); }

proto::CancelOutcome ComputeServer::cancel_jobs(std::uint64_t request_id) {
  // request_ids are client-minted: trip every job carrying the id and report
  // the most-advanced state found. An unknown id reports kCompleted — the
  // reply already left (or never arrived), so there is nothing to reclaim.
  std::lock_guard<std::mutex> lock(active_jobs_mu_);
  auto outcome = proto::CancelOutcome::kCompleted;
  auto [it, end] = active_jobs_.equal_range(request_id);
  for (; it != end; ++it) {
    it->second->token.cancel();
    if (!it->second->queued.load()) {
      outcome = proto::CancelOutcome::kRunning;
    } else if (outcome == proto::CancelOutcome::kCompleted) {
      outcome = proto::CancelOutcome::kQueued;
    }
  }
  return outcome;
}

void ComputeServer::deregister_from_agents() {
  std::lock_guard<std::mutex> links_lock(links_mu_);
  for (const auto& link : agent_links_) {
    if (link.id == proto::kInvalidServerId) continue;
    auto conn = net::TcpConnection::connect(link.endpoint, 1.0);
    if (!conn.ok()) continue;  // dead agent already thinks we are gone
    proto::DeregisterServer msg;
    msg.server_id = link.id;
    (void)net::send_message(conn.value(),
                            static_cast<std::uint16_t>(MessageType::kDeregisterServer),
                            encode_payload(msg));
  }
}

bool ComputeServer::start_drain(double deadline_s) {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) return false;
  metrics_.draining.set(1.0);
  NS_INFO("server") << config_.name << " draining (deadline "
                    << (deadline_s > 0.0 ? deadline_s : config_.io_timeout_s) << "s)";
  drain_thread_ = std::thread([this, deadline_s] { drain_work(deadline_s); });
  return true;
}

void ComputeServer::drain(double deadline_s) {
  start_drain(deadline_s);
  while (!drained_.load() && !stopping_.load()) sleep_seconds(0.005);
}

void ComputeServer::drain_work(double deadline_s) {
  // Steer traffic away first: new arrivals are already being rejected
  // (draining_ is set), and deregistering drops us from every agent's
  // ranking so clients stop being sent here at all.
  deregister_from_agents();

  const double budget = deadline_s > 0.0 ? deadline_s : config_.io_timeout_s;
  const Deadline deadline(budget);
  auto quiescent = [this] {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    return running_jobs_ + waiting_jobs_ == 0;
  };
  while (!quiescent() && !deadline.expired() && !stopping_.load()) {
    sleep_seconds(0.02);
  }

  if (!quiescent()) {
    // Deadline lapsed: cancel everything still in flight. The owning
    // connection threads unwind through their checkpoints and reply
    // kCancelled (retryable — the work moves to another server).
    std::size_t tripped = 0;
    {
      std::lock_guard<std::mutex> lock(active_jobs_mu_);
      for (auto& [id, job] : active_jobs_) {
        job->token.cancel();
        ++tripped;
      }
    }
    {
      std::lock_guard<std::mutex> lock(jobs_mu_);
    }
    jobs_cv_.notify_all();
    NS_WARN("server") << config_.name << " drain deadline lapsed; cancelled " << tripped
                      << " outstanding job(s)";
    const Deadline grace(config_.io_timeout_s);
    while (!quiescent() && !grace.expired() && !stopping_.load()) {
      sleep_seconds(0.01);
    }
  }

  drained_.store(true);
  NS_INFO("server") << config_.name << " drained";
}

void ComputeServer::stop() {
  // Single flow whether the stop is local or was flagged by an injected
  // crash: flag, join the accept loop (it owns and closes the listener;
  // closing the fd under its poll would be a data race), join the report
  // thread, then drain the detached connection handlers — skipping the
  // drain when stopping_ was already set would free the server under a
  // handler that is still finishing.
  stopping_.store(true);
  jobs_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  if (report_thread_.joinable()) report_thread_.join();
  if (drain_thread_.joinable()) drain_thread_.join();
  const Deadline deadline(config_.io_timeout_s + 1.0);
  while (active_connections_.load() > 0 && !deadline.expired()) {
    sleep_seconds(0.001);
  }
}

}  // namespace ns::server
