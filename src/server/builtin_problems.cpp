#include "server/builtin_problems.hpp"

#include <algorithm>
#include <cmath>

#include "common/cancel.hpp"
#include "common/checkpoint.hpp"
#include "common/clock.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "dsl/specfile.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/eigen.hpp"
#include "linalg/expm.hpp"
#include "linalg/fft.hpp"
#include "linalg/fit.hpp"
#include "linalg/iterative.hpp"
#include "linalg/lu.hpp"
#include "linalg/qr.hpp"
#include "linalg/quad.hpp"
#include "linalg/svd.hpp"
#include "linalg/tridiag.hpp"

namespace ns::server {

using dsl::ArgSpec;
using dsl::ComplexityModel;
using dsl::DataObject;
using dsl::DataType;
using dsl::ProblemSpec;

namespace {

using Args = std::vector<DataObject>;

ProblemSpec spec(std::string name, std::string description, std::vector<ArgSpec> inputs,
                 std::vector<ArgSpec> outputs, double a, double b, std::uint32_t size_arg = 0) {
  ProblemSpec s;
  s.name = std::move(name);
  s.description = std::move(description);
  s.inputs = std::move(inputs);
  s.outputs = std::move(outputs);
  s.complexity = ComplexityModel{a, b};
  s.size_arg = size_arg;
  return s;
}

}  // namespace

void register_builtin_problems(dsl::ProblemRegistry& registry, double native_mflops) {
  // ---- BLAS ----
  registry.add(
      spec("ddot", "Dot product of two vectors", {{"x", DataType::kVector}, {"y", DataType::kVector}},
           {{"r", DataType::kDouble}}, 2.0, 1.0),
      [](const Args& args) -> Result<Args> {
        const auto& x = args[0].as_vector();
        const auto& y = args[1].as_vector();
        if (x.size() != y.size()) {
          return make_error(ErrorCode::kBadArguments, "ddot: length mismatch");
        }
        return Args{DataObject(linalg::dot(x, y))};
      });

  registry.add(
      spec("daxpy", "y += alpha * x",
           {{"alpha", DataType::kDouble}, {"x", DataType::kVector}, {"y", DataType::kVector}},
           {{"y_out", DataType::kVector}}, 2.0, 1.0, /*size_arg=*/1),
      [](const Args& args) -> Result<Args> {
        const auto& x = args[1].as_vector();
        linalg::Vector y = args[2].as_vector();
        if (x.size() != y.size()) {
          return make_error(ErrorCode::kBadArguments, "daxpy: length mismatch");
        }
        linalg::axpy(args[0].as_double(), x, y);
        return Args{DataObject(std::move(y))};
      });

  registry.add(
      spec("dgemv", "Dense matrix-vector product y = A x",
           {{"A", DataType::kMatrix}, {"x", DataType::kVector}}, {{"y", DataType::kVector}}, 2.0,
           2.0),
      [](const Args& args) -> Result<Args> {
        const auto& a = args[0].as_matrix();
        const auto& x = args[1].as_vector();
        if (x.size() != a.cols()) {
          return make_error(ErrorCode::kBadArguments, "dgemv: dimension mismatch");
        }
        linalg::Vector y(a.rows(), 0.0);
        linalg::gemv(1.0, a, x, 0.0, y);
        return Args{DataObject(std::move(y))};
      });

  registry.add(
      spec("dgemm", "Dense matrix-matrix product C = A B",
           {{"A", DataType::kMatrix}, {"B", DataType::kMatrix}}, {{"C", DataType::kMatrix}}, 2.0,
           3.0),
      [](const Args& args) -> Result<Args> {
        const auto& a = args[0].as_matrix();
        const auto& b = args[1].as_matrix();
        if (a.cols() != b.rows()) {
          return make_error(ErrorCode::kBadArguments, "dgemm: dimension mismatch");
        }
        return Args{DataObject(linalg::matmul(a, b))};
      });

  // ---- LAPACK-style dense solvers ----
  registry.add(
      spec("dgesv", "Solve a dense linear system A x = b (LU with partial pivoting)",
           {{"A", DataType::kMatrix}, {"b", DataType::kVector}}, {{"x", DataType::kVector}},
           2.0 / 3.0, 3.0),
      [](const Args& args) -> Result<Args> {
        const auto& a = args[0].as_matrix();
        const auto& b = args[1].as_vector();
        if (!a.square() || b.size() != a.rows()) {
          return make_error(ErrorCode::kBadArguments, "dgesv: dimension mismatch");
        }
        auto x = linalg::dgesv(a, b);
        if (!x.ok()) return x.error();
        return Args{DataObject(std::move(x).value())};
      });

  registry.add(
      spec("dposv", "Solve an SPD system A x = b (Cholesky)",
           {{"A", DataType::kMatrix}, {"b", DataType::kVector}}, {{"x", DataType::kVector}},
           1.0 / 3.0, 3.0),
      [](const Args& args) -> Result<Args> {
        const auto& a = args[0].as_matrix();
        const auto& b = args[1].as_vector();
        if (!a.square() || b.size() != a.rows()) {
          return make_error(ErrorCode::kBadArguments, "dposv: dimension mismatch");
        }
        auto x = linalg::dposv(a, b);
        if (!x.ok()) return x.error();
        return Args{DataObject(std::move(x).value())};
      });

  registry.add(
      spec("dgels", "Least-squares solve min ||A x - b|| (Householder QR)",
           {{"A", DataType::kMatrix}, {"b", DataType::kVector}}, {{"x", DataType::kVector}}, 2.0,
           3.0),
      [](const Args& args) -> Result<Args> {
        const auto& a = args[0].as_matrix();
        const auto& b = args[1].as_vector();
        if (b.size() != a.rows()) {
          return make_error(ErrorCode::kBadArguments, "dgels: dimension mismatch");
        }
        auto x = linalg::dgels(a, b);
        if (!x.ok()) return x.error();
        return Args{DataObject(std::move(x).value())};
      });

  registry.add(
      spec("eig_sym", "All eigenvalues of a symmetric matrix (cyclic Jacobi)",
           {{"A", DataType::kMatrix}}, {{"values", DataType::kVector}}, 6.0, 3.0),
      [](const Args& args) -> Result<Args> {
        auto eig = linalg::jacobi_eigen(args[0].as_matrix());
        if (!eig.ok()) return eig.error();
        return Args{DataObject(std::move(eig.value().values))};
      });

  registry.add(
      spec("eig_power", "Dominant eigenvalue of a square matrix (power iteration)",
           {{"A", DataType::kMatrix}}, {{"lambda", DataType::kDouble}, {"v", DataType::kVector}},
           4.0, 2.0),
      [](const Args& args) -> Result<Args> {
        Rng rng(0x5eed);  // deterministic start vector: same answer every run
        auto res = linalg::power_iteration(args[0].as_matrix(), rng);
        if (!res.ok()) return res.error();
        return Args{DataObject(res.value().eigenvalue),
                    DataObject(std::move(res.value().eigenvector))};
      });

  registry.add(
      spec("tridiag", "Solve a tridiagonal system (Thomas algorithm)",
           {{"sub", DataType::kVector},
            {"diag", DataType::kVector},
            {"super", DataType::kVector},
            {"rhs", DataType::kVector}},
           {{"x", DataType::kVector}}, 8.0, 1.0, /*size_arg=*/1),
      [](const Args& args) -> Result<Args> {
        auto x = linalg::solve_tridiagonal(args[0].as_vector(), args[1].as_vector(),
                                           args[2].as_vector(), args[3].as_vector());
        if (!x.ok()) return x.error();
        return Args{DataObject(std::move(x).value())};
      });

  // ---- ITPACK-style iterative solvers ----
  registry.add(
      // Planning model: CG on grid-like SPD systems needs ~sqrt(N) sweeps of
      // ~O(N) work each, hence a * N^1.5.
      spec("cg", "Conjugate-gradient solve of a sparse SPD system",
           {{"A", DataType::kSparse}, {"b", DataType::kVector}},
           {{"x", DataType::kVector}, {"iterations", DataType::kInt}}, 60.0, 1.5),
      [](const Args& args) -> Result<Args> {
        auto res = linalg::conjugate_gradient(args[0].as_sparse(), args[1].as_vector());
        if (!res.ok()) return res.error();
        if (!res.value().converged) {
          return make_error(ErrorCode::kExecutionFailed, "cg did not converge");
        }
        return Args{DataObject(std::move(res.value().x)),
                    DataObject(static_cast<std::int64_t>(res.value().iterations))};
      });

  registry.add(
      spec("jacobi_it", "Jacobi iterative solve of a sparse system",
           {{"A", DataType::kSparse}, {"b", DataType::kVector}},
           {{"x", DataType::kVector}, {"iterations", DataType::kInt}}, 40.0, 2.0),
      [](const Args& args) -> Result<Args> {
        linalg::IterativeOptions opts;
        opts.tolerance = 1e-8;
        auto res = linalg::jacobi_solve(args[0].as_sparse(), args[1].as_vector(), opts);
        if (!res.ok()) return res.error();
        if (!res.value().converged) {
          return make_error(ErrorCode::kExecutionFailed, "jacobi did not converge");
        }
        return Args{DataObject(std::move(res.value().x)),
                    DataObject(static_cast<std::int64_t>(res.value().iterations))};
      });

  registry.add(
      spec("sor", "SOR iterative solve of a sparse system",
           {{"A", DataType::kSparse}, {"b", DataType::kVector}, {"omega", DataType::kDouble}},
           {{"x", DataType::kVector}, {"iterations", DataType::kInt}}, 30.0, 2.0),
      [](const Args& args) -> Result<Args> {
        linalg::IterativeOptions opts;
        opts.tolerance = 1e-8;
        opts.omega = args[2].as_double();
        auto res = linalg::sor_solve(args[0].as_sparse(), args[1].as_vector(), opts);
        if (!res.ok()) return res.error();
        if (!res.value().converged) {
          return make_error(ErrorCode::kExecutionFailed, "sor did not converge");
        }
        return Args{DataObject(std::move(res.value().x)),
                    DataObject(static_cast<std::int64_t>(res.value().iterations))};
      });

  // ---- FitPack-style fitting ----
  registry.add(
      spec("polyfit", "Least-squares polynomial fit",
           {{"x", DataType::kVector}, {"y", DataType::kVector}, {"degree", DataType::kInt}},
           {{"coeffs", DataType::kVector}}, 50.0, 1.0),
      [](const Args& args) -> Result<Args> {
        const std::int64_t degree = args[2].as_int();
        if (degree < 0 || degree > 64) {
          return make_error(ErrorCode::kBadArguments, "polyfit: degree out of range");
        }
        auto coeffs = linalg::polyfit(args[0].as_vector(), args[1].as_vector(),
                                      static_cast<std::size_t>(degree));
        if (!coeffs.ok()) return coeffs.error();
        return Args{DataObject(std::move(coeffs).value())};
      });

  registry.add(
      spec("spline_eval", "Natural cubic spline interpolation at query points",
           {{"x", DataType::kVector}, {"y", DataType::kVector}, {"t", DataType::kVector}},
           {{"values", DataType::kVector}}, 20.0, 1.0),
      [](const Args& args) -> Result<Args> {
        auto sp = linalg::CubicSpline::fit(args[0].as_vector(), args[1].as_vector());
        if (!sp.ok()) return sp.error();
        const auto& t = args[2].as_vector();
        linalg::Vector values(t.size());
        for (std::size_t i = 0; i < t.size(); ++i) values[i] = sp.value()(t[i]);
        return Args{DataObject(std::move(values))};
      });

  registry.add(
      spec("dsort", "Sort a vector ascending", {{"x", DataType::kVector}},
           {{"sorted", DataType::kVector}}, 3.0, 1.1),
      [](const Args& args) -> Result<Args> {
        linalg::Vector v = args[0].as_vector();
        std::sort(v.begin(), v.end());
        return Args{DataObject(std::move(v))};
      });

  // ---- FFT / signal processing ----
  registry.add(
      spec("fft", "Complex FFT (radix-2); length must be a power of two",
           {{"re", DataType::kVector}, {"im", DataType::kVector}},
           {{"re_out", DataType::kVector}, {"im_out", DataType::kVector}}, 5.0, 1.17),
      [](const Args& args) -> Result<Args> {
        auto out = linalg::fft(args[0].as_vector(), args[1].as_vector());
        if (!out.ok()) return out.error();
        return Args{DataObject(std::move(out.value().first)),
                    DataObject(std::move(out.value().second))};
      });

  registry.add(
      spec("ifft", "Inverse complex FFT (radix-2)",
           {{"re", DataType::kVector}, {"im", DataType::kVector}},
           {{"re_out", DataType::kVector}, {"im_out", DataType::kVector}}, 5.0, 1.17),
      [](const Args& args) -> Result<Args> {
        auto out = linalg::ifft(args[0].as_vector(), args[1].as_vector());
        if (!out.ok()) return out.error();
        return Args{DataObject(std::move(out.value().first)),
                    DataObject(std::move(out.value().second))};
      });

  registry.add(
      spec("convolve", "Linear convolution of two real signals (FFT-based)",
           {{"x", DataType::kVector}, {"y", DataType::kVector}},
           {{"z", DataType::kVector}}, 15.0, 1.17),
      [](const Args& args) -> Result<Args> {
        auto out = linalg::convolve(args[0].as_vector(), args[1].as_vector());
        if (!out.ok()) return out.error();
        return Args{DataObject(std::move(out).value())};
      });

  // ---- SVD / analysis ----
  registry.add(
      spec("svd_vals", "Singular values of a dense matrix (one-sided Jacobi)",
           {{"A", DataType::kMatrix}}, {{"sigma", DataType::kVector}}, 8.0, 3.0),
      [](const Args& args) -> Result<Args> {
        auto sv = linalg::singular_values(args[0].as_matrix());
        if (!sv.ok()) return sv.error();
        return Args{DataObject(std::move(sv).value())};
      });

  registry.add(
      spec("cond", "2-norm condition number estimate of a dense matrix",
           {{"A", DataType::kMatrix}}, {{"kappa", DataType::kDouble}}, 8.0, 3.0),
      [](const Args& args) -> Result<Args> {
        auto kappa = linalg::condition_number(args[0].as_matrix());
        if (!kappa.ok()) return kappa.error();
        return Args{DataObject(kappa.value())};
      });

  registry.add(
      spec("expm", "Matrix exponential e^A (scaling-and-squaring Pade)",
           {{"A", DataType::kMatrix}}, {{"E", DataType::kMatrix}}, 20.0, 3.0),
      [](const Args& args) -> Result<Args> {
        auto e = linalg::expm(args[0].as_matrix());
        if (!e.ok()) return e.error();
        return Args{DataObject(std::move(e).value())};
      });

  // ---- quadrature / ODE ----
  registry.add(
      spec("quad_spline", "Integral of tabulated samples via natural cubic spline",
           {{"x", DataType::kVector}, {"y", DataType::kVector}},
           {{"integral", DataType::kDouble}}, 30.0, 1.0),
      [](const Args& args) -> Result<Args> {
        auto integral = linalg::integrate_samples(args[0].as_vector(), args[1].as_vector());
        if (!integral.ok()) return integral.error();
        return Args{DataObject(integral.value())};
      });

  registry.add(
      spec("lorenz", "Lorenz attractor trajectory via RK4",
           {{"sigma", DataType::kDouble},
            {"rho", DataType::kDouble},
            {"beta", DataType::kDouble},
            {"y0", DataType::kVector},
            {"dt", DataType::kDouble},
            {"steps", DataType::kInt},
            {"stride", DataType::kInt}},
           {{"trajectory", DataType::kVector}}, 100.0, 1.0, /*size_arg=*/5),
      [](const Args& args) -> Result<Args> {
        const auto& y0 = args[3].as_vector();
        if (y0.size() != 3) {
          return make_error(ErrorCode::kBadArguments, "lorenz: y0 must have 3 components");
        }
        const std::int64_t steps = args[5].as_int();
        const std::int64_t stride = args[6].as_int();
        if (steps <= 0 || steps > 10000000 || stride <= 0) {
          return make_error(ErrorCode::kBadArguments, "lorenz: bad steps/stride");
        }
        auto traj = linalg::lorenz_trajectory(
            args[0].as_double(), args[1].as_double(), args[2].as_double(), y0[0], y0[1],
            y0[2], args[4].as_double(), static_cast<std::size_t>(steps),
            static_cast<std::size_t>(stride));
        if (!traj.ok()) return traj.error();
        return Args{DataObject(std::move(traj).value())};
      });

  // ---- Synthetic workloads ----
  registry.add(
      spec("mandelbrot", "Escape-time counts on a square window of the Mandelbrot set",
           {{"center_re", DataType::kDouble},
            {"center_im", DataType::kDouble},
            {"scale", DataType::kDouble},
            {"resolution", DataType::kInt},
            {"max_iter", DataType::kInt}},
           {{"counts", DataType::kVector}}, 400.0, 2.0, /*size_arg=*/3),
      [](const Args& args) -> Result<Args> {
        const std::int64_t res = args[3].as_int();
        const std::int64_t max_iter = args[4].as_int();
        if (res <= 0 || res > 8192 || max_iter <= 0) {
          return make_error(ErrorCode::kBadArguments, "mandelbrot: bad resolution/max_iter");
        }
        const double cr = args[0].as_double();
        const double ci = args[1].as_double();
        const double scale = args[2].as_double();
        const auto n = static_cast<std::size_t>(res);
        linalg::Vector counts(n * n);
        for (std::size_t py = 0; py < n; ++py) {
          for (std::size_t px = 0; px < n; ++px) {
            const double x0 = cr + scale * (2.0 * static_cast<double>(px) / static_cast<double>(n) - 1.0);
            const double y0 = ci + scale * (2.0 * static_cast<double>(py) / static_cast<double>(n) - 1.0);
            double x = 0, y = 0;
            std::int64_t it = 0;
            while (x * x + y * y <= 4.0 && it < max_iter) {
              const double xt = x * x - y * y + x0;
              y = 2 * x * y + y0;
              x = xt;
              ++it;
            }
            counts[py * n + px] = static_cast<double>(it);
          }
        }
        return Args{DataObject(std::move(counts))};
      });

  // busywork(N): N Mflop of machine-independent synthetic compute,
  // calibrated against the host's native rate so its wall time matches a
  // real N-Mflop dense kernel. The scheduling experiments lean on this:
  // its cost is predictable and exactly proportional to N.
  registry.add(
      spec("busywork", "Synthetic compute: N Mflop of calibrated busy work",
           {{"mflop", DataType::kInt}}, {{"done", DataType::kInt}}, 1e6, 1.0),
      [native_mflops](const Args& args) -> Result<Args> {
        const std::int64_t mflop = args[0].as_int();
        if (mflop < 0 || mflop > 1000000) {
          return make_error(ErrorCode::kBadArguments, "busywork: mflop out of range");
        }
        const double rate = native_mflops > 0 ? native_mflops : 100.0;
        const auto total = static_cast<std::uint64_t>(mflop);
        // Durable jobs snapshot their position as whole Mflop completed; the
        // iteration counter doubles as the unit of progress, so a resumed job
        // repeats at most the checkpoint interval's worth of spinning.
        std::uint64_t done = checkpoint::restore([&](serial::Decoder& dec) {
          auto t = dec.get_u64();
          return t.ok() && t.value() == total;
        });
        auto& work_done = metrics::counter("server.work_mflop_total");
        // Spin in slices with cancellation checkpoints between them, so a
        // cancelled request releases its worker slot mid-spin.
        while (done < total) {
          if (cancel::poll()) return cancel::cancelled_error("busywork");
          const double want_s = std::min(static_cast<double>(total - done) / rate, 0.01);
          const double spent_s = busy_spin_seconds(want_s);
          const auto step = std::max<std::uint64_t>(
              1, static_cast<std::uint64_t>(spent_s * rate + 0.5));
          const std::uint64_t add = std::min(step, total - done);
          done += add;
          work_done.inc(add);
          const double frac = total > 0 ? static_cast<double>(total - done) /
                                              static_cast<double>(total)
                                        : 0.0;
          checkpoint::tick(done, frac, [&](serial::Encoder& enc) { enc.put_u64(total); });
        }
        return Args{DataObject(mflop)};
      });

  // simwork(N): like busywork but sleeps instead of spinning. Used by the
  // multi-machine scheduling experiments: on a one-host deployment a
  // *sleeping* server correctly emulates work done on an independent remote
  // processor (it occupies that server's capacity without contending for
  // the host CPU), whereas busywork models compute sharing the local CPU.
  registry.add(
      spec("simwork", "Synthetic compute: N Mflop of simulated (sleeping) work",
           {{"mflop", DataType::kInt}}, {{"done", DataType::kInt}}, 1e6, 1.0),
      [native_mflops](const Args& args) -> Result<Args> {
        const std::int64_t mflop = args[0].as_int();
        if (mflop < 0 || mflop > 1000000) {
          return make_error(ErrorCode::kBadArguments, "simwork: mflop out of range");
        }
        const double rate = native_mflops > 0 ? native_mflops : 100.0;
        const auto total = static_cast<std::uint64_t>(mflop);
        // Sliced like busywork so the job is checkpointable: position is
        // whole Mflop completed, and a restart resumes sleeping from the
        // last snapshot instead of the beginning. Cancellation checkpoints
        // between slices keep the chaos/drain tests prompt.
        std::uint64_t done = checkpoint::restore([&](serial::Decoder& dec) {
          auto t = dec.get_u64();
          return t.ok() && t.value() == total;
        });
        auto& work_done = metrics::counter("server.work_mflop_total");
        while (done < total) {
          if (cancel::poll()) return cancel::cancelled_error("simwork");
          const double slice_s = std::min(static_cast<double>(total - done) / rate, 0.01);
          sleep_seconds(slice_s);
          const auto step = std::max<std::uint64_t>(
              1, static_cast<std::uint64_t>(slice_s * rate + 0.5));
          const std::uint64_t add = std::min(step, total - done);
          done += add;
          work_done.inc(add);
          const double frac = total > 0 ? static_cast<double>(total - done) /
                                              static_cast<double>(total)
                                        : 0.0;
          checkpoint::tick(done, frac, [&](serial::Encoder& enc) { enc.put_u64(total); });
        }
        return Args{DataObject(mflop)};
      });

  // simstate(mflop, state_kb): simwork carrying a realistically-sized solver
  // state. A state_kb-kilobyte vector of doubles drifts slowly (a handful of
  // entries move per slice, the way an iterative solution vector converges)
  // and every checkpoint snapshots the whole vector. The replication bench
  // (bench_fault E4g) leans on this: consecutive snapshots differ in a few
  // entries, so delta/RLE frames (common/bytepack.hpp) beat raw copies by a
  // wide margin — which simwork's ~13-byte snapshots are too small to show.
  registry.add(
      spec("simstate", "Synthetic compute: N Mflop of simulated work, K KB of checkpoint state",
           {{"mflop", DataType::kInt}, {"state_kb", DataType::kInt}},
           {{"done", DataType::kInt}}, 1e6, 1.0),
      [native_mflops](const Args& args) -> Result<Args> {
        const std::int64_t mflop = args[0].as_int();
        const std::int64_t state_kb = args[1].as_int();
        if (mflop < 0 || mflop > 1000000) {
          return make_error(ErrorCode::kBadArguments, "simstate: mflop out of range");
        }
        if (state_kb < 1 || state_kb > 65536) {
          return make_error(ErrorCode::kBadArguments, "simstate: state_kb out of range");
        }
        const double rate = native_mflops > 0 ? native_mflops : 100.0;
        const auto total = static_cast<std::uint64_t>(mflop);
        const std::size_t n = static_cast<std::size_t>(state_kb) * 128;  // doubles per KB
        std::vector<double> state;
        std::uint64_t done = checkpoint::restore([&](serial::Decoder& dec) {
          auto t = dec.get_u64();
          if (!t.ok() || t.value() != total) return false;
          auto s = dec.get_f64_array(n);
          if (!s.ok() || s.value().size() != n) return false;
          state = std::move(s).value();
          return true;
        });
        if (state.empty()) {
          state.resize(n);
          for (std::size_t i = 0; i < n; ++i) {
            state[i] = static_cast<double>(i % 4);
          }
        }
        auto& work_done = metrics::counter("server.work_mflop_total");
        while (done < total) {
          if (cancel::poll()) return cancel::cancelled_error("simstate");
          const double slice_s = std::min(static_cast<double>(total - done) / rate, 0.01);
          sleep_seconds(slice_s);
          const auto step = std::max<std::uint64_t>(
              1, static_cast<std::uint64_t>(slice_s * rate + 0.5));
          const std::uint64_t add = std::min(step, total - done);
          done += add;
          work_done.inc(add);
          for (std::uint64_t k = 0; k < 4; ++k) {
            state[static_cast<std::size_t>((done * 31 + k * 7) % n)] += 1.0;
          }
          const double frac = total > 0 ? static_cast<double>(total - done) /
                                              static_cast<double>(total)
                                        : 0.0;
          checkpoint::tick(done, frac, [&](serial::Encoder& enc) {
            enc.put_u64(total);
            enc.put_f64_array(state);
          });
        }
        return Args{DataObject(mflop)};
      });
}

std::string builtin_spec_text() {
  dsl::ProblemRegistry registry;
  register_builtin_problems(registry, 100.0);
  return dsl::format_spec_file(registry.all_specs());
}

}  // namespace ns::server
