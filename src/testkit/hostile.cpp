#include "testkit/hostile.hpp"

#include <atomic>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "net/socket.hpp"
#include "serial/frame.hpp"

namespace ns::testkit {

namespace {

/// Shared mutable tallies for one attack run; folded into AttackStats at the
/// end. Relaxed atomics: the joins below are the synchronisation points.
struct Tally {
  std::atomic<std::size_t> connections{0};
  std::atomic<std::size_t> dial_failures{0};
  std::atomic<std::size_t> bytes_sent{0};
  std::atomic<std::size_t> resets{0};

  AttackStats stats() const {
    AttackStats s;
    s.connections = connections.load();
    s.dial_failures = dial_failures.load();
    s.bytes_sent = bytes_sent.load();
    s.resets = resets.load();
    return s;
  }
};

/// Send that treats every failure as "the armor killed us", not an error.
bool hostile_send(net::TcpConnection& conn, Tally& tally, const void* data,
                  std::size_t size) {
  if (!conn.send_all(data, size).ok()) {
    tally.resets.fetch_add(1);
    conn.close();
    return false;
  }
  tally.bytes_sent.fetch_add(size);
  return true;
}

/// Dial with a short timeout: an attacker that blocks retrying refused
/// connections for 5 s stops attacking.
Result<net::TcpConnection> hostile_dial(const AttackConfig& config, Tally& tally) {
  auto conn = net::TcpConnection::connect_raw(config.target, /*timeout_secs=*/0.5);
  if (conn.ok()) {
    tally.connections.fetch_add(1);
  } else {
    tally.dial_failures.fetch_add(1);
  }
  return conn;
}

/// A syntactically valid header for a frame whose payload (and therefore CRC)
/// will never fully arrive. decode_header validates magic/version/length only
/// — the CRC is checked once the payload is complete — so this is exactly how
/// far a hostile peer can get for free.
void claim_header(std::uint32_t payload_len, std::uint8_t out[serial::kHeaderSize]) {
  serial::FrameHeader header;
  header.type = 0x0001;  // looks like a real request type
  header.length = payload_len;
  header.crc = 0xdeadbeef;
  serial::encode_header(header, out);
}

AttackStats run_attack(const AttackConfig& config,
                       void (*worker)(const AttackConfig&, std::uint64_t, Tally&)) {
  Tally tally;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(config.concurrency));
  for (int i = 0; i < config.concurrency; ++i) {
    const std::uint64_t seed = config.seed + 0x9e3779b97f4a7c15ull * (i + 1);
    threads.emplace_back([&config, seed, &tally, worker] { worker(config, seed, tally); });
  }
  for (auto& thread : threads) thread.join();
  return tally.stats();
}

// ---- the attacks -----------------------------------------------------------

void slowloris_worker(const AttackConfig& config, std::uint64_t, Tally& tally) {
  const Deadline deadline(config.duration_s);
  while (!deadline.expired()) {
    auto conn = hostile_dial(config, tally);
    if (!conn.ok()) {
      sleep_seconds(0.05);
      continue;
    }
    // Claim a plausible mid-size frame, then drip its payload one byte at a
    // time — each byte is "activity", so an idle sweep never fires, and the
    // frame never completes, so a progress deadline must.
    std::uint8_t header[serial::kHeaderSize];
    claim_header(/*payload_len=*/64u << 10, header);
    if (!hostile_send(conn.value(), tally, header, sizeof(header))) continue;
    const std::uint8_t drip = 0x42;
    while (!deadline.expired()) {
      if (!hostile_send(conn.value(), tally, &drip, 1)) break;
      sleep_seconds(config.drip_interval_s);
    }
    conn.value().close();
  }
}

void giant_frame_worker(const AttackConfig& config, std::uint64_t, Tally& tally) {
  const Deadline deadline(config.duration_s);
  while (!deadline.expired()) {
    auto conn = hostile_dial(config, tally);
    if (!conn.ok()) {
      sleep_seconds(0.05);
      continue;
    }
    // The whole attack is the header: claim a huge payload and send a token
    // amount of it. A reactor that reserves the claimed bytes up front is
    // dead; the armor must refuse at decode time and close.
    std::uint8_t header[serial::kHeaderSize];
    claim_header(config.giant_frame_len, header);
    if (hostile_send(conn.value(), tally, header, sizeof(header))) {
      std::uint8_t chunk[1024];
      std::memset(chunk, 0xab, sizeof(chunk));
      // Keep feeding until the armor resets us or time runs out.
      while (!deadline.expired() &&
             hostile_send(conn.value(), tally, chunk, sizeof(chunk))) {
      }
    }
    conn.value().close();
    sleep_seconds(0.01);
  }
}

void garbage_worker(const AttackConfig& config, std::uint64_t seed, Tally& tally) {
  std::mt19937_64 rng(seed);
  const Deadline deadline(config.duration_s);
  while (!deadline.expired()) {
    auto conn = hostile_dial(config, tally);
    if (!conn.ok()) {
      sleep_seconds(0.05);
      continue;
    }
    // Three flavours per connection, chosen at random: pure noise, a valid
    // header followed by corrupt payload (CRC must catch it), or a truncated
    // header followed by abrupt close.
    const int flavour = static_cast<int>(rng() % 3);
    std::uint8_t buf[4096];
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng());
    switch (flavour) {
      case 0: {  // pure noise until killed
        while (!deadline.expired() &&
               hostile_send(conn.value(), tally, buf, sizeof(buf))) {
        }
        break;
      }
      case 1: {  // valid header, corrupt payload of the claimed length
        const std::uint32_t len = 512 + static_cast<std::uint32_t>(rng() % 4096);
        std::uint8_t header[serial::kHeaderSize];
        claim_header(len, header);
        if (hostile_send(conn.value(), tally, header, sizeof(header))) {
          std::size_t left = len;
          while (left > 0 && hostile_send(conn.value(), tally, buf,
                                          left < sizeof(buf) ? left : sizeof(buf))) {
            left -= left < sizeof(buf) ? left : sizeof(buf);
          }
        }
        break;
      }
      default: {  // truncated header, abandon
        hostile_send(conn.value(), tally, buf, serial::kHeaderSize / 2);
        break;
      }
    }
    conn.value().close();
    sleep_seconds(0.005);
  }
}

void connection_flood_worker(const AttackConfig& config, std::uint64_t, Tally& tally) {
  const Deadline deadline(config.duration_s);
  std::vector<net::TcpConnection> held;
  held.reserve(static_cast<std::size_t>(config.conns_per_thread));
  while (!deadline.expired()) {
    // Keep the herd topped up: the armor evicts idle connections, so slots
    // free up and the flood re-dials — exactly the churn a real flood makes.
    if (static_cast<int>(held.size()) < config.conns_per_thread) {
      auto conn = hostile_dial(config, tally);
      if (conn.ok()) {
        held.push_back(std::move(conn).value());
      } else {
        sleep_seconds(0.02);
      }
      continue;
    }
    // Full herd: poke each socket with a probe byte to learn which ones the
    // armor already evicted, and drop those.
    for (auto it = held.begin(); it != held.end();) {
      const std::uint8_t probe = 0x00;
      if (hostile_send(*it, tally, &probe, 1)) {
        ++it;
      } else {
        it = held.erase(it);
      }
    }
    sleep_seconds(0.05);
  }
}

void half_open_worker(const AttackConfig& config, std::uint64_t, Tally& tally) {
  const Deadline deadline(config.duration_s);
  std::vector<net::TcpConnection> abandoned;
  while (!deadline.expired()) {
    if (static_cast<int>(abandoned.size()) >= config.conns_per_thread) {
      // Herd complete: a real attacker walks away and lets the sockets rot —
      // never closing them, so only a server-side deadline can free the fds.
      sleep_seconds(0.05);
      continue;
    }
    auto conn = hostile_dial(config, tally);
    if (conn.ok()) {
      // Half a header, then silence — the socket stays open so the fd stays
      // pinned server-side until a progress deadline reaps it.
      std::uint8_t header[serial::kHeaderSize];
      claim_header(1024, header);
      hostile_send(conn.value(), tally, header, serial::kHeaderSize / 2);
      abandoned.push_back(std::move(conn).value());
    } else {
      sleep_seconds(0.02);
    }
    sleep_seconds(0.01);
  }
}

}  // namespace

AttackStats run_slowloris(const AttackConfig& config) {
  return run_attack(config, slowloris_worker);
}

AttackStats run_giant_frame(const AttackConfig& config) {
  return run_attack(config, giant_frame_worker);
}

AttackStats run_garbage(const AttackConfig& config) {
  return run_attack(config, garbage_worker);
}

AttackStats run_connection_flood(const AttackConfig& config) {
  return run_attack(config, connection_flood_worker);
}

AttackStats run_half_open(const AttackConfig& config) {
  return run_attack(config, half_open_worker);
}

}  // namespace ns::testkit
