// In-process NetSolve cluster orchestration.
//
// Starts one or more agents (a federated full mesh when agent_count > 1)
// plus N computational servers (each on its own ephemeral loopback port,
// with its own threads) inside the current process — the "multi-process
// evaluation on one machine" shape of the reproduction, with process
// isolation traded for deterministic startup/teardown in tests and benches.
// The standalone binaries under examples/standalone/ provide the true
// multi-process deployment.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "agent/agent.hpp"
#include "client/client.hpp"
#include "common/error.hpp"
#include "common/memgov.hpp"
#include "common/vfs.hpp"
#include "net/fault.hpp"
#include "server/server.hpp"

namespace ns::testkit {

struct ClusterServerSpec {
  std::string name;
  /// Emulated relative speed in (0, 1]; 1 = full host speed.
  double speed = 1.0;
  server::SlowdownMode slowdown_mode = server::SlowdownMode::kSpin;
  int workers = 2;
  int max_queue = 0;  // admission control (0 = queue without bound)
  double report_period_s = 0.05;
  double report_threshold = 0.0;
  double background_load = 0.0;
  net::LinkShape link;  // server->client reply shaping
  server::FailureSpec failure;
  /// Offer only these problems (empty = the full catalogue).
  std::vector<std::string> problems;
  /// Background re-registration period (jittered server-side). Non-zero by
  /// default so a restarted agent re-learns the pool without intervention.
  double reregister_period_s = 0.5;
  /// Overload-control knobs (EDF ordering, admission/dequeue deadline sheds,
  /// CoDel sojourn shedder, per-client quotas, AIMD concurrency) so tests and
  /// benches can script overload scenarios per server. Survives
  /// restart_server().
  server::AdmissionConfig admission;
  /// Durable-jobs data directory (empty = journaling off). With a data dir,
  /// the server write-ahead journals every job and restart_server() /
  /// crash_server()+restart_server() replays it: queued jobs re-enqueue and
  /// started jobs resume from their last checkpoint. Survives restart.
  std::string data_dir;
  /// Kernel checkpoint interval in iterations (simwork/busywork: Mflop).
  std::uint64_t checkpoint_interval = 25;
  /// fsync the journal on every append (tests may turn it off for speed).
  bool journal_fsync = true;
  /// On drain, hand running jobs (with their checkpoints) to agent-ranked
  /// peers via JOB_TRANSFER instead of plainly cancelling them.
  bool migrate_on_drain = false;
  /// Transport hostile-peer armor for this server (frame cap, buffer
  /// budgets, progress deadline, connection cap). Survives restart_server().
  net::GuardConfig guard;
  /// Checkpoint replication peers, by index into ClusterConfig::servers.
  /// Resolved to endpoints when this server (re)starts. At initial start only
  /// lower-indexed servers are bound yet, so order specs so replica targets
  /// come first (the replicating server last); restart_server() resolves any
  /// index. Unresolvable indices are skipped with a warning.
  std::vector<std::size_t> replicas;
  /// Delta/RLE-compress replicated checkpoint frames (see common/bytepack.hpp).
  bool checkpoint_compress = true;
  /// Memory governance for this server: payload/working-set budgets, spill
  /// directory, replica-store byte cap (see common/memgov.hpp). Defaults to
  /// ungoverned. Survives restart_server().
  mem::MemBudgetConfig mem;
};

struct ClusterConfig {
  std::string policy = "mct";
  std::vector<ClusterServerSpec> servers;
  /// Agents to spawn. With more than one they form a federated full mesh
  /// (peer snapshot sync + anti-entropy bootstrap), every server registers
  /// with all of them, and make_client() clients fail over down the list.
  std::size_t agent_count = 1;
  /// Federation snapshot exchange period for multi-agent clusters.
  double agent_sync_period_s = 0.05;
  /// Native Mflop rating shared by all servers; 0 measures the host once.
  double rating_base = 0.0;
  agent::RegistryConfig registry;
  /// Agent-side liveness ping period (0 = off).
  double ping_period_s = 0.0;
  /// Predictor counts unreported assignments (the E9 ablation toggle).
  bool count_pending = true;
  /// Default shaping for clients created via make_client().
  net::LinkShape client_link;
  double io_timeout_s = 30.0;
  /// Per-call deadline budget for make_client() clients (0 = none). With a
  /// budget, clients retry until it expires and stamp the remaining budget
  /// into every SolveRequest (servers shed expired work).
  double client_deadline_s = 0.0;
  /// Hedge delay for make_client() clients (0 = hedging off). See
  /// ClientConfig::hedge_delay_s: static fallback until the per-problem
  /// latency histogram warms up, then its hedge_quantile drives the delay.
  double client_hedge_delay_s = 0.0;
  double client_hedge_quantile = 0.95;
  std::uint64_t client_hedge_min_samples = 20;
  /// Reattach budget for make_client() clients (0 = off). See
  /// ClientConfig::reattach_s: on a mid-call transport loss the client polls
  /// PROBE at the same server instead of resubmitting, so a crash-restarted
  /// journaling server finishes the original job.
  double client_reattach_s = 0.0;
  /// make_client() clients stamp require_durable into every SolveRequest
  /// (degraded / non-journaling servers shed them retryably).
  bool client_require_durable = false;
  /// make_client() clients chase replicated checkpoints after a dead-server
  /// reattach fails (CHECKPOINT_FETCH adopt; see ClientConfig).
  bool client_checkpoint_failover = false;
  /// Transport armor for the agents (metadata-role defaults). Survives
  /// restart_agent().
  net::GuardConfig agent_guard = net::GuardConfig::agent_defaults();
};

class TestCluster {
 public:
  /// Start the agent and all servers; blocks until every server has
  /// registered and delivered its first workload report.
  static Result<std::unique_ptr<TestCluster>> start(ClusterConfig config);

  ~TestCluster();
  TestCluster(const TestCluster&) = delete;
  TestCluster& operator=(const TestCluster&) = delete;

  /// The primary (first) agent. Asserts it has not been killed.
  agent::Agent& agent() noexcept { return *agents_.front(); }
  agent::Agent& agent(std::size_t i) { return *agents_.at(i); }
  std::size_t agent_count() const noexcept { return agents_.size(); }
  /// Endpoints stay valid (and stable) across kill_agent/restart_agent.
  net::Endpoint agent_endpoint() const { return agent_endpoints_.front(); }
  net::Endpoint agent_endpoint(std::size_t i) const { return agent_endpoints_.at(i); }
  bool agent_alive(std::size_t i) const { return agents_.at(i) != nullptr; }

  std::size_t server_count() const noexcept { return servers_.size(); }
  server::ComputeServer& server(std::size_t i) { return *servers_.at(i); }

  /// A client wired to this cluster's agent (link defaults to the cluster's
  /// client_link).
  client::NetSolveClient make_client() const;
  client::NetSolveClient make_client(const net::LinkShape& link) const;

  /// The native (speed=1) rating the servers were calibrated against.
  double rating_base() const noexcept { return rating_base_; }

  // ---- observability (see common/metrics.hpp) ----

  /// Scrape the metrics registry over the wire via METRICS_QUERY. In this
  /// in-process cluster every component shares one registry, so both calls
  /// see the same data — what differs is the path exercised (agent vs server
  /// connection handler) and, for the agent, the per-server directory gauges
  /// refreshed at scrape time.
  Result<metrics::Snapshot> scrape_agent_metrics(const std::string& prefix = {}) const;
  Result<metrics::Snapshot> scrape_server_metrics(std::size_t i,
                                                  const std::string& prefix = {}) const;

  // ---- chaos scripting (see net/fault.hpp) ----

  /// Arm a fault plan on server i's link: faults hit traffic dialed to the
  /// server AND its replies (the transport resolves the link by peer or
  /// local endpoint).
  void arm_fault(std::size_t i, net::FaultPlan plan);
  /// Arm a fault plan on the agent's link (anything dialing the agent).
  void arm_agent_fault(net::FaultPlan plan);
  /// Remove every armed fault plan process-wide.
  void disarm_faults();

  /// Arm a storage fault plan on server i's data_dir (see common/vfs.hpp):
  /// ENOSPC, torn writes, fsync EIO, compaction crash windows, bit rot —
  /// everything the journal must survive or degrade through. The server must
  /// have a data_dir (journaling on).
  void arm_storage_fault(std::size_t i, vfs::StorageFaultPlan plan);
  /// Remove every armed storage fault plan (and the emulated-crash freeze).
  void disarm_storage_faults();

  /// Arm an allocation fault plan (see common/memgov.hpp): scripted
  /// std::bad_alloc at named trip points (frame reads, request decode,
  /// execute, spill save/reload). Process-global, like storage faults.
  void arm_alloc_fault(mem::AllocFaultPlan plan);
  /// Remove every armed allocation fault rule.
  void disarm_alloc_faults();

  /// Gracefully drain server i (the rolling-restart chaos hook): it stops
  /// accepting work, deregisters from every agent, and finishes or cancels
  /// its queue within `deadline_s` (0 = the server's io timeout). Sent over
  /// the wire (DRAIN message) like an operator would; returns the ack.
  Result<proto::DrainAck> drain_server(std::size_t i, double deadline_s = 0.0);

  /// Hard-kill server i: listener closed, all connections dropped — the
  /// in-process stand-in for SIGKILL. The agent only learns via failed
  /// pings / client reports / report expiry.
  void kill_server(std::size_t i);
  /// Unclean death of server i: like kill_server but nothing cooperative
  /// happens first — the journal fd is dropped without flush or compaction,
  /// in-flight kernels are abandoned mid-iteration, and no terminal records
  /// are written. The closest an in-process cluster gets to SIGKILL; pair
  /// with restart_server() to exercise journal replay.
  void crash_server(std::size_t i);
  /// Restart a killed server on its old endpoint; the agent revives the
  /// record by name+endpoint when the new incarnation registers.
  Status restart_server(std::size_t i);

  /// Hard-kill agent i: listener closed, threads joined, the object
  /// destroyed. Clients and servers only notice refused connections.
  void kill_agent(std::size_t i);
  /// Restart a killed agent on its old endpoint with the same peer mesh; it
  /// warms its registry from live peers (anti-entropy bootstrap) and from
  /// server re-registrations.
  Status restart_agent(std::size_t i);

  /// Stop everything (idempotent; also run by the destructor).
  void stop();

 private:
  TestCluster() = default;

  agent::AgentConfig agent_config_for(std::size_t i) const;

  ClusterConfig config_;
  double rating_base_ = 0.0;
  std::vector<std::unique_ptr<agent::Agent>> agents_;  // null = killed
  std::vector<net::Endpoint> agent_endpoints_;
  std::vector<std::unique_ptr<server::ComputeServer>> servers_;
};

/// Convenience spec builders for the common experiment pools.

/// `count` identical full-speed servers.
std::vector<ClusterServerSpec> uniform_pool(std::size_t count, int workers = 2);

/// Heterogeneous pool with speeds descending by powers of two:
/// 1, 1/2, 1/4, ... (the 8:4:2:1 pool of the load-balancing experiment).
std::vector<ClusterServerSpec> power_of_two_pool(std::size_t count, int workers = 2);

}  // namespace ns::testkit
