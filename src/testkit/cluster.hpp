// In-process NetSolve cluster orchestration.
//
// Starts one agent plus N computational servers (each on its own ephemeral
// loopback port, with its own threads) inside the current process — the
// "multi-process evaluation on one machine" shape of the reproduction, with
// process isolation traded for deterministic startup/teardown in tests and
// benches. The standalone binaries under examples/standalone/ provide the
// true multi-process deployment.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "agent/agent.hpp"
#include "client/client.hpp"
#include "common/error.hpp"
#include "net/fault.hpp"
#include "server/server.hpp"

namespace ns::testkit {

struct ClusterServerSpec {
  std::string name;
  /// Emulated relative speed in (0, 1]; 1 = full host speed.
  double speed = 1.0;
  server::SlowdownMode slowdown_mode = server::SlowdownMode::kSpin;
  int workers = 2;
  int max_queue = 0;  // admission control (0 = queue without bound)
  double report_period_s = 0.05;
  double report_threshold = 0.0;
  double background_load = 0.0;
  net::LinkShape link;  // server->client reply shaping
  server::FailureSpec failure;
  /// Offer only these problems (empty = the full catalogue).
  std::vector<std::string> problems;
};

struct ClusterConfig {
  std::string policy = "mct";
  std::vector<ClusterServerSpec> servers;
  /// Native Mflop rating shared by all servers; 0 measures the host once.
  double rating_base = 0.0;
  agent::RegistryConfig registry;
  /// Agent-side liveness ping period (0 = off).
  double ping_period_s = 0.0;
  /// Predictor counts unreported assignments (the E9 ablation toggle).
  bool count_pending = true;
  /// Default shaping for clients created via make_client().
  net::LinkShape client_link;
  double io_timeout_s = 30.0;
  /// Per-call deadline budget for make_client() clients (0 = none). With a
  /// budget, clients retry until it expires and stamp the remaining budget
  /// into every SolveRequest (servers shed expired work).
  double client_deadline_s = 0.0;
};

class TestCluster {
 public:
  /// Start the agent and all servers; blocks until every server has
  /// registered and delivered its first workload report.
  static Result<std::unique_ptr<TestCluster>> start(ClusterConfig config);

  ~TestCluster();
  TestCluster(const TestCluster&) = delete;
  TestCluster& operator=(const TestCluster&) = delete;

  agent::Agent& agent() noexcept { return *agent_; }
  net::Endpoint agent_endpoint() const { return agent_->endpoint(); }

  std::size_t server_count() const noexcept { return servers_.size(); }
  server::ComputeServer& server(std::size_t i) { return *servers_.at(i); }

  /// A client wired to this cluster's agent (link defaults to the cluster's
  /// client_link).
  client::NetSolveClient make_client() const;
  client::NetSolveClient make_client(const net::LinkShape& link) const;

  /// The native (speed=1) rating the servers were calibrated against.
  double rating_base() const noexcept { return rating_base_; }

  // ---- observability (see common/metrics.hpp) ----

  /// Scrape the metrics registry over the wire via METRICS_QUERY. In this
  /// in-process cluster every component shares one registry, so both calls
  /// see the same data — what differs is the path exercised (agent vs server
  /// connection handler) and, for the agent, the per-server directory gauges
  /// refreshed at scrape time.
  Result<metrics::Snapshot> scrape_agent_metrics(const std::string& prefix = {}) const;
  Result<metrics::Snapshot> scrape_server_metrics(std::size_t i,
                                                  const std::string& prefix = {}) const;

  // ---- chaos scripting (see net/fault.hpp) ----

  /// Arm a fault plan on server i's link: faults hit traffic dialed to the
  /// server AND its replies (the transport resolves the link by peer or
  /// local endpoint).
  void arm_fault(std::size_t i, net::FaultPlan plan);
  /// Arm a fault plan on the agent's link (anything dialing the agent).
  void arm_agent_fault(net::FaultPlan plan);
  /// Remove every armed fault plan process-wide.
  void disarm_faults();

  /// Hard-kill server i: listener closed, all connections dropped — the
  /// in-process stand-in for SIGKILL. The agent only learns via failed
  /// pings / client reports / report expiry.
  void kill_server(std::size_t i);
  /// Restart a killed server on its old endpoint; the agent revives the
  /// record by name+endpoint when the new incarnation registers.
  Status restart_server(std::size_t i);

  /// Stop everything (idempotent; also run by the destructor).
  void stop();

 private:
  TestCluster() = default;

  ClusterConfig config_;
  double rating_base_ = 0.0;
  std::unique_ptr<agent::Agent> agent_;
  std::vector<std::unique_ptr<server::ComputeServer>> servers_;
};

/// Convenience spec builders for the common experiment pools.

/// `count` identical full-speed servers.
std::vector<ClusterServerSpec> uniform_pool(std::size_t count, int workers = 2);

/// Heterogeneous pool with speeds descending by powers of two:
/// 1, 1/2, 1/4, ... (the 8:4:2:1 pool of the load-balancing experiment).
std::vector<ClusterServerSpec> power_of_two_pool(std::size_t count, int workers = 2);

}  // namespace ns::testkit
