#include "testkit/cluster.hpp"

#include <cmath>

#include "common/clock.hpp"
#include "common/log.hpp"
#include "linalg/rating.hpp"
#include "net/pool.hpp"

namespace ns::testkit {

agent::AgentConfig TestCluster::agent_config_for(std::size_t i) const {
  agent::AgentConfig ac;
  ac.policy = config_.policy;
  ac.registry = config_.registry;
  ac.ping_period_s = config_.ping_period_s;
  ac.count_pending = config_.count_pending;
  ac.guard = config_.agent_guard;
  if (config_.agent_count > 1) {
    ac.sync_period_s = config_.agent_sync_period_s;
    // Peers = every *other* agent already bound. At initial startup later
    // agents are not bound yet; add_peer() completes the mesh afterwards.
    for (std::size_t j = 0; j < agent_endpoints_.size(); ++j) {
      if (j != i) ac.peers.push_back(agent_endpoints_[j]);
    }
  }
  return ac;
}

Result<std::unique_ptr<TestCluster>> TestCluster::start(ClusterConfig config) {
  if (config.servers.empty()) {
    return make_error(ErrorCode::kBadArguments, "cluster needs at least one server");
  }
  if (config.agent_count < 1) {
    return make_error(ErrorCode::kBadArguments, "cluster needs at least one agent");
  }

  std::unique_ptr<TestCluster> cluster(new TestCluster());
  cluster->config_ = config;

  cluster->rating_base_ = config.rating_base > 0
                              ? config.rating_base
                              : linalg::linpack_rating(/*n=*/160, /*repeats=*/2).mflops;

  for (std::size_t i = 0; i < config.agent_count; ++i) {
    auto agent = agent::Agent::start(cluster->agent_config_for(i));
    if (!agent.ok()) {
      cluster->stop();
      return agent.error();
    }
    cluster->agent_endpoints_.push_back(agent.value()->endpoint());
    cluster->agents_.push_back(std::move(agent).value());
  }
  // Complete the full mesh: earlier agents learn the later agents' ports.
  for (std::size_t i = 0; i < cluster->agents_.size(); ++i) {
    for (std::size_t j = i + 1; j < cluster->agents_.size(); ++j) {
      cluster->agents_[i]->add_peer(cluster->agent_endpoints_[j]);
    }
  }

  std::uint64_t seed = 0xbada55;
  for (const auto& spec : config.servers) {
    server::ServerConfig sc;
    sc.name = spec.name;
    sc.agents = cluster->agent_endpoints_;
    sc.reregister_period_s = spec.reregister_period_s;
    sc.workers = spec.workers;
    sc.max_queue = spec.max_queue;
    sc.admission = spec.admission;
    sc.speed_factor = spec.speed;
    sc.slowdown_mode = spec.slowdown_mode;
    sc.rating_override = cluster->rating_base_;
    sc.report_period_s = spec.report_period_s;
    sc.report_threshold = spec.report_threshold;
    sc.background_load = spec.background_load;
    sc.link = spec.link;
    sc.io_timeout_s = config.io_timeout_s;
    sc.failure = spec.failure;
    sc.problem_filter = spec.problems;
    sc.data_dir = spec.data_dir;
    sc.checkpoint_interval = spec.checkpoint_interval;
    sc.journal_fsync = spec.journal_fsync;
    sc.migrate_on_drain = spec.migrate_on_drain;
    sc.guard = spec.guard;
    sc.checkpoint_compress = spec.checkpoint_compress;
    sc.mem = spec.mem;
    for (std::size_t j : spec.replicas) {
      if (j < cluster->servers_.size() && cluster->servers_[j]) {
        sc.replicas.push_back(cluster->servers_[j]->endpoint());
      } else {
        NS_WARN("testkit") << spec.name << " replica index " << j
                           << " not started yet; skipped (order replica "
                              "targets before the replicating server)";
      }
    }
    sc.seed = seed++;
    auto server = server::ComputeServer::start(std::move(sc));
    if (!server.ok()) {
      cluster->stop();
      return server.error();
    }
    cluster->servers_.push_back(std::move(server).value());
  }

  // Wait for every server's first workload report at every agent so each
  // agent's view is complete before the first query (registration already
  // happened synchronously in ComputeServer::start).
  const Deadline deadline(5.0);
  while (!deadline.expired()) {
    bool all_ready = true;
    for (auto& agent : cluster->agents_) {
      if (agent->stats().workload_reports < cluster->servers_.size()) {
        all_ready = false;
        break;
      }
    }
    if (all_ready) break;
    sleep_seconds(0.002);
  }
  return cluster;
}

TestCluster::~TestCluster() { stop(); }

void TestCluster::stop() {
  // Never leave fault plans behind: the injectors are process-global and a
  // later test would inherit this cluster's chaos schedule.
  net::FaultInjector::instance().disarm_all();
  vfs::StorageFaultInjector::instance().disarm_all();
  mem::AllocFaultInjector::instance().disarm_all();
  for (auto& server : servers_) {
    if (server) server->stop();
  }
  for (auto& agent : agents_) {
    if (agent) agent->stop();
  }
  // The connection pool is process-global too, and the next cluster may bind
  // the very ports this one just released — drop every cached connection so
  // a later test cannot reuse a socket into a dead (or worse, reincarnated)
  // endpoint.
  net::ConnectionPool::instance().clear();
}

void TestCluster::arm_fault(std::size_t i, net::FaultPlan plan) {
  net::FaultInjector::instance().arm(servers_.at(i)->endpoint(), std::move(plan));
}

void TestCluster::arm_agent_fault(net::FaultPlan plan) {
  net::FaultInjector::instance().arm(agent_endpoints_.front(), std::move(plan));
}

void TestCluster::disarm_faults() { net::FaultInjector::instance().disarm_all(); }

void TestCluster::arm_storage_fault(std::size_t i, vfs::StorageFaultPlan plan) {
  const auto& data_dir = config_.servers.at(i).data_dir;
  if (data_dir.empty()) {
    NS_WARN("testkit") << config_.servers.at(i).name
                       << " has no data_dir; storage fault plan ignored";
    return;
  }
  vfs::StorageFaultInjector::instance().arm(data_dir, std::move(plan));
}

void TestCluster::disarm_storage_faults() {
  vfs::StorageFaultInjector::instance().disarm_all();
}

void TestCluster::arm_alloc_fault(mem::AllocFaultPlan plan) {
  mem::AllocFaultInjector::instance().arm(std::move(plan));
}

void TestCluster::disarm_alloc_faults() {
  mem::AllocFaultInjector::instance().disarm_all();
}

Result<proto::DrainAck> TestCluster::drain_server(std::size_t i, double deadline_s) {
  return client::drain_server(servers_.at(i)->endpoint(), deadline_s);
}

void TestCluster::kill_server(std::size_t i) {
  servers_.at(i)->stop();
  // Pooled connections into the dead incarnation would be reused (and fail)
  // before the MSG_PEEK staleness check notices the FIN on a racing close.
  net::ConnectionPool::instance().evict(servers_.at(i)->endpoint());
}

void TestCluster::crash_server(std::size_t i) {
  servers_.at(i)->crash();
  net::ConnectionPool::instance().evict(servers_.at(i)->endpoint());
}

void TestCluster::kill_agent(std::size_t i) {
  auto& slot = agents_.at(i);
  if (!slot) return;  // already dead
  slot->stop();
  slot.reset();  // release the port so restart_agent can rebind
  net::ConnectionPool::instance().evict(agent_endpoints_.at(i));
}

Status TestCluster::restart_agent(std::size_t i) {
  if (agents_.at(i)) return make_error(ErrorCode::kBadArguments, "agent still running");
  agent::AgentConfig ac = agent_config_for(i);
  ac.listen = agent_endpoints_.at(i);
  // The port was just released; give the kernel a beat if the first rebind
  // races the old listener's teardown.
  const Deadline deadline(2.0);
  for (;;) {
    auto agent = agent::Agent::start(ac);
    if (agent.ok()) {
      agents_.at(i) = std::move(agent).value();
      return ok_status();
    }
    if (deadline.expired()) return agent.error();
    sleep_seconds(0.02);
  }
}

Status TestCluster::restart_server(std::size_t i) {
  auto& slot = servers_.at(i);
  if (!slot) return make_error(ErrorCode::kBadArguments, "no server in slot");
  const net::Endpoint listen = slot->endpoint();
  slot->stop();
  slot.reset();  // release the port before rebinding
  net::ConnectionPool::instance().evict(listen);

  const auto& spec = config_.servers.at(i);
  server::ServerConfig sc;
  sc.name = spec.name;
  sc.listen = listen;
  sc.agents = agent_endpoints_;
  sc.reregister_period_s = spec.reregister_period_s;
  sc.workers = spec.workers;
  sc.max_queue = spec.max_queue;
  sc.admission = spec.admission;
  sc.speed_factor = spec.speed;
  sc.slowdown_mode = spec.slowdown_mode;
  sc.rating_override = rating_base_;
  sc.report_period_s = spec.report_period_s;
  sc.report_threshold = spec.report_threshold;
  sc.background_load = spec.background_load;
  sc.link = spec.link;
  sc.io_timeout_s = config_.io_timeout_s;
  sc.failure = spec.failure;
  sc.problem_filter = spec.problems;
  sc.data_dir = spec.data_dir;
  sc.checkpoint_interval = spec.checkpoint_interval;
  sc.journal_fsync = spec.journal_fsync;
  sc.migrate_on_drain = spec.migrate_on_drain;
  sc.guard = spec.guard;
  sc.checkpoint_compress = spec.checkpoint_compress;
  sc.mem = spec.mem;
  for (std::size_t j : spec.replicas) {
    if (j != i && j < servers_.size() && servers_[j]) {
      sc.replicas.push_back(servers_[j]->endpoint());
    }
  }
  // A distinct seed stream: the restarted incarnation is a new process.
  sc.seed = 0xbada55 + 0x1000 + static_cast<std::uint64_t>(i);
  auto server = server::ComputeServer::start(std::move(sc));
  if (!server.ok()) return server.error();
  slot = std::move(server).value();
  return ok_status();
}

Result<metrics::Snapshot> TestCluster::scrape_agent_metrics(const std::string& prefix) const {
  // Scrape the first live agent (the registry is process-wide anyway; what
  // matters is that some agent refreshes the directory gauges and answers).
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    if (agents_[i]) return client::scrape_metrics(agent_endpoints_[i], /*timeout_s=*/5.0, prefix);
  }
  return make_error(ErrorCode::kAgentUnavailable, "all agents killed");
}

Result<metrics::Snapshot> TestCluster::scrape_server_metrics(std::size_t i,
                                                             const std::string& prefix) const {
  return client::scrape_metrics(servers_.at(i)->endpoint(), /*timeout_s=*/5.0, prefix);
}

client::NetSolveClient TestCluster::make_client() const {
  return make_client(config_.client_link);
}

client::NetSolveClient TestCluster::make_client(const net::LinkShape& link) const {
  client::ClientConfig cc;
  cc.agents = agent_endpoints_;
  cc.link = link;
  cc.io_timeout_s = config_.io_timeout_s;
  cc.deadline_s = config_.client_deadline_s;
  cc.hedge_delay_s = config_.client_hedge_delay_s;
  cc.hedge_quantile = config_.client_hedge_quantile;
  cc.hedge_min_samples = config_.client_hedge_min_samples;
  cc.reattach_s = config_.client_reattach_s;
  cc.require_durable = config_.client_require_durable;
  cc.checkpoint_failover = config_.client_checkpoint_failover;
  return client::NetSolveClient(cc);
}

std::vector<ClusterServerSpec> uniform_pool(std::size_t count, int workers) {
  std::vector<ClusterServerSpec> specs;
  for (std::size_t i = 0; i < count; ++i) {
    ClusterServerSpec spec;
    spec.name = "server" + std::to_string(i);
    spec.workers = workers;
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<ClusterServerSpec> power_of_two_pool(std::size_t count, int workers) {
  std::vector<ClusterServerSpec> specs;
  double speed = 1.0;
  for (std::size_t i = 0; i < count; ++i) {
    ClusterServerSpec spec;
    spec.name = "server" + std::to_string(i) + "_s" + std::to_string(i);
    spec.speed = speed;
    spec.workers = workers;
    specs.push_back(std::move(spec));
    speed /= 2.0;
  }
  return specs;
}

}  // namespace ns::testkit
