// Hostile-peer kit: scripted attackers for the transport-armor chaos suite.
//
// Each attack models a real abuse pattern a public solve service sees:
//
//   slowloris         valid frame headers, then payload bytes dripped one at
//                     a time forever — defeats idle sweeps (there is always
//                     "activity") unless the reactor enforces a per-frame
//                     progress deadline.
//   giant_frame       headers claiming near-max payloads, then silence. The
//                     armor must reject at header-decode time; a naive
//                     reader reserves the claimed bytes and dies by memory.
//   garbage           random bytes, truncated headers, and valid-header/
//                     corrupt-payload interleavings — a fuzzer peer. The
//                     reactor must close the connection and never crash,
//                     leak, or misframe a later legitimate connection.
//   connection_flood  open as many connections as possible and hold them
//                     idle — exhausts the connection cap (and, unchecked,
//                     the fd table). The armor answers with LRU-idle
//                     eviction and BUSY sheds.
//   half_open         dial, send part of a header, abandon the socket —
//                     classic SYN-flood cousin at the framing layer.
//
// Attacks run `concurrency` threads against one endpoint for `duration_s`
// and return aggregate stats. They dial raw (no fault injector, no pool) so
// chaos plans armed for the legitimate traffic never fire on the attacker.
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/endpoint.hpp"

namespace ns::testkit {

struct AttackConfig {
  net::Endpoint target;
  double duration_s = 2.0;
  int concurrency = 8;
  std::uint64_t seed = 0x5eed;
  /// giant_frame: payload length each hostile header claims.
  std::uint32_t giant_frame_len = 512u << 20;  // 512 MiB
  /// slowloris: seconds between dripped bytes.
  double drip_interval_s = 0.05;
  /// connection_flood / half_open: connections held open per thread.
  int conns_per_thread = 16;
};

struct AttackStats {
  std::size_t connections = 0;   // dials that completed
  std::size_t dial_failures = 0; // refused / shed / fd-starved dials
  std::size_t bytes_sent = 0;
  std::size_t resets = 0;        // sends that died (peer killed us) — the
                                 // armor working as intended
};

AttackStats run_slowloris(const AttackConfig& config);
AttackStats run_giant_frame(const AttackConfig& config);
AttackStats run_garbage(const AttackConfig& config);
AttackStats run_connection_flood(const AttackConfig& config);
AttackStats run_half_open(const AttackConfig& config);

}  // namespace ns::testkit
