#include "dsl/specfile.hpp"

#include <sstream>

#include "common/strings.hpp"

namespace ns::dsl {

Result<std::vector<ProblemSpec>> parse_spec_file(std::string_view text) {
  std::vector<ProblemSpec> specs;
  ProblemSpec current;
  bool in_block = false;
  std::size_t line_no = 0;

  auto flush = [&specs, &current, &in_block]() -> Status {
    if (!in_block) return ok_status();
    if (current.name.empty()) {
      return make_error(ErrorCode::kBadArguments, "problem block without a name");
    }
    specs.push_back(std::move(current));
    current = ProblemSpec{};
    in_block = false;
    return ok_status();
  };

  for (const auto& raw_line : strings::split(text, '\n')) {
    ++line_no;
    std::string_view line = raw_line;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = strings::trim(line);
    if (line.empty()) continue;

    const auto fields = strings::split_ws(line);
    const std::string& directive = fields[0];
    auto fail = [&line_no](const std::string& what) -> Error {
      return make_error(ErrorCode::kBadArguments,
                        "spec file line " + std::to_string(line_no) + ": " + what);
    };

    if (directive == "@PROBLEM") {
      NS_RETURN_IF_ERROR(flush());
      if (fields.size() != 2) return fail("@PROBLEM expects one name");
      in_block = true;
      current.name = fields[1];
    } else if (!in_block) {
      return fail("directive before any @PROBLEM");
    } else if (directive == "@DESCRIPTION") {
      const std::size_t at = line.find("@DESCRIPTION");
      current.description = std::string(strings::trim(line.substr(at + 12)));
    } else if (directive == "@INPUT" || directive == "@OUTPUT") {
      if (fields.size() != 3) return fail(directive + " expects: name type");
      auto type = parse_data_type(fields[2]);
      if (!type.ok()) return fail(type.error().message);
      ArgSpec arg{fields[1], type.value()};
      (directive == "@INPUT" ? current.inputs : current.outputs).push_back(std::move(arg));
    } else if (directive == "@COMPLEXITY") {
      if (fields.size() != 3) return fail("@COMPLEXITY expects: a b");
      const auto a = strings::parse_double(fields[1]);
      const auto b = strings::parse_double(fields[2]);
      if (!a || !b) return fail("@COMPLEXITY values must be numeric");
      current.complexity = ComplexityModel{*a, *b};
    } else if (directive == "@SIZEARG") {
      if (fields.size() != 2) return fail("@SIZEARG expects an input index");
      const auto idx = strings::parse_int(fields[1]);
      if (!idx || *idx < 0) return fail("@SIZEARG must be a non-negative integer");
      current.size_arg = static_cast<std::uint32_t>(*idx);
    } else {
      return fail("unknown directive '" + directive + "'");
    }
  }
  NS_RETURN_IF_ERROR(flush());
  return specs;
}

std::string format_spec_file(const std::vector<ProblemSpec>& specs) {
  std::ostringstream out;
  for (const auto& spec : specs) {
    out << "@PROBLEM " << spec.name << "\n";
    if (!spec.description.empty()) out << "@DESCRIPTION " << spec.description << "\n";
    for (const auto& in : spec.inputs) {
      out << "@INPUT " << in.name << " " << data_type_name(in.type) << "\n";
    }
    for (const auto& o : spec.outputs) {
      out << "@OUTPUT " << o.name << " " << data_type_name(o.type) << "\n";
    }
    out << "@COMPLEXITY " << spec.complexity.a << " " << spec.complexity.b << "\n";
    if (spec.size_arg != 0) out << "@SIZEARG " << spec.size_arg << "\n";
    out << "\n";
  }
  return out.str();
}

}  // namespace ns::dsl
