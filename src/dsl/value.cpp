#include "dsl/value.hpp"

#include <algorithm>
#include <cmath>

namespace ns::dsl {

std::string_view data_type_name(DataType type) noexcept {
  switch (type) {
    case DataType::kInt: return "int";
    case DataType::kDouble: return "double";
    case DataType::kString: return "string";
    case DataType::kVector: return "vectord";
    case DataType::kMatrix: return "matrixd";
    case DataType::kSparse: return "sparsed";
  }
  return "unknown";
}

Result<DataType> parse_data_type(std::string_view name) {
  if (name == "int") return DataType::kInt;
  if (name == "double") return DataType::kDouble;
  if (name == "string") return DataType::kString;
  if (name == "vectord") return DataType::kVector;
  if (name == "matrixd") return DataType::kMatrix;
  if (name == "sparsed") return DataType::kSparse;
  return make_error(ErrorCode::kBadArguments, "unknown data type: " + std::string(name));
}

DataType DataObject::type() const noexcept {
  switch (value_.index()) {
    case 0: return DataType::kInt;
    case 1: return DataType::kDouble;
    case 2: return DataType::kString;
    case 3: return DataType::kVector;
    case 4: return DataType::kMatrix;
    default: return DataType::kSparse;
  }
}

std::size_t DataObject::size_hint() const noexcept {
  switch (type()) {
    case DataType::kInt:
      return static_cast<std::size_t>(std::max<std::int64_t>(std::abs(as_int()), 1));
    case DataType::kDouble:
    case DataType::kString:
      return 1;
    case DataType::kVector:
      return as_vector().size();
    case DataType::kMatrix:
      return std::max(as_matrix().rows(), as_matrix().cols());
    case DataType::kSparse:
      return as_sparse().rows();
  }
  return 1;
}

std::size_t DataObject::byte_size() const noexcept {
  constexpr std::size_t kTag = 1;
  switch (type()) {
    case DataType::kInt:
    case DataType::kDouble:
      return kTag + 8;
    case DataType::kString:
      return kTag + 4 + as_string().size();
    case DataType::kVector:
      return kTag + 4 + 8 * as_vector().size();
    case DataType::kMatrix:
      return kTag + 8 + 4 + 8 * as_matrix().size();
    case DataType::kSparse: {
      const auto& s = as_sparse();
      return kTag + 8 + (4 + 4 * s.indptr().size()) + (4 + 4 * s.indices().size()) +
             (4 + 8 * s.values().size());
    }
  }
  return kTag;
}

void DataObject::encode(serial::Encoder& enc) const {
  enc.put_u8(static_cast<std::uint8_t>(type()));
  switch (type()) {
    case DataType::kInt:
      enc.put_i64(as_int());
      break;
    case DataType::kDouble:
      enc.put_f64(as_double());
      break;
    case DataType::kString:
      enc.put_string(as_string());
      break;
    case DataType::kVector:
      enc.put_f64_array(as_vector());
      break;
    case DataType::kMatrix: {
      const auto& m = as_matrix();
      enc.put_u32(static_cast<std::uint32_t>(m.rows()));
      enc.put_u32(static_cast<std::uint32_t>(m.cols()));
      enc.put_f64_array(m.data(), m.size());
      break;
    }
    case DataType::kSparse: {
      const auto& s = as_sparse();
      enc.put_u32(static_cast<std::uint32_t>(s.rows()));
      enc.put_u32(static_cast<std::uint32_t>(s.cols()));
      enc.put_i32_array(s.indptr());
      enc.put_i32_array(s.indices());
      enc.put_f64_array(s.values());
      break;
    }
  }
}

Result<DataObject> DataObject::decode(serial::Decoder& dec) {
  auto tag = dec.get_u8();
  if (!tag.ok()) return tag.error();
  switch (static_cast<DataType>(tag.value())) {
    case DataType::kInt: {
      auto v = dec.get_i64();
      if (!v.ok()) return v.error();
      return DataObject(v.value());
    }
    case DataType::kDouble: {
      auto v = dec.get_f64();
      if (!v.ok()) return v.error();
      return DataObject(v.value());
    }
    case DataType::kString: {
      auto v = dec.get_string();
      if (!v.ok()) return v.error();
      return DataObject(std::move(v).value());
    }
    case DataType::kVector: {
      auto v = dec.get_f64_array();
      if (!v.ok()) return v.error();
      return DataObject(std::move(v).value());
    }
    case DataType::kMatrix: {
      auto rows = dec.get_u32();
      if (!rows.ok()) return rows.error();
      auto cols = dec.get_u32();
      if (!cols.ok()) return cols.error();
      auto data = dec.get_f64_array();
      if (!data.ok()) return data.error();
      const std::size_t expected =
          static_cast<std::size_t>(rows.value()) * static_cast<std::size_t>(cols.value());
      if (data.value().size() != expected) {
        return make_error(ErrorCode::kProtocol, "matrix payload size mismatch");
      }
      return DataObject(linalg::Matrix(rows.value(), cols.value(), std::move(data).value()));
    }
    case DataType::kSparse: {
      auto rows = dec.get_u32();
      if (!rows.ok()) return rows.error();
      auto cols = dec.get_u32();
      if (!cols.ok()) return cols.error();
      auto indptr = dec.get_i32_array();
      if (!indptr.ok()) return indptr.error();
      auto indices = dec.get_i32_array();
      if (!indices.ok()) return indices.error();
      auto values = dec.get_f64_array();
      if (!values.ok()) return values.error();
      auto csr = linalg::CsrMatrix::from_csr(rows.value(), cols.value(),
                                             std::move(indptr).value(),
                                             std::move(indices).value(),
                                             std::move(values).value());
      if (!csr.ok()) {
        return make_error(ErrorCode::kProtocol,
                          "invalid CSR payload: " + csr.error().message);
      }
      return DataObject(std::move(csr).value());
    }
  }
  return make_error(ErrorCode::kProtocol, "unknown data object tag");
}

bool operator==(const DataObject& a, const DataObject& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case DataType::kInt: return a.as_int() == b.as_int();
    case DataType::kDouble: return a.as_double() == b.as_double();
    case DataType::kString: return a.as_string() == b.as_string();
    case DataType::kVector: return a.as_vector() == b.as_vector();
    case DataType::kMatrix:
      return a.as_matrix().rows() == b.as_matrix().rows() &&
             a.as_matrix().cols() == b.as_matrix().cols() &&
             a.as_matrix().storage() == b.as_matrix().storage();
    case DataType::kSparse:
      return a.as_sparse().rows() == b.as_sparse().rows() &&
             a.as_sparse().cols() == b.as_sparse().cols() &&
             a.as_sparse().indptr() == b.as_sparse().indptr() &&
             a.as_sparse().indices() == b.as_sparse().indices() &&
             a.as_sparse().values() == b.as_sparse().values();
  }
  return false;
}

void encode_args(serial::Encoder& enc, const std::vector<DataObject>& args) {
  enc.put_u32(static_cast<std::uint32_t>(args.size()));
  for (const auto& arg : args) arg.encode(enc);
}

Result<std::vector<DataObject>> decode_args(serial::Decoder& dec) {
  auto count = dec.get_u32();
  if (!count.ok()) return count.error();
  if (count.value() > 4096) {
    return make_error(ErrorCode::kProtocol, "too many arguments");
  }
  std::vector<DataObject> args;
  args.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto arg = DataObject::decode(dec);
    if (!arg.ok()) return arg.error();
    args.push_back(std::move(arg).value());
  }
  return args;
}

std::size_t args_byte_size(const std::vector<DataObject>& args) noexcept {
  std::size_t total = 4;
  for (const auto& arg : args) total += arg.byte_size();
  return total;
}

}  // namespace ns::dsl
