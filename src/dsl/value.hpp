// Typed argument objects — the values a NetSolve request carries.
//
// Matches the original system's object model: scalars, strings, dense
// vectors/matrices and sparse matrices, each self-describing on the wire so
// a server can type-check a request against the problem description before
// executing it.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/error.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "serial/codec.hpp"

namespace ns::dsl {

enum class DataType : std::uint8_t {
  kInt = 1,
  kDouble = 2,
  kString = 3,
  kVector = 4,
  kMatrix = 5,
  kSparse = 6,
};

std::string_view data_type_name(DataType type) noexcept;
Result<DataType> parse_data_type(std::string_view name);

class DataObject {
 public:
  DataObject() : value_(std::int64_t{0}) {}
  DataObject(std::int64_t v) : value_(v) {}                     // NOLINT
  DataObject(double v) : value_(v) {}                           // NOLINT
  DataObject(std::string v) : value_(std::move(v)) {}           // NOLINT
  DataObject(linalg::Vector v) : value_(std::move(v)) {}        // NOLINT
  DataObject(linalg::Matrix v) : value_(std::move(v)) {}        // NOLINT
  DataObject(linalg::CsrMatrix v) : value_(std::move(v)) {}     // NOLINT
  /// Disambiguation helpers for literals.
  static DataObject from_int(std::int64_t v) { return DataObject(v); }

  DataType type() const noexcept;

  bool is_int() const noexcept { return std::holds_alternative<std::int64_t>(value_); }
  bool is_double() const noexcept { return std::holds_alternative<double>(value_); }
  bool is_string() const noexcept { return std::holds_alternative<std::string>(value_); }
  bool is_vector() const noexcept { return std::holds_alternative<linalg::Vector>(value_); }
  bool is_matrix() const noexcept { return std::holds_alternative<linalg::Matrix>(value_); }
  bool is_sparse() const noexcept { return std::holds_alternative<linalg::CsrMatrix>(value_); }

  std::int64_t as_int() const { return std::get<std::int64_t>(value_); }
  double as_double() const { return std::get<double>(value_); }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const linalg::Vector& as_vector() const { return std::get<linalg::Vector>(value_); }
  const linalg::Matrix& as_matrix() const { return std::get<linalg::Matrix>(value_); }
  const linalg::CsrMatrix& as_sparse() const { return std::get<linalg::CsrMatrix>(value_); }

  /// Dominant dimension for the complexity model: matrix max(rows, cols),
  /// vector length, sparse order, |int| value for scalar ints, 1 otherwise.
  std::size_t size_hint() const noexcept;

  /// Serialized payload size in bytes (the scheduler's transfer-cost input).
  std::size_t byte_size() const noexcept;

  void encode(serial::Encoder& enc) const;
  static Result<DataObject> decode(serial::Decoder& dec);

  /// Structural equality (exact; used by tests).
  friend bool operator==(const DataObject& a, const DataObject& b);

 private:
  std::variant<std::int64_t, double, std::string, linalg::Vector, linalg::Matrix,
               linalg::CsrMatrix>
      value_;
};

/// Encode/decode a whole argument list.
void encode_args(serial::Encoder& enc, const std::vector<DataObject>& args);
Result<std::vector<DataObject>> decode_args(serial::Decoder& dec);

/// Total serialized size of an argument list.
std::size_t args_byte_size(const std::vector<DataObject>& args) noexcept;

}  // namespace ns::dsl
