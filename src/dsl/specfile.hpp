// Problem-description files.
//
// The original NetSolve defined its server catalogue in declarative config
// files that an administrator could extend without recompiling. This parser
// accepts the same style of description:
//
//   @PROBLEM dgesv
//   @DESCRIPTION Solve a dense linear system A x = b
//   @INPUT A matrixd
//   @INPUT b vectord
//   @OUTPUT x vectord
//   @COMPLEXITY 0.667 3      # flops = 0.667 * N^3
//   @SIZEARG 0               # N from input 0 (optional, default 0)
//
// Multiple @PROBLEM blocks may appear in one file. Implementations are bound
// later by name against the executor table (see server/builtin_problems).
#pragma once

#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "dsl/problem.hpp"

namespace ns::dsl {

/// Parse problem descriptions from text. Unknown directives are errors (the
/// catalogue is trusted config; typos should fail loudly).
Result<std::vector<ProblemSpec>> parse_spec_file(std::string_view text);

/// Render specs back to the file format (round-trips with parse_spec_file).
std::string format_spec_file(const std::vector<ProblemSpec>& specs);

}  // namespace ns::dsl
