#include "dsl/registry.hpp"

#include <algorithm>

namespace ns::dsl {

void ProblemRegistry::add(ProblemSpec spec, Executor executor) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string name = spec.name;
  entries_.insert_or_assign(name, Entry{std::move(spec), std::move(executor)});
}

bool ProblemRegistry::remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.erase(name) > 0;
}

void ProblemRegistry::retain_only(const std::vector<std::string>& keep) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    const bool kept = std::find(keep.begin(), keep.end(), it->first) != keep.end();
    it = kept ? std::next(it) : entries_.erase(it);
  }
}

namespace {

bool signatures_match(const std::vector<ArgSpec>& a, const std::vector<ArgSpec>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].type != b[i].type) return false;
  }
  return true;
}

}  // namespace

Status ProblemRegistry::override_spec(const ProblemSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(spec.name);
  if (it == entries_.end()) {
    return make_error(ErrorCode::kUnknownProblem,
                      "cannot override unregistered problem '" + spec.name + "'");
  }
  if (!signatures_match(it->second.spec.inputs, spec.inputs) ||
      !signatures_match(it->second.spec.outputs, spec.outputs)) {
    return make_error(ErrorCode::kBadArguments,
                      "override for '" + spec.name + "' changes the signature");
  }
  it->second.spec = spec;
  return ok_status();
}

bool ProblemRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(name) > 0;
}

std::optional<ProblemSpec> ProblemRegistry::spec(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return std::nullopt;
  return it->second.spec;
}

std::vector<ProblemSpec> ProblemRegistry::all_specs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ProblemSpec> specs;
  specs.reserve(entries_.size());
  for (const auto& [_, entry] : entries_) specs.push_back(entry.spec);
  return specs;
}

std::vector<std::string> ProblemRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, _] : entries_) out.push_back(name);
  return out;
}

std::size_t ProblemRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

Result<std::vector<DataObject>> ProblemRegistry::execute(
    const std::string& name, const std::vector<DataObject>& args) const {
  Entry entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      return make_error(ErrorCode::kUnknownProblem, name);
    }
    entry = it->second;
  }
  NS_RETURN_IF_ERROR(entry.spec.validate_inputs(args));
  auto outputs = entry.executor(args);
  if (!outputs.ok()) return outputs.error();
  NS_RETURN_IF_ERROR(entry.spec.validate_outputs(outputs.value()));
  return outputs;
}

}  // namespace ns::dsl
