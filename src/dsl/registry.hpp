// Problem registry: the server-side catalogue binding problem descriptions
// to executable implementations.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "dsl/problem.hpp"

namespace ns::dsl {

/// Executes a validated input list and returns the output list.
using Executor = std::function<Result<std::vector<DataObject>>(const std::vector<DataObject>&)>;

class ProblemRegistry {
 public:
  ProblemRegistry() = default;

  /// Register a spec + implementation; re-registering a name replaces it.
  void add(ProblemSpec spec, Executor executor);

  /// Remove a problem; returns false if it was not present.
  bool remove(const std::string& name);

  /// Drop every problem whose name is not in `keep` (used by servers
  /// configured to offer only a subset of the builtin catalogue).
  void retain_only(const std::vector<std::string>& keep);

  /// Replace a registered problem's description, keeping its executor. The
  /// new spec must be signature-compatible (same input/output types in the
  /// same order); names, description text, complexity model and size_arg
  /// may change. Fails for unknown problems or signature mismatches.
  Status override_spec(const ProblemSpec& spec);

  bool contains(const std::string& name) const;
  std::optional<ProblemSpec> spec(const std::string& name) const;
  std::vector<ProblemSpec> all_specs() const;
  std::vector<std::string> names() const;
  std::size_t size() const;

  /// Validate inputs against the spec, run the executor, validate outputs.
  Result<std::vector<DataObject>> execute(const std::string& name,
                                          const std::vector<DataObject>& args) const;

 private:
  struct Entry {
    ProblemSpec spec;
    Executor executor;
  };
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace ns::dsl
