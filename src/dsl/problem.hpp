// Problem descriptions — NetSolve's declarative catalogue entries.
//
// A ProblemSpec names a service, types its inputs and outputs, and carries a
// complexity model `flops ≈ a * N^b` where N is the size hint of a
// designated argument. The agent never executes problems; it schedules them
// purely from this metadata plus server ratings, which is exactly the
// contract the original system's problem-description files established.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "dsl/value.hpp"
#include "serial/codec.hpp"

namespace ns::dsl {

struct ArgSpec {
  std::string name;
  DataType type = DataType::kDouble;

  friend bool operator==(const ArgSpec&, const ArgSpec&) = default;
};

/// flops(N) = a * N^b.
struct ComplexityModel {
  double a = 1.0;
  double b = 1.0;

  double flops(std::size_t n) const noexcept;

  friend bool operator==(const ComplexityModel&, const ComplexityModel&) = default;
};

struct ProblemSpec {
  std::string name;
  std::string description;
  std::vector<ArgSpec> inputs;
  std::vector<ArgSpec> outputs;
  ComplexityModel complexity;
  /// Which input argument's size_hint() defines N in the complexity model.
  std::uint32_t size_arg = 0;

  /// Predicted flops for a concrete argument list.
  double predicted_flops(const std::vector<DataObject>& args) const noexcept;

  /// Type-check a concrete input argument list against the spec.
  Status validate_inputs(const std::vector<DataObject>& args) const;

  /// Type-check produced outputs (server-side self check).
  Status validate_outputs(const std::vector<DataObject>& outs) const;

  void encode(serial::Encoder& enc) const;
  static Result<ProblemSpec> decode(serial::Decoder& dec);

  friend bool operator==(const ProblemSpec&, const ProblemSpec&) = default;
};

}  // namespace ns::dsl
