#include "dsl/problem.hpp"

#include <cmath>
#include <sstream>

namespace ns::dsl {

double ComplexityModel::flops(std::size_t n) const noexcept {
  return a * std::pow(static_cast<double>(n), b);
}

double ProblemSpec::predicted_flops(const std::vector<DataObject>& args) const noexcept {
  std::size_t n = 1;
  if (size_arg < args.size()) {
    n = args[size_arg].size_hint();
  } else if (!args.empty()) {
    n = args.front().size_hint();
  }
  return complexity.flops(n);
}

Status ProblemSpec::validate_inputs(const std::vector<DataObject>& args) const {
  if (args.size() != inputs.size()) {
    std::ostringstream msg;
    msg << name << " expects " << inputs.size() << " inputs, got " << args.size();
    return make_error(ErrorCode::kBadArguments, msg.str());
  }
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i].type() != inputs[i].type) {
      std::ostringstream msg;
      msg << name << " input '" << inputs[i].name << "' expects "
          << data_type_name(inputs[i].type) << ", got " << data_type_name(args[i].type());
      return make_error(ErrorCode::kBadArguments, msg.str());
    }
  }
  return ok_status();
}

Status ProblemSpec::validate_outputs(const std::vector<DataObject>& outs) const {
  if (outs.size() != outputs.size()) {
    std::ostringstream msg;
    msg << name << " produces " << outputs.size() << " outputs, got " << outs.size();
    return make_error(ErrorCode::kExecutionFailed, msg.str());
  }
  for (std::size_t i = 0; i < outs.size(); ++i) {
    if (outs[i].type() != outputs[i].type) {
      std::ostringstream msg;
      msg << name << " output '" << outputs[i].name << "' expects "
          << data_type_name(outputs[i].type) << ", got " << data_type_name(outs[i].type());
      return make_error(ErrorCode::kExecutionFailed, msg.str());
    }
  }
  return ok_status();
}

namespace {

void encode_arg_specs(serial::Encoder& enc, const std::vector<ArgSpec>& specs) {
  enc.put_u32(static_cast<std::uint32_t>(specs.size()));
  for (const auto& s : specs) {
    enc.put_string(s.name);
    enc.put_u8(static_cast<std::uint8_t>(s.type));
  }
}

Result<std::vector<ArgSpec>> decode_arg_specs(serial::Decoder& dec) {
  auto count = dec.get_u32();
  if (!count.ok()) return count.error();
  if (count.value() > 4096) {
    return make_error(ErrorCode::kProtocol, "too many arg specs");
  }
  std::vector<ArgSpec> specs;
  specs.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    ArgSpec s;
    auto name = dec.get_string();
    if (!name.ok()) return name.error();
    s.name = std::move(name).value();
    auto type = dec.get_u8();
    if (!type.ok()) return type.error();
    if (type.value() < 1 || type.value() > 6) {
      return make_error(ErrorCode::kProtocol, "bad data type tag in arg spec");
    }
    s.type = static_cast<DataType>(type.value());
    specs.push_back(std::move(s));
  }
  return specs;
}

}  // namespace

void ProblemSpec::encode(serial::Encoder& enc) const {
  enc.put_string(name);
  enc.put_string(description);
  encode_arg_specs(enc, inputs);
  encode_arg_specs(enc, outputs);
  enc.put_f64(complexity.a);
  enc.put_f64(complexity.b);
  enc.put_u32(size_arg);
}

Result<ProblemSpec> ProblemSpec::decode(serial::Decoder& dec) {
  ProblemSpec spec;
  auto name = dec.get_string();
  if (!name.ok()) return name.error();
  spec.name = std::move(name).value();
  auto desc = dec.get_string();
  if (!desc.ok()) return desc.error();
  spec.description = std::move(desc).value();
  auto inputs = decode_arg_specs(dec);
  if (!inputs.ok()) return inputs.error();
  spec.inputs = std::move(inputs).value();
  auto outputs = decode_arg_specs(dec);
  if (!outputs.ok()) return outputs.error();
  spec.outputs = std::move(outputs).value();
  auto a = dec.get_f64();
  if (!a.ok()) return a.error();
  spec.complexity.a = a.value();
  auto b = dec.get_f64();
  if (!b.ok()) return b.error();
  spec.complexity.b = b.value();
  auto size_arg = dec.get_u32();
  if (!size_arg.ok()) return size_arg.error();
  spec.size_arg = size_arg.value();
  return spec;
}

}  // namespace ns::dsl
