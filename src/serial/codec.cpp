#include "serial/codec.hpp"

namespace ns::serial {

void Encoder::put_string(std::string_view s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  const std::size_t offset = buf_.size();
  buf_.resize(offset + s.size());
  std::memcpy(buf_.data() + offset, s.data(), s.size());
}

void Encoder::put_bytes(const void* data, std::size_t size) {
  put_u32(static_cast<std::uint32_t>(size));
  const std::size_t offset = buf_.size();
  buf_.resize(offset + size);
  if (size > 0) std::memcpy(buf_.data() + offset, data, size);
}

void Encoder::put_f64_array(const double* data, std::size_t count) {
  put_u32(static_cast<std::uint32_t>(count));
  const std::size_t offset = buf_.size();
  buf_.resize(offset + count * sizeof(double));
  if constexpr (std::endian::native == std::endian::little) {
    if (count > 0) std::memcpy(buf_.data() + offset, data, count * sizeof(double));
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      const auto bits = std::bit_cast<std::uint64_t>(data[i]);
      for (std::size_t b = 0; b < 8; ++b) {
        buf_[offset + i * 8 + b] = static_cast<std::uint8_t>(bits >> (8 * b));
      }
    }
  }
}

void Encoder::put_i32_array(const std::int32_t* data, std::size_t count) {
  put_u32(static_cast<std::uint32_t>(count));
  const std::size_t offset = buf_.size();
  buf_.resize(offset + count * sizeof(std::int32_t));
  if constexpr (std::endian::native == std::endian::little) {
    if (count > 0) std::memcpy(buf_.data() + offset, data, count * sizeof(std::int32_t));
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      const auto bits = static_cast<std::uint32_t>(data[i]);
      for (std::size_t b = 0; b < 4; ++b) {
        buf_[offset + i * 4 + b] = static_cast<std::uint8_t>(bits >> (8 * b));
      }
    }
  }
}

Result<std::uint8_t> Decoder::get_u8() {
  if (remaining() < 1) return make_error(ErrorCode::kProtocol, "truncated input");
  return data_[pos_++];
}

Result<std::uint16_t> Decoder::get_u16() { return get_le<std::uint16_t>(); }
Result<std::uint32_t> Decoder::get_u32() { return get_le<std::uint32_t>(); }
Result<std::uint64_t> Decoder::get_u64() { return get_le<std::uint64_t>(); }

Result<std::int32_t> Decoder::get_i32() {
  auto v = get_le<std::uint32_t>();
  if (!v.ok()) return v.error();
  return static_cast<std::int32_t>(v.value());
}

Result<std::int64_t> Decoder::get_i64() {
  auto v = get_le<std::uint64_t>();
  if (!v.ok()) return v.error();
  return static_cast<std::int64_t>(v.value());
}

Result<double> Decoder::get_f64() {
  auto v = get_le<std::uint64_t>();
  if (!v.ok()) return v.error();
  return std::bit_cast<double>(v.value());
}

Result<bool> Decoder::get_bool() {
  auto v = get_u8();
  if (!v.ok()) return v.error();
  if (v.value() > 1) return make_error(ErrorCode::kProtocol, "bad bool encoding");
  return v.value() == 1;
}

Result<std::string> Decoder::get_string(std::size_t max_len) {
  auto len = get_u32();
  if (!len.ok()) return len.error();
  if (len.value() > max_len) return make_error(ErrorCode::kProtocol, "string too long");
  if (remaining() < len.value()) return make_error(ErrorCode::kProtocol, "truncated string");
  std::string out(reinterpret_cast<const char*>(data_ + pos_), len.value());
  pos_ += len.value();
  return out;
}

Result<Bytes> Decoder::get_blob(std::size_t max_len) {
  auto len = get_u32();
  if (!len.ok()) return len.error();
  if (len.value() > max_len) return make_error(ErrorCode::kProtocol, "blob too long");
  if (remaining() < len.value()) return make_error(ErrorCode::kProtocol, "truncated blob");
  Bytes out(data_ + pos_, data_ + pos_ + len.value());
  pos_ += len.value();
  return out;
}

Result<std::vector<double>> Decoder::get_f64_array(std::size_t max_count) {
  auto count = get_u32();
  if (!count.ok()) return count.error();
  if (count.value() > max_count) return make_error(ErrorCode::kProtocol, "array too long");
  const std::size_t bytes = static_cast<std::size_t>(count.value()) * sizeof(double);
  if (remaining() < bytes) return make_error(ErrorCode::kProtocol, "truncated f64 array");
  std::vector<double> out(count.value());
  if constexpr (std::endian::native == std::endian::little) {
    if (count.value() > 0) std::memcpy(out.data(), data_ + pos_, bytes);
  } else {
    for (std::size_t i = 0; i < count.value(); ++i) {
      std::uint64_t bits = 0;
      for (std::size_t b = 0; b < 8; ++b) {
        bits |= static_cast<std::uint64_t>(data_[pos_ + i * 8 + b]) << (8 * b);
      }
      out[i] = std::bit_cast<double>(bits);
    }
  }
  pos_ += bytes;
  return out;
}

Result<std::vector<std::int32_t>> Decoder::get_i32_array(std::size_t max_count) {
  auto count = get_u32();
  if (!count.ok()) return count.error();
  if (count.value() > max_count) return make_error(ErrorCode::kProtocol, "array too long");
  const std::size_t bytes = static_cast<std::size_t>(count.value()) * sizeof(std::int32_t);
  if (remaining() < bytes) return make_error(ErrorCode::kProtocol, "truncated i32 array");
  std::vector<std::int32_t> out(count.value());
  if constexpr (std::endian::native == std::endian::little) {
    if (count.value() > 0) std::memcpy(out.data(), data_ + pos_, bytes);
  } else {
    for (std::size_t i = 0; i < count.value(); ++i) {
      std::uint32_t bits = 0;
      for (std::size_t b = 0; b < 4; ++b) {
        bits |= static_cast<std::uint32_t>(data_[pos_ + i * 4 + b]) << (8 * b);
      }
      out[i] = static_cast<std::int32_t>(bits);
    }
  }
  pos_ += bytes;
  return out;
}

Status Decoder::expect_exhausted() const {
  if (!exhausted()) {
    return make_error(ErrorCode::kProtocol,
                      "trailing bytes after message: " + std::to_string(remaining()));
  }
  return ok_status();
}

}  // namespace ns::serial
