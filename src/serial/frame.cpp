#include "serial/frame.hpp"

#include "serial/crc32.hpp"

namespace ns::serial {

namespace {

// CRC over everything the magic/version checks don't already pin down: the
// type and length fields (little-endian, as on the wire) plus the payload.
std::uint32_t frame_crc(std::uint16_t type, std::uint32_t length, const Bytes& payload) {
  const std::uint8_t meta[6] = {
      static_cast<std::uint8_t>(type),         static_cast<std::uint8_t>(type >> 8),
      static_cast<std::uint8_t>(length),       static_cast<std::uint8_t>(length >> 8),
      static_cast<std::uint8_t>(length >> 16), static_cast<std::uint8_t>(length >> 24)};
  std::uint32_t crc = crc32_update(kCrc32Init, meta, sizeof(meta));
  crc = crc32_update(crc, payload.data(), payload.size());
  return crc32_final(crc);
}

}  // namespace

void encode_header(const FrameHeader& header, std::uint8_t out[kHeaderSize]) {
  auto put32 = [&out](std::size_t at, std::uint32_t v) {
    for (std::size_t i = 0; i < 4; ++i) out[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
  };
  auto put16 = [&out](std::size_t at, std::uint16_t v) {
    for (std::size_t i = 0; i < 2; ++i) out[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
  };
  put32(0, kFrameMagic);
  put16(4, header.version);
  put16(6, header.type);
  put32(8, header.length);
  put32(12, header.crc);
}

Result<FrameHeader> decode_header(const std::uint8_t data[kHeaderSize],
                                  std::size_t max_payload) {
  auto get32 = [&data](std::size_t at) {
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data[at + i]) << (8 * i);
    return v;
  };
  auto get16 = [&data](std::size_t at) {
    return static_cast<std::uint16_t>(data[at] | (data[at + 1] << 8));
  };
  if (get32(0) != kFrameMagic) {
    return make_error(ErrorCode::kProtocol, "bad frame magic");
  }
  FrameHeader header;
  header.version = get16(4);
  header.type = get16(6);
  header.length = get32(8);
  header.crc = get32(12);
  if (header.version != kProtocolVersion) {
    return make_error(ErrorCode::kVersion,
                      "protocol version " + std::to_string(header.version) +
                          " != " + std::to_string(kProtocolVersion));
  }
  if (header.length > kMaxPayload || header.length > max_payload) {
    return make_error(ErrorCode::kProtocol, "frame payload too large");
  }
  return header;
}

Bytes build_frame(std::uint16_t type, const Bytes& payload) {
  FrameHeader header;
  header.type = type;
  header.length = static_cast<std::uint32_t>(payload.size());
  header.crc = frame_crc(type, header.length, payload);
  Bytes frame(kHeaderSize + payload.size());
  encode_header(header, frame.data());
  if (!payload.empty()) {
    std::memcpy(frame.data() + kHeaderSize, payload.data(), payload.size());
  }
  return frame;
}

void encode_frame_header(std::uint16_t type, const Bytes& payload,
                         std::uint8_t out[kHeaderSize]) {
  FrameHeader header;
  header.type = type;
  header.length = static_cast<std::uint32_t>(payload.size());
  header.crc = frame_crc(type, header.length, payload);
  encode_header(header, out);
}

Status check_payload(const FrameHeader& header, const Bytes& payload) {
  if (payload.size() != header.length) {
    return make_error(ErrorCode::kProtocol, "payload length mismatch");
  }
  if (frame_crc(header.type, header.length, payload) != header.crc) {
    // Retryable: the header framed correctly, so this is in-flight damage
    // (or an injected corruption fault), not a framing bug.
    return make_error(ErrorCode::kCorruptFrame, "frame CRC mismatch");
  }
  return ok_status();
}

}  // namespace ns::serial
