// Portable binary encoding, in the spirit of the XDR layer the original
// NetSolve used to move typed arguments between heterogeneous hosts.
//
// All multi-byte values are encoded explicitly little-endian regardless of
// host byte order; floating point travels as IEEE-754 bit patterns. Strings,
// blobs and numeric arrays carry a u32 length prefix. The Decoder performs
// bounds checking on every read and reports ErrorCode::kProtocol on any
// truncated or malformed input — a remote peer can never crash the process
// with a bad payload.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace ns::serial {

using Bytes = std::vector<std::uint8_t>;

class Encoder {
 public:
  Encoder() = default;

  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u16(std::uint16_t v) { put_le(v); }
  void put_u32(std::uint32_t v) { put_le(v); }
  void put_u64(std::uint64_t v) { put_le(v); }
  void put_i32(std::int32_t v) { put_le(static_cast<std::uint32_t>(v)); }
  void put_i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void put_f64(double v) { put_le(std::bit_cast<std::uint64_t>(v)); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  void put_string(std::string_view s);
  void put_bytes(const void* data, std::size_t size);

  /// Length-prefixed array of doubles (bulk memcpy on little-endian hosts).
  void put_f64_array(const double* data, std::size_t count);
  void put_f64_array(const std::vector<double>& v) { put_f64_array(v.data(), v.size()); }

  /// Length-prefixed array of 32-bit signed integers.
  void put_i32_array(const std::int32_t* data, std::size_t count);
  void put_i32_array(const std::vector<std::int32_t>& v) { put_i32_array(v.data(), v.size()); }

  const Bytes& bytes() const noexcept { return buf_; }
  Bytes take() noexcept { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }
  void reserve(std::size_t n) { buf_.reserve(n); }
  void clear() noexcept { buf_.clear(); }

 private:
  template <typename T>
  void put_le(T v) {
    static_assert(std::is_unsigned_v<T>);
    const std::size_t offset = buf_.size();
    buf_.resize(offset + sizeof(T));
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_[offset + i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  }

  Bytes buf_;
};

class Decoder {
 public:
  /// The decoder does not own the buffer; it must outlive the decoder.
  Decoder(const void* data, std::size_t size)
      : data_(static_cast<const std::uint8_t*>(data)), size_(size) {}
  explicit Decoder(const Bytes& bytes) : Decoder(bytes.data(), bytes.size()) {}

  Result<std::uint8_t> get_u8();
  Result<std::uint16_t> get_u16();
  Result<std::uint32_t> get_u32();
  Result<std::uint64_t> get_u64();
  Result<std::int32_t> get_i32();
  Result<std::int64_t> get_i64();
  Result<double> get_f64();
  Result<bool> get_bool();

  /// Length-prefixed string. `max_len` caps the accepted length so a
  /// malicious peer cannot force a huge allocation.
  Result<std::string> get_string(std::size_t max_len = kDefaultMaxLen);
  Result<Bytes> get_blob(std::size_t max_len = kDefaultMaxBlob);
  Result<std::vector<double>> get_f64_array(std::size_t max_count = kDefaultMaxArray);
  Result<std::vector<std::int32_t>> get_i32_array(std::size_t max_count = kDefaultMaxArray);

  std::size_t remaining() const noexcept { return size_ - pos_; }
  bool exhausted() const noexcept { return pos_ == size_; }

  /// Fails unless every byte has been consumed — catches trailing garbage.
  Status expect_exhausted() const;

  static constexpr std::size_t kDefaultMaxLen = 1u << 20;      // 1 MiB strings
  static constexpr std::size_t kDefaultMaxBlob = 1u << 30;     // 1 GiB blobs
  static constexpr std::size_t kDefaultMaxArray = 1u << 27;    // 128M elements

 private:
  template <typename T>
  Result<T> get_le() {
    static_assert(std::is_unsigned_v<T>);
    if (remaining() < sizeof(T)) {
      return make_error(ErrorCode::kProtocol, "truncated input");
    }
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace ns::serial
