// CRC-32 (IEEE 802.3 polynomial, reflected) for frame integrity checks.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ns::serial {

/// One-shot CRC over a buffer.
std::uint32_t crc32(const void* data, std::size_t size) noexcept;

/// Incremental form: feed `crc32_update` a running value seeded with
/// `kCrc32Init` and finalize with `crc32_final`.
inline constexpr std::uint32_t kCrc32Init = 0xffffffffu;
std::uint32_t crc32_update(std::uint32_t crc, const void* data, std::size_t size) noexcept;
inline std::uint32_t crc32_final(std::uint32_t crc) noexcept { return crc ^ 0xffffffffu; }

}  // namespace ns::serial
