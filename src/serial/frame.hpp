// Wire frame: the unit of transport between NetSolve processes.
//
// Layout (little-endian):
//   magic   u32   'NSV1' (0x3156534e)
//   version u16   protocol version
//   type    u16   message type tag (ns::proto::MessageType)
//   length  u32   payload byte count
//   crc     u32   CRC-32 over type + length + payload
//   payload u8[length]
//
// The header is fixed-size so a reader can pull exactly kHeaderSize bytes,
// validate, then pull the payload. CRC validation catches corruption and
// (more importantly in practice) framing bugs. The CRC covers the type and
// length fields as well as the payload: magic and version are checked
// explicitly on decode, so without this a flipped type byte would silently
// re-route an otherwise-valid frame to a different handler (found by the
// frame fuzz test).
#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "serial/codec.hpp"

namespace ns::serial {

inline constexpr std::uint32_t kFrameMagic = 0x3156534eu;  // "NSV1"
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 16;
inline constexpr std::size_t kMaxPayload = 1u << 30;  // 1 GiB

struct FrameHeader {
  std::uint16_t version = kProtocolVersion;
  std::uint16_t type = 0;
  std::uint32_t length = 0;
  std::uint32_t crc = 0;
};

/// Serialize a header into exactly kHeaderSize bytes.
void encode_header(const FrameHeader& header, std::uint8_t out[kHeaderSize]);

/// Parse and validate a header (magic + version + length bound). The payload
/// bound is per-role: an agent serving metadata-sized requests caps frames at
/// ~1 MiB while a compute server keeps the full kMaxPayload for matrix blobs
/// — rejecting an oversized claim here, before any payload buffering, is what
/// keeps a hostile 4-GiB-length header from costing an allocation.
Result<FrameHeader> decode_header(const std::uint8_t data[kHeaderSize],
                                  std::size_t max_payload = kMaxPayload);

/// Build a complete frame (header + payload) for a message type.
Bytes build_frame(std::uint16_t type, const Bytes& payload);

/// Write just the kHeaderSize header (with the CRC computed over type +
/// length + payload) for a frame whose payload will travel as a separate
/// buffer — the reactor's scatter-gather write path sends header and payload
/// as two iovecs instead of assembling a contiguous frame copy.
void encode_frame_header(std::uint16_t type, const Bytes& payload,
                         std::uint8_t out[kHeaderSize]);

/// Validate a payload against its header's CRC.
Status check_payload(const FrameHeader& header, const Bytes& payload);

}  // namespace ns::serial
