#include "client/client.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>

#include "common/clock.hpp"
#include "common/log.hpp"
#include "net/pool.hpp"
#include "net/transport.hpp"

namespace ns::client {

namespace {

using proto::MessageType;

serial::Bytes encode_payload(const auto& msg) {
  serial::Encoder enc;
  msg.encode(enc);
  return enc.take();
}

Result<net::Message> round_trip(const net::Endpoint& peer, std::uint16_t type,
                                const serial::Bytes& payload, double timeout,
                                const net::LinkShape& shape = net::LinkShape::unshaped(),
                                double connect_timeout = 5.0, bool pooled = true) {
  if (pooled) {
    return net::pool_round_trip(peer, type, payload, timeout,
                                std::min(timeout, connect_timeout), shape);
  }
  auto conn = net::TcpConnection::connect(peer, std::min(timeout, connect_timeout));
  if (!conn.ok()) return conn.error();
  NS_RETURN_IF_ERROR(net::send_message(conn.value(), type, payload, shape));
  return net::recv_message(conn.value(), timeout);
}

/// Fire-and-forget message (failure/metrics reports — the receiver never
/// replies on these exchanges, so a pooled connection stays clean).
void post(const net::Endpoint& peer, std::uint16_t type, const serial::Bytes& payload,
          bool pooled = true) {
  if (pooled) {
    (void)net::pool_post(peer, type, payload, /*dial_timeout_s=*/1.0);
    return;
  }
  auto conn = net::TcpConnection::connect(peer, 1.0);
  if (!conn.ok()) return;
  (void)net::send_message(conn.value(), type, payload);
}

Error decode_error_reply(const net::Message& msg) {
  serial::Decoder dec(msg.payload);
  auto reply = proto::ErrorReply::decode(dec);
  if (!reply.ok()) return make_error(ErrorCode::kProtocol, "malformed error reply");
  return make_error(static_cast<ErrorCode>(reply.value().error_code), reply.value().message);
}

std::uint64_t request_size_hint(const std::vector<dsl::DataObject>& args) {
  // The client does not know which argument the problem's complexity model
  // keys on (that is agent-side metadata), so it sends the dominant size
  // across all arguments — correct for every problem in the builtin
  // catalogue whose size argument is also its largest object, and a
  // documented approximation otherwise.
  std::uint64_t hint = 1;
  for (const auto& arg : args) hint = std::max<std::uint64_t>(hint, arg.size_hint());
  return hint;
}

}  // namespace

// ---- agent failover ----

std::vector<std::size_t> NetSolveClient::agent_order() {
  std::lock_guard<std::mutex> lock(agents_mu_);
  const double now = now_seconds();
  std::vector<std::size_t> live;
  std::vector<std::size_t> cooling;
  const auto classify = [&](std::size_t i) {
    (agent_health_[i].down_until > now ? cooling : live).push_back(i);
  };
  if (active_agent_ < config_.agents.size()) classify(active_agent_);
  for (std::size_t i = 0; i < config_.agents.size(); ++i) {
    if (i != active_agent_) classify(i);
  }
  live.insert(live.end(), cooling.begin(), cooling.end());
  return live;
}

void NetSolveClient::note_agent_result(std::size_t index, bool ok) {
  std::lock_guard<std::mutex> lock(agents_mu_);
  if (index >= agent_health_.size()) return;
  if (ok) {
    agent_health_[index].down_until = 0.0;
    active_agent_ = index;  // stick with whoever answered
  } else {
    agent_health_[index].down_until = now_seconds() + config_.agent_down_cooldown_s;
  }
}

Result<net::Message> NetSolveClient::agent_round_trip(std::uint16_t type,
                                                      const serial::Bytes& payload,
                                                      double timeout) {
  if (config_.agents.empty()) {
    return make_error(ErrorCode::kAgentUnavailable, "no agents configured");
  }
  Error last_error = make_error(ErrorCode::kAgentUnavailable, "no agent reachable");
  bool failed_over = false;
  for (const std::size_t index : agent_order()) {
    auto reply = round_trip(config_.agents[index], type, payload, timeout,
                            net::LinkShape::unshaped(), config_.agent_connect_timeout_s,
                            config_.pooled_transport);
    if (reply.ok()) {
      // Any reply — even an ErrorReply — means the agent is up.
      note_agent_result(index, true);
      if (failed_over) {
        metrics::counter("client.agent_failover_total").inc();
        NS_INFO("client") << "failed over to agent "
                          << config_.agents[index].to_string();
      }
      return reply;
    }
    note_agent_result(index, false);
    last_error = reply.error();
    failed_over = true;
  }
  return last_error;
}

void NetSolveClient::post_to_agent(std::uint16_t type, const serial::Bytes& payload) {
  const auto order = agent_order();
  if (order.empty()) return;
  const std::size_t index = order.front();
  {
    std::lock_guard<std::mutex> lock(agents_mu_);
    if (agent_health_[index].down_until > now_seconds()) return;  // everyone is down
  }
  post(config_.agents[index], type, payload, config_.pooled_transport);
}

Result<proto::ServerList> NetSolveClient::query_metadata(const std::string& problem,
                                                         std::uint64_t input_bytes,
                                                         std::uint64_t size_hint,
                                                         double timeout_cap,
                                                         trace::TraceId trace_id,
                                                         bool* degraded) {
  proto::Query query;
  query.problem = problem;
  query.input_bytes = input_bytes;
  // Reply size is unknown before execution; assume symmetry with the input
  // (exact for solve-style problems returning vectors smaller than their
  // inputs, conservative for dgemm-style ones).
  query.output_bytes = input_bytes;
  query.size_hint = size_hint;
  query.max_candidates = config_.max_candidates;
  query.trace_id = trace_id;

  const double timeout =
      timeout_cap > 0.0 ? std::min(config_.io_timeout_s, timeout_cap) : config_.io_timeout_s;
  auto reply = agent_round_trip(static_cast<std::uint16_t>(MessageType::kQuery),
                                encode_payload(query), timeout);
  if (!reply.ok()) {
    // Every agent is unreachable. Degraded mode: serve the last good ranked
    // list for this problem from the staleness-bounded cache, so known work
    // keeps flowing direct-to-server through a full scheduler-tier outage.
    if (config_.candidate_cache_ttl_s > 0.0) {
      std::lock_guard<std::mutex> lock(cache_mu_);
      const auto it = candidate_cache_.find(problem);
      if (it != candidate_cache_.end() &&
          now_seconds() - it->second.stored_at <= config_.candidate_cache_ttl_s) {
        if (degraded != nullptr) *degraded = true;
        NS_WARN("client") << "all agents down; using cached candidates for " << problem;
        return it->second.list;
      }
    }
    return make_error(ErrorCode::kAgentUnavailable, reply.error().to_string());
  }
  if (reply.value().type == static_cast<std::uint16_t>(MessageType::kErrorReply)) {
    return decode_error_reply(reply.value());
  }
  if (reply.value().type != static_cast<std::uint16_t>(MessageType::kServerList)) {
    return make_error(ErrorCode::kProtocol, "expected ServerList from agent");
  }
  serial::Decoder dec(reply.value().payload);
  auto list = proto::ServerList::decode(dec);
  if (list.ok() && !list.value().candidates.empty() && config_.candidate_cache_ttl_s > 0.0) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto& slot = candidate_cache_[problem];
    slot.list = list.value();
    slot.stored_at = now_seconds();
  }
  return list;
}

Result<proto::ServerList> NetSolveClient::query(const std::string& problem,
                                                const std::vector<dsl::DataObject>& args) {
  return query_metadata(problem, dsl::args_byte_size(args), request_size_hint(args));
}

Result<proto::SolveResult> NetSolveClient::attempt(const proto::ServerCandidate& candidate,
                                                   const proto::SolveRequest& request,
                                                   double* io_seconds) {
  const Stopwatch watch;
  // A live deadline budget caps every wait: there is no point blocking past
  // the moment the caller stops caring about the answer.
  const double timeout = request.deadline_s > 0.0
                             ? std::min(config_.io_timeout_s, request.deadline_s)
                             : config_.io_timeout_s;
  Result<net::Message> reply = make_error(ErrorCode::kInternal, "no attempt transport");
  if (config_.pooled_transport) {
    // Pipelined path: every attempt against this server shares one socket;
    // the reply is demultiplexed by request id, so concurrent netsl_nb calls
    // and hedges interleave instead of dialing a connection each.
    auto channel =
        net::ConnectionPool::instance().channel(candidate.endpoint, std::min(2.0, timeout));
    if (!channel.ok()) return channel.error();
    reply = channel.value()->call(static_cast<std::uint16_t>(MessageType::kSolveRequest),
                                  encode_payload(request),
                                  static_cast<std::uint16_t>(MessageType::kSolveResult),
                                  request.request_id, timeout, config_.link);
  } else {
    auto conn = net::TcpConnection::connect(candidate.endpoint, std::min(2.0, timeout));
    if (!conn.ok()) return conn.error();
    NS_RETURN_IF_ERROR(net::send_message(
        conn.value(), static_cast<std::uint16_t>(MessageType::kSolveRequest),
        encode_payload(request), config_.link));
    reply = net::recv_message(conn.value(), timeout);
  }
  if (!reply.ok()) return reply.error();
  if (io_seconds != nullptr) *io_seconds = watch.elapsed();
  if (reply.value().type != static_cast<std::uint16_t>(MessageType::kSolveResult)) {
    return make_error(ErrorCode::kProtocol, "expected SolveResult from server");
  }
  serial::Decoder dec(reply.value().payload);
  auto result = proto::SolveResult::decode(dec);
  if (!result.ok()) return result.error();
  if (result.value().request_id != request.request_id) {
    return make_error(ErrorCode::kProtocol, "response id mismatch");
  }
  return result;
}

void NetSolveClient::report_failure(proto::ServerId id, ErrorCode code) {
  if (!config_.report_failures) return;
  proto::FailureReport report;
  report.server_id = id;
  report.error_code = static_cast<std::uint16_t>(code);
  post_to_agent(static_cast<std::uint16_t>(MessageType::kFailureReport),
                encode_payload(report));
}

void NetSolveClient::report_metrics(proto::ServerId id, std::uint64_t bytes, double seconds) {
  if (!config_.report_metrics) return;
  proto::MetricsReport report;
  report.server_id = id;
  report.bytes = bytes;
  report.transfer_seconds = seconds;
  post_to_agent(static_cast<std::uint16_t>(MessageType::kMetricsReport),
                encode_payload(report));
}

double NetSolveClient::backoff_jitter(double prev_sleep) {
  std::lock_guard<std::mutex> lock(backoff_mu_);
  return std::min(config_.backoff_max_s,
                  backoff_rng_.uniform(config_.backoff_base_s, prev_sleep * 3.0));
}

double NetSolveClient::hedge_delay_for(const std::string& problem) const {
  if (config_.hedge_delay_s <= 0.0) return 0.0;
  const auto& hist = metrics::histogram("client.problem." + problem + ".attempt_s");
  if (hist.count() < config_.hedge_min_samples) return config_.hedge_delay_s;
  const double q = hist.percentile(config_.hedge_quantile);
  return q > 0.0 ? q : config_.hedge_delay_s;
}

void NetSolveClient::post_cancel_async(const net::Endpoint& peer, std::uint64_t request_id) {
  begin_background();
  const bool pooled = config_.pooled_transport;
  std::thread([this, peer, request_id, pooled] {
    proto::CancelRequest cancel;
    cancel.request_id = request_id;
    if (pooled) {
      // The server acks every CANCEL, so fire-and-forget over a pooled lease
      // would leave the ack in the stream for the next leaseholder. Ride the
      // mux channel instead: the ack demultiplexes by request id, and this
      // thread exists precisely so waiting costs the caller nothing.
      auto channel = net::ConnectionPool::instance().channel(peer, /*dial_timeout_s=*/1.0);
      if (channel.ok()) {
        (void)channel.value()->call(
            static_cast<std::uint16_t>(MessageType::kCancelRequest), encode_payload(cancel),
            static_cast<std::uint16_t>(MessageType::kCancelAck), request_id,
            /*timeout_s=*/2.0);
      }
    } else {
      post(peer, static_cast<std::uint16_t>(MessageType::kCancelRequest),
           encode_payload(cancel), /*pooled=*/false);
    }
    end_background();  // last touch of the client
  }).detach();
}

void NetSolveClient::begin_background() {
  std::lock_guard<std::mutex> lock(bg_mu_);
  ++bg_outstanding_;
}

void NetSolveClient::end_background() {
  // Notify while holding the lock: the destructor may free the condvar the
  // instant the count reaches zero and the mutex is released.
  std::lock_guard<std::mutex> lock(bg_mu_);
  --bg_outstanding_;
  bg_cv_.notify_all();
}

Result<std::vector<dsl::DataObject>> NetSolveClient::netsl(
    const std::string& problem, const std::vector<dsl::DataObject>& args, CallStats* stats) {
  const Stopwatch total_watch;
  const bool budgeted = config_.deadline_s > 0.0;
  const Deadline deadline = budgeted ? Deadline(config_.deadline_s) : Deadline::never();

  CallStats local_stats;
  CallStats& st = stats != nullptr ? *stats : local_stats;
  st = CallStats{};
  st.trace_id = trace::new_trace_id();
  metrics::counter("client.calls_total").inc();
  // Spans land both in the stats object (for in-process inspection) and in
  // the registry's span.* histograms (for METRICS_QUERY scrapes).
  const auto add_span = [&](const char* name, double start_s, double dur_s) {
    trace::record_span(st.trace_id, name, start_s, dur_s);
    st.spans.push_back(trace::Span{name, start_s, dur_s});
  };

  proto::SolveRequest request;
  request.request_id = next_request_id_.fetch_add(1);
  request.problem = problem;
  request.args = args;
  request.trace_id = st.trace_id;
  request.client_id = client_id_;
  request.require_durable = config_.require_durable;
  const std::uint64_t input_bytes = dsl::args_byte_size(args);
  const std::uint64_t size_hint = request_size_hint(args);

  int attempts = 0;
  double prev_sleep = config_.backoff_base_s;
  double backoff_total = 0.0;
  // Cooperative backpressure: a retryable server rejection may carry a
  // retry_after_s hint; the next backoff honors it (sleeps at least that
  // long, still clamped into the deadline budget).
  double pending_retry_after = 0.0;
  Error last_error = make_error(ErrorCode::kRetriesExhausted, "no attempt made");

  // Hedge attempt spans land when their slot is processed, which can be out
  // of the start-time order the CallStats contract promises.
  const auto sort_spans = [&] {
    std::stable_sort(st.spans.begin(), st.spans.end(),
                     [](const trace::Span& a, const trace::Span& b) {
                       return a.start_s < b.start_s;
                     });
  };

  // Every error return funnels through here so failure counters and the
  // call-latency histogram cover unsuccessful calls, and CallStats carries
  // the attempt/backoff totals even when the call did not complete.
  const auto fail = [&](Error err) {
    st.attempts = attempts;
    st.backoff_seconds = backoff_total;
    st.total_seconds = total_watch.elapsed();
    sort_spans();
    metrics::counter("client.failures_total").inc();
    metrics::histogram("client.call_s").observe(st.total_seconds);
    return err;
  };

  // Success path shared by the plain and hedged attempts.
  const auto finish_success = [&](const proto::ServerCandidate& cand,
                                  proto::SolveResult&& result, double attempt_start,
                                  double io_seconds) {
    // Reconstruct the winning attempt's hop breakdown: the server reported
    // how long the request waited in its queue and how long the compute ran;
    // whatever remains of the measured IO time is transfer. The wire carries
    // no one-way timings, so the transfer budget is split evenly around the
    // server-side spans.
    add_span("client.attempt", attempt_start, io_seconds);
    const double queue = std::max(result.queue_seconds, 0.0);
    const double exec = std::max(result.exec_seconds, 0.0);
    const double half_transfer = std::max(io_seconds - queue - exec, 0.0) / 2.0;
    add_span("server.queue_wait", attempt_start + half_transfer, queue);
    add_span("server.compute", attempt_start + half_transfer + queue, exec);
    add_span("client.result_transfer", attempt_start + half_transfer + queue + exec,
             half_transfer);

    const std::uint64_t output_bytes = dsl::args_byte_size(result.outputs);
    const double transfer = std::max(io_seconds - result.exec_seconds, 0.0);
    report_metrics(cand.server_id, input_bytes + output_bytes, transfer);
    // Successful attempts only: a straggler's latency says where the timeout
    // landed, not where the service time lives, and would poison the
    // quantile the hedge delay is derived from.
    metrics::histogram("client.problem." + problem + ".attempt_s").observe(io_seconds);
    st.server_id = cand.server_id;
    st.server_name = cand.server_name;
    st.predicted_seconds = cand.predicted_seconds;
    st.total_seconds = total_watch.elapsed();
    st.exec_seconds = result.exec_seconds;
    st.transfer_seconds = transfer;
    st.input_bytes = input_bytes;
    st.output_bytes = output_bytes;
    st.attempts = attempts;
    st.backoff_seconds = backoff_total;
    sort_spans();
    metrics::histogram("client.call_s").observe(st.total_seconds);
    return std::move(result.outputs);
  };

  // Hedge delay for this call (0 = hedging off): the observed per-problem
  // latency quantile once warmed up, else the configured static delay.
  const double hedge_delay = hedge_delay_for(problem);

  // Budgeted calls retry until the deadline, not a fixed attempt count; a
  // budget of time is what the caller actually has to spend.
  const auto out_of_budget = [&] {
    return budgeted ? deadline.expired() : attempts >= config_.max_retries;
  };

  // Within a deadline budget, a transiently empty pool or unreachable agent
  // is worth waiting out: quarantined servers get re-admitted and partitions
  // heal. Backoff, then re-query.
  const auto retry_within_budget = [&](Error err) {
    last_error = std::move(err);
    prev_sleep = backoff_jitter(prev_sleep);
    const double sleep_s = std::min(prev_sleep, deadline.remaining());
    if (sleep_s > 0.0) {
      sleep_seconds(sleep_s);
      backoff_total += sleep_s;
      metrics::histogram("client.backoff_s").observe(sleep_s);
    }
  };

  while (!out_of_budget()) {
    const double query_start = total_watch.elapsed();
    bool degraded = false;
    auto list = query_metadata(problem, input_bytes, size_hint,
                               budgeted ? deadline.remaining() : 0.0, st.trace_id, &degraded);
    const double query_dur = total_watch.elapsed() - query_start;
    if (degraded && !st.degraded) {
      st.degraded = true;
      metrics::counter("client.degraded_calls_total").inc();
    }
    if (!list.ok()) {
      const auto code = list.error().code;
      if (budgeted && (code == ErrorCode::kNoServer ||
                       code == ErrorCode::kAgentUnavailable || is_retryable(code))) {
        retry_within_budget(list.error());
        continue;
      }
      // If servers existed but all failed under us (we reported them and the
      // agent blacklisted them), surface that as exhausted retries rather
      // than a bare "no server" — the request did reach servers.
      if (code == ErrorCode::kNoServer && attempts > 0) {
        return fail(make_error(ErrorCode::kRetriesExhausted,
                               "all servers failed; last: " + last_error.to_string()));
      }
      return fail(list.error());
    }
    add_span("client.query", query_start, query_dur);
    // The scheduling decision happened inside the query round trip, right
    // before the reply was sent; anchor it at the tail of the query span so
    // span starts stay non-decreasing.
    const double sched = std::clamp(list.value().schedule_seconds, 0.0, query_dur);
    add_span("agent.schedule", query_start + (query_dur - sched), sched);
    if (list.value().candidates.empty()) {
      if (budgeted) {
        retry_within_budget(
            make_error(ErrorCode::kNoServer, "agent returned no candidates for " + problem));
        continue;
      }
      return fail(
          make_error(ErrorCode::kNoServer, "agent returned no candidates for " + problem));
    }

    const auto& candidates = list.value().candidates;
    std::size_t ci = 0;
    while (ci < candidates.size()) {
      if (out_of_budget()) break;
      const auto& candidate = candidates[ci];
      ++attempts;
      metrics::counter("client.attempts_total").inc();
      if (attempts > 1) metrics::counter("client.retries_total").inc();

      // Decorrelated-jitter backoff before every retry (never the first
      // attempt), clamped to whatever budget remains. A server-issued
      // retry_after hint raises the floor: the server told us when capacity
      // is expected, and retrying sooner would just be shed again.
      if (attempts > 1 && (config_.backoff_base_s > 0.0 || pending_retry_after > 0.0)) {
        double sleep_s = 0.0;
        if (config_.backoff_base_s > 0.0) {
          prev_sleep = backoff_jitter(prev_sleep);
          sleep_s = prev_sleep;
        }
        if (pending_retry_after > sleep_s) {
          sleep_s = pending_retry_after;
          metrics::counter("client.retry_after_honored_total").inc();
        }
        pending_retry_after = 0.0;
        sleep_s = std::min(sleep_s, deadline.remaining());
        if (sleep_s > 0.0) {
          sleep_seconds(sleep_s);
          backoff_total += sleep_s;
          metrics::histogram("client.backoff_s").observe(sleep_s);
        }
        if (budgeted && deadline.expired()) break;
      }
      request.deadline_s = budgeted ? deadline.remaining() : 0.0;

      if (hedge_delay <= 0.0 || ci + 1 >= candidates.size()) {
        // ---- plain attempt (hedging off, or no backup candidate) ----
        ++ci;
        const double attempt_start = total_watch.elapsed();
        double io_seconds = 0.0;
        auto result = attempt(candidate, request, &io_seconds);

        if (!result.ok() && config_.reattach_s > 0.0 &&
            result.error().code != ErrorCode::kConnectFailed) {
          // The transport died after the request went out, so the server may
          // have admitted (and journaled) the job before crashing. Poll its
          // durable state instead of resubmitting: a restarted server
          // recovers the job from its write-ahead log and finishes the
          // original submission, sparing a duplicate solve.
          metrics::counter("client.reattach_total").inc();
          const double reattach_budget =
              budgeted ? std::min(config_.reattach_s, deadline.remaining())
                       : config_.reattach_s;
          NS_DEBUG("client") << "transport lost mid-call; reattaching to "
                             << candidate.server_name << " for request "
                             << request.request_id;
          auto recovered = wait_for_job(candidate.endpoint, request.request_id,
                                        reattach_budget);
          if (recovered.ok()) {
            metrics::counter("client.reattach_success_total").inc();
            io_seconds = total_watch.elapsed() - attempt_start;
            result = std::move(recovered);
          }
        }

        if (!result.ok() && config_.checkpoint_failover) {
          // The server is gone for good (reattach exhausted, or the dial
          // itself was refused). If it was replicating checkpoints, one of
          // the other ranked candidates may hold the job's latest snapshot:
          // ask each to adopt it. The adopter resumes mid-iteration, so the
          // work done before the crash is not recomputed from zero.
          for (const auto& peer : candidates) {
            if (peer.server_id == candidate.server_id) continue;
            proto::CheckpointFetch fetch;
            fetch.request_id = request.request_id;
            fetch.adopt = true;
            auto reply = round_trip(
                peer.endpoint, static_cast<std::uint16_t>(MessageType::kCheckpointFetch),
                encode_payload(fetch), /*timeout=*/2.0, net::LinkShape::unshaped(),
                /*connect_timeout=*/2.0, config_.pooled_transport);
            if (!reply.ok() ||
                reply.value().type !=
                    static_cast<std::uint16_t>(MessageType::kCheckpointFetchReply)) {
              continue;
            }
            serial::Decoder dec(reply.value().payload);
            auto fr = proto::CheckpointFetchReply::decode(dec);
            if (!fr.ok() || !fr.value().adopted) continue;
            metrics::counter("client.failover_adopt_total").inc();
            NS_DEBUG("client") << "request " << request.request_id << " adopted by "
                               << peer.server_name << " at checkpoint iteration "
                               << fr.value().iteration << "; waiting there";
            const double follow_budget =
                budgeted ? deadline.remaining() : config_.io_timeout_s;
            auto followed =
                wait_for_job(peer.endpoint, request.request_id, follow_budget);
            if (followed.ok()) {
              io_seconds = total_watch.elapsed() - attempt_start;
              result = std::move(followed);
            }
            break;  // adopt-once: no other peer still holds the entry
          }
        }

        if (!result.ok()) {
          // Transport-level failure: blacklist and move on.
          add_span("client.attempt", attempt_start, total_watch.elapsed() - attempt_start);
          NS_DEBUG("client") << "attempt on " << candidate.server_name
                             << " failed: " << result.error().to_string();
          last_error = result.error();
          report_failure(candidate.server_id, result.error().code);
          if (!is_retryable(result.error().code)) return fail(result.error());
          continue;
        }

        const auto code = static_cast<ErrorCode>(result.value().error_code);
        if (code != ErrorCode::kOk) {
          add_span("client.attempt", attempt_start, io_seconds);
          if (code == ErrorCode::kMigrated && result.value().migrated_port != 0) {
            // The job is still running on the destination server (drain moved
            // it with its checkpoint): follow the forwarding address and wait
            // there rather than starting a duplicate solve elsewhere.
            const net::Endpoint dest{result.value().migrated_host,
                                     result.value().migrated_port};
            metrics::counter("client.migrations_followed_total").inc();
            NS_DEBUG("client") << "request " << request.request_id << " migrated to "
                               << dest.host << ":" << dest.port << "; following";
            const double follow_budget =
                budgeted ? deadline.remaining() : config_.io_timeout_s;
            auto followed = wait_for_job(dest, request.request_id, follow_budget);
            if (followed.ok() &&
                static_cast<ErrorCode>(followed.value().error_code) == ErrorCode::kOk) {
              return finish_success(candidate, std::move(followed.value()), attempt_start,
                                    total_watch.elapsed() - attempt_start);
            }
            // Dead end (destination unreachable or the job failed there too).
            // The solve is idempotent, so falling back to a fresh attempt on
            // the next candidate is safe.
            last_error = make_error(ErrorCode::kMigrated,
                                    "migration follow failed for request " +
                                        std::to_string(request.request_id));
            continue;
          }
          Error err = make_error(code, result.value().error_message);
          if (is_retryable(code)) {
            NS_DEBUG("client") << "server " << candidate.server_name
                               << " replied failure: " << err.to_string();
            pending_retry_after =
                std::max(pending_retry_after, result.value().retry_after_s);
            last_error = std::move(err);
            // An overload rejection is an admission decision by a healthy
            // server, not a fault: reporting it would quarantine the very
            // pool that is asking us to back off. The agent learns about the
            // pressure from the server's own workload reports instead.
            if (code != ErrorCode::kServerOverloaded) {
              report_failure(candidate.server_id, code);
            }
            continue;
          }
          return fail(std::move(err));  // the request itself is bad; retrying cannot help
        }
        return finish_success(candidate, std::move(result.value()), attempt_start,
                              io_seconds);
      }

      // ---- hedged race ----
      //
      // Launch the primary now; if it is still outstanding after the hedge
      // delay, race a backup on the next-ranked candidate. First result
      // wins; the loser is actively cancelled (fire-and-forget CANCEL) so
      // it stops burning a remote worker slot. Losing attempts never touch
      // the retry bookkeeping — they are discarded, not failures.
      struct Slot {
        proto::ServerCandidate candidate;
        double start = 0.0;
        double io_seconds = 0.0;
        std::optional<Result<proto::SolveResult>> result;
        bool processed = false;
      };
      struct Race {
        std::mutex mu;
        std::condition_variable cv;
      };
      auto race = std::make_shared<Race>();
      std::vector<std::shared_ptr<Slot>> slots;

      const auto launch = [&](const proto::ServerCandidate& cand) {
        auto slot = std::make_shared<Slot>();
        slot->candidate = cand;
        slot->start = total_watch.elapsed();
        slots.push_back(slot);
        proto::SolveRequest req = request;
        req.deadline_s = budgeted ? deadline.remaining() : 0.0;
        begin_background();
        std::thread([this, race, slot, req = std::move(req)] {
          double io = 0.0;
          auto r = attempt(slot->candidate, req, &io);
          {
            std::lock_guard<std::mutex> lock(race->mu);
            slot->io_seconds = io;
            slot->result.emplace(std::move(r));
          }
          race->cv.notify_all();
          end_background();  // last touch of the client
        }).detach();
      };
      // Cancel every slot still in flight (the winner is already out).
      const auto cancel_losers = [&] {
        std::lock_guard<std::mutex> lock(race->mu);
        for (const auto& s : slots) {
          if (s->result.has_value()) continue;
          metrics::counter("client.cancel_sent_total").inc();
          post_cancel_async(s->candidate.endpoint, request.request_id);
        }
      };

      launch(candidate);
      bool hedge_launched = false;
      const Deadline hedge_at(hedge_delay);
      std::size_t consumed = 1;

      for (;;) {
        std::shared_ptr<Slot> done;
        {
          std::unique_lock<std::mutex> lock(race->mu);
          const auto next_done = [&]() -> std::shared_ptr<Slot> {
            for (const auto& s : slots) {
              if (s->result.has_value() && !s->processed) return s;
            }
            return nullptr;
          };
          if (!hedge_launched) {
            const bool finished = race->cv.wait_for(
                lock, std::chrono::duration<double>(std::max(hedge_at.remaining(), 0.0)),
                [&] { return next_done() != nullptr; });
            if (!finished) {
              lock.unlock();
              // Hedge delay elapsed with the primary still outstanding.
              hedge_launched = true;
              st.hedged = true;
              metrics::counter("client.hedge_total").inc();
              ++attempts;
              metrics::counter("client.attempts_total").inc();
              NS_DEBUG("client") << "hedging " << problem << " on "
                                 << candidates[ci + 1].server_name << " after "
                                 << hedge_delay << "s";
              launch(candidates[ci + 1]);
              consumed = 2;
              continue;
            }
          } else {
            race->cv.wait(lock, [&] { return next_done() != nullptr; });
          }
          done = next_done();
          done->processed = true;
        }
        // The worker is finished with this slot (established under the
        // lock); read it freely.
        const bool was_hedge = done != slots.front();
        auto result = std::move(*done->result);

        if (!result.ok()) {
          add_span("client.attempt", done->start, total_watch.elapsed() - done->start);
          NS_DEBUG("client") << "attempt on " << done->candidate.server_name
                             << " failed: " << result.error().to_string();
          last_error = result.error();
          report_failure(done->candidate.server_id, result.error().code);
          if (!is_retryable(result.error().code)) {
            cancel_losers();
            return fail(result.error());
          }
        } else {
          const auto code = static_cast<ErrorCode>(result.value().error_code);
          if (code == ErrorCode::kOk) {
            cancel_losers();
            if (was_hedge) metrics::counter("client.hedge_wins_total").inc();
            return finish_success(done->candidate, std::move(result.value()),
                                  done->start, done->io_seconds);
          }
          add_span("client.attempt", done->start, done->io_seconds);
          if (code == ErrorCode::kMigrated && result.value().migrated_port != 0) {
            // Same forwarding dance as the plain path; any racing sibling is
            // cancelled first (the migrated job already owns the answer).
            cancel_losers();
            const net::Endpoint dest{result.value().migrated_host,
                                     result.value().migrated_port};
            metrics::counter("client.migrations_followed_total").inc();
            const double follow_budget =
                budgeted ? deadline.remaining() : config_.io_timeout_s;
            auto followed = wait_for_job(dest, request.request_id, follow_budget);
            if (followed.ok() &&
                static_cast<ErrorCode>(followed.value().error_code) == ErrorCode::kOk) {
              return finish_success(done->candidate, std::move(followed.value()),
                                    done->start, total_watch.elapsed() - done->start);
            }
            last_error = make_error(ErrorCode::kMigrated,
                                    "migration follow failed for request " +
                                        std::to_string(request.request_id));
            break;  // leave the race; move on down the ranked list
          }
          Error err = make_error(code, result.value().error_message);
          if (!is_retryable(code)) {
            cancel_losers();
            return fail(std::move(err));
          }
          NS_DEBUG("client") << "server " << done->candidate.server_name
                             << " replied failure: " << err.to_string();
          pending_retry_after =
              std::max(pending_retry_after, result.value().retry_after_s);
          last_error = std::move(err);
          // Overload = backpressure, not a fault (see the plain path above).
          if (code != ErrorCode::kServerOverloaded) {
            report_failure(done->candidate.server_id, code);
          }
        }

        // This attempt failed retryably; keep waiting if a sibling is still
        // racing, otherwise move on down the ranked list.
        bool more = false;
        {
          std::lock_guard<std::mutex> lock(race->mu);
          for (const auto& s : slots) {
            if (!s->result.has_value() || !s->processed) more = true;
          }
        }
        if (!more) break;
      }
      ci += consumed;
    }
    // Ranked list exhausted; re-query (the agent has fresher liveness data
    // after our failure reports).
  }
  if (budgeted) {
    metrics::counter("client.deadline_exceeded_total").inc();
    return fail(make_error(ErrorCode::kDeadlineExceeded,
                           "deadline budget of " + std::to_string(config_.deadline_s) +
                               "s exhausted after " + std::to_string(attempts) +
                               " attempts; last: " + last_error.to_string()));
  }
  return fail(make_error(ErrorCode::kRetriesExhausted,
                         "all " + std::to_string(attempts) +
                             " attempts failed; last: " + last_error.to_string()));
}

Result<std::vector<dsl::ProblemSpec>> NetSolveClient::list_problems() {
  auto reply = agent_round_trip(static_cast<std::uint16_t>(MessageType::kListProblems), {},
                                config_.io_timeout_s);
  if (!reply.ok()) return make_error(ErrorCode::kAgentUnavailable, reply.error().to_string());
  if (reply.value().type == static_cast<std::uint16_t>(MessageType::kErrorReply)) {
    return decode_error_reply(reply.value());
  }
  if (reply.value().type != static_cast<std::uint16_t>(MessageType::kProblemCatalog)) {
    return make_error(ErrorCode::kProtocol, "expected ProblemCatalog");
  }
  serial::Decoder dec(reply.value().payload);
  auto catalog = proto::ProblemCatalog::decode(dec);
  if (!catalog.ok()) return catalog.error();
  return std::move(catalog.value().problems);
}

Result<proto::AgentStats> NetSolveClient::agent_stats() {
  auto reply = agent_round_trip(static_cast<std::uint16_t>(MessageType::kAgentStatsRequest),
                                {}, config_.io_timeout_s);
  if (!reply.ok()) return make_error(ErrorCode::kAgentUnavailable, reply.error().to_string());
  if (reply.value().type != static_cast<std::uint16_t>(MessageType::kAgentStatsReply)) {
    return make_error(ErrorCode::kProtocol, "expected AgentStatsReply");
  }
  serial::Decoder dec(reply.value().payload);
  return proto::AgentStats::decode(dec);
}

Status NetSolveClient::ping_agent() {
  auto reply = agent_round_trip(static_cast<std::uint16_t>(MessageType::kPing), {},
                                config_.io_timeout_s);
  if (!reply.ok()) return reply.error();
  if (reply.value().type != static_cast<std::uint16_t>(MessageType::kPong)) {
    return make_error(ErrorCode::kProtocol, "expected Pong");
  }
  return ok_status();
}

Result<metrics::Snapshot> scrape_metrics(const net::Endpoint& peer, double timeout_s,
                                         const std::string& prefix) {
  proto::MetricsQuery query;
  query.prefix = prefix;
  auto reply = round_trip(peer, static_cast<std::uint16_t>(MessageType::kMetricsQuery),
                          encode_payload(query), timeout_s);
  if (!reply.ok()) return reply.error();
  if (reply.value().type == static_cast<std::uint16_t>(MessageType::kErrorReply)) {
    return decode_error_reply(reply.value());
  }
  if (reply.value().type != static_cast<std::uint16_t>(MessageType::kMetricsDump)) {
    return make_error(ErrorCode::kProtocol, "expected MetricsDump");
  }
  serial::Decoder dec(reply.value().payload);
  auto dump = proto::MetricsDump::decode(dec);
  if (!dump.ok()) return dump.error();
  return std::move(dump.value().snapshot);
}

Result<proto::CancelAck> cancel_request(const net::Endpoint& peer, std::uint64_t request_id,
                                        double timeout_s) {
  proto::CancelRequest cancel;
  cancel.request_id = request_id;
  auto reply = round_trip(peer, static_cast<std::uint16_t>(MessageType::kCancelRequest),
                          encode_payload(cancel), timeout_s);
  if (!reply.ok()) return reply.error();
  if (reply.value().type != static_cast<std::uint16_t>(MessageType::kCancelAck)) {
    return make_error(ErrorCode::kProtocol, "expected CancelAck");
  }
  serial::Decoder dec(reply.value().payload);
  return proto::CancelAck::decode(dec);
}

Result<proto::DrainAck> drain_server(const net::Endpoint& peer, double deadline_s,
                                     double timeout_s) {
  proto::DrainRequest drain;
  drain.deadline_s = deadline_s;
  auto reply = round_trip(peer, static_cast<std::uint16_t>(MessageType::kDrainRequest),
                          encode_payload(drain), timeout_s);
  if (!reply.ok()) return reply.error();
  if (reply.value().type != static_cast<std::uint16_t>(MessageType::kDrainAck)) {
    return make_error(ErrorCode::kProtocol, "expected DrainAck");
  }
  serial::Decoder dec(reply.value().payload);
  return proto::DrainAck::decode(dec);
}

Result<proto::ProbeReply> probe_request(const net::Endpoint& peer, std::uint64_t request_id,
                                        bool fetch_result, double timeout_s) {
  proto::ProbeRequest probe;
  probe.request_id = request_id;
  probe.fetch_result = fetch_result;
  auto reply = round_trip(peer, static_cast<std::uint16_t>(MessageType::kProbeRequest),
                          encode_payload(probe), timeout_s);
  if (!reply.ok()) return reply.error();
  if (reply.value().type != static_cast<std::uint16_t>(MessageType::kProbeReply)) {
    return make_error(ErrorCode::kProtocol, "expected ProbeReply");
  }
  serial::Decoder dec(reply.value().payload);
  return proto::ProbeReply::decode(dec);
}

Result<proto::SolveResult> wait_for_job(const net::Endpoint& peer, std::uint64_t request_id,
                                        double budget_s, double poll_interval_s) {
  net::Endpoint target = peer;
  const Deadline budget(budget_s);
  const double interval = poll_interval_s > 0.0 ? poll_interval_s : 0.05;
  while (true) {
    const double remaining = budget.remaining();
    if (remaining <= 0.0) break;
    auto reply = probe_request(target, request_id, /*fetch_result=*/true,
                               std::min(remaining, 2.0));
    if (reply.ok()) {
      const auto& probe = reply.value();
      if ((probe.state == proto::JobState::kCompleted ||
           probe.state == proto::JobState::kFailed) &&
          probe.has_result) {
        // A MIGRATED terminal record is a forwarding address, not an answer:
        // chase it (possibly through several hops of rolling drains).
        if (static_cast<ErrorCode>(probe.result.error_code) == ErrorCode::kMigrated &&
            probe.result.migrated_port != 0) {
          target = net::Endpoint{probe.result.migrated_host, probe.result.migrated_port};
          metrics::counter("client.migrations_followed_total").inc();
          continue;
        }
        return probe.result;
      }
      // Queued, running, or unknown (a restarting server replays its journal
      // before it starts answering probes, so unknown here usually means the
      // id truly never reached this server — but the budget, not one poll,
      // decides when to give up).
    }
    sleep_seconds(std::min(interval, budget.remaining()));
  }
  return make_error(ErrorCode::kTimeout,
                    "job " + std::to_string(request_id) + " did not reach a terminal state in " +
                        std::to_string(budget_s) + "s");
}

// ---- Non-blocking calls ----

struct RequestHandle::State {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::optional<Result<std::vector<dsl::DataObject>>> result;
  CallStats stats;
  std::thread worker;

  ~State() {
    if (!worker.joinable()) return;
    // If the handle was dropped before completion, the worker lambda holds
    // the last reference and this destructor runs on the worker thread
    // itself — joining would deadlock, so detach (the thread is already at
    // its final statement).
    if (worker.get_id() == std::this_thread::get_id()) {
      worker.detach();
    } else {
      worker.join();
    }
  }
};

NetSolveClient::~NetSolveClient() {
  // A dropped RequestHandle detaches its worker thread, and losing hedge
  // attempts outlive their call; all of them still run against this client,
  // so block (condvar, not a spin) until the last one checks out.
  std::unique_lock<std::mutex> lock(bg_mu_);
  bg_cv_.wait(lock, [this] { return bg_outstanding_ == 0; });
}

RequestHandle NetSolveClient::netsl_nb(const std::string& problem,
                                       std::vector<dsl::DataObject> args) {
  auto state = std::make_shared<RequestHandle::State>();
  begin_background();
  // The worker keeps the state alive; the handle may be destroyed first.
  state->worker = std::thread(
      [this, state, problem, args = std::move(args)]() {
        CallStats stats;
        auto result = netsl(problem, args, &stats);
        {
          std::lock_guard<std::mutex> lock(state->mu);
          state->result.emplace(std::move(result));
          state->stats = stats;
          state->done = true;
          state->cv.notify_all();
        }
        // Last touch of the client: after this the destructor may proceed
        // and `this` may be gone.
        end_background();
      });
  return RequestHandle(std::move(state));
}

bool RequestHandle::ready() const {
  if (!state_) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

Result<std::vector<dsl::DataObject>> RequestHandle::wait() {
  if (!state_) {
    return make_error(ErrorCode::kInternal, "empty request handle");
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->done; });
  if (!state_->result.has_value()) {
    return make_error(ErrorCode::kInternal, "result already consumed");
  }
  auto out = std::move(*state_->result);
  state_->result.reset();
  return out;
}

const CallStats& RequestHandle::stats() const {
  static const CallStats kEmpty{};
  if (!state_) return kEmpty;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->stats;
}

}  // namespace ns::client
