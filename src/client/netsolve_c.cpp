// Implementation of the C client binding (see netsolve_c.h).
#include "client/netsolve_c.h"

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "client/client.hpp"

namespace {

using ns::client::NetSolveClient;
using ns::client::RequestHandle;
using ns::dsl::DataObject;

int map_error(ns::ErrorCode code) {
  switch (code) {
    case ns::ErrorCode::kConnectFailed:
    case ns::ErrorCode::kAgentUnavailable:
    case ns::ErrorCode::kConnectionClosed:
    case ns::ErrorCode::kTimeout:
      return NS_ERR_CONNECT;
    case ns::ErrorCode::kUnknownProblem:
    case ns::ErrorCode::kNoServer:
      return NS_ERR_UNKNOWN_PROBLEM;
    case ns::ErrorCode::kBadArguments:
      return NS_ERR_BAD_ARGUMENTS;
    case ns::ErrorCode::kExecutionFailed:
      return NS_ERR_EXECUTION;
    case ns::ErrorCode::kRetriesExhausted:
    case ns::ErrorCode::kServerFailure:
    case ns::ErrorCode::kServerOverloaded:
      return NS_ERR_RETRIES;
    default:
      return NS_ERR_INTERNAL;
  }
}

/// Convert a C argument descriptor to a DataObject; nullopt-style failure
/// reported through the error string.
bool to_data_object(const ns_arg& arg, DataObject* out, std::string* error) {
  switch (arg.type) {
    case NS_ARG_INT:
      *out = DataObject(arg.int_value);
      return true;
    case NS_ARG_DOUBLE:
      *out = DataObject(arg.double_value);
      return true;
    case NS_ARG_VECTOR:
      if (arg.data == nullptr && arg.len > 0) {
        *error = "vector argument with null data";
        return false;
      }
      *out = DataObject(ns::linalg::Vector(arg.data, arg.data + arg.len));
      return true;
    case NS_ARG_MATRIX: {
      if (arg.data == nullptr || arg.rows * arg.cols == 0) {
        *error = "matrix argument with null/empty data";
        return false;
      }
      ns::linalg::Vector storage(arg.data, arg.data + arg.rows * arg.cols);
      *out = DataObject(ns::linalg::Matrix(arg.rows, arg.cols, std::move(storage)));
      return true;
    }
  }
  *error = "unknown argument type";
  return false;
}

/// Fill a C output descriptor from a DataObject. Numeric buffers stay owned
/// by `owned` (the session/request keeps them alive).
bool fill_output(const DataObject& obj, ns_arg* out,
                 std::vector<std::unique_ptr<ns::linalg::Vector>>* owned,
                 std::string* error) {
  switch (out->type) {
    case NS_ARG_INT:
      if (!obj.is_int()) break;
      out->int_value = obj.as_int();
      return true;
    case NS_ARG_DOUBLE:
      if (!obj.is_double()) break;
      out->double_value = obj.as_double();
      return true;
    case NS_ARG_VECTOR: {
      if (!obj.is_vector()) break;
      owned->push_back(std::make_unique<ns::linalg::Vector>(obj.as_vector()));
      out->out_data = owned->back()->data();
      out->len = owned->back()->size();
      return true;
    }
    case NS_ARG_MATRIX: {
      if (!obj.is_matrix()) break;
      const auto& m = obj.as_matrix();
      owned->push_back(std::make_unique<ns::linalg::Vector>(m.storage()));
      out->out_data = owned->back()->data();
      out->rows = m.rows();
      out->cols = m.cols();
      out->len = m.size();
      return true;
    }
  }
  *error = "output type mismatch";
  return false;
}

}  // namespace

struct ns_session {
  std::unique_ptr<NetSolveClient> client;
  std::string last_error;
  std::vector<std::unique_ptr<ns::linalg::Vector>> owned_outputs;
};

struct ns_request {
  ns_session* session = nullptr;
  RequestHandle handle;
  std::vector<std::unique_ptr<ns::linalg::Vector>> owned_outputs;
  std::string last_error;
};

extern "C" {

ns_session* ns_connect(const char* agent_host, uint16_t agent_port) {
  if (agent_host == nullptr) return nullptr;
  ns::client::ClientConfig config;
  config.agents = {{agent_host, agent_port}};
  auto session = std::make_unique<ns_session>();
  session->client = std::make_unique<NetSolveClient>(std::move(config));
  if (!session->client->ping_agent().ok()) return nullptr;
  return session.release();
}

void ns_disconnect(ns_session* session) { delete session; }

const char* ns_last_error(const ns_session* session) {
  return session != nullptr ? session->last_error.c_str() : "null session";
}

int ns_problem_count(ns_session* session) {
  if (session == nullptr) return NS_ERR_INTERNAL;
  auto problems = session->client->list_problems();
  if (!problems.ok()) {
    session->last_error = problems.error().to_string();
    return map_error(problems.error().code);
  }
  return static_cast<int>(problems.value().size());
}

int netsl(ns_session* session, const char* problem, const ns_arg* inputs, size_t n_inputs,
          ns_arg* outputs, size_t n_outputs) {
  if (session == nullptr || problem == nullptr) return NS_ERR_INTERNAL;
  session->owned_outputs.clear();

  std::vector<DataObject> args(n_inputs);
  for (size_t i = 0; i < n_inputs; ++i) {
    if (!to_data_object(inputs[i], &args[i], &session->last_error)) {
      return NS_ERR_BAD_ARGUMENTS;
    }
  }
  auto result = session->client->netsl(problem, args);
  if (!result.ok()) {
    session->last_error = result.error().to_string();
    return map_error(result.error().code);
  }
  if (result.value().size() != n_outputs) {
    session->last_error = "output count mismatch";
    return NS_ERR_BAD_ARGUMENTS;
  }
  for (size_t i = 0; i < n_outputs; ++i) {
    if (!fill_output(result.value()[i], &outputs[i], &session->owned_outputs,
                     &session->last_error)) {
      return NS_ERR_BAD_ARGUMENTS;
    }
  }
  return NS_OK;
}

ns_request* netsl_nb(ns_session* session, const char* problem, const ns_arg* inputs,
                     size_t n_inputs) {
  if (session == nullptr || problem == nullptr) return nullptr;
  std::vector<DataObject> args(n_inputs);
  for (size_t i = 0; i < n_inputs; ++i) {
    if (!to_data_object(inputs[i], &args[i], &session->last_error)) return nullptr;
  }
  auto request = std::make_unique<ns_request>();
  request->session = session;
  request->handle = session->client->netsl_nb(problem, std::move(args));
  return request.release();
}

int netsl_probe(const ns_request* request) {
  if (request == nullptr) return NS_ERR_INTERNAL;
  return request->handle.ready() ? NS_OK : NS_ERR_NOT_READY;
}

int netsl_wait(ns_request* request, ns_arg* outputs, size_t n_outputs) {
  if (request == nullptr) return NS_ERR_INTERNAL;
  auto result = request->handle.wait();
  if (!result.ok()) {
    request->last_error = result.error().to_string();
    if (request->session != nullptr) request->session->last_error = request->last_error;
    return map_error(result.error().code);
  }
  if (result.value().size() != n_outputs) return NS_ERR_BAD_ARGUMENTS;
  std::string error;
  for (size_t i = 0; i < n_outputs; ++i) {
    if (!fill_output(result.value()[i], &outputs[i], &request->owned_outputs, &error)) {
      if (request->session != nullptr) request->session->last_error = error;
      return NS_ERR_BAD_ARGUMENTS;
    }
  }
  return NS_OK;
}

void ns_request_free(ns_request* request) { delete request; }

}  // extern "C"
