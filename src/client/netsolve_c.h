/* C client interface for the NetSolve reproduction.
 *
 * Mirrors the shape of the original system's C binding: opaque handles, a
 * blocking netsl() call and a non-blocking netsl_nb()/netsl_probe()/
 * netsl_wait() trio, with arguments passed as typed descriptors. All
 * functions return NS_OK (0) or a negative error code; messages are
 * retrievable per session with ns_last_error().
 *
 * Matrices are column-major (Fortran convention), matching the C++ core.
 */
#ifndef NS_CLIENT_NETSOLVE_C_H_
#define NS_CLIENT_NETSOLVE_C_H_

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct ns_session ns_session;   /* a client bound to one agent */
typedef struct ns_request ns_request;   /* an in-flight non-blocking call */

enum {
  NS_OK = 0,
  NS_ERR_CONNECT = -1,      /* agent or server unreachable */
  NS_ERR_UNKNOWN_PROBLEM = -2,
  NS_ERR_BAD_ARGUMENTS = -3,
  NS_ERR_EXECUTION = -4,
  NS_ERR_RETRIES = -5,      /* all candidate servers failed */
  NS_ERR_INTERNAL = -6,
  NS_ERR_NOT_READY = -7     /* netsl_probe: still running */
};

/* Typed argument/result descriptor. For NS_ARG_MATRIX, rows*cols doubles in
 * column-major order; for NS_ARG_VECTOR, len doubles; scalars use the
 * value fields. Output descriptors are filled by the library, which owns
 * the returned buffers until the next call on the same request/session. */
typedef enum {
  NS_ARG_INT = 1,
  NS_ARG_DOUBLE = 2,
  NS_ARG_VECTOR = 4,
  NS_ARG_MATRIX = 5
} ns_arg_type;

typedef struct {
  ns_arg_type type;
  int64_t int_value;        /* NS_ARG_INT */
  double double_value;      /* NS_ARG_DOUBLE */
  const double* data;       /* NS_ARG_VECTOR / NS_ARG_MATRIX (input) */
  double* out_data;         /* filled for outputs; library-owned */
  size_t len;               /* vector length, or rows*cols */
  size_t rows, cols;        /* NS_ARG_MATRIX */
} ns_arg;

/* ---- session ---- */

/* Connect a session to the agent at host:port. Returns NULL on failure. */
ns_session* ns_connect(const char* agent_host, uint16_t agent_port);
void ns_disconnect(ns_session* session);

/* Last error message for this session (valid until the next call). */
const char* ns_last_error(const ns_session* session);

/* Number of problems in the agent's catalogue, or a negative error. */
int ns_problem_count(ns_session* session);

/* ---- blocking call ----
 *
 * netsl("dgesv", inputs, n_inputs, outputs, n_outputs):
 * outputs[i].type declares the expected type; the library fills the value
 * fields. Returns NS_OK or an error code. */
int netsl(ns_session* session, const char* problem, const ns_arg* inputs,
          size_t n_inputs, ns_arg* outputs, size_t n_outputs);

/* ---- non-blocking call (netsl_nb / netsl_probe / netsl_wait) ---- */

ns_request* netsl_nb(ns_session* session, const char* problem, const ns_arg* inputs,
                     size_t n_inputs);
/* NS_OK once complete (successfully or not), NS_ERR_NOT_READY otherwise. */
int netsl_probe(const ns_request* request);
/* Block for completion and collect outputs; frees nothing (see below). */
int netsl_wait(ns_request* request, ns_arg* outputs, size_t n_outputs);
/* Release the request and any library-owned output buffers from it. */
void ns_request_free(ns_request* request);

#ifdef __cplusplus
}
#endif

#endif /* NS_CLIENT_NETSOLVE_C_H_ */
