// The NetSolve client library.
//
// The call surface mirrors the original C interface:
//   netsl(...)     -- blocking call: query the agent, send the request to
//                     the best server, transparently retrying down the
//                     ranked list on failure.
//   netsl_nb(...)  -- non-blocking call returning a RequestHandle with
//                     probe()/wait() (netslpr/netslwt in the original).
//   call(...)      -- MATLAB-style variadic convenience front end.
//
// Fault tolerance: a retryable failure (connection refused/reset, timeout,
// injected server failure) is reported to the agent (which blacklists the
// server) and the next candidate is tried; the ranked list is re-fetched if
// exhausted, up to max_retries attempts total. Non-retryable failures (bad
// arguments, unknown problem, execution errors) surface immediately.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "dsl/problem.hpp"
#include "dsl/value.hpp"
#include "net/shaped_link.hpp"
#include "net/socket.hpp"
#include "proto/messages.hpp"

namespace ns::client {

struct ClientConfig {
  net::Endpoint agent;
  /// Shape applied to client->server request traffic (WAN emulation).
  net::LinkShape link;
  /// Total request attempts across candidates/re-queries before giving up.
  int max_retries = 4;
  double io_timeout_s = 30.0;
  /// How many ranked candidates to request from the agent per query.
  std::uint32_t max_candidates = 8;
  /// Feed client-observed transfer metrics back to the agent.
  bool report_metrics = true;
  /// Report failed servers to the agent (enables agent-side blacklisting).
  bool report_failures = true;
};

/// Per-call telemetry, filled when the caller passes a stats out-param.
struct CallStats {
  proto::ServerId server_id = proto::kInvalidServerId;
  std::string server_name;
  double predicted_seconds = 0.0;  // agent's estimate for the chosen server
  double total_seconds = 0.0;      // wall time of the whole call
  double exec_seconds = 0.0;       // server-reported compute time
  double transfer_seconds = 0.0;   // total - exec (marshal + network + queue)
  std::uint64_t input_bytes = 0;
  std::uint64_t output_bytes = 0;
  int attempts = 0;                // 1 = first server worked
};

class RequestHandle;

class NetSolveClient {
 public:
  explicit NetSolveClient(ClientConfig config) : config_(std::move(config)) {}

  /// Blocking solve. Returns the problem's output list.
  Result<std::vector<dsl::DataObject>> netsl(const std::string& problem,
                                             const std::vector<dsl::DataObject>& args,
                                             CallStats* stats = nullptr);

  /// Non-blocking solve; the returned handle owns a worker thread.
  /// Lifetime: the client must outlive every in-flight request it issued
  /// (the worker calls back into this client). Dropping the handle is fine —
  /// the orphaned worker finishes in the background — but destroy the
  /// client only after all requests completed or were waited on.
  RequestHandle netsl_nb(const std::string& problem, std::vector<dsl::DataObject> args);

  /// MATLAB-style: ns.call("dgesv", A, b) — arguments convert to DataObject.
  template <typename... Ts>
  Result<std::vector<dsl::DataObject>> call(const std::string& problem, Ts&&... ts) {
    std::vector<dsl::DataObject> args;
    args.reserve(sizeof...(Ts));
    (args.emplace_back(std::forward<Ts>(ts)), ...);
    return netsl(problem, args);
  }

  /// Ask the agent for the ranked candidate list without executing.
  Result<proto::ServerList> query(const std::string& problem,
                                  const std::vector<dsl::DataObject>& args);

  /// The union problem catalogue known to the agent.
  Result<std::vector<dsl::ProblemSpec>> list_problems();

  Result<proto::AgentStats> agent_stats();

  /// Liveness check against the agent.
  Status ping_agent();

  const ClientConfig& config() const noexcept { return config_; }

 private:
  friend class RequestHandle;

  Result<proto::ServerList> query_metadata(const std::string& problem,
                                           std::uint64_t input_bytes, std::uint64_t size_hint);
  /// One attempt against one server; transport-level failures are retryable.
  Result<proto::SolveResult> attempt(const proto::ServerCandidate& candidate,
                                     const proto::SolveRequest& request, double* io_seconds);
  void report_failure(proto::ServerId id, ErrorCode code);
  void report_metrics(proto::ServerId id, std::uint64_t bytes, double seconds);

  ClientConfig config_;
  std::atomic<std::uint64_t> next_request_id_{1};
};

/// Future-like handle for non-blocking calls (netslpr/netslwt).
class RequestHandle {
 public:
  RequestHandle() = default;
  RequestHandle(RequestHandle&&) = default;
  RequestHandle& operator=(RequestHandle&&) = default;

  /// Has the call finished (successfully or not)?
  bool ready() const;

  /// Block until completion and take the result. Calling wait() twice
  /// returns kInternal on the second call (the result is moved out).
  Result<std::vector<dsl::DataObject>> wait();

  /// Stats of the completed call (valid after wait()/ready()).
  const CallStats& stats() const;

  bool valid() const noexcept { return state_ != nullptr; }

 private:
  friend class NetSolveClient;

  struct State;
  explicit RequestHandle(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

}  // namespace ns::client
