// The NetSolve client library.
//
// The call surface mirrors the original C interface:
//   netsl(...)     -- blocking call: query the agent, send the request to
//                     the best server, transparently retrying down the
//                     ranked list on failure.
//   netsl_nb(...)  -- non-blocking call returning a RequestHandle with
//                     probe()/wait() (netslpr/netslwt in the original).
//   call(...)      -- MATLAB-style variadic convenience front end.
//
// Fault tolerance: a retryable failure (connection refused/reset, timeout,
// corrupted frame, injected server failure) is reported to the agent (which
// quarantines the server) and the next candidate is tried; the ranked list
// is re-fetched if exhausted, up to max_retries attempts total — or, when a
// deadline budget is configured, until the budget runs out. Retries are
// spaced by exponential backoff with decorrelated jitter so a pool-wide
// outage does not turn into a synchronized retry storm. Non-retryable
// failures (bad arguments, unknown problem, execution errors, expired
// deadline) surface immediately.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/trace.hpp"
#include "dsl/problem.hpp"
#include "dsl/value.hpp"
#include "net/shaped_link.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "proto/messages.hpp"

namespace ns::client {

struct ClientConfig {
  /// Agents to talk to, in preference order. Every agent-bound operation
  /// (query, catalogue, stats, failure/metrics reports) goes to the first
  /// live agent and fails over down the list; per-agent health is tracked so
  /// a dead agent is skipped for agent_down_cooldown_s before being retried.
  std::vector<net::Endpoint> agents;
  /// Shape applied to client->server request traffic (WAN emulation).
  net::LinkShape link;
  /// Total request attempts across candidates/re-queries before giving up.
  /// Ignored when `deadline_s` is set: the budget, not an attempt count,
  /// then decides when to stop.
  int max_retries = 4;
  double io_timeout_s = 30.0;
  /// Per-call deadline budget in seconds (0 = none). When set, the client
  /// keeps retrying until the budget runs out, clamps every IO wait to the
  /// remaining budget, and sends the remaining budget in each SolveRequest
  /// so servers can shed work that already expired.
  double deadline_s = 0.0;
  /// Backoff between retry attempts: decorrelated jitter,
  /// sleep = min(backoff_max_s, uniform(backoff_base_s, 3 * previous)),
  /// clamped to the remaining deadline budget. 0 disables backoff.
  double backoff_base_s = 0.005;
  double backoff_max_s = 0.25;
  /// Seed for the jitter draws (deterministic backoff sequences in tests).
  std::uint64_t backoff_seed = 0xb0ff;
  /// How many ranked candidates to request from the agent per query.
  std::uint32_t max_candidates = 8;
  /// Feed client-observed transfer metrics back to the agent.
  bool report_metrics = true;
  /// Report failed servers to the agent (enables agent-side blacklisting).
  bool report_failures = true;
  /// How long a failed agent is skipped before the client tries it again.
  double agent_down_cooldown_s = 2.0;
  /// Connect budget per agent dial. Deliberately short: a live agent accepts
  /// in microseconds, and a dead one should cost little before the client
  /// fails over to the next agent in the list.
  double agent_connect_timeout_s = 0.5;
  /// Bounded staleness of the degraded-mode candidate cache: the last good
  /// ranked list per problem is kept this long, and when ALL agents are
  /// unreachable, calls for cached problems go direct-to-server from it
  /// (counted in client.degraded_calls_total). 0 disables degraded mode.
  double candidate_cache_ttl_s = 30.0;

  // ---- hedged requests (tail-latency armor) ----
  /// Hedge delay in seconds; 0 disables hedging. When an attempt has been
  /// outstanding this long, a backup attempt is raced on the next-ranked
  /// candidate: first result wins and the loser is actively cancelled
  /// (CANCEL by request id, fire-and-forget). The configured value is the
  /// static fallback — once the per-problem attempt-latency histogram
  /// (client.problem.<name>.attempt_s, successes only) has hedge_min_samples
  /// observations, the delay is its hedge_quantile instead, so hedges fire
  /// only in the observed tail.
  double hedge_delay_s = 0.0;
  /// Quantile of observed attempt latency used as the hedge delay.
  double hedge_quantile = 0.95;
  /// Observations required before the quantile replaces the static delay.
  std::uint64_t hedge_min_samples = 20;
  /// Client identity stamped into every SolveRequest for the servers'
  /// per-client fair-share accounting. 0 (default) mints a random id per
  /// client instance; set explicitly to make several instances share one
  /// quota bucket (or to pin ids in tests).
  std::uint64_t client_id = 0;

  // ---- durable jobs (crash recovery / migration) ----
  /// When > 0 and an attempt's transport dies *after* the request was sent
  /// (connection reset, recv timeout — anything but connect-failed), the
  /// client does not immediately resubmit: it polls PROBE at the same server
  /// for up to this many seconds. A journaling server that crashed and
  /// restarted recovers the job from its write-ahead log and finishes it, so
  /// the original submission completes without a duplicate solve. 0 (default)
  /// keeps the classic resubmit-on-failure behavior.
  double reattach_s = 0.0;
  /// Stamp require_durable into every SolveRequest: servers whose journal
  /// fail-stopped (or that never journal) shed the request retryably instead
  /// of accepting it without crash protection.
  bool require_durable = false;
  /// After a failed reattach (the server stayed dead), ask the remaining
  /// ranked candidates whether any of them holds a replicated checkpoint for
  /// the request (CHECKPOINT_FETCH with adopt): the adopter resumes the job
  /// from the last replicated snapshot and the client waits there, instead
  /// of restarting the solve from iteration zero elsewhere. Needs servers
  /// configured with `replicas=` peers to have any effect.
  bool checkpoint_failover = false;

  // ---- transport (connection reuse / pipelining) ----
  /// Solve attempts, cancels, and agent round trips reuse pooled keep-alive
  /// connections; solve traffic to one server pipelines over a shared
  /// request-id-demultiplexed channel, so concurrent netsl_nb calls and
  /// hedges share one socket instead of dialing one each. Off restores the
  /// pre-reactor dial-per-call behaviour (the A/B baseline for benchmarks).
  bool pooled_transport = true;
};

/// Per-call telemetry, filled when the caller passes a stats out-param.
/// On failed calls the attempt/backoff/timing fields and the trace are
/// still valid; the server_* and byte fields stay at their defaults.
struct CallStats {
  proto::ServerId server_id = proto::kInvalidServerId;
  std::string server_name;
  double predicted_seconds = 0.0;  // agent's estimate for the chosen server
  double total_seconds = 0.0;      // wall time of the whole call
  double exec_seconds = 0.0;       // server-reported compute time
  double transfer_seconds = 0.0;   // total - exec (marshal + network + queue)
  std::uint64_t input_bytes = 0;
  std::uint64_t output_bytes = 0;
  int attempts = 0;                // 1 = first server worked
  double backoff_seconds = 0.0;    // total time slept between attempts
  /// True when the candidate list came from the client's staleness-bounded
  /// cache because no agent was reachable (degraded mode).
  bool degraded = false;
  /// True when a backup (hedge) attempt was launched for this call,
  /// whichever attempt ended up winning.
  bool hedged = false;
  /// Trace id minted for this call (carried to the agent and server).
  trace::TraceId trace_id = trace::kNoTrace;
  /// Per-hop spans of the call in causal order — agent query, scheduling
  /// decision, each attempt, and (for the winning attempt) the server's
  /// queue wait, compute, and the result transfer back. Offsets are seconds
  /// since call entry; starts are non-decreasing.
  std::vector<trace::Span> spans;
};

class RequestHandle;

class NetSolveClient {
 public:
  explicit NetSolveClient(ClientConfig config)
      : config_(std::move(config)),
        // request_ids travel to servers, where several clients' ids share one
        // cancellation table — seed from the trace-id entropy pool so two
        // clients do not mint colliding id streams.
        next_request_id_(trace::new_trace_id() | 1),
        // client_id travels to servers for fair-share accounting; minted from
        // the same entropy pool so two unconfigured clients land in separate
        // quota buckets.
        client_id_(config_.client_id != 0 ? config_.client_id
                                          : (trace::new_trace_id() | 1)),
        backoff_rng_(config_.backoff_seed),
        agent_health_(config_.agents.size()) {}

  /// Waits for background workers (netsl_nb calls whose handles were
  /// dropped, losing hedge attempts, in-flight cancel posts): they reference
  /// this client and would otherwise race its teardown.
  ~NetSolveClient();

  /// Blocking solve. Returns the problem's output list.
  Result<std::vector<dsl::DataObject>> netsl(const std::string& problem,
                                             const std::vector<dsl::DataObject>& args,
                                             CallStats* stats = nullptr);

  /// Non-blocking solve; the returned handle owns a worker thread.
  /// Lifetime: the client must outlive every in-flight request it issued
  /// (the worker calls back into this client). Dropping the handle is fine —
  /// the orphaned worker finishes in the background — but destroy the
  /// client only after all requests completed or were waited on.
  RequestHandle netsl_nb(const std::string& problem, std::vector<dsl::DataObject> args);

  /// MATLAB-style: ns.call("dgesv", A, b) — arguments convert to DataObject.
  template <typename... Ts>
  Result<std::vector<dsl::DataObject>> call(const std::string& problem, Ts&&... ts) {
    std::vector<dsl::DataObject> args;
    args.reserve(sizeof...(Ts));
    (args.emplace_back(std::forward<Ts>(ts)), ...);
    return netsl(problem, args);
  }

  /// Ask the agent for the ranked candidate list without executing.
  Result<proto::ServerList> query(const std::string& problem,
                                  const std::vector<dsl::DataObject>& args);

  /// The union problem catalogue known to the agent.
  Result<std::vector<dsl::ProblemSpec>> list_problems();

  Result<proto::AgentStats> agent_stats();

  /// Liveness check against the agent.
  Status ping_agent();

  const ClientConfig& config() const noexcept { return config_; }

 private:
  friend class RequestHandle;

  /// Per-configured-agent liveness, updated by every agent interaction.
  struct AgentHealth {
    double down_until = 0.0;  // skip until this now_seconds() timestamp
  };
  /// One problem's last good ranked list, kept for degraded-mode calls.
  struct CachedCandidates {
    proto::ServerList list;
    double stored_at = 0.0;
  };

  /// `timeout_cap` > 0 additionally clamps the IO timeout (deadline budget).
  /// On total agent outage the cache may answer instead; `*degraded` is set
  /// true in that case.
  Result<proto::ServerList> query_metadata(const std::string& problem,
                                           std::uint64_t input_bytes, std::uint64_t size_hint,
                                           double timeout_cap = 0.0,
                                           trace::TraceId trace_id = trace::kNoTrace,
                                           bool* degraded = nullptr);
  /// One attempt against one server; transport-level failures are retryable.
  Result<proto::SolveResult> attempt(const proto::ServerCandidate& candidate,
                                     const proto::SolveRequest& request, double* io_seconds);
  /// The hedge delay for one call: the per-problem attempt-latency quantile
  /// once enough samples exist, else the configured static delay. 0 = off.
  double hedge_delay_for(const std::string& problem) const;
  /// Fire-and-forget CANCEL for `request_id` at `peer`, on a background
  /// thread so the winning call's return path never blocks on the loser.
  void post_cancel_async(const net::Endpoint& peer, std::uint64_t request_id);
  /// Background-worker accounting (netsl_nb workers, hedge attempts, cancel
  /// posts). end_background() may be the thread's last touch of the client.
  void begin_background();
  void end_background();
  void report_failure(proto::ServerId id, ErrorCode code);
  void report_metrics(proto::ServerId id, std::uint64_t bytes, double seconds);
  /// Next decorrelated-jitter sleep given the previous one (thread-safe:
  /// netsl may run concurrently on several netsl_nb workers).
  double backoff_jitter(double prev_sleep);

  /// Agent indices in try order: the sticky active agent first (if not in
  /// cooldown), then other live agents, then cooled-down ones as a last
  /// resort (an empty health table would otherwise deadlock recovery).
  std::vector<std::size_t> agent_order();
  void note_agent_result(std::size_t index, bool ok);
  /// Round-trip against the first agent that answers, failing over down the
  /// ordered list (client.agent_failover_total counts rescued operations).
  Result<net::Message> agent_round_trip(std::uint16_t type, const serial::Bytes& payload,
                                        double timeout);
  /// Fire-and-forget to the first agent not in cooldown (reports are advice;
  /// they are not worth connect timeouts against dead agents).
  void post_to_agent(std::uint16_t type, const serial::Bytes& payload);

  ClientConfig config_;
  std::atomic<std::uint64_t> next_request_id_{1};
  std::uint64_t client_id_ = 0;
  std::mutex backoff_mu_;
  Rng backoff_rng_;

  std::mutex agents_mu_;
  std::vector<AgentHealth> agent_health_;
  std::size_t active_agent_ = 0;

  /// Live background workers; the destructor blocks on the condvar until
  /// this drains (no busy-spin).
  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  int bg_outstanding_ = 0;

  std::mutex cache_mu_;
  std::map<std::string, CachedCandidates> candidate_cache_;
};

/// Future-like handle for non-blocking calls (netslpr/netslwt).
class RequestHandle {
 public:
  RequestHandle() = default;
  RequestHandle(RequestHandle&&) = default;
  RequestHandle& operator=(RequestHandle&&) = default;

  /// Has the call finished (successfully or not)?
  bool ready() const;

  /// Block until completion and take the result. Calling wait() twice
  /// returns kInternal on the second call (the result is moved out).
  Result<std::vector<dsl::DataObject>> wait();

  /// Stats of the completed call (valid after wait()/ready()).
  const CallStats& stats() const;

  bool valid() const noexcept { return state_ != nullptr; }

 private:
  friend class NetSolveClient;

  struct State;
  explicit RequestHandle(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

/// Scrape a live NetSolve process's metrics registry over the wire
/// (proto::MetricsQuery -> MetricsDump). Works against any agent or server
/// endpoint; `prefix` filters entries by name ("" = everything).
Result<metrics::Snapshot> scrape_metrics(const net::Endpoint& peer, double timeout_s = 5.0,
                                         const std::string& prefix = {});

/// Cancel `request_id` on the server at `peer` and wait for the ack. The
/// outcome reports how far the request had progressed (queued, running, or
/// already completed/unknown). Used by operators and tests; the client's own
/// hedge-loser cancellation is fire-and-forget.
Result<proto::CancelAck> cancel_request(const net::Endpoint& peer, std::uint64_t request_id,
                                        double timeout_s = 5.0);

/// Ask the server at `peer` to drain (stop accepting work, finish or cancel
/// its queue within `deadline_s`, deregister from its agents). Returns the
/// ack with the server's outstanding-work snapshot; started=false means a
/// drain was already in progress. The rolling-restart primitive.
Result<proto::DrainAck> drain_server(const net::Endpoint& peer, double deadline_s = 0.0,
                                     double timeout_s = 5.0);

/// netslpr against a durable server: one PROBE round trip reporting where
/// `request_id` sits (queued/running/terminal) plus the kernel's live
/// iteration/residual. With `fetch_result`, a terminal job's stored
/// SolveResult rides back in the reply.
Result<proto::ProbeReply> probe_request(const net::Endpoint& peer, std::uint64_t request_id,
                                        bool fetch_result = false, double timeout_s = 5.0);

/// netslwt against a durable server: poll PROBE until `request_id` reaches a
/// terminal state, then return its stored SolveResult (whose error_code the
/// caller still inspects). Connection failures are tolerated and retried —
/// the server may be mid-restart after a crash — and a MIGRATED result is
/// followed to the destination server transparently. Fails with kTimeout
/// when `budget_s` runs out first.
Result<proto::SolveResult> wait_for_job(const net::Endpoint& peer, std::uint64_t request_id,
                                        double budget_s, double poll_interval_s = 0.05);

}  // namespace ns::client
