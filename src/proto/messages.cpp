#include "proto/messages.hpp"

namespace ns::proto {

namespace {

void encode_endpoint(serial::Encoder& enc, const net::Endpoint& ep) {
  enc.put_string(ep.host);
  enc.put_u16(ep.port);
}

Result<net::Endpoint> decode_endpoint(serial::Decoder& dec) {
  net::Endpoint ep;
  auto host = dec.get_string(256);
  if (!host.ok()) return host.error();
  ep.host = std::move(host).value();
  auto port = dec.get_u16();
  if (!port.ok()) return port.error();
  ep.port = port.value();
  return ep;
}

void encode_specs(serial::Encoder& enc, const std::vector<dsl::ProblemSpec>& specs) {
  enc.put_u32(static_cast<std::uint32_t>(specs.size()));
  for (const auto& s : specs) s.encode(enc);
}

Result<std::vector<dsl::ProblemSpec>> decode_specs(serial::Decoder& dec) {
  auto count = dec.get_u32();
  if (!count.ok()) return count.error();
  if (count.value() > 65536) {
    return make_error(ErrorCode::kProtocol, "too many problem specs");
  }
  std::vector<dsl::ProblemSpec> specs;
  specs.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto spec = dsl::ProblemSpec::decode(dec);
    if (!spec.ok()) return spec.error();
    specs.push_back(std::move(spec).value());
  }
  return specs;
}

}  // namespace

void RegisterServer::encode(serial::Encoder& enc) const {
  enc.put_string(server_name);
  encode_endpoint(enc, endpoint);
  enc.put_f64(mflops);
  encode_specs(enc, problems);
  enc.put_u64(incarnation);
}

Result<RegisterServer> RegisterServer::decode(serial::Decoder& dec) {
  RegisterServer msg;
  auto name = dec.get_string(256);
  if (!name.ok()) return name.error();
  msg.server_name = std::move(name).value();
  auto ep = decode_endpoint(dec);
  if (!ep.ok()) return ep.error();
  msg.endpoint = std::move(ep).value();
  auto mflops = dec.get_f64();
  if (!mflops.ok()) return mflops.error();
  msg.mflops = mflops.value();
  auto specs = decode_specs(dec);
  if (!specs.ok()) return specs.error();
  msg.problems = std::move(specs).value();
  auto inc = dec.get_u64();
  if (!inc.ok()) return inc.error();
  msg.incarnation = inc.value();
  return msg;
}

void RegisterAck::encode(serial::Encoder& enc) const {
  enc.put_u32(server_id);
  enc.put_u32(static_cast<std::uint32_t>(peer_agents.size()));
  for (const auto& ep : peer_agents) encode_endpoint(enc, ep);
}

Result<RegisterAck> RegisterAck::decode(serial::Decoder& dec) {
  RegisterAck msg;
  auto id = dec.get_u32();
  if (!id.ok()) return id.error();
  msg.server_id = id.value();
  auto count = dec.get_u32();
  if (!count.ok()) return count.error();
  if (count.value() > 1024) {
    return make_error(ErrorCode::kProtocol, "too many peer agents");
  }
  msg.peer_agents.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto ep = decode_endpoint(dec);
    if (!ep.ok()) return ep.error();
    msg.peer_agents.push_back(std::move(ep).value());
  }
  return msg;
}

void WorkloadReport::encode(serial::Encoder& enc) const {
  enc.put_u32(server_id);
  enc.put_f64(workload);
  enc.put_u64(completed);
  enc.put_f64(sojourn_p95_s);
  enc.put_f64(free_slots);
  enc.put_i32(durable);
  enc.put_f64(mem_free_bytes);
  enc.put_i32(spill_active);
}

Result<WorkloadReport> WorkloadReport::decode(serial::Decoder& dec) {
  WorkloadReport msg;
  auto id = dec.get_u32();
  if (!id.ok()) return id.error();
  msg.server_id = id.value();
  auto load = dec.get_f64();
  if (!load.ok()) return load.error();
  msg.workload = load.value();
  auto completed = dec.get_u64();
  if (!completed.ok()) return completed.error();
  msg.completed = completed.value();
  // Queue-pressure fields are a trailing addition: a report from an older
  // server simply ends here and keeps the "unknown" defaults.
  if (dec.exhausted()) return msg;
  auto sojourn = dec.get_f64();
  if (!sojourn.ok()) return sojourn.error();
  msg.sojourn_p95_s = sojourn.value();
  auto slots = dec.get_f64();
  if (!slots.ok()) return slots.error();
  msg.free_slots = slots.value();
  // Durability health is a later trailing addition still.
  if (dec.exhausted()) return msg;
  auto durable = dec.get_i32();
  if (!durable.ok()) return durable.error();
  msg.durable = durable.value();
  // Memory-pressure fields are the latest trailing addition.
  if (dec.exhausted()) return msg;
  auto mem_free = dec.get_f64();
  if (!mem_free.ok()) return mem_free.error();
  msg.mem_free_bytes = mem_free.value();
  auto spill = dec.get_i32();
  if (!spill.ok()) return spill.error();
  msg.spill_active = spill.value();
  return msg;
}

void Query::encode(serial::Encoder& enc) const {
  enc.put_string(problem);
  enc.put_u64(input_bytes);
  enc.put_u64(output_bytes);
  enc.put_u64(size_hint);
  enc.put_u32(max_candidates);
  enc.put_u64(trace_id);
}

Result<Query> Query::decode(serial::Decoder& dec) {
  Query msg;
  auto problem = dec.get_string(256);
  if (!problem.ok()) return problem.error();
  msg.problem = std::move(problem).value();
  auto in_bytes = dec.get_u64();
  if (!in_bytes.ok()) return in_bytes.error();
  msg.input_bytes = in_bytes.value();
  auto out_bytes = dec.get_u64();
  if (!out_bytes.ok()) return out_bytes.error();
  msg.output_bytes = out_bytes.value();
  auto hint = dec.get_u64();
  if (!hint.ok()) return hint.error();
  msg.size_hint = hint.value();
  auto max_c = dec.get_u32();
  if (!max_c.ok()) return max_c.error();
  msg.max_candidates = max_c.value();
  auto trace = dec.get_u64();
  if (!trace.ok()) return trace.error();
  msg.trace_id = trace.value();
  return msg;
}

void ServerCandidate::encode(serial::Encoder& enc) const {
  enc.put_u32(server_id);
  enc.put_string(server_name);
  encode_endpoint(enc, endpoint);
  enc.put_f64(predicted_seconds);
}

Result<ServerCandidate> ServerCandidate::decode(serial::Decoder& dec) {
  ServerCandidate msg;
  auto id = dec.get_u32();
  if (!id.ok()) return id.error();
  msg.server_id = id.value();
  auto name = dec.get_string(256);
  if (!name.ok()) return name.error();
  msg.server_name = std::move(name).value();
  auto ep = decode_endpoint(dec);
  if (!ep.ok()) return ep.error();
  msg.endpoint = std::move(ep).value();
  auto pred = dec.get_f64();
  if (!pred.ok()) return pred.error();
  msg.predicted_seconds = pred.value();
  return msg;
}

void ServerList::encode(serial::Encoder& enc) const {
  enc.put_u32(static_cast<std::uint32_t>(candidates.size()));
  for (const auto& c : candidates) c.encode(enc);
  enc.put_f64(schedule_seconds);
}

Result<ServerList> ServerList::decode(serial::Decoder& dec) {
  auto count = dec.get_u32();
  if (!count.ok()) return count.error();
  if (count.value() > 65536) {
    return make_error(ErrorCode::kProtocol, "too many candidates");
  }
  ServerList msg;
  msg.candidates.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto c = ServerCandidate::decode(dec);
    if (!c.ok()) return c.error();
    msg.candidates.push_back(std::move(c).value());
  }
  auto sched = dec.get_f64();
  if (!sched.ok()) return sched.error();
  msg.schedule_seconds = sched.value();
  return msg;
}

void FailureReport::encode(serial::Encoder& enc) const {
  enc.put_u32(server_id);
  enc.put_u16(error_code);
}

Result<FailureReport> FailureReport::decode(serial::Decoder& dec) {
  FailureReport msg;
  auto id = dec.get_u32();
  if (!id.ok()) return id.error();
  msg.server_id = id.value();
  auto code = dec.get_u16();
  if (!code.ok()) return code.error();
  msg.error_code = code.value();
  return msg;
}

void MetricsReport::encode(serial::Encoder& enc) const {
  enc.put_u32(server_id);
  enc.put_u64(bytes);
  enc.put_f64(transfer_seconds);
}

Result<MetricsReport> MetricsReport::decode(serial::Decoder& dec) {
  MetricsReport msg;
  auto id = dec.get_u32();
  if (!id.ok()) return id.error();
  msg.server_id = id.value();
  auto bytes = dec.get_u64();
  if (!bytes.ok()) return bytes.error();
  msg.bytes = bytes.value();
  auto secs = dec.get_f64();
  if (!secs.ok()) return secs.error();
  msg.transfer_seconds = secs.value();
  return msg;
}

void ProblemCatalog::encode(serial::Encoder& enc) const { encode_specs(enc, problems); }

Result<ProblemCatalog> ProblemCatalog::decode(serial::Decoder& dec) {
  ProblemCatalog msg;
  auto specs = decode_specs(dec);
  if (!specs.ok()) return specs.error();
  msg.problems = std::move(specs).value();
  return msg;
}

void SolveRequest::encode(serial::Encoder& enc) const {
  enc.put_u64(request_id);
  enc.put_string(problem);
  dsl::encode_args(enc, args);
  enc.put_f64(deadline_s);
  enc.put_u64(trace_id);
  enc.put_u64(client_id);
  enc.put_bool(require_durable);
}

Result<SolveRequest> SolveRequest::decode(serial::Decoder& dec) {
  SolveRequest msg;
  auto id = dec.get_u64();
  if (!id.ok()) return id.error();
  msg.request_id = id.value();
  auto problem = dec.get_string(256);
  if (!problem.ok()) return problem.error();
  msg.problem = std::move(problem).value();
  auto args = dsl::decode_args(dec);
  if (!args.ok()) return args.error();
  msg.args = std::move(args).value();
  auto deadline = dec.get_f64();
  if (!deadline.ok()) return deadline.error();
  msg.deadline_s = deadline.value();
  auto trace = dec.get_u64();
  if (!trace.ok()) return trace.error();
  msg.trace_id = trace.value();
  // client_id is a trailing addition; requests from older clients end here
  // and stay anonymous (0 = exempt from per-client quotas).
  if (dec.exhausted()) return msg;
  auto client = dec.get_u64();
  if (!client.ok()) return client.error();
  msg.client_id = client.value();
  // require_durable is a later trailing addition still.
  if (dec.exhausted()) return msg;
  auto durable = dec.get_u8();
  if (!durable.ok()) return durable.error();
  if (durable.value() > 1) return make_error(ErrorCode::kProtocol, "bad durable flag");
  msg.require_durable = durable.value() != 0;
  return msg;
}

void SolveResult::encode(serial::Encoder& enc) const {
  enc.put_u64(request_id);
  enc.put_u16(error_code);
  enc.put_string(error_message);
  dsl::encode_args(enc, outputs);
  enc.put_f64(exec_seconds);
  enc.put_f64(queue_seconds);
  enc.put_f64(retry_after_s);
  enc.put_string(migrated_host);
  enc.put_u16(migrated_port);
}

Result<SolveResult> SolveResult::decode(serial::Decoder& dec) {
  SolveResult msg;
  auto id = dec.get_u64();
  if (!id.ok()) return id.error();
  msg.request_id = id.value();
  auto code = dec.get_u16();
  if (!code.ok()) return code.error();
  msg.error_code = code.value();
  auto err = dec.get_string();
  if (!err.ok()) return err.error();
  msg.error_message = std::move(err).value();
  auto outputs = dsl::decode_args(dec);
  if (!outputs.ok()) return outputs.error();
  msg.outputs = std::move(outputs).value();
  auto secs = dec.get_f64();
  if (!secs.ok()) return secs.error();
  msg.exec_seconds = secs.value();
  auto queue = dec.get_f64();
  if (!queue.ok()) return queue.error();
  msg.queue_seconds = queue.value();
  // retry_after_s is a trailing addition; results from older servers end
  // here and carry no backpressure hint.
  if (dec.exhausted()) return msg;
  auto retry_after = dec.get_f64();
  if (!retry_after.ok()) return retry_after.error();
  msg.retry_after_s = retry_after.value();
  // migrated_host/port is a further trailing addition (drain-time job
  // migration); results from older servers end here.
  if (dec.exhausted()) return msg;
  auto mhost = dec.get_string(256);
  if (!mhost.ok()) return mhost.error();
  msg.migrated_host = std::move(mhost).value();
  auto mport = dec.get_u16();
  if (!mport.ok()) return mport.error();
  msg.migrated_port = mport.value();
  return msg;
}

void CancelRequest::encode(serial::Encoder& enc) const { enc.put_u64(request_id); }

Result<CancelRequest> CancelRequest::decode(serial::Decoder& dec) {
  CancelRequest msg;
  auto id = dec.get_u64();
  if (!id.ok()) return id.error();
  msg.request_id = id.value();
  return msg;
}

void CancelAck::encode(serial::Encoder& enc) const {
  enc.put_u64(request_id);
  enc.put_u8(static_cast<std::uint8_t>(outcome));
}

Result<CancelAck> CancelAck::decode(serial::Decoder& dec) {
  CancelAck msg;
  auto id = dec.get_u64();
  if (!id.ok()) return id.error();
  msg.request_id = id.value();
  auto outcome = dec.get_u8();
  if (!outcome.ok()) return outcome.error();
  if (outcome.value() > static_cast<std::uint8_t>(CancelOutcome::kRunning)) {
    return make_error(ErrorCode::kProtocol, "bad cancel outcome");
  }
  msg.outcome = static_cast<CancelOutcome>(outcome.value());
  return msg;
}

void DrainRequest::encode(serial::Encoder& enc) const { enc.put_f64(deadline_s); }

Result<DrainRequest> DrainRequest::decode(serial::Decoder& dec) {
  DrainRequest msg;
  auto deadline = dec.get_f64();
  if (!deadline.ok()) return deadline.error();
  msg.deadline_s = deadline.value();
  return msg;
}

void DrainAck::encode(serial::Encoder& enc) const {
  enc.put_u8(started ? 1 : 0);
  enc.put_u32(running);
  enc.put_u32(queued);
}

Result<DrainAck> DrainAck::decode(serial::Decoder& dec) {
  DrainAck msg;
  auto started = dec.get_u8();
  if (!started.ok()) return started.error();
  if (started.value() > 1) return make_error(ErrorCode::kProtocol, "bad drain ack flag");
  msg.started = started.value() != 0;
  auto running = dec.get_u32();
  if (!running.ok()) return running.error();
  msg.running = running.value();
  auto queued = dec.get_u32();
  if (!queued.ok()) return queued.error();
  msg.queued = queued.value();
  return msg;
}

void DeregisterServer::encode(serial::Encoder& enc) const { enc.put_u32(server_id); }

Result<DeregisterServer> DeregisterServer::decode(serial::Decoder& dec) {
  DeregisterServer msg;
  auto id = dec.get_u32();
  if (!id.ok()) return id.error();
  msg.server_id = id.value();
  return msg;
}

void ProbeRequest::encode(serial::Encoder& enc) const {
  enc.put_u64(request_id);
  enc.put_bool(fetch_result);
}

Result<ProbeRequest> ProbeRequest::decode(serial::Decoder& dec) {
  ProbeRequest msg;
  auto id = dec.get_u64();
  if (!id.ok()) return id.error();
  msg.request_id = id.value();
  auto fetch = dec.get_u8();
  if (!fetch.ok()) return fetch.error();
  if (fetch.value() > 1) return make_error(ErrorCode::kProtocol, "bad probe flag");
  msg.fetch_result = fetch.value() != 0;
  return msg;
}

void ProbeReply::encode(serial::Encoder& enc) const {
  enc.put_u64(request_id);
  enc.put_u8(static_cast<std::uint8_t>(state));
  enc.put_u64(iteration);
  enc.put_f64(residual);
  enc.put_bool(has_result);
  if (has_result) {
    // Framed as a blob: SolveResult's own trailing-optional fields would
    // otherwise swallow whatever follows it in a future revision.
    serial::Encoder nested;
    result.encode(nested);
    enc.put_bytes(nested.bytes().data(), nested.size());
  }
}

Result<ProbeReply> ProbeReply::decode(serial::Decoder& dec) {
  ProbeReply msg;
  auto id = dec.get_u64();
  if (!id.ok()) return id.error();
  msg.request_id = id.value();
  auto state = dec.get_u8();
  if (!state.ok()) return state.error();
  if (state.value() > static_cast<std::uint8_t>(JobState::kFailed)) {
    return make_error(ErrorCode::kProtocol, "bad job state");
  }
  msg.state = static_cast<JobState>(state.value());
  auto iteration = dec.get_u64();
  if (!iteration.ok()) return iteration.error();
  msg.iteration = iteration.value();
  auto residual = dec.get_f64();
  if (!residual.ok()) return residual.error();
  msg.residual = residual.value();
  auto has_result = dec.get_u8();
  if (!has_result.ok()) return has_result.error();
  if (has_result.value() > 1) return make_error(ErrorCode::kProtocol, "bad probe reply flag");
  msg.has_result = has_result.value() != 0;
  if (msg.has_result) {
    auto blob = dec.get_blob();
    if (!blob.ok()) return blob.error();
    serial::Decoder nested(blob.value());
    auto result = SolveResult::decode(nested);
    if (!result.ok()) return result.error();
    msg.result = std::move(result).value();
  }
  return msg;
}

void JobTransfer::encode(serial::Encoder& enc) const {
  serial::Encoder nested;
  request.encode(nested);
  enc.put_bytes(nested.bytes().data(), nested.size());
  enc.put_f64(deadline_remaining_s);
  enc.put_u64(checkpoint_iteration);
  enc.put_f64(checkpoint_residual);
  enc.put_bytes(checkpoint_state.data(), checkpoint_state.size());
  enc.put_string(from_server);
}

Result<JobTransfer> JobTransfer::decode(serial::Decoder& dec) {
  JobTransfer msg;
  auto blob = dec.get_blob();
  if (!blob.ok()) return blob.error();
  serial::Decoder nested(blob.value());
  auto request = SolveRequest::decode(nested);
  if (!request.ok()) return request.error();
  msg.request = std::move(request).value();
  auto deadline = dec.get_f64();
  if (!deadline.ok()) return deadline.error();
  msg.deadline_remaining_s = deadline.value();
  auto iteration = dec.get_u64();
  if (!iteration.ok()) return iteration.error();
  msg.checkpoint_iteration = iteration.value();
  auto residual = dec.get_f64();
  if (!residual.ok()) return residual.error();
  msg.checkpoint_residual = residual.value();
  auto state = dec.get_blob();
  if (!state.ok()) return state.error();
  msg.checkpoint_state = std::move(state).value();
  auto from = dec.get_string(256);
  if (!from.ok()) return from.error();
  msg.from_server = std::move(from).value();
  return msg;
}

void TransferAck::encode(serial::Encoder& enc) const {
  enc.put_u64(request_id);
  enc.put_bool(accepted);
  enc.put_string(reason);
}

Result<TransferAck> TransferAck::decode(serial::Decoder& dec) {
  TransferAck msg;
  auto id = dec.get_u64();
  if (!id.ok()) return id.error();
  msg.request_id = id.value();
  auto accepted = dec.get_u8();
  if (!accepted.ok()) return accepted.error();
  if (accepted.value() > 1) return make_error(ErrorCode::kProtocol, "bad transfer ack flag");
  msg.accepted = accepted.value() != 0;
  auto reason = dec.get_string();
  if (!reason.ok()) return reason.error();
  msg.reason = std::move(reason).value();
  return msg;
}

void CheckpointPut::encode(serial::Encoder& enc) const {
  enc.put_string(origin);
  enc.put_u64(request_id);
  enc.put_f64(deadline_remaining_s);
  enc.put_u64(iteration);
  enc.put_f64(residual);
  enc.put_u64(base_iteration);
  enc.put_bytes(frame.data(), frame.size());
  enc.put_bool(has_request);
  serial::Encoder nested;
  if (has_request) request.encode(nested);
  enc.put_bytes(nested.bytes().data(), nested.size());
}

Result<CheckpointPut> CheckpointPut::decode(serial::Decoder& dec) {
  CheckpointPut msg;
  auto origin = dec.get_string(256);
  if (!origin.ok()) return origin.error();
  msg.origin = std::move(origin).value();
  auto id = dec.get_u64();
  if (!id.ok()) return id.error();
  msg.request_id = id.value();
  auto deadline = dec.get_f64();
  if (!deadline.ok()) return deadline.error();
  msg.deadline_remaining_s = deadline.value();
  auto iteration = dec.get_u64();
  if (!iteration.ok()) return iteration.error();
  msg.iteration = iteration.value();
  auto residual = dec.get_f64();
  if (!residual.ok()) return residual.error();
  msg.residual = residual.value();
  auto base = dec.get_u64();
  if (!base.ok()) return base.error();
  msg.base_iteration = base.value();
  auto frame = dec.get_blob();
  if (!frame.ok()) return frame.error();
  msg.frame = std::move(frame).value();
  auto has_request = dec.get_u8();
  if (!has_request.ok()) return has_request.error();
  if (has_request.value() > 1) {
    return make_error(ErrorCode::kProtocol, "bad checkpoint put flag");
  }
  msg.has_request = has_request.value() != 0;
  auto blob = dec.get_blob();
  if (!blob.ok()) return blob.error();
  if (msg.has_request) {
    serial::Decoder nested(blob.value());
    auto request = SolveRequest::decode(nested);
    if (!request.ok()) return request.error();
    msg.request = std::move(request).value();
  }
  return msg;
}

void CheckpointPutAck::encode(serial::Encoder& enc) const {
  enc.put_u64(request_id);
  enc.put_bool(accepted);
  enc.put_string(reason);
}

Result<CheckpointPutAck> CheckpointPutAck::decode(serial::Decoder& dec) {
  CheckpointPutAck msg;
  auto id = dec.get_u64();
  if (!id.ok()) return id.error();
  msg.request_id = id.value();
  auto accepted = dec.get_u8();
  if (!accepted.ok()) return accepted.error();
  if (accepted.value() > 1) {
    return make_error(ErrorCode::kProtocol, "bad checkpoint ack flag");
  }
  msg.accepted = accepted.value() != 0;
  auto reason = dec.get_string();
  if (!reason.ok()) return reason.error();
  msg.reason = std::move(reason).value();
  return msg;
}

void CheckpointFetch::encode(serial::Encoder& enc) const {
  enc.put_u64(request_id);
  enc.put_string(origin);
  enc.put_bool(adopt);
}

Result<CheckpointFetch> CheckpointFetch::decode(serial::Decoder& dec) {
  CheckpointFetch msg;
  auto id = dec.get_u64();
  if (!id.ok()) return id.error();
  msg.request_id = id.value();
  auto origin = dec.get_string(256);
  if (!origin.ok()) return origin.error();
  msg.origin = std::move(origin).value();
  auto adopt = dec.get_u8();
  if (!adopt.ok()) return adopt.error();
  if (adopt.value() > 1) return make_error(ErrorCode::kProtocol, "bad fetch flag");
  msg.adopt = adopt.value() != 0;
  return msg;
}

void CheckpointFetchReply::encode(serial::Encoder& enc) const {
  enc.put_u64(request_id);
  enc.put_bool(found);
  enc.put_bool(adopted);
  enc.put_u64(iteration);
  enc.put_f64(residual);
  enc.put_string(origin);
}

Result<CheckpointFetchReply> CheckpointFetchReply::decode(serial::Decoder& dec) {
  CheckpointFetchReply msg;
  auto id = dec.get_u64();
  if (!id.ok()) return id.error();
  msg.request_id = id.value();
  auto found = dec.get_u8();
  if (!found.ok()) return found.error();
  if (found.value() > 1) return make_error(ErrorCode::kProtocol, "bad fetch reply flag");
  msg.found = found.value() != 0;
  auto adopted = dec.get_u8();
  if (!adopted.ok()) return adopted.error();
  if (adopted.value() > 1) return make_error(ErrorCode::kProtocol, "bad fetch reply flag");
  msg.adopted = adopted.value() != 0;
  auto iteration = dec.get_u64();
  if (!iteration.ok()) return iteration.error();
  msg.iteration = iteration.value();
  auto residual = dec.get_f64();
  if (!residual.ok()) return residual.error();
  msg.residual = residual.value();
  auto origin = dec.get_string(256);
  if (!origin.ok()) return origin.error();
  msg.origin = std::move(origin).value();
  return msg;
}

void MetricsQuery::encode(serial::Encoder& enc) const { enc.put_string(prefix); }

Result<MetricsQuery> MetricsQuery::decode(serial::Decoder& dec) {
  MetricsQuery msg;
  auto prefix = dec.get_string(256);
  if (!prefix.ok()) return prefix.error();
  msg.prefix = std::move(prefix).value();
  return msg;
}

void MetricsDump::encode(serial::Encoder& enc) const {
  enc.put_u32(static_cast<std::uint32_t>(snapshot.entries.size()));
  for (const auto& e : snapshot.entries) {
    enc.put_u8(static_cast<std::uint8_t>(e.kind));
    enc.put_string(e.name);
    enc.put_u64(e.count);
    enc.put_f64(e.value);
    if (e.kind == metrics::Snapshot::Kind::kHistogram) {
      enc.put_f64(e.min);
      enc.put_f64(e.max);
      enc.put_u32(static_cast<std::uint32_t>(e.buckets.size()));
      for (const auto b : e.buckets) enc.put_u64(b);
    }
  }
}

Result<MetricsDump> MetricsDump::decode(serial::Decoder& dec) {
  auto count = dec.get_u32();
  if (!count.ok()) return count.error();
  if (count.value() > 65536) {
    return make_error(ErrorCode::kProtocol, "too many metrics entries");
  }
  MetricsDump msg;
  msg.snapshot.entries.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    metrics::Snapshot::Entry e;
    auto kind = dec.get_u8();
    if (!kind.ok()) return kind.error();
    if (kind.value() > static_cast<std::uint8_t>(metrics::Snapshot::Kind::kHistogram)) {
      return make_error(ErrorCode::kProtocol, "bad metric kind");
    }
    e.kind = static_cast<metrics::Snapshot::Kind>(kind.value());
    auto name = dec.get_string(512);
    if (!name.ok()) return name.error();
    e.name = std::move(name).value();
    auto cnt = dec.get_u64();
    if (!cnt.ok()) return cnt.error();
    e.count = cnt.value();
    auto value = dec.get_f64();
    if (!value.ok()) return value.error();
    e.value = value.value();
    if (e.kind == metrics::Snapshot::Kind::kHistogram) {
      auto min = dec.get_f64();
      if (!min.ok()) return min.error();
      e.min = min.value();
      auto max = dec.get_f64();
      if (!max.ok()) return max.error();
      e.max = max.value();
      auto buckets = dec.get_u32();
      if (!buckets.ok()) return buckets.error();
      if (buckets.value() != metrics::kNumBuckets) {
        return make_error(ErrorCode::kProtocol, "histogram bucket count mismatch");
      }
      e.buckets.reserve(buckets.value());
      for (std::uint32_t j = 0; j < buckets.value(); ++j) {
        auto b = dec.get_u64();
        if (!b.ok()) return b.error();
        e.buckets.push_back(b.value());
      }
    }
    msg.snapshot.entries.push_back(std::move(e));
  }
  return msg;
}

void ErrorReply::encode(serial::Encoder& enc) const {
  enc.put_u16(error_code);
  enc.put_string(message);
}

Result<ErrorReply> ErrorReply::decode(serial::Decoder& dec) {
  ErrorReply msg;
  auto code = dec.get_u16();
  if (!code.ok()) return code.error();
  msg.error_code = code.value();
  auto message = dec.get_string();
  if (!message.ok()) return message.error();
  msg.message = std::move(message).value();
  return msg;
}

void SyncEntry::encode(serial::Encoder& enc) const {
  enc.put_string(server_name);
  encode_endpoint(enc, endpoint);
  enc.put_f64(mflops);
  enc.put_f64(workload);
  enc.put_u64(completed);
  enc.put_bool(alive);
  enc.put_f64(age_seconds);
  encode_specs(enc, problems);
}

Result<SyncEntry> SyncEntry::decode(serial::Decoder& dec) {
  SyncEntry msg;
  auto name = dec.get_string(256);
  if (!name.ok()) return name.error();
  msg.server_name = std::move(name).value();
  auto ep = decode_endpoint(dec);
  if (!ep.ok()) return ep.error();
  msg.endpoint = std::move(ep).value();
  auto mflops = dec.get_f64();
  if (!mflops.ok()) return mflops.error();
  msg.mflops = mflops.value();
  auto workload = dec.get_f64();
  if (!workload.ok()) return workload.error();
  msg.workload = workload.value();
  auto completed = dec.get_u64();
  if (!completed.ok()) return completed.error();
  msg.completed = completed.value();
  auto alive = dec.get_bool();
  if (!alive.ok()) return alive.error();
  msg.alive = alive.value();
  auto age = dec.get_f64();
  if (!age.ok()) return age.error();
  msg.age_seconds = age.value();
  auto specs = decode_specs(dec);
  if (!specs.ok()) return specs.error();
  msg.problems = std::move(specs).value();
  return msg;
}

void SyncState::encode(serial::Encoder& enc) const {
  enc.put_u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) e.encode(enc);
}

Result<SyncState> SyncState::decode(serial::Decoder& dec) {
  auto count = dec.get_u32();
  if (!count.ok()) return count.error();
  if (count.value() > 65536) {
    return make_error(ErrorCode::kProtocol, "too many sync entries");
  }
  SyncState msg;
  msg.entries.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto entry = SyncEntry::decode(dec);
    if (!entry.ok()) return entry.error();
    msg.entries.push_back(std::move(entry).value());
  }
  return msg;
}

void PeerStatus::encode(serial::Encoder& enc) const {
  encode_endpoint(enc, endpoint);
  enc.put_bool(alive);
  enc.put_f64(age_seconds);
}

Result<PeerStatus> PeerStatus::decode(serial::Decoder& dec) {
  PeerStatus msg;
  auto ep = decode_endpoint(dec);
  if (!ep.ok()) return ep.error();
  msg.endpoint = std::move(ep).value();
  auto alive = dec.get_bool();
  if (!alive.ok()) return alive.error();
  msg.alive = alive.value();
  auto age = dec.get_f64();
  if (!age.ok()) return age.error();
  msg.age_seconds = age.value();
  return msg;
}

void AgentStats::encode(serial::Encoder& enc) const {
  enc.put_u64(queries);
  enc.put_u64(registrations);
  enc.put_u64(workload_reports);
  enc.put_u64(failure_reports);
  enc.put_u32(alive_servers);
  enc.put_u32(static_cast<std::uint32_t>(peers.size()));
  for (const auto& p : peers) p.encode(enc);
}

Result<AgentStats> AgentStats::decode(serial::Decoder& dec) {
  AgentStats msg;
  auto queries = dec.get_u64();
  if (!queries.ok()) return queries.error();
  msg.queries = queries.value();
  auto regs = dec.get_u64();
  if (!regs.ok()) return regs.error();
  msg.registrations = regs.value();
  auto reports = dec.get_u64();
  if (!reports.ok()) return reports.error();
  msg.workload_reports = reports.value();
  auto failures = dec.get_u64();
  if (!failures.ok()) return failures.error();
  msg.failure_reports = failures.value();
  auto alive = dec.get_u32();
  if (!alive.ok()) return alive.error();
  msg.alive_servers = alive.value();
  auto count = dec.get_u32();
  if (!count.ok()) return count.error();
  if (count.value() > 1024) {
    return make_error(ErrorCode::kProtocol, "too many peer statuses");
  }
  msg.peers.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto p = PeerStatus::decode(dec);
    if (!p.ok()) return p.error();
    msg.peers.push_back(std::move(p).value());
  }
  return msg;
}

}  // namespace ns::proto
