// NetSolve wire protocol.
//
// One message per frame (see serial/frame.hpp). Three conversations exist:
//   server <-> agent : RegisterServer/RegisterAck, WorkloadReport,
//                      DeregisterServer, Shutdown
//   client <-> agent : Query/ServerList, ListProblems/ProblemCatalog,
//                      FailureReport, MetricsReport
//   client <-> server: SolveRequest/SolveResult, CancelRequest/CancelAck,
//                      DrainRequest/DrainAck, ProbeRequest/ProbeReply,
//                      Ping/Pong
//   server <-> server: JobTransfer/TransferAck (drain-time job migration)
//
// Every message type has encode()/decode() against the portable codec; the
// decode side never trusts the peer (bounds, tags and enum ranges are
// validated).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "dsl/problem.hpp"
#include "dsl/value.hpp"
#include "net/endpoint.hpp"
#include "serial/codec.hpp"

namespace ns::proto {

enum class MessageType : std::uint16_t {
  kRegisterServer = 1,
  kRegisterAck = 2,
  kWorkloadReport = 3,
  kQuery = 4,
  kServerList = 5,
  kSolveRequest = 6,
  kSolveResult = 7,
  kFailureReport = 8,
  kMetricsReport = 9,
  kListProblems = 10,
  kProblemCatalog = 11,
  kPing = 12,
  kPong = 13,
  kShutdown = 14,
  kErrorReply = 15,
  kAgentStatsRequest = 16,
  kAgentStatsReply = 17,
  kSyncState = 18,
  kMetricsQuery = 19,
  kMetricsDump = 20,
  kSyncPull = 21,
  kCancelRequest = 22,
  kCancelAck = 23,
  kDrainRequest = 24,
  kDrainAck = 25,
  kDeregisterServer = 26,
  kProbeRequest = 27,
  kProbeReply = 28,
  kJobTransfer = 29,
  kTransferAck = 30,
  kCheckpointPut = 31,
  kCheckpointPutAck = 32,
  kCheckpointFetch = 33,
  kCheckpointFetchReply = 34,
};

using ServerId = std::uint32_t;
inline constexpr ServerId kInvalidServerId = 0;

// ---- server -> agent ----

struct RegisterServer {
  std::string server_name;
  net::Endpoint endpoint;          // where clients reach this server
  double mflops = 0.0;             // LINPACK-style rating
  std::vector<dsl::ProblemSpec> problems;
  /// Identifies one server process lifetime (0 = unknown). A registration
  /// carrying a NEW incarnation is a restart and fully revives the record
  /// (circuit breaker reset); the SAME incarnation is a periodic keep-alive
  /// refresh, which proves liveness but cannot bust a quarantine — the
  /// failures were observed on the client path, which a self-refresh says
  /// nothing about.
  std::uint64_t incarnation = 0;

  void encode(serial::Encoder& enc) const;
  static Result<RegisterServer> decode(serial::Decoder& dec);
};

struct RegisterAck {
  ServerId server_id = kInvalidServerId;
  /// The acknowledging agent's federated peers. Servers merge these into
  /// their agent pool so a server pointed at one agent of a mesh learns the
  /// rest of the mesh from the handshake.
  std::vector<net::Endpoint> peer_agents;

  void encode(serial::Encoder& enc) const;
  static Result<RegisterAck> decode(serial::Decoder& dec);
};

struct WorkloadReport {
  ServerId server_id = kInvalidServerId;
  double workload = 0.0;           // running + queued jobs (plus background)
  std::uint64_t completed = 0;     // lifetime completed request count
  /// Queue-pressure piggyback (overload control): recent p95 of the time
  /// jobs spent waiting for a worker slot. Lets the agent steer around a
  /// saturated server before it starts shedding. Trailing optional field —
  /// reports from older servers decode with 0.
  double sojourn_p95_s = 0.0;
  /// Worker slots currently free (concurrency limit - running). Trailing
  /// optional field; -1 means "unknown" (an old peer that never sent it).
  double free_slots = -1.0;
  /// Durability health, ternary. 1 = journaling and healthy; 0 = the journal
  /// fail-stopped (disk fault) and the server runs explicitly non-durable;
  /// -1 = not journaling at all / old peer that never sent the field. The
  /// agent de-prefers durable=0 servers for checkpointable work. Trailing
  /// optional field.
  int durable = -1;
  /// Free memory headroom in bytes under the server's MemGovernor budget.
  /// -1 = ungoverned / old peer that never sent the field. The predictor
  /// ranks out servers whose headroom cannot fit a job's operands. Trailing
  /// optional field.
  double mem_free_bytes = -1.0;
  /// Payload spill ternary, mirroring `durable`: 1 = payloads currently
  /// parked on disk (the server is paging — slower but alive), 0 = spill
  /// configured and idle, -1 = spill off / old peer. Trailing optional
  /// field.
  int spill_active = -1;

  void encode(serial::Encoder& enc) const;
  static Result<WorkloadReport> decode(serial::Decoder& dec);
};

// ---- client -> agent ----

struct Query {
  std::string problem;
  std::uint64_t input_bytes = 0;   // serialized input size (network term)
  std::uint64_t output_bytes = 0;  // estimated reply size
  std::uint64_t size_hint = 1;     // N for the complexity model
  std::uint32_t max_candidates = 8;
  /// Trace id of the client call this query schedules for (0 = untraced);
  /// the agent tags its scheduling-decision span with it.
  std::uint64_t trace_id = 0;

  void encode(serial::Encoder& enc) const;
  static Result<Query> decode(serial::Decoder& dec);
};

struct ServerCandidate {
  ServerId server_id = kInvalidServerId;
  std::string server_name;
  net::Endpoint endpoint;
  double predicted_seconds = 0.0;  // agent's completion-time estimate

  void encode(serial::Encoder& enc) const;
  static Result<ServerCandidate> decode(serial::Decoder& dec);
};

struct ServerList {
  std::vector<ServerCandidate> candidates;  // best first
  /// How long the agent's ranking decision took — the "agent schedule" hop
  /// of the request trace, measured where it happens and carried back so
  /// the client can place it inside its query span.
  double schedule_seconds = 0.0;

  void encode(serial::Encoder& enc) const;
  static Result<ServerList> decode(serial::Decoder& dec);
};

struct FailureReport {
  ServerId server_id = kInvalidServerId;
  std::uint16_t error_code = 0;    // ns::ErrorCode observed by the client

  void encode(serial::Encoder& enc) const;
  static Result<FailureReport> decode(serial::Decoder& dec);
};

/// Client-observed transfer metrics, folded into the agent's per-server
/// latency/bandwidth estimates (EWMA).
struct MetricsReport {
  ServerId server_id = kInvalidServerId;
  std::uint64_t bytes = 0;
  double transfer_seconds = 0.0;

  void encode(serial::Encoder& enc) const;
  static Result<MetricsReport> decode(serial::Decoder& dec);
};

struct ProblemCatalog {
  std::vector<dsl::ProblemSpec> problems;

  void encode(serial::Encoder& enc) const;
  static Result<ProblemCatalog> decode(serial::Decoder& dec);
};

// ---- client -> server ----

struct SolveRequest {
  std::uint64_t request_id = 0;
  std::string problem;
  std::vector<dsl::DataObject> args;
  /// Remaining client deadline budget, in seconds, measured at send time
  /// (0 = no deadline). Servers shed work whose budget has already lapsed
  /// instead of computing an answer nobody is waiting for.
  double deadline_s = 0.0;
  /// Trace id carried across the client -> server hop so both processes'
  /// span logs correlate (0 = untraced).
  std::uint64_t trace_id = 0;
  /// Stable identity of the submitting client process, used by the server's
  /// per-client fair-share accounting: when the queue is contended, no
  /// client may hold more than its quota of waiting slots. Trailing optional
  /// field; 0 (old peers) is exempt from quota enforcement.
  std::uint64_t client_id = 0;
  /// The client insists on write-ahead durability for this job. A server
  /// whose journal has fail-stopped (degraded to non-durable) sheds such
  /// requests retryably instead of accepting work it cannot protect.
  /// Trailing optional field; false from old peers.
  bool require_durable = false;

  void encode(serial::Encoder& enc) const;
  static Result<SolveRequest> decode(serial::Decoder& dec);
};

struct SolveResult {
  std::uint64_t request_id = 0;
  std::uint16_t error_code = 0;    // 0 == success
  std::string error_message;
  std::vector<dsl::DataObject> outputs;
  double exec_seconds = 0.0;       // pure compute time on the server
  /// Time the request waited for a worker slot before computing — the
  /// "server queue wait" hop of the request trace.
  double queue_seconds = 0.0;
  /// Cooperative backpressure: on retryable rejections (queue full, quota
  /// exceeded, CoDel/deadline shed, draining) the server's estimate of when
  /// a slot will be free. Clients fold it into their backoff, clamped to the
  /// remaining deadline budget. Trailing optional field; 0 = no hint.
  double retry_after_s = 0.0;
  /// Where the job went when it was migrated off this server mid-drain
  /// (error_code == kMigrated): the client re-attaches there with a PROBE
  /// instead of restarting the solve. Trailing optional pair; an empty host
  /// with port 0 means "not migrated".
  std::string migrated_host;
  std::uint16_t migrated_port = 0;

  void encode(serial::Encoder& enc) const;
  static Result<SolveResult> decode(serial::Decoder& dec);
};

/// Cross-server cancellation: stop working on `request_id` (a hedged
/// attempt lost the race, or a drain deadline lapsed). Queued jobs are
/// dropped before compute; in-flight jobs trip their cancellation token and
/// unwind at the next kernel checkpoint. The original SolveRequest
/// connection receives a SolveResult carrying kCancelled either way.
struct CancelRequest {
  std::uint64_t request_id = 0;

  void encode(serial::Encoder& enc) const;
  static Result<CancelRequest> decode(serial::Decoder& dec);
};

/// What the server found when the cancel arrived. kCompleted covers both
/// "already answered" and "never seen" — either way there is nothing left
/// to stop.
enum class CancelOutcome : std::uint8_t { kCompleted = 0, kQueued = 1, kRunning = 2 };

struct CancelAck {
  std::uint64_t request_id = 0;
  CancelOutcome outcome = CancelOutcome::kCompleted;

  void encode(serial::Encoder& enc) const;
  static Result<CancelAck> decode(serial::Decoder& dec);
};

/// Graceful drain: stop admitting work, let the queue finish (or cancel it
/// once `deadline_s` lapses), and deregister from every agent. The ack
/// snapshots the queue at drain start; completion is observable via the
/// server.draining/server.drained gauges or the daemon exiting.
struct DrainRequest {
  /// Budget for in-flight/queued work to finish before it is cancelled
  /// (0 = use the server's io timeout).
  double deadline_s = 0.0;

  void encode(serial::Encoder& enc) const;
  static Result<DrainRequest> decode(serial::Decoder& dec);
};

struct DrainAck {
  /// True if this message started the drain; false if one was already
  /// running (the request is idempotent either way).
  bool started = false;
  std::uint32_t running = 0;  // jobs computing at drain start
  std::uint32_t queued = 0;   // jobs waiting for a worker slot

  void encode(serial::Encoder& enc) const;
  static Result<DrainAck> decode(serial::Decoder& dec);
};

/// server -> agent: forget me now (sent to every registered agent when a
/// drain starts, so traffic is steered away immediately instead of waiting
/// for report expiry or client failure reports).
struct DeregisterServer {
  ServerId server_id = kInvalidServerId;

  void encode(serial::Encoder& enc) const;
  static Result<DeregisterServer> decode(serial::Decoder& dec);
};

// ---- durable jobs (probe / migration) ----

/// Where a job sits in the server's lifecycle, as reported by PROBE.
/// kUnknown covers ids the server has never journaled (or whose terminal
/// record has been compacted away).
enum class JobState : std::uint8_t {
  kUnknown = 0,
  kQueued = 1,
  kRunning = 2,
  kCompleted = 3,
  kFailed = 4,
};

/// The paper's netslpr/netslwt: ask a server how request_id is doing.
/// With `fetch_result`, a terminal job's stored SolveResult rides back in
/// the reply — this is how a client re-attaches to a job that finished
/// while the original connection was down (server restart, migration).
struct ProbeRequest {
  std::uint64_t request_id = 0;
  bool fetch_result = false;

  void encode(serial::Encoder& enc) const;
  static Result<ProbeRequest> decode(serial::Decoder& dec);
};

struct ProbeReply {
  std::uint64_t request_id = 0;
  JobState state = JobState::kUnknown;
  /// Live progress published by the kernel's checkpoint token (0 when the
  /// job has not started or the kernel does not report progress).
  std::uint64_t iteration = 0;
  double residual = 0.0;
  /// Terminal result, present only when requested and available. Carried as
  /// a nested blob because SolveResult has trailing optional fields of its
  /// own and must be framed to stay self-delimiting.
  bool has_result = false;
  SolveResult result;

  void encode(serial::Encoder& enc) const;
  static Result<ProbeReply> decode(serial::Decoder& dec);
};

/// server -> server: hand over a running (or queued) job during drain. The
/// receiver admits it like a fresh SolveRequest but seeds its checkpoint
/// token from the carried snapshot, so the kernel resumes mid-iteration
/// instead of starting over. The SolveRequest travels as a framed blob
/// (trailing-optional fields again).
struct JobTransfer {
  SolveRequest request;
  /// Remaining deadline budget measured at hand-off (0 = none).
  double deadline_remaining_s = 0.0;
  std::uint64_t checkpoint_iteration = 0;
  double checkpoint_residual = 0.0;
  serial::Bytes checkpoint_state;
  std::string from_server;

  void encode(serial::Encoder& enc) const;
  static Result<JobTransfer> decode(serial::Decoder& dec);
};

struct TransferAck {
  std::uint64_t request_id = 0;
  bool accepted = false;
  std::string reason;  // why the transfer was refused (empty when accepted)

  void encode(serial::Encoder& enc) const;
  static Result<TransferAck> decode(serial::Decoder& dec);
};

/// server -> server: stream one checkpoint frame to a replica holder so a
/// crash (not a drain) of the origin loses at most one checkpoint interval.
/// `frame` is a bytepack frame — raw, compressed-full, or compressed-delta
/// against the origin's last full frame this peer acknowledged
/// (base_iteration). The first PUT for a job carries the SolveRequest (as a
/// framed blob, like JobTransfer) so the replica can re-run it standalone.
struct CheckpointPut {
  std::string origin;  // origin server name (replica store key half)
  std::uint64_t request_id = 0;
  /// Remaining deadline budget measured at send time (0 = none).
  double deadline_remaining_s = 0.0;
  std::uint64_t iteration = 0;
  double residual = 0.0;
  /// Iteration of the base snapshot a delta frame applies to (0 = the frame
  /// is self-contained).
  std::uint64_t base_iteration = 0;
  serial::Bytes frame;
  bool has_request = false;
  SolveRequest request;  // framed blob on the wire (trailing-optional fields)

  void encode(serial::Encoder& enc) const;
  static Result<CheckpointPut> decode(serial::Decoder& dec);
};

struct CheckpointPutAck {
  std::uint64_t request_id = 0;
  bool accepted = false;
  /// Refusal reason; "need full" asks the origin to resend a self-contained
  /// frame (the replica lacks the delta's base, e.g. after its own restart).
  std::string reason;

  void encode(serial::Encoder& enc) const;
  static Result<CheckpointPutAck> decode(serial::Decoder& dec);
};

/// client/server -> replica holder: look up (and optionally adopt) the
/// replicated checkpoint of a job whose origin server crashed. With
/// adopt=true the replica re-admits the job exactly like a JOB_TRANSFER —
/// journals it, seeds the kernel from the replicated snapshot, and the
/// caller then WAITs on the replica for the result.
struct CheckpointFetch {
  std::uint64_t request_id = 0;
  std::string origin;  // "" = any origin holding this request id
  bool adopt = false;

  void encode(serial::Encoder& enc) const;
  static Result<CheckpointFetch> decode(serial::Decoder& dec);
};

struct CheckpointFetchReply {
  std::uint64_t request_id = 0;
  bool found = false;
  bool adopted = false;
  std::uint64_t iteration = 0;
  double residual = 0.0;
  std::string origin;  // which origin's checkpoint matched

  void encode(serial::Encoder& enc) const;
  static Result<CheckpointFetchReply> decode(serial::Decoder& dec);
};

// ---- observability ----

/// Scrape a live process's metrics registry. Any NetSolve process (agent or
/// server) answers with a MetricsDump; the testkit and benches use this to
/// pull counters, gauges and span histograms out of a running cluster.
struct MetricsQuery {
  /// Only entries whose name starts with this ("" = the whole registry).
  std::string prefix;

  void encode(serial::Encoder& enc) const;
  static Result<MetricsQuery> decode(serial::Decoder& dec);
};

/// A metrics::Snapshot on the wire. The snapshot's JSON rendering is
/// deterministic, so dump -> encode -> decode -> dump round-trips exactly.
struct MetricsDump {
  metrics::Snapshot snapshot;

  void encode(serial::Encoder& enc) const;
  static Result<MetricsDump> decode(serial::Decoder& dec);
};

// ---- generic ----

struct ErrorReply {
  std::uint16_t error_code = 0;
  std::string message;

  void encode(serial::Encoder& enc) const;
  static Result<ErrorReply> decode(serial::Decoder& dec);
};

// ---- agent <-> agent (federation) ----

/// One server's state as shipped between federated agents. Identity is
/// (name, endpoint) — ids are agent-local. `age_seconds` is how stale the
/// sender's information is; the receiver only applies entries fresher than
/// what it already holds.
struct SyncEntry {
  std::string server_name;
  net::Endpoint endpoint;
  double mflops = 0.0;
  double workload = 0.0;
  std::uint64_t completed = 0;
  bool alive = true;
  double age_seconds = 0.0;
  std::vector<dsl::ProblemSpec> problems;

  void encode(serial::Encoder& enc) const;
  static Result<SyncEntry> decode(serial::Decoder& dec);
};

/// Full registry snapshot, exchanged periodically between peer agents.
struct SyncState {
  std::vector<SyncEntry> entries;

  void encode(serial::Encoder& enc) const;
  static Result<SyncState> decode(serial::Decoder& dec);
};

/// Health of one federated peer as seen by the reporting agent.
struct PeerStatus {
  net::Endpoint endpoint;
  bool alive = false;        // last snapshot exchange succeeded
  /// Seconds since the last successful exchange (< 0 = never reached).
  double age_seconds = -1.0;

  void encode(serial::Encoder& enc) const;
  static Result<PeerStatus> decode(serial::Decoder& dec);
};

struct AgentStats {
  std::uint64_t queries = 0;
  std::uint64_t registrations = 0;
  std::uint64_t workload_reports = 0;
  std::uint64_t failure_reports = 0;
  std::uint32_t alive_servers = 0;
  /// Per-peer federation health (empty for a standalone agent).
  std::vector<PeerStatus> peers;

  void encode(serial::Encoder& enc) const;
  static Result<AgentStats> decode(serial::Decoder& dec);
};

}  // namespace ns::proto
