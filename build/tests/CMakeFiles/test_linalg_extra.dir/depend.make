# Empty dependencies file for test_linalg_extra.
# This may be replaced when dependencies are built.
