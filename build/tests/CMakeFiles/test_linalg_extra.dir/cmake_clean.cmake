file(REMOVE_RECURSE
  "CMakeFiles/test_linalg_extra.dir/test_linalg_extra.cpp.o"
  "CMakeFiles/test_linalg_extra.dir/test_linalg_extra.cpp.o.d"
  "test_linalg_extra"
  "test_linalg_extra.pdb"
  "test_linalg_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linalg_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
