
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_stress.cpp" "tests/CMakeFiles/test_stress.dir/test_stress.cpp.o" "gcc" "tests/CMakeFiles/test_stress.dir/test_stress.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/testkit/CMakeFiles/ns_testkit.dir/DependInfo.cmake"
  "/root/repo/build/src/agent/CMakeFiles/ns_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/ns_server.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/ns_client.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/ns_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ns_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/ns_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ns_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/ns_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ns_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
