file(REMOVE_RECURSE
  "CMakeFiles/bench_linalg.dir/bench_linalg.cpp.o"
  "CMakeFiles/bench_linalg.dir/bench_linalg.cpp.o.d"
  "bench_linalg"
  "bench_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
