# Empty compiler generated dependencies file for bench_linalg.
# This may be replaced when dependencies are built.
