file(REMOVE_RECURSE
  "CMakeFiles/bench_agent.dir/bench_agent.cpp.o"
  "CMakeFiles/bench_agent.dir/bench_agent.cpp.o.d"
  "bench_agent"
  "bench_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
