file(REMOVE_RECURSE
  "CMakeFiles/netsolve_server.dir/standalone/netsolve_server.cpp.o"
  "CMakeFiles/netsolve_server.dir/standalone/netsolve_server.cpp.o.d"
  "netsolve_server"
  "netsolve_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsolve_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
