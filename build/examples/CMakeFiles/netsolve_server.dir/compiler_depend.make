# Empty compiler generated dependencies file for netsolve_server.
# This may be replaced when dependencies are built.
