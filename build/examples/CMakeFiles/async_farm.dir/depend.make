# Empty dependencies file for async_farm.
# This may be replaced when dependencies are built.
