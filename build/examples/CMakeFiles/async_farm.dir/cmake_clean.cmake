file(REMOVE_RECURSE
  "CMakeFiles/async_farm.dir/async_farm.cpp.o"
  "CMakeFiles/async_farm.dir/async_farm.cpp.o.d"
  "async_farm"
  "async_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
