# Empty dependencies file for netsolve_agent.
# This may be replaced when dependencies are built.
