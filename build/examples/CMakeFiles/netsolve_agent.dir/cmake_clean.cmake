file(REMOVE_RECURSE
  "CMakeFiles/netsolve_agent.dir/standalone/netsolve_agent.cpp.o"
  "CMakeFiles/netsolve_agent.dir/standalone/netsolve_agent.cpp.o.d"
  "netsolve_agent"
  "netsolve_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsolve_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
