# Empty compiler generated dependencies file for matlab_style.
# This may be replaced when dependencies are built.
