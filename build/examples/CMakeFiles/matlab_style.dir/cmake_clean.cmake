file(REMOVE_RECURSE
  "CMakeFiles/matlab_style.dir/matlab_style.cpp.o"
  "CMakeFiles/matlab_style.dir/matlab_style.cpp.o.d"
  "matlab_style"
  "matlab_style.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matlab_style.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
