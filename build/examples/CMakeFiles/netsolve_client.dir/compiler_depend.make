# Empty compiler generated dependencies file for netsolve_client.
# This may be replaced when dependencies are built.
