file(REMOVE_RECURSE
  "CMakeFiles/netsolve_client.dir/standalone/netsolve_client.cpp.o"
  "CMakeFiles/netsolve_client.dir/standalone/netsolve_client.cpp.o.d"
  "netsolve_client"
  "netsolve_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsolve_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
