file(REMOVE_RECURSE
  "libns_proto.a"
)
