# Empty dependencies file for ns_proto.
# This may be replaced when dependencies are built.
