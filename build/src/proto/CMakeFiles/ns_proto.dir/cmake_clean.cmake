file(REMOVE_RECURSE
  "CMakeFiles/ns_proto.dir/messages.cpp.o"
  "CMakeFiles/ns_proto.dir/messages.cpp.o.d"
  "libns_proto.a"
  "libns_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
