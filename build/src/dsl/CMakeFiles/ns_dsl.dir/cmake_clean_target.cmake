file(REMOVE_RECURSE
  "libns_dsl.a"
)
