file(REMOVE_RECURSE
  "CMakeFiles/ns_dsl.dir/problem.cpp.o"
  "CMakeFiles/ns_dsl.dir/problem.cpp.o.d"
  "CMakeFiles/ns_dsl.dir/registry.cpp.o"
  "CMakeFiles/ns_dsl.dir/registry.cpp.o.d"
  "CMakeFiles/ns_dsl.dir/specfile.cpp.o"
  "CMakeFiles/ns_dsl.dir/specfile.cpp.o.d"
  "CMakeFiles/ns_dsl.dir/value.cpp.o"
  "CMakeFiles/ns_dsl.dir/value.cpp.o.d"
  "libns_dsl.a"
  "libns_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
