# Empty compiler generated dependencies file for ns_dsl.
# This may be replaced when dependencies are built.
