
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsl/problem.cpp" "src/dsl/CMakeFiles/ns_dsl.dir/problem.cpp.o" "gcc" "src/dsl/CMakeFiles/ns_dsl.dir/problem.cpp.o.d"
  "/root/repo/src/dsl/registry.cpp" "src/dsl/CMakeFiles/ns_dsl.dir/registry.cpp.o" "gcc" "src/dsl/CMakeFiles/ns_dsl.dir/registry.cpp.o.d"
  "/root/repo/src/dsl/specfile.cpp" "src/dsl/CMakeFiles/ns_dsl.dir/specfile.cpp.o" "gcc" "src/dsl/CMakeFiles/ns_dsl.dir/specfile.cpp.o.d"
  "/root/repo/src/dsl/value.cpp" "src/dsl/CMakeFiles/ns_dsl.dir/value.cpp.o" "gcc" "src/dsl/CMakeFiles/ns_dsl.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ns_common.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/ns_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ns_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
