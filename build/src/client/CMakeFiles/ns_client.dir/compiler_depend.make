# Empty compiler generated dependencies file for ns_client.
# This may be replaced when dependencies are built.
