file(REMOVE_RECURSE
  "CMakeFiles/ns_client.dir/client.cpp.o"
  "CMakeFiles/ns_client.dir/client.cpp.o.d"
  "CMakeFiles/ns_client.dir/netsolve_c.cpp.o"
  "CMakeFiles/ns_client.dir/netsolve_c.cpp.o.d"
  "libns_client.a"
  "libns_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
