file(REMOVE_RECURSE
  "libns_client.a"
)
