# Empty compiler generated dependencies file for ns_server.
# This may be replaced when dependencies are built.
