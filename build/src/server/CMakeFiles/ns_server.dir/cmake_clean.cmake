file(REMOVE_RECURSE
  "CMakeFiles/ns_server.dir/builtin_problems.cpp.o"
  "CMakeFiles/ns_server.dir/builtin_problems.cpp.o.d"
  "CMakeFiles/ns_server.dir/server.cpp.o"
  "CMakeFiles/ns_server.dir/server.cpp.o.d"
  "libns_server.a"
  "libns_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
