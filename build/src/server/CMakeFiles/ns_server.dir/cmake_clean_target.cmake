file(REMOVE_RECURSE
  "libns_server.a"
)
