file(REMOVE_RECURSE
  "CMakeFiles/ns_net.dir/shaped_link.cpp.o"
  "CMakeFiles/ns_net.dir/shaped_link.cpp.o.d"
  "CMakeFiles/ns_net.dir/socket.cpp.o"
  "CMakeFiles/ns_net.dir/socket.cpp.o.d"
  "CMakeFiles/ns_net.dir/transport.cpp.o"
  "CMakeFiles/ns_net.dir/transport.cpp.o.d"
  "libns_net.a"
  "libns_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
