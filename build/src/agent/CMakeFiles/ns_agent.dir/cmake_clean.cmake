file(REMOVE_RECURSE
  "CMakeFiles/ns_agent.dir/agent.cpp.o"
  "CMakeFiles/ns_agent.dir/agent.cpp.o.d"
  "CMakeFiles/ns_agent.dir/policy.cpp.o"
  "CMakeFiles/ns_agent.dir/policy.cpp.o.d"
  "CMakeFiles/ns_agent.dir/predictor.cpp.o"
  "CMakeFiles/ns_agent.dir/predictor.cpp.o.d"
  "CMakeFiles/ns_agent.dir/registry.cpp.o"
  "CMakeFiles/ns_agent.dir/registry.cpp.o.d"
  "libns_agent.a"
  "libns_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
