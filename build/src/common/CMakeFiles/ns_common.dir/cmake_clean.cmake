file(REMOVE_RECURSE
  "CMakeFiles/ns_common.dir/clock.cpp.o"
  "CMakeFiles/ns_common.dir/clock.cpp.o.d"
  "CMakeFiles/ns_common.dir/config.cpp.o"
  "CMakeFiles/ns_common.dir/config.cpp.o.d"
  "CMakeFiles/ns_common.dir/error.cpp.o"
  "CMakeFiles/ns_common.dir/error.cpp.o.d"
  "CMakeFiles/ns_common.dir/log.cpp.o"
  "CMakeFiles/ns_common.dir/log.cpp.o.d"
  "CMakeFiles/ns_common.dir/strings.cpp.o"
  "CMakeFiles/ns_common.dir/strings.cpp.o.d"
  "libns_common.a"
  "libns_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
