file(REMOVE_RECURSE
  "CMakeFiles/ns_testkit.dir/cluster.cpp.o"
  "CMakeFiles/ns_testkit.dir/cluster.cpp.o.d"
  "libns_testkit.a"
  "libns_testkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_testkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
