# Empty compiler generated dependencies file for ns_testkit.
# This may be replaced when dependencies are built.
