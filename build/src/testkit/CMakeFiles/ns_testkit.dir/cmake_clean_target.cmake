file(REMOVE_RECURSE
  "libns_testkit.a"
)
