
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/blas.cpp" "src/linalg/CMakeFiles/ns_linalg.dir/blas.cpp.o" "gcc" "src/linalg/CMakeFiles/ns_linalg.dir/blas.cpp.o.d"
  "/root/repo/src/linalg/cholesky.cpp" "src/linalg/CMakeFiles/ns_linalg.dir/cholesky.cpp.o" "gcc" "src/linalg/CMakeFiles/ns_linalg.dir/cholesky.cpp.o.d"
  "/root/repo/src/linalg/eigen.cpp" "src/linalg/CMakeFiles/ns_linalg.dir/eigen.cpp.o" "gcc" "src/linalg/CMakeFiles/ns_linalg.dir/eigen.cpp.o.d"
  "/root/repo/src/linalg/expm.cpp" "src/linalg/CMakeFiles/ns_linalg.dir/expm.cpp.o" "gcc" "src/linalg/CMakeFiles/ns_linalg.dir/expm.cpp.o.d"
  "/root/repo/src/linalg/fft.cpp" "src/linalg/CMakeFiles/ns_linalg.dir/fft.cpp.o" "gcc" "src/linalg/CMakeFiles/ns_linalg.dir/fft.cpp.o.d"
  "/root/repo/src/linalg/fit.cpp" "src/linalg/CMakeFiles/ns_linalg.dir/fit.cpp.o" "gcc" "src/linalg/CMakeFiles/ns_linalg.dir/fit.cpp.o.d"
  "/root/repo/src/linalg/iterative.cpp" "src/linalg/CMakeFiles/ns_linalg.dir/iterative.cpp.o" "gcc" "src/linalg/CMakeFiles/ns_linalg.dir/iterative.cpp.o.d"
  "/root/repo/src/linalg/lu.cpp" "src/linalg/CMakeFiles/ns_linalg.dir/lu.cpp.o" "gcc" "src/linalg/CMakeFiles/ns_linalg.dir/lu.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "src/linalg/CMakeFiles/ns_linalg.dir/matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/ns_linalg.dir/matrix.cpp.o.d"
  "/root/repo/src/linalg/qr.cpp" "src/linalg/CMakeFiles/ns_linalg.dir/qr.cpp.o" "gcc" "src/linalg/CMakeFiles/ns_linalg.dir/qr.cpp.o.d"
  "/root/repo/src/linalg/quad.cpp" "src/linalg/CMakeFiles/ns_linalg.dir/quad.cpp.o" "gcc" "src/linalg/CMakeFiles/ns_linalg.dir/quad.cpp.o.d"
  "/root/repo/src/linalg/rating.cpp" "src/linalg/CMakeFiles/ns_linalg.dir/rating.cpp.o" "gcc" "src/linalg/CMakeFiles/ns_linalg.dir/rating.cpp.o.d"
  "/root/repo/src/linalg/sparse.cpp" "src/linalg/CMakeFiles/ns_linalg.dir/sparse.cpp.o" "gcc" "src/linalg/CMakeFiles/ns_linalg.dir/sparse.cpp.o.d"
  "/root/repo/src/linalg/svd.cpp" "src/linalg/CMakeFiles/ns_linalg.dir/svd.cpp.o" "gcc" "src/linalg/CMakeFiles/ns_linalg.dir/svd.cpp.o.d"
  "/root/repo/src/linalg/tridiag.cpp" "src/linalg/CMakeFiles/ns_linalg.dir/tridiag.cpp.o" "gcc" "src/linalg/CMakeFiles/ns_linalg.dir/tridiag.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ns_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
