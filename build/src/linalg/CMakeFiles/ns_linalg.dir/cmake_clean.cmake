file(REMOVE_RECURSE
  "CMakeFiles/ns_linalg.dir/blas.cpp.o"
  "CMakeFiles/ns_linalg.dir/blas.cpp.o.d"
  "CMakeFiles/ns_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/ns_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/ns_linalg.dir/eigen.cpp.o"
  "CMakeFiles/ns_linalg.dir/eigen.cpp.o.d"
  "CMakeFiles/ns_linalg.dir/expm.cpp.o"
  "CMakeFiles/ns_linalg.dir/expm.cpp.o.d"
  "CMakeFiles/ns_linalg.dir/fft.cpp.o"
  "CMakeFiles/ns_linalg.dir/fft.cpp.o.d"
  "CMakeFiles/ns_linalg.dir/fit.cpp.o"
  "CMakeFiles/ns_linalg.dir/fit.cpp.o.d"
  "CMakeFiles/ns_linalg.dir/iterative.cpp.o"
  "CMakeFiles/ns_linalg.dir/iterative.cpp.o.d"
  "CMakeFiles/ns_linalg.dir/lu.cpp.o"
  "CMakeFiles/ns_linalg.dir/lu.cpp.o.d"
  "CMakeFiles/ns_linalg.dir/matrix.cpp.o"
  "CMakeFiles/ns_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/ns_linalg.dir/qr.cpp.o"
  "CMakeFiles/ns_linalg.dir/qr.cpp.o.d"
  "CMakeFiles/ns_linalg.dir/quad.cpp.o"
  "CMakeFiles/ns_linalg.dir/quad.cpp.o.d"
  "CMakeFiles/ns_linalg.dir/rating.cpp.o"
  "CMakeFiles/ns_linalg.dir/rating.cpp.o.d"
  "CMakeFiles/ns_linalg.dir/sparse.cpp.o"
  "CMakeFiles/ns_linalg.dir/sparse.cpp.o.d"
  "CMakeFiles/ns_linalg.dir/svd.cpp.o"
  "CMakeFiles/ns_linalg.dir/svd.cpp.o.d"
  "CMakeFiles/ns_linalg.dir/tridiag.cpp.o"
  "CMakeFiles/ns_linalg.dir/tridiag.cpp.o.d"
  "libns_linalg.a"
  "libns_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
