# Empty compiler generated dependencies file for ns_linalg.
# This may be replaced when dependencies are built.
