file(REMOVE_RECURSE
  "libns_linalg.a"
)
