# Empty dependencies file for ns_serial.
# This may be replaced when dependencies are built.
