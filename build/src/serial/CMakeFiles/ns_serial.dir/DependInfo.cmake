
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serial/codec.cpp" "src/serial/CMakeFiles/ns_serial.dir/codec.cpp.o" "gcc" "src/serial/CMakeFiles/ns_serial.dir/codec.cpp.o.d"
  "/root/repo/src/serial/crc32.cpp" "src/serial/CMakeFiles/ns_serial.dir/crc32.cpp.o" "gcc" "src/serial/CMakeFiles/ns_serial.dir/crc32.cpp.o.d"
  "/root/repo/src/serial/frame.cpp" "src/serial/CMakeFiles/ns_serial.dir/frame.cpp.o" "gcc" "src/serial/CMakeFiles/ns_serial.dir/frame.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ns_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
