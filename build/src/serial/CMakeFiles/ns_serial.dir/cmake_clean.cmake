file(REMOVE_RECURSE
  "CMakeFiles/ns_serial.dir/codec.cpp.o"
  "CMakeFiles/ns_serial.dir/codec.cpp.o.d"
  "CMakeFiles/ns_serial.dir/crc32.cpp.o"
  "CMakeFiles/ns_serial.dir/crc32.cpp.o.d"
  "CMakeFiles/ns_serial.dir/frame.cpp.o"
  "CMakeFiles/ns_serial.dir/frame.cpp.o.d"
  "libns_serial.a"
  "libns_serial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ns_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
