file(REMOVE_RECURSE
  "libns_serial.a"
)
