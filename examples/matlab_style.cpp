// MATLAB-style interface demo.
//
// The original NetSolve's headline feature was calling remote solvers from
// MATLAB with one line: x = netsolve('dgesv', A, b). The C++ analogue is
// NetSolveClient::call(name, args...), which converts native arguments to
// typed data objects, resolves the problem by name at the agent, and
// type-checks at the server against the problem description.
//
// This example walks a small scientific workflow entirely through named
// remote calls: build data, fit a polynomial, interpolate with a spline,
// solve dense and sparse systems, and extract eigenvalues.
#include <cmath>
#include <cstdio>

#include "linalg/sparse.hpp"
#include "testkit/cluster.hpp"

using namespace ns;
using dsl::DataObject;

namespace {

void report(const char* what, bool ok) {
  std::printf("  %-34s %s\n", what, ok ? "ok" : "FAILED");
}

}  // namespace

int main() {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(2);
  auto cluster = testkit::TestCluster::start(std::move(config));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster failed: %s\n", cluster.error().to_string().c_str());
    return 1;
  }
  auto ns_client = cluster.value()->make_client();
  int failures = 0;
  auto check = [&failures](bool ok) {
    if (!ok) ++failures;
    return ok;
  };

  std::printf("netsolve MATLAB-style session\n");

  // -- polyfit: fit a cubic to noisy samples of y = x^3 - 2x ------------
  Rng rng(7);
  linalg::Vector xs, ys;
  for (int i = 0; i < 40; ++i) {
    const double x = -2.0 + 4.0 * i / 39.0;
    xs.push_back(x);
    ys.push_back(x * x * x - 2.0 * x + 0.01 * rng.normal());
  }
  auto fit = ns_client.call("polyfit", xs, ys, std::int64_t{3});
  report("polyfit(x, y, 3)", check(fit.ok()));
  if (fit.ok()) {
    const auto& c = fit.value()[0].as_vector();
    std::printf("    p(x) = %.3f + %.3f x + %.3f x^2 + %.3f x^3\n", c[0], c[1], c[2], c[3]);
  }

  // -- spline_eval: smooth interpolation of sin(x) ----------------------
  linalg::Vector knots_x, knots_y, queries;
  for (int i = 0; i <= 10; ++i) {
    knots_x.push_back(i * 0.628318);
    knots_y.push_back(std::sin(knots_x.back()));
  }
  for (int i = 0; i < 5; ++i) queries.push_back(0.3 + i * 1.2);
  auto spline = ns_client.call("spline_eval", knots_x, knots_y, queries);
  report("spline_eval(x, y, t)", check(spline.ok()));
  if (spline.ok()) {
    double max_err = 0;
    const auto& v = spline.value()[0].as_vector();
    for (std::size_t i = 0; i < queries.size(); ++i) {
      max_err = std::max(max_err, std::abs(v[i] - std::sin(queries[i])));
    }
    std::printf("    max interpolation error vs sin: %.2e\n", max_err);
  }

  // -- dgesv / dposv: dense solvers --------------------------------------
  const auto spd = linalg::Matrix::random_spd(80, rng);
  const auto rhs = linalg::random_vector(80, rng);
  auto x1 = ns_client.call("dgesv", spd, rhs);
  auto x2 = ns_client.call("dposv", spd, rhs);
  report("dgesv(A, b)", check(x1.ok()));
  report("dposv(A, b)", check(x2.ok()));
  if (x1.ok() && x2.ok()) {
    std::printf("    LU vs Cholesky agreement: %.2e\n",
                linalg::max_abs_diff(x1.value()[0].as_vector(), x2.value()[0].as_vector()));
  }

  // -- cg: sparse iterative solve on a 2-D Poisson problem ---------------
  const auto poisson = linalg::poisson_2d(20, 20);
  auto cg = ns_client.call("cg", poisson, linalg::Vector(400, 1.0));
  report("cg(A_sparse, b)", check(cg.ok()));
  if (cg.ok()) {
    std::printf("    converged in %lld iterations\n",
                static_cast<long long>(cg.value()[1].as_int()));
  }

  // -- eig_sym: spectrum of an SPD matrix ---------------------------------
  auto eig = ns_client.call("eig_sym", linalg::Matrix::random_spd(30, rng));
  report("eig_sym(A)", check(eig.ok()));
  if (eig.ok()) {
    const auto& values = eig.value()[0].as_vector();
    std::printf("    spectrum in [%.2f, %.2f]\n", values.front(), values.back());
  }

  // -- error handling: the catalogue is type-checked ---------------------
  auto bad = ns_client.call("dgesv", 1.0, 2.0);  // scalars, not matrix/vector
  report("dgesv(1.0, 2.0) rejected", check(!bad.ok()));
  if (!bad.ok()) std::printf("    error: %s\n", bad.error().to_string().c_str());

  auto unknown = ns_client.call("fft2");  // not in the catalogue
  report("unknown problem rejected", check(!unknown.ok()));

  std::printf("%s\n", failures == 0 ? "all calls behaved as expected" : "FAILURES present");
  return failures == 0 ? 0 : 1;
}
