// Fault tolerance walkthrough.
//
// NetSolve's client library retries failed requests on the next-best server
// from the agent's ranked list, and the agent blacklists servers that
// clients report as failed. This example makes the machinery visible:
//
//   phase 1: healthy pool, calls land on the best server
//   phase 2: that server starts crashing mid-request; calls still succeed
//            (one retry each), and the agent drops the dead server
//   phase 3: the server "reboots" (re-registers) and rejoins the pool
#include <cstdio>

#include "common/clock.hpp"
#include "linalg/blas.hpp"
#include "testkit/cluster.hpp"

using namespace ns;
using dsl::DataObject;

namespace {

int run_phase(const char* label, client::NetSolveClient& client, int calls) {
  Rng rng(99);
  const auto a = linalg::Matrix::random_diag_dominant(64, rng);
  const auto b = linalg::random_vector(64, rng);
  int ok = 0;
  std::printf("%s\n", label);
  for (int i = 0; i < calls; ++i) {
    client::CallStats stats;
    auto result = client.netsl("dgesv", {DataObject(a), DataObject(b)}, &stats);
    if (result.ok()) {
      ++ok;
      std::printf("  call %d: served by %-10s attempts=%d (%.1f ms)\n", i + 1,
                  stats.server_name.c_str(), stats.attempts, stats.total_seconds * 1e3);
    } else {
      std::printf("  call %d: FAILED (%s)\n", i + 1, result.error().to_string().c_str());
    }
  }
  return ok;
}

}  // namespace

int main() {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(3);
  auto cluster = testkit::TestCluster::start(std::move(config));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster failed: %s\n", cluster.error().to_string().c_str());
    return 1;
  }
  auto client = cluster.value()->make_client();
  int total_ok = 0;

  total_ok += run_phase("phase 1: healthy pool (3 servers)", client, 3);

  // Inject: server0 now drops every request mid-flight.
  server::FailureSpec drop;
  drop.mode = server::FailureSpec::Mode::kDropRequest;
  drop.probability = 1.0;
  cluster.value()->server(0).inject_failure(drop);
  total_ok += run_phase("phase 2: server0 drops connections; retries absorb it", client, 4);

  std::printf("  agent now sees %zu alive servers\n",
              cluster.value()->agent().registry().alive_count());

  // Heal and wait for the next workload report to revive it in the agent.
  cluster.value()->server(0).inject_failure(server::FailureSpec{});
  sleep_seconds(0.2);
  std::printf("phase 3: server0 healed; agent sees %zu alive servers\n",
              cluster.value()->agent().registry().alive_count());
  total_ok += run_phase("  post-recovery calls", client, 3);

  std::printf("%d/10 calls succeeded despite the failures\n", total_ok);
  return total_ok == 10 ? 0 : 1;
}
