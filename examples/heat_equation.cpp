// Domain example: 1-D heat equation via remote tridiagonal solves.
//
// The computational-science workflow the original paper motivates: a thin
// client owns the physics loop and ships each linear-algebra kernel to the
// NetSolve pool. Here a Crank–Nicolson discretization of
//
//   u_t = alpha u_xx  on [0, 1], u(0) = u(1) = 0
//
// turns every timestep into a tridiagonal solve, which is sent to the pool
// as a `tridiag` request. The numerical result is validated against the
// analytic decay of the sine eigenmode u(x, t) = exp(-alpha pi^2 t) sin(pi x).
#include <cmath>
#include <cstdio>

#include "testkit/cluster.hpp"

using namespace ns;
using dsl::DataObject;

namespace {
constexpr double kPi = 3.14159265358979323846;
}

int main() {
  constexpr std::size_t kInterior = 127;  // interior grid points
  constexpr double kAlpha = 1.0;
  constexpr double kDx = 1.0 / (kInterior + 1);
  constexpr double kDt = 5e-5;
  constexpr int kSteps = 200;

  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(2);
  auto cluster = testkit::TestCluster::start(std::move(config));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster failed: %s\n", cluster.error().to_string().c_str());
    return 1;
  }
  auto client = cluster.value()->make_client();

  // Crank-Nicolson: (I - r/2 L) u^{n+1} = (I + r/2 L) u^n with r = alpha dt/dx^2
  // and L the [1, -2, 1] Laplacian. LHS bands are constant across steps.
  const double r = kAlpha * kDt / (kDx * kDx);
  const linalg::Vector sub(kInterior - 1, -r / 2.0);
  const linalg::Vector diag(kInterior, 1.0 + r);
  const linalg::Vector super(kInterior - 1, -r / 2.0);

  // Initial condition: the first sine eigenmode.
  linalg::Vector u(kInterior);
  for (std::size_t i = 0; i < kInterior; ++i) {
    u[i] = std::sin(kPi * static_cast<double>(i + 1) * kDx);
  }

  std::printf("heat equation: %zu grid points, %d Crank-Nicolson steps (r = %.3f)\n",
              kInterior, kSteps, r);
  std::printf("each step = one remote 'tridiag' request to the pool\n\n");

  int failures = 0;
  for (int step = 1; step <= kSteps; ++step) {
    // Explicit half: rhs = (I + r/2 L) u.
    linalg::Vector rhs(kInterior);
    for (std::size_t i = 0; i < kInterior; ++i) {
      const double left = i > 0 ? u[i - 1] : 0.0;
      const double right = i + 1 < kInterior ? u[i + 1] : 0.0;
      rhs[i] = (1.0 - r) * u[i] + r / 2.0 * (left + right);
    }
    // Implicit half: remote tridiagonal solve.
    auto out = client.call("tridiag", sub, diag, super, rhs);
    if (!out.ok()) {
      std::fprintf(stderr, "step %d failed: %s\n", step, out.error().to_string().c_str());
      if (++failures > 3) return 1;
      continue;
    }
    u = out.value()[0].as_vector();

    if (step % 50 == 0) {
      const double t = step * kDt;
      const double analytic_peak = std::exp(-kAlpha * kPi * kPi * t);
      const double numeric_peak = u[kInterior / 2];
      std::printf("  t = %.4f  peak: numeric %.6f, analytic %.6f (err %.2e)\n", t,
                  numeric_peak, analytic_peak, std::abs(numeric_peak - analytic_peak));
    }
  }

  // Final accuracy check against the analytic eigenmode decay.
  const double t_final = kSteps * kDt;
  double max_err = 0.0;
  for (std::size_t i = 0; i < kInterior; ++i) {
    const double exact = std::exp(-kAlpha * kPi * kPi * t_final) *
                         std::sin(kPi * static_cast<double>(i + 1) * kDx);
    max_err = std::max(max_err, std::abs(u[i] - exact));
  }
  std::printf("\nmax |numeric - analytic| at t = %.4f: %.3e -> %s\n", t_final, max_err,
              max_err < 1e-4 ? "OK" : "INACCURATE");
  return max_err < 1e-4 ? 0 : 2;
}
