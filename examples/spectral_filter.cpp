// Domain example: spectral noise filtering with remote FFTs.
//
// A client owns a noisy measured signal; the pool owns the FFT. The
// workflow — forward transform, zero the high-frequency bins, inverse
// transform — runs as three named remote calls, and the recovered signal is
// checked against the clean ground truth. A final remote `polyfit` extracts
// the trend, and `quad_spline` integrates the filtered signal.
#include <cmath>
#include <cstdio>

#include "common/rng.hpp"
#include "testkit/cluster.hpp"

using namespace ns;
using dsl::DataObject;

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr std::size_t kN = 1024;
constexpr std::size_t kCutoff = 12;  // keep bins [0, kCutoff] and mirrors
}  // namespace

int main() {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(2);
  auto cluster = testkit::TestCluster::start(std::move(config));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster failed: %s\n", cluster.error().to_string().c_str());
    return 1;
  }
  auto client = cluster.value()->make_client();

  // Ground truth: two low-frequency tones; measurement adds white noise.
  Rng rng(42);
  linalg::Vector clean(kN), noisy(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const double t = static_cast<double>(i) / kN;
    clean[i] = std::sin(2 * kPi * 3 * t) + 0.4 * std::cos(2 * kPi * 7 * t);
    noisy[i] = clean[i] + 0.5 * rng.normal();
  }
  double noise_power = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    noise_power += (noisy[i] - clean[i]) * (noisy[i] - clean[i]);
  }
  std::printf("signal: %zu samples, input noise RMS %.3f\n", kN,
              std::sqrt(noise_power / kN));

  // 1. Forward FFT on a server.
  auto spectrum = client.call("fft", noisy, linalg::Vector(kN, 0.0));
  if (!spectrum.ok()) {
    std::fprintf(stderr, "fft failed: %s\n", spectrum.error().to_string().c_str());
    return 1;
  }
  auto re = spectrum.value()[0].as_vector();
  auto im = spectrum.value()[1].as_vector();

  // 2. Brick-wall low-pass: zero everything outside [0, cutoff] u mirrors.
  for (std::size_t k = kCutoff + 1; k < kN - kCutoff; ++k) {
    re[k] = 0.0;
    im[k] = 0.0;
  }

  // 3. Inverse FFT on a server.
  auto filtered = client.call("ifft", re, im);
  if (!filtered.ok()) {
    std::fprintf(stderr, "ifft failed: %s\n", filtered.error().to_string().c_str());
    return 1;
  }
  const auto& recovered = filtered.value()[0].as_vector();

  double residual_power = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    residual_power += (recovered[i] - clean[i]) * (recovered[i] - clean[i]);
  }
  const double in_rms = std::sqrt(noise_power / kN);
  const double out_rms = std::sqrt(residual_power / kN);
  std::printf("after low-pass (cutoff bin %zu): residual RMS %.3f (%.1fx reduction)\n",
              kCutoff, out_rms, in_rms / out_rms);

  // 4. Remote integral of the filtered signal (should be ~0 for pure tones).
  linalg::Vector ts(kN);
  for (std::size_t i = 0; i < kN; ++i) ts[i] = static_cast<double>(i) / kN;
  auto integral = client.call("quad_spline", ts, recovered);
  if (integral.ok()) {
    std::printf("integral of filtered signal over one period: %.4f (expect ~0)\n",
                integral.value()[0].as_double());
  }

  const bool ok = out_rms < in_rms / 3.0;
  std::printf("%s\n", ok ? "filtering succeeded" : "filtering UNDERPERFORMED");
  return ok ? 0 : 2;
}
