// Task farming with non-blocking requests.
//
// The motivating NetSolve workload: a client with many independent
// subproblems fans them out across a heterogeneous server pool with
// netsl_nb (non-blocking) calls, and the agent's load balancing keeps every
// server busy in proportion to its speed.
//
// Here the farm renders a Mandelbrot set as independent tiles on a pool of
// four servers with emulated speeds 1, 1/2, 1/4, 1/8, then reports how the
// work spread across the pool.
#include <cstdio>
#include <map>
#include <vector>

#include "common/clock.hpp"
#include "testkit/cluster.hpp"

using namespace ns;
using dsl::DataObject;

int main() {
  // Heterogeneous pool: speeds 1, 0.5, 0.25, 0.125.
  testkit::ClusterConfig config;
  config.servers = testkit::power_of_two_pool(4);
  // Fast workload reports keep the agent's load view fresh while farming.
  for (auto& s : config.servers) s.report_period_s = 0.02;
  auto cluster = testkit::TestCluster::start(std::move(config));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster failed: %s\n", cluster.error().to_string().c_str());
    return 1;
  }
  std::printf("pool: 4 servers, emulated speeds 1, 1/2, 1/4, 1/8 (rating %.0f Mflop/s base)\n",
              cluster.value()->rating_base());

  auto client = cluster.value()->make_client();

  // A 16-tile Mandelbrot render: each tile is one remote request.
  constexpr int kGrid = 4;           // 4x4 tiles
  constexpr int kTileRes = 128;      // 128x128 points per tile
  constexpr std::int64_t kMaxIter = 1500;

  const Stopwatch watch;
  std::vector<client::RequestHandle> handles;
  for (int ty = 0; ty < kGrid; ++ty) {
    for (int tx = 0; tx < kGrid; ++tx) {
      // Tile centers across [-2, 1] x [-1.5, 1.5].
      const double cx = -0.5 + 1.5 * (2.0 * (tx + 0.5) / kGrid - 1.0);
      const double cy = 0.0 + 1.5 * (2.0 * (ty + 0.5) / kGrid - 1.0);
      handles.push_back(client.netsl_nb(
          "mandelbrot", {DataObject(cx), DataObject(cy), DataObject(1.5 / kGrid),
                         DataObject(std::int64_t{kTileRes}), DataObject(kMaxIter)}));
    }
  }
  std::printf("farmed %zu tiles (%dx%d points each), waiting...\n", handles.size(),
              kTileRes, kTileRes);

  std::map<std::string, int> tiles_per_server;
  double interior = 0, total_points = 0;
  int failed = 0;
  for (auto& handle : handles) {
    auto result = handle.wait();
    if (!result.ok()) {
      ++failed;
      continue;
    }
    tiles_per_server[handle.stats().server_name] += 1;
    for (const double c : result.value()[0].as_vector()) {
      total_points += 1;
      if (c >= static_cast<double>(kMaxIter)) interior += 1;
    }
  }
  const double elapsed = watch.elapsed();

  std::printf("done in %.2f s, %d/%zu tiles failed\n", elapsed, failed, handles.size());
  std::printf("%.1f%% of sampled points are in the set\n", 100.0 * interior / total_points);
  std::printf("tile distribution (faster servers should take more):\n");
  for (const auto& [name, count] : tiles_per_server) {
    std::printf("  %-14s %2d tiles  ", name.c_str(), count);
    for (int i = 0; i < count; ++i) std::printf("#");
    std::printf("\n");
  }
  return failed == 0 ? 0 : 1;
}
