// Quickstart: the smallest complete NetSolve session.
//
// Starts an agent and two computational servers in-process (the testkit
// cluster), then uses the client library to solve a dense linear system
// remotely — the canonical netsl('dgesv', A, b) call.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "linalg/blas.hpp"
#include "testkit/cluster.hpp"

using namespace ns;

int main() {
  // 1. Bring up a pool: one agent, two servers offering the full catalogue.
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(/*count=*/2);
  auto cluster = testkit::TestCluster::start(std::move(config));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster failed to start: %s\n",
                 cluster.error().to_string().c_str());
    return 1;
  }
  std::printf("agent listening on %s, %zu servers registered\n",
              cluster.value()->agent_endpoint().to_string().c_str(),
              cluster.value()->server_count());

  // 2. Build a problem: a 200x200 diagonally dominant system A x = b.
  Rng rng(2024);
  const auto a = linalg::Matrix::random_diag_dominant(200, rng);
  const auto x_true = linalg::random_vector(200, rng);
  linalg::Vector b(200, 0.0);
  linalg::gemv(1.0, a, x_true, 0.0, b);

  // 3. Solve it remotely. The client asks the agent for the best server,
  //    ships the arguments, and returns the outputs.
  auto client = cluster.value()->make_client();
  client::CallStats stats;
  auto result = client.netsl("dgesv", {dsl::DataObject(a), dsl::DataObject(b)}, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "netsl failed: %s\n", result.error().to_string().c_str());
    return 1;
  }

  // 4. Check the answer.
  const auto& x = result.value()[0].as_vector();
  const double err = linalg::max_abs_diff(x, x_true);
  std::printf("solved on '%s' (predicted %.1f ms, actual %.1f ms, compute %.1f ms)\n",
              stats.server_name.c_str(), stats.predicted_seconds * 1e3,
              stats.total_seconds * 1e3, stats.exec_seconds * 1e3);
  std::printf("max |x - x_true| = %.3e  -> %s\n", err, err < 1e-8 ? "OK" : "WRONG");

  // 5. What else can this pool do?
  auto problems = client.list_problems();
  if (problems.ok()) {
    std::printf("catalogue (%zu problems):", problems.value().size());
    for (const auto& p : problems.value()) std::printf(" %s", p.name.c_str());
    std::printf("\n");
  }
  return err < 1e-8 ? 0 : 2;
}
