// Standalone NetSolve client CLI.
//
//   $ netsolve_client agent_port=9000 cmd=list
//   $ netsolve_client agents=127.0.0.1:9000,127.0.0.1:9001 cmd=solve n=300
//   $ netsolve_client agent_port=9000 cmd=bench n=200 calls=10
//   $ netsolve_client agent_port=9000 cmd=metrics prefix=span.
//
// agents=h:p,h:p  comma-separated agent list in failover order (overrides
//                 agent_host/agent_port); the client fails over down the
//                 list when an agent dies and falls back to its cached
//                 candidate lists when all are down
// cmd=list    print the agent's problem catalogue and server pool
// cmd=solve   generate a random system of order n and solve it remotely
// cmd=bench   time `calls` solves and print a latency summary
// cmd=metrics scrape the target process's metrics registry (METRICS_QUERY);
//             point host/port at an agent or a server, filter with prefix=,
//             add json=1 for the machine-readable dump (scrapes the first
//             configured agent)
// cmd=drain   gracefully drain the server at host=/port= (rolling restarts):
//             it stops accepting work, deregisters from its agents, and
//             finishes or cancels its queue within deadline= seconds
//             (0 = the server's io timeout); a drained netsolve_server
//             process exits on its own
// cmd=submit  fire simwork(mflop=) at the server at host=/port= under a
//             caller-chosen id= and return immediately (the durable-jobs
//             workflow: submit, crash/restart the server, reattach with
//             cmd=probe); add wait= seconds to block for the reply instead
// cmd=probe   netslpr/netslwt against the server at host=/port=: one probe
//             of id= prints its state/iteration/residual; with wait= seconds
//             it polls until the job is terminal and fetches the stored
//             result (surviving server restarts and following migrations)
#include <cstdio>

#include "client/client.hpp"
#include "common/clock.hpp"
#include "common/config.hpp"
#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"

using namespace ns;
using dsl::DataObject;

namespace {

int cmd_list(client::NetSolveClient& client) {
  auto problems = client.list_problems();
  if (!problems.ok()) {
    std::fprintf(stderr, "list failed: %s\n", problems.error().to_string().c_str());
    return 1;
  }
  std::printf("%-14s %-8s %-8s complexity\n", "problem", "inputs", "outputs");
  for (const auto& p : problems.value()) {
    std::printf("%-14s %-8zu %-8zu %.3g * N^%.3g\n", p.name.c_str(), p.inputs.size(),
                p.outputs.size(), p.complexity.a, p.complexity.b);
  }
  auto stats = client.agent_stats();
  if (stats.ok()) {
    std::printf("agent: %u alive servers, %llu queries served\n",
                stats.value().alive_servers,
                static_cast<unsigned long long>(stats.value().queries));
    for (const auto& peer : stats.value().peers) {
      if (peer.age_seconds < 0) {
        std::printf("  peer %s: %s (never reached)\n", peer.endpoint.to_string().c_str(),
                    peer.alive ? "alive" : "down");
      } else {
        std::printf("  peer %s: %s (last sync %.1fs ago)\n",
                    peer.endpoint.to_string().c_str(), peer.alive ? "alive" : "down",
                    peer.age_seconds);
      }
    }
  }
  return 0;
}

int cmd_solve(client::NetSolveClient& client, std::size_t n, const std::string& problem) {
  Rng rng(12345);
  const auto a = linalg::Matrix::random_diag_dominant(n, rng);
  const auto b = linalg::random_vector(n, rng);
  client::CallStats stats;
  auto out = client.netsl(problem, {DataObject(a), DataObject(b)}, &stats);
  if (!out.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", problem.c_str(),
                 out.error().to_string().c_str());
    return 1;
  }
  std::printf("%s(n=%zu) on '%s': total %.1f ms (compute %.1f ms, transfer %.1f ms), "
              "residual %.2e\n",
              problem.c_str(), n, stats.server_name.c_str(), stats.total_seconds * 1e3,
              stats.exec_seconds * 1e3, stats.transfer_seconds * 1e3,
              linalg::residual_inf(a, out.value()[0].as_vector(), b));
  return 0;
}

int cmd_bench(client::NetSolveClient& client, std::size_t n, int calls) {
  Rng rng(777);
  const auto a = linalg::Matrix::random_diag_dominant(n, rng);
  const auto b = linalg::random_vector(n, rng);
  double total = 0, best = 1e300, worst = 0;
  for (int i = 0; i < calls; ++i) {
    const Stopwatch watch;
    auto out = client.netsl("dgesv", {DataObject(a), DataObject(b)});
    if (!out.ok()) {
      std::fprintf(stderr, "call %d failed: %s\n", i, out.error().to_string().c_str());
      return 1;
    }
    const double t = watch.elapsed();
    total += t;
    best = std::min(best, t);
    worst = std::max(worst, t);
  }
  std::printf("dgesv(n=%zu) x%d: mean %.1f ms, min %.1f ms, max %.1f ms\n", n, calls,
              total / calls * 1e3, best * 1e3, worst * 1e3);
  return 0;
}

int cmd_drain(const net::Endpoint& server, double deadline_s) {
  auto ack = client::drain_server(server, deadline_s);
  if (!ack.ok()) {
    std::fprintf(stderr, "drain failed: %s\n", ack.error().to_string().c_str());
    return 1;
  }
  std::printf("drain %s on %s: %u running, %u queued at drain start\n",
              ack.value().started ? "started" : "already in progress",
              server.to_string().c_str(), ack.value().running, ack.value().queued);
  return 0;
}

int cmd_submit(const net::Endpoint& server, std::uint64_t id, std::int64_t mflop,
               double wait_s) {
  auto conn = net::TcpConnection::connect(server, 5.0);
  if (!conn.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", conn.error().to_string().c_str());
    return 1;
  }
  proto::SolveRequest request;
  request.request_id = id;
  request.problem = "simwork";
  request.args = {DataObject(mflop)};
  serial::Encoder enc;
  request.encode(enc);
  auto sent = net::send_message(
      conn.value(), static_cast<std::uint16_t>(proto::MessageType::kSolveRequest),
      enc.take());
  if (!sent.ok()) {
    std::fprintf(stderr, "submit failed: %s\n", sent.error().to_string().c_str());
    return 1;
  }
  std::printf("submitted simwork(%lld) as request %llu to %s\n",
              static_cast<long long>(mflop), static_cast<unsigned long long>(id),
              server.to_string().c_str());
  if (wait_s <= 0.0) return 0;  // fire-and-forget; reattach with cmd=probe
  auto reply = net::recv_message(conn.value(), wait_s);
  if (!reply.ok()) {
    std::fprintf(stderr, "no reply: %s\n", reply.error().to_string().c_str());
    return 1;
  }
  serial::Decoder dec(reply.value().payload);
  auto result = proto::SolveResult::decode(dec);
  if (!result.ok()) {
    std::fprintf(stderr, "bad reply: %s\n", result.error().to_string().c_str());
    return 1;
  }
  const auto code = static_cast<ErrorCode>(result.value().error_code);
  std::printf("request %llu finished: %s\n", static_cast<unsigned long long>(id),
              std::string(error_code_name(code)).c_str());
  return code == ErrorCode::kOk ? 0 : 1;
}

const char* job_state_name(proto::JobState state) {
  switch (state) {
    case proto::JobState::kQueued: return "queued";
    case proto::JobState::kRunning: return "running";
    case proto::JobState::kCompleted: return "completed";
    case proto::JobState::kFailed: return "failed";
    case proto::JobState::kUnknown: break;
  }
  return "unknown";
}

int cmd_probe(const net::Endpoint& server, std::uint64_t id, double wait_s) {
  if (wait_s > 0.0) {
    auto result = client::wait_for_job(server, id, wait_s);
    if (!result.ok()) {
      std::fprintf(stderr, "wait failed: %s\n", result.error().to_string().c_str());
      return 1;
    }
    const auto code = static_cast<ErrorCode>(result.value().error_code);
    std::printf("request %llu finished: %s\n", static_cast<unsigned long long>(id),
                std::string(error_code_name(code)).c_str());
    return code == ErrorCode::kOk ? 0 : 1;
  }
  auto reply = client::probe_request(server, id);
  if (!reply.ok()) {
    std::fprintf(stderr, "probe failed: %s\n", reply.error().to_string().c_str());
    return 1;
  }
  std::printf("probe id=%llu state=%s iteration=%llu residual=%.3g\n",
              static_cast<unsigned long long>(id), job_state_name(reply.value().state),
              static_cast<unsigned long long>(reply.value().iteration),
              reply.value().residual);
  return 0;
}

int cmd_metrics(const net::Endpoint& peer, const std::string& prefix, bool json) {
  auto snap = client::scrape_metrics(peer, /*timeout_s=*/5.0, prefix);
  if (!snap.ok()) {
    std::fprintf(stderr, "metrics scrape failed: %s\n", snap.error().to_string().c_str());
    return 1;
  }
  const std::string dump = json ? snap.value().to_json() : snap.value().to_text();
  std::printf("%s\n", dump.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto config = Config::from_args(argc - 1, argv + 1);
  if (!config.ok()) {
    std::fprintf(stderr, "bad arguments: %s\n", config.error().to_string().c_str());
    return 2;
  }
  client::ClientConfig client_config;
  if (const auto agents = config.value().get("agents")) {
    auto list = net::parse_endpoint_list(*agents);
    if (!list || list->empty()) {
      std::fprintf(stderr, "bad agents list '%s' (expected host:port,host:port,...)\n",
                   agents->c_str());
      return 2;
    }
    client_config.agents = std::move(*list);
  } else {
    net::Endpoint agent;
    agent.host = config.value().get_or("agent_host", "127.0.0.1");
    agent.port = static_cast<std::uint16_t>(config.value().get_int_or("agent_port", 9000));
    client_config.agents = {agent};
  }
  client::NetSolveClient client(client_config);

  const std::string cmd = config.value().get_or("cmd", "list");
  const auto n = static_cast<std::size_t>(config.value().get_int_or("n", 200));
  if (cmd == "list") return cmd_list(client);
  if (cmd == "solve") return cmd_solve(client, n, config.value().get_or("problem", "dgesv"));
  if (cmd == "bench") {
    return cmd_bench(client, n, static_cast<int>(config.value().get_int_or("calls", 10)));
  }
  if (cmd == "metrics") {
    return cmd_metrics(client_config.agents.front(), config.value().get_or("prefix", ""),
                       config.value().get_int_or("json", 0) != 0);
  }
  if (cmd == "drain" || cmd == "submit" || cmd == "probe") {
    net::Endpoint server;
    server.host = config.value().get_or("host", "127.0.0.1");
    server.port = static_cast<std::uint16_t>(config.value().get_int_or("port", 0));
    if (server.port == 0) {
      std::fprintf(stderr, "cmd=%s needs the server's port= (and host= if remote)\n",
                   cmd.c_str());
      return 2;
    }
    if (cmd == "drain") {
      return cmd_drain(server, config.value().get_double_or("deadline", 0.0));
    }
    const auto id = static_cast<std::uint64_t>(config.value().get_int_or("id", 1));
    if (cmd == "submit") {
      return cmd_submit(server, id, config.value().get_int_or("mflop", 100),
                        config.value().get_double_or("wait", 0.0));
    }
    return cmd_probe(server, id, config.value().get_double_or("wait", 0.0));
  }
  std::fprintf(stderr,
               "unknown cmd '%s' (use list | solve | bench | metrics | drain | submit | "
               "probe)\n",
               cmd.c_str());
  return 2;
}
