// Standalone NetSolve agent daemon.
//
//   $ netsolve_agent [key=value ...]
//     port=9000            listen port (default 9000; 0 = ephemeral)
//     host=127.0.0.1       listen address
//     policy=mct           mct | round_robin | random | least_loaded
//     max_failures=1       client failure reports before blacklisting
//     report_timeout=0     seconds of silence before a server expires (0=off)
//     ping_period=0        active server liveness probing period (0=off)
//     peers=host:p,host:p  federated peer agents to sync the registry with
//     sync_period=1        registry snapshot exchange period (with peers)
//     runtime=0            exit after this many seconds (0 = run forever)
//     max_frame=1048576    largest payload (bytes) a peer may claim; the
//                          agent serves metadata only, so the default is a
//                          tight 1 MiB (hostile-peer armor)
//     max_connections=1024 accepted-connection cap (idle LRU evicted, then
//                          dials shed with transport BUSY + retry_after)
//     progress_timeout=30  no-progress seconds before a peer is dropped
//                          (slowloris defence; 0 = off)
//
// Runs until killed (or until `runtime` elapses), printing periodic stats.
#include <csignal>
#include <cstdio>

#include "agent/agent.hpp"
#include "common/clock.hpp"
#include "common/config.hpp"

using namespace ns;

namespace {
volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  auto config = Config::from_args(argc - 1, argv + 1);
  if (!config.ok()) {
    std::fprintf(stderr, "bad arguments: %s\n", config.error().to_string().c_str());
    return 2;
  }

  agent::AgentConfig agent_config;
  agent_config.listen.host = config.value().get_or("host", "127.0.0.1");
  agent_config.listen.port =
      static_cast<std::uint16_t>(config.value().get_int_or("port", 9000));
  agent_config.policy = config.value().get_or("policy", "mct");
  agent_config.registry.max_failures =
      static_cast<int>(config.value().get_int_or("max_failures", 1));
  agent_config.registry.report_timeout_s =
      config.value().get_double_or("report_timeout", 0.0);
  agent_config.ping_period_s = config.value().get_double_or("ping_period", 0.0);
  if (const auto peers = config.value().get("peers")) {
    auto list = net::parse_endpoint_list(*peers);
    if (!list || list->empty()) {
      std::fprintf(stderr, "bad peers list '%s' (expected host:port,host:port,...)\n",
                   peers->c_str());
      return 2;
    }
    agent_config.peers = std::move(*list);
    agent_config.sync_period_s = config.value().get_double_or("sync_period", 1.0);
  }
  agent_config.guard.max_frame_bytes = static_cast<std::size_t>(config.value().get_int_or(
      "max_frame", static_cast<std::int64_t>(agent_config.guard.max_frame_bytes)));
  agent_config.guard.max_connections = static_cast<std::size_t>(config.value().get_int_or(
      "max_connections", static_cast<std::int64_t>(agent_config.guard.max_connections)));
  agent_config.guard.frame_progress_timeout_s = config.value().get_double_or(
      "progress_timeout", agent_config.guard.frame_progress_timeout_s);
  const double runtime = config.value().get_double_or("runtime", 0.0);

  auto agent = agent::Agent::start(agent_config);
  if (!agent.ok()) {
    std::fprintf(stderr, "agent failed to start: %s\n", agent.error().to_string().c_str());
    return 1;
  }
  std::printf("netsolve_agent listening on %s (policy=%s)\n",
              agent.value()->endpoint().to_string().c_str(), agent_config.policy.c_str());
  std::fflush(stdout);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  const Deadline deadline = runtime > 0 ? Deadline(runtime) : Deadline::never();
  proto::AgentStats last{};
  while (g_stop == 0 && !deadline.expired()) {
    sleep_seconds(1.0);
    const auto stats = agent.value()->stats();
    if (stats.queries != last.queries || stats.registrations != last.registrations) {
      std::printf("[agent] servers=%u queries=%llu reports=%llu failures=%llu\n",
                  stats.alive_servers, static_cast<unsigned long long>(stats.queries),
                  static_cast<unsigned long long>(stats.workload_reports),
                  static_cast<unsigned long long>(stats.failure_reports));
      std::fflush(stdout);
      last = stats;
    }
  }
  agent.value()->stop();
  std::printf("netsolve_agent shut down\n");
  return 0;
}
