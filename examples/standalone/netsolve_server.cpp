// Standalone NetSolve computational server daemon.
//
//   $ netsolve_server agent_port=9000 [key=value ...]
//     name=serverX         server name reported to the agent
//     agent_host=127.0.0.1 agent address
//     agent_port=9000      agent port (required in practice)
//     agents=h:p,h:p       register with this comma-separated agent list
//                          instead of agent_host/agent_port (HA: workload
//                          reports fan out to every agent; startup succeeds
//                          if at least one registration lands)
//     port=0               own listen port (0 = ephemeral)
//     workers=2            concurrent request capacity
//     speed=1.0            emulated relative speed in (0, 1]
//     rating=0             Mflop rating override (0 = measure host)
//     report_period=0.1    workload report cadence, seconds
//     reregister_period=5  re-register cadence (survives agent restarts)
//     report_threshold=0   min workload delta to transmit a report
//     problems=dgesv,cg    offer only these problems (default: full catalogue)
//     spec_file=path       @PROBLEM-format description overrides (admin tuning)
//     runtime=0            exit after this many seconds (0 = run forever)
//     data_dir=path        durable jobs: write-ahead journal lives here; a
//                          restarted server (same name) replays it, re-queues
//                          unfinished jobs and resumes from checkpoints
//     checkpoint_interval=25  kernel checkpoint cadence in iterations
//     journal_fsync=1      fsync every journal append (0 = buffered)
//     journal_compact=4194304  rewrite the journal once it grows past this
//                          many bytes (0 = never compact)
//     migrate_on_drain=0   on drain, hand running jobs to agent-ranked peers
//     replicas=h:p,h:p     stream every kernel checkpoint to these peer
//                          servers (CHECKPOINT_PUT); if this server is
//                          SIGKILLed mid-solve, a failover-enabled client
//                          re-attaches to a replica, which adopts the job
//                          from the last replicated snapshot
//     checkpoint_compress=1  delta/RLE-compress replicated frames (0 = raw)
//     max_frame=1073741824 largest payload (bytes) a peer may claim in a
//                          frame header; oversized claims are rejected at
//                          decode time (hostile-peer armor)
//     max_conn_buffer=268435456   per-connection buffered-byte budget
//     max_total_buffer=1073741824 process-global buffered-byte ceiling
//     progress_timeout=30  seconds a started frame (or stalled write queue)
//                          may make no progress before the peer is dropped
//                          (slowloris defence; 0 = off)
//     max_connections=1024 accepted-connection cap (idle LRU evicted, then
//                          dials shed with transport BUSY + retry_after)
//     retry_after=0.25     back-off hint stamped into BUSY sheds, seconds
//     mem_budget=0         process-wide byte budget across queued payloads,
//                          running working sets and the replica store
//                          (0 = ungoverned); over-budget admissions shed
//                          retryably instead of growing the heap
//     mem_per_job=0        largest payload + working set one job may account
//                          for (0 = bounded only by mem_budget)
//     spill_dir=path       spill queued-but-cold payloads to disk here and
//                          reload them at dispatch (empty = keep in RAM)
//     replica_budget=67108864  checkpoint replica store byte cap; entries
//                          past it are evicted largest-first
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/clock.hpp"
#include "common/config.hpp"
#include "common/strings.hpp"
#include "server/server.hpp"

using namespace ns;

namespace {
volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  auto config = Config::from_args(argc - 1, argv + 1);
  if (!config.ok()) {
    std::fprintf(stderr, "bad arguments: %s\n", config.error().to_string().c_str());
    return 2;
  }

  server::ServerConfig server_config;
  server_config.name = config.value().get_or("name", "server");
  if (const auto agents = config.value().get("agents")) {
    auto list = net::parse_endpoint_list(*agents);
    if (!list || list->empty()) {
      std::fprintf(stderr, "bad agents list '%s' (expected host:port,host:port,...)\n",
                   agents->c_str());
      return 2;
    }
    server_config.agents = std::move(*list);
  } else {
    net::Endpoint agent;
    agent.host = config.value().get_or("agent_host", "127.0.0.1");
    agent.port = static_cast<std::uint16_t>(config.value().get_int_or("agent_port", 9000));
    server_config.agents = {agent};
  }
  server_config.listen.port =
      static_cast<std::uint16_t>(config.value().get_int_or("port", 0));
  server_config.workers = static_cast<int>(config.value().get_int_or("workers", 2));
  server_config.speed_factor = config.value().get_double_or("speed", 1.0);
  server_config.rating_override = config.value().get_double_or("rating", 0.0);
  server_config.report_period_s = config.value().get_double_or("report_period", 0.1);
  server_config.report_threshold = config.value().get_double_or("report_threshold", 0.0);
  server_config.reregister_period_s = config.value().get_double_or("reregister_period", 5.0);
  if (const auto problems = config.value().get("problems")) {
    server_config.problem_filter = strings::split(*problems, ',');
  }
  if (const auto spec_file = config.value().get("spec_file")) {
    std::ifstream in(*spec_file);
    if (!in) {
      std::fprintf(stderr, "cannot read spec_file '%s'\n", spec_file->c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    server_config.spec_overrides = text.str();
  }
  server_config.data_dir = config.value().get_or("data_dir", "");
  server_config.checkpoint_interval =
      static_cast<std::uint64_t>(config.value().get_int_or("checkpoint_interval", 25));
  server_config.journal_fsync = config.value().get_int_or("journal_fsync", 1) != 0;
  server_config.journal_compact_bytes = static_cast<std::uint64_t>(config.value().get_int_or(
      "journal_compact", static_cast<std::int64_t>(server_config.journal_compact_bytes)));
  server_config.migrate_on_drain = config.value().get_int_or("migrate_on_drain", 0) != 0;
  if (const auto replicas = config.value().get("replicas")) {
    auto list = net::parse_endpoint_list(*replicas);
    if (!list || list->empty()) {
      std::fprintf(stderr, "bad replicas list '%s' (expected host:port,host:port,...)\n",
                   replicas->c_str());
      return 2;
    }
    server_config.replicas = std::move(*list);
  }
  server_config.checkpoint_compress =
      config.value().get_int_or("checkpoint_compress", 1) != 0;
  server_config.guard.max_frame_bytes = static_cast<std::size_t>(config.value().get_int_or(
      "max_frame", static_cast<std::int64_t>(server_config.guard.max_frame_bytes)));
  server_config.guard.max_conn_buffer_bytes =
      static_cast<std::size_t>(config.value().get_int_or(
          "max_conn_buffer", static_cast<std::int64_t>(server_config.guard.max_conn_buffer_bytes)));
  server_config.guard.max_total_buffer_bytes =
      static_cast<std::size_t>(config.value().get_int_or(
          "max_total_buffer", static_cast<std::int64_t>(server_config.guard.max_total_buffer_bytes)));
  server_config.guard.frame_progress_timeout_s = config.value().get_double_or(
      "progress_timeout", server_config.guard.frame_progress_timeout_s);
  server_config.guard.max_connections = static_cast<std::size_t>(config.value().get_int_or(
      "max_connections", static_cast<std::int64_t>(server_config.guard.max_connections)));
  server_config.guard.retry_after_s =
      config.value().get_double_or("retry_after", server_config.guard.retry_after_s);
  server_config.mem.global_bytes = static_cast<std::uint64_t>(
      config.value().get_int_or("mem_budget", 0));
  server_config.mem.per_job_bytes = static_cast<std::uint64_t>(
      config.value().get_int_or("mem_per_job", 0));
  server_config.mem.spill_dir = config.value().get_or("spill_dir", "");
  server_config.mem.replica_budget_bytes = static_cast<std::uint64_t>(
      config.value().get_int_or(
          "replica_budget", static_cast<std::int64_t>(server_config.mem.replica_budget_bytes)));
  const double runtime = config.value().get_double_or("runtime", 0.0);

  auto server = server::ComputeServer::start(std::move(server_config));
  if (!server.ok()) {
    std::fprintf(stderr, "server failed to start: %s\n", server.error().to_string().c_str());
    return 1;
  }
  std::printf("netsolve_server '%s' on %s (id=%u, %.0f Mflop/s)\n",
              server.value()->name().c_str(),
              server.value()->endpoint().to_string().c_str(), server.value()->server_id(),
              server.value()->rated_mflops());
  std::fflush(stdout);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  const Deadline deadline = runtime > 0 ? Deadline(runtime) : Deadline::never();
  std::uint64_t last_completed = 0;
  // A drained server (cmd=drain from netsolve_client) is quiescent and
  // deregistered; exiting lets rolling restarts replace the process.
  while (g_stop == 0 && !deadline.expired() && !server.value()->crashed() &&
         !server.value()->drained()) {
    sleep_seconds(0.2);
    const auto completed = server.value()->completed();
    if (completed != last_completed) {
      std::printf("[%s] completed=%llu workload=%.1f\n", server.value()->name().c_str(),
                  static_cast<unsigned long long>(completed),
                  server.value()->current_workload());
      std::fflush(stdout);
      last_completed = completed;
    }
  }
  server.value()->stop();
  std::printf("netsolve_server shut down\n");
  return 0;
}
