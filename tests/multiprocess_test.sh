#!/bin/sh
# True multi-process integration test: standalone agent + two server daemons
# + client CLI, communicating over loopback TCP — the deployment shape of
# the original system, on one machine.
#
# Usage: multiprocess_test.sh <build-examples-dir>
set -eu

BIN="$1"
PORT=$((20000 + $$ % 20000))
LOG=$(mktemp -d)
trap 'kill $AGENT_PID $S1_PID $S2_PID 2>/dev/null || true; rm -rf "$LOG"' EXIT

# Poll until the agent reports at least $1 alive servers (startup is
# asynchronous; fixed sleeps made this test racy on loaded machines).
wait_alive_servers() {
    want=$1
    deadline=$(( $(date +%s) + 30 ))
    while [ "$(date +%s)" -lt "$deadline" ]; do
        count=$("$BIN/netsolve_client" agent_port=$PORT cmd=list 2>/dev/null \
                | sed -n 's/^agent: \([0-9][0-9]*\) alive servers.*/\1/p')
        if [ "${count:-0}" -ge "$want" ]; then
            return 0
        fi
        sleep 0.1
    done
    echo "timed out waiting for $want alive servers" >&2
    return 1
}

"$BIN/netsolve_agent" port=$PORT runtime=60 > "$LOG/agent.log" 2>&1 &
AGENT_PID=$!

"$BIN/netsolve_server" name=alpha agent_port=$PORT rating=800 runtime=60 \
    > "$LOG/s1.log" 2>&1 &
S1_PID=$!
"$BIN/netsolve_server" name=beta agent_port=$PORT rating=800 speed=0.5 \
    problems=dgesv,dgemm runtime=60 > "$LOG/s2.log" 2>&1 &
S2_PID=$!

wait_alive_servers 2

echo "== catalogue =="
"$BIN/netsolve_client" agent_port=$PORT cmd=list

echo "== solve =="
"$BIN/netsolve_client" agent_port=$PORT cmd=solve n=200 problem=dgesv

echo "== bench =="
"$BIN/netsolve_client" agent_port=$PORT cmd=bench n=128 calls=5

echo "== kill one server, solve again (fault tolerance across processes) =="
kill $S1_PID
wait $S1_PID 2>/dev/null || true
"$BIN/netsolve_client" agent_port=$PORT cmd=solve n=200 problem=dgesv

echo "MULTIPROCESS_TEST_PASSED"
