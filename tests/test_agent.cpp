// Tests for ns_agent: server registry semantics, the completion-time
// predictor, all four selection policies, and the agent service loop over
// real sockets.
#include <gtest/gtest.h>

#include <map>

#include "agent/agent.hpp"
#include "agent/policy.hpp"
#include "agent/predictor.hpp"
#include "agent/registry.hpp"
#include "common/clock.hpp"
#include "net/transport.hpp"

namespace ns::agent {
namespace {

dsl::ProblemSpec cubic_spec(const std::string& name = "solve") {
  dsl::ProblemSpec spec;
  spec.name = name;
  spec.inputs = {{"A", dsl::DataType::kMatrix}};
  spec.outputs = {{"x", dsl::DataType::kVector}};
  spec.complexity = dsl::ComplexityModel{2.0 / 3.0, 3.0};
  return spec;
}

proto::RegisterServer make_registration(const std::string& name, std::uint16_t port,
                                        double mflops,
                                        const std::vector<std::string>& problems = {"solve"}) {
  proto::RegisterServer reg;
  reg.server_name = name;
  reg.endpoint = {"127.0.0.1", port};
  reg.mflops = mflops;
  for (const auto& p : problems) reg.problems.push_back(cubic_spec(p));
  return reg;
}

// ---- ServerRegistry ----

TEST(RegistryTest, AddAssignsDistinctIds) {
  ServerRegistry registry;
  const auto id1 = registry.add(make_registration("a", 1000, 100));
  const auto id2 = registry.add(make_registration("b", 1001, 200));
  EXPECT_NE(id1, id2);
  EXPECT_EQ(registry.alive_count(), 2u);
}

TEST(RegistryTest, ReregistrationRevivesSameId) {
  ServerRegistry registry;
  const auto id = registry.add(make_registration("a", 1000, 100));
  registry.record_failure(id);  // default max_failures = 1 -> dead
  EXPECT_EQ(registry.alive_count(), 0u);
  const auto id2 = registry.add(make_registration("a", 1000, 150));
  EXPECT_EQ(id2, id);
  EXPECT_EQ(registry.alive_count(), 1u);
  EXPECT_DOUBLE_EQ(registry.find(id)->mflops, 150.0);
  EXPECT_EQ(registry.find(id)->consecutive_failures, 0);
}

TEST(RegistryTest, CandidatesFilterByProblemAndLiveness) {
  ServerRegistry registry;
  const auto id1 = registry.add(make_registration("a", 1000, 100, {"solve"}));
  registry.add(make_registration("b", 1001, 100, {"other"}));
  EXPECT_EQ(registry.candidates_for("solve").size(), 1u);
  EXPECT_EQ(registry.candidates_for("other").size(), 1u);
  EXPECT_EQ(registry.candidates_for("missing").size(), 0u);
  registry.record_failure(id1);
  EXPECT_EQ(registry.candidates_for("solve").size(), 0u);
}

TEST(RegistryTest, FailureThresholdConfigurable) {
  RegistryConfig config;
  config.max_failures = 3;
  ServerRegistry registry(config);
  const auto id = registry.add(make_registration("a", 1000, 100));
  registry.record_failure(id);
  registry.record_failure(id);
  EXPECT_EQ(registry.alive_count(), 1u) << "below threshold";
  registry.record_failure(id);
  EXPECT_EQ(registry.alive_count(), 0u);
}

TEST(RegistryTest, SuccessResetsFailureStreak) {
  RegistryConfig config;
  config.max_failures = 2;
  ServerRegistry registry(config);
  const auto id = registry.add(make_registration("a", 1000, 100));
  registry.record_failure(id);
  registry.record_metrics(id, 1 << 20, 0.1);  // success clears the streak
  registry.record_failure(id);
  EXPECT_EQ(registry.alive_count(), 1u);
}

TEST(RegistryTest, WorkloadReportUpdates) {
  ServerRegistry registry;
  const auto id = registry.add(make_registration("a", 1000, 100));
  proto::WorkloadReport report;
  report.server_id = id;
  report.workload = 3.5;
  report.completed = 17;
  registry.update_workload(report);
  EXPECT_DOUBLE_EQ(registry.find(id)->workload, 3.5);
  EXPECT_EQ(registry.find(id)->completed, 17u);
  // Unknown id must be ignored, not crash.
  report.server_id = 9999;
  registry.update_workload(report);
}

TEST(RegistryTest, MetricsUpdateBandwidthEwma) {
  RegistryConfig config;
  config.default_bandwidth_Bps = 10e6;
  config.default_latency_s = 0.0;
  config.ewma_alpha = 0.5;
  ServerRegistry registry(config);
  const auto id = registry.add(make_registration("a", 1000, 100));
  // 1 MiB in 0.1 s => ~10.5 MB/s implied; EWMA pulls halfway there.
  registry.record_metrics(id, 1 << 20, 0.1);
  const double bw = registry.find(id)->bandwidth_Bps;
  EXPECT_GT(bw, 10e6);
  EXPECT_LT(bw, 11e6);
}

TEST(RegistryTest, SmallTransfersUpdateLatency) {
  RegistryConfig config;
  config.default_latency_s = 0.001;
  config.ewma_alpha = 1.0;  // take the measurement wholesale
  ServerRegistry registry(config);
  const auto id = registry.add(make_registration("a", 1000, 100));
  registry.record_metrics(id, 100, 0.05);
  EXPECT_DOUBLE_EQ(registry.find(id)->latency_s, 0.05);
}

TEST(RegistryTest, ZeroMetricsIgnored) {
  ServerRegistry registry;
  const auto id = registry.add(make_registration("a", 1000, 100));
  const double before = registry.find(id)->bandwidth_Bps;
  registry.record_metrics(id, 0, 0.1);
  registry.record_metrics(id, 100, 0.0);
  EXPECT_DOUBLE_EQ(registry.find(id)->bandwidth_Bps, before);
}

TEST(RegistryTest, StaleServersExpire) {
  RegistryConfig config;
  config.report_timeout_s = 0.05;
  ServerRegistry registry(config);
  registry.add(make_registration("a", 1000, 100));
  EXPECT_EQ(registry.alive_count(), 1u);
  sleep_seconds(0.08);
  EXPECT_EQ(registry.alive_count(), 0u);
}

TEST(RegistryTest, CatalogKeepsFirstSpec) {
  ServerRegistry registry;
  auto reg1 = make_registration("a", 1000, 100);
  reg1.problems[0].description = "first";
  auto reg2 = make_registration("b", 1001, 100);
  reg2.problems[0].description = "second";
  registry.add(reg1);
  registry.add(reg2);
  ASSERT_EQ(registry.catalog().size(), 1u);
  EXPECT_EQ(registry.problem_spec("solve")->description, "first");
  EXPECT_FALSE(registry.problem_spec("missing").has_value());
}

// ---- predictor ----

ServerRecord make_record(double mflops, double workload = 0.0, double latency = 0.0,
                         double bandwidth = 1e18) {
  ServerRecord r;
  r.id = 1;
  r.mflops = mflops;
  r.workload = workload;
  r.latency_s = latency;
  r.bandwidth_Bps = bandwidth;
  return r;
}

TEST(PredictorTest, PureComputeTerm) {
  // 1e9 flops at 100 Mflop/s = 10 s.
  RequestProfile profile;
  profile.flops = 1e9;
  EXPECT_NEAR(predict_seconds(make_record(100.0), profile), 10.0, 1e-9);
}

TEST(PredictorTest, WorkloadInflatesComputeTime) {
  RequestProfile profile;
  profile.flops = 1e9;
  const double idle = predict_seconds(make_record(100.0, 0.0), profile);
  const double busy = predict_seconds(make_record(100.0, 1.0), profile);
  EXPECT_NEAR(busy, 2.0 * idle, 1e-9) << "one running job halves the share";
}

TEST(PredictorTest, NetworkTerm) {
  RequestProfile profile;
  profile.input_bytes = 10'000'000;
  profile.output_bytes = 0;
  const auto r = make_record(100.0, 0.0, 0.5, 10e6);
  EXPECT_NEAR(predict_seconds(r, profile), 0.5 + 1.0, 1e-9);
}

TEST(PredictorTest, FullFormula) {
  RequestProfile profile;
  profile.flops = 2e8;
  profile.input_bytes = 5'000'000;
  profile.output_bytes = 5'000'000;
  const auto r = make_record(200.0, 1.0, 0.1, 10e6);
  // 0.1 + 10e6/10e6 + 2e8/(200e6/2) = 0.1 + 1 + 2 = 3.1
  EXPECT_NEAR(predict_seconds(r, profile), 3.1, 1e-9);
}

TEST(PredictorTest, DegenerateServersGetFinitePenalty) {
  RequestProfile profile;
  profile.flops = 1.0;
  profile.input_bytes = 1;
  const double t = predict_seconds(make_record(0.0, 0.0, 0.0, 0.0), profile);
  EXPECT_GT(t, 1e5);
  EXPECT_TRUE(std::isfinite(t));
}

TEST(PredictorTest, ProfileFromSpec) {
  const auto spec = cubic_spec();
  const auto profile = profile_request(spec, 100, 1000, 2000);
  EXPECT_NEAR(profile.flops, (2.0 / 3.0) * 1e6, 1.0);
  EXPECT_EQ(profile.input_bytes, 1000u);
  EXPECT_EQ(profile.output_bytes, 2000u);
}

TEST(PredictorTest, ZeroSizeHintClamped) {
  const auto profile = profile_request(cubic_spec(), 0, 0, 0);
  EXPECT_GT(profile.flops, 0.0);
}

// ---- policies ----

std::vector<ServerRecord> heterogeneous_pool() {
  std::vector<ServerRecord> pool;
  for (int i = 0; i < 4; ++i) {
    ServerRecord r;
    r.id = static_cast<proto::ServerId>(i + 1);
    r.name = "s" + std::to_string(i + 1);
    r.mflops = 100.0 * (i + 1);  // s4 is fastest
    r.bandwidth_Bps = 1e18;
    pool.push_back(r);
  }
  return pool;
}

RequestProfile compute_profile() {
  RequestProfile p;
  p.flops = 1e9;
  return p;
}

TEST(PolicyTest, MctRanksByPredictedTime) {
  MinCompletionTimePolicy policy;
  const auto ranked = policy.rank(heterogeneous_pool(), compute_profile());
  ASSERT_EQ(ranked.size(), 4u);
  EXPECT_EQ(ranked[0].server_id, 4u) << "fastest first";
  EXPECT_EQ(ranked[3].server_id, 1u);
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].predicted_seconds, ranked[i].predicted_seconds);
  }
}

TEST(PolicyTest, MctPrefersIdleOverLoaded) {
  auto pool = heterogeneous_pool();
  pool[3].workload = 8.0;  // fastest server heavily loaded: 400/9 < 300
  MinCompletionTimePolicy policy;
  const auto ranked = policy.rank(pool, compute_profile());
  EXPECT_EQ(ranked[0].server_id, 3u) << "300 Mflops idle beats 400 Mflops with 8 jobs";
}

TEST(PolicyTest, MctAccountsForNetworkDistance) {
  auto pool = heterogeneous_pool();
  // Fastest server behind a slow link; large transfer dominates.
  pool[3].bandwidth_Bps = 1e5;
  pool[3].latency_s = 0.1;
  RequestProfile profile = compute_profile();
  profile.input_bytes = 10'000'000;
  MinCompletionTimePolicy policy;
  const auto ranked = policy.rank(pool, profile);
  EXPECT_NE(ranked[0].server_id, 4u);
}

TEST(PolicyTest, RoundRobinRotates) {
  RoundRobinPolicy policy;
  const auto pool = heterogeneous_pool();
  const auto profile = compute_profile();
  std::vector<proto::ServerId> firsts;
  for (int i = 0; i < 8; ++i) firsts.push_back(policy.rank(pool, profile)[0].server_id);
  EXPECT_EQ(firsts[0], firsts[4]);
  EXPECT_EQ(firsts[1], firsts[5]);
  std::set<proto::ServerId> distinct(firsts.begin(), firsts.begin() + 4);
  EXPECT_EQ(distinct.size(), 4u) << "each server leads once per cycle";
}

TEST(PolicyTest, RandomCoversAllServers) {
  RandomPolicy policy(7);
  const auto pool = heterogeneous_pool();
  const auto profile = compute_profile();
  std::map<proto::ServerId, int> lead_counts;
  for (int i = 0; i < 400; ++i) ++lead_counts[policy.rank(pool, profile)[0].server_id];
  ASSERT_EQ(lead_counts.size(), 4u);
  for (const auto& [id, count] : lead_counts) {
    EXPECT_GT(count, 50) << "server " << id << " starved";
  }
}

TEST(PolicyTest, LeastLoadedIgnoresSpeedUntilTied) {
  auto pool = heterogeneous_pool();
  pool[3].workload = 1.0;  // fastest busy
  LeastLoadedPolicy policy;
  const auto ranked = policy.rank(pool, compute_profile());
  EXPECT_EQ(ranked[0].server_id, 3u) << "highest-rated among idle";
  EXPECT_EQ(ranked.back().server_id, 4u) << "loaded server last";
}

TEST(PolicyTest, AllPoliciesFillPredictions) {
  const auto pool = heterogeneous_pool();
  const auto profile = compute_profile();
  RoundRobinPolicy rr;
  RandomPolicy rnd(3);
  LeastLoadedPolicy ll;
  for (auto* policy : std::initializer_list<SelectionPolicy*>{&rr, &rnd, &ll}) {
    for (const auto& c : policy->rank(pool, profile)) {
      EXPECT_GT(c.predicted_seconds, 0.0) << policy->name();
    }
  }
}

TEST(PolicyTest, EmptyPoolYieldsEmptyRanking) {
  MinCompletionTimePolicy policy;
  EXPECT_TRUE(policy.rank({}, compute_profile()).empty());
}

TEST(PolicyTest, FactoryByName) {
  for (const auto* name : {"mct", "round_robin", "random", "least_loaded"}) {
    auto policy = make_policy(name);
    ASSERT_TRUE(policy.ok()) << name;
    EXPECT_EQ(policy.value()->name(), name);
  }
  EXPECT_FALSE(make_policy("nonsense").ok());
}

// ---- agent service over sockets ----

class AgentServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AgentConfig config;
    auto agent = Agent::start(config);
    ASSERT_TRUE(agent.ok());
    agent_ = std::move(agent).value();
  }

  Result<net::Message> round_trip(proto::MessageType type, const serial::Bytes& payload) {
    auto conn = net::TcpConnection::connect(agent_->endpoint());
    if (!conn.ok()) return conn.error();
    auto st = net::send_message(conn.value(), static_cast<std::uint16_t>(type), payload);
    if (!st.ok()) return st.error();
    return net::recv_message(conn.value(), 5.0);
  }

  template <typename T>
  serial::Bytes encode(const T& msg) {
    serial::Encoder enc;
    msg.encode(enc);
    return enc.take();
  }

  std::unique_ptr<Agent> agent_;
};

TEST_F(AgentServiceTest, PingPong) {
  auto reply = round_trip(proto::MessageType::kPing, {});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().type, static_cast<std::uint16_t>(proto::MessageType::kPong));
}

TEST_F(AgentServiceTest, RegisterThenQuery) {
  auto ack = round_trip(proto::MessageType::kRegisterServer,
                        encode(make_registration("s1", 1234, 500)));
  ASSERT_TRUE(ack.ok());
  ASSERT_EQ(ack.value().type, static_cast<std::uint16_t>(proto::MessageType::kRegisterAck));

  proto::Query query;
  query.problem = "solve";
  query.size_hint = 100;
  query.input_bytes = 80000;
  auto reply = round_trip(proto::MessageType::kQuery, encode(query));
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply.value().type, static_cast<std::uint16_t>(proto::MessageType::kServerList));
  serial::Decoder dec(reply.value().payload);
  auto list = proto::ServerList::decode(dec);
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list.value().candidates.size(), 1u);
  EXPECT_EQ(list.value().candidates[0].server_name, "s1");
  EXPECT_EQ(list.value().candidates[0].endpoint.port, 1234);
  EXPECT_GT(list.value().candidates[0].predicted_seconds, 0.0);
}

TEST_F(AgentServiceTest, UnknownProblemErrorReply) {
  proto::Query query;
  query.problem = "no_such_problem";
  auto reply = round_trip(proto::MessageType::kQuery, encode(query));
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply.value().type, static_cast<std::uint16_t>(proto::MessageType::kErrorReply));
  serial::Decoder dec(reply.value().payload);
  auto err = proto::ErrorReply::decode(dec);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(static_cast<ErrorCode>(err.value().error_code), ErrorCode::kUnknownProblem);
}

TEST_F(AgentServiceTest, NoServerAfterFailureReport) {
  auto ack = round_trip(proto::MessageType::kRegisterServer,
                        encode(make_registration("s1", 1234, 500)));
  ASSERT_TRUE(ack.ok());
  serial::Decoder adec(ack.value().payload);
  const auto id = proto::RegisterAck::decode(adec).value().server_id;

  // Fire-and-forget failure report (no reply expected).
  {
    auto conn = net::TcpConnection::connect(agent_->endpoint());
    ASSERT_TRUE(conn.ok());
    proto::FailureReport report;
    report.server_id = id;
    report.error_code = static_cast<std::uint16_t>(ErrorCode::kConnectionClosed);
    ASSERT_TRUE(net::send_message(conn.value(),
                                  static_cast<std::uint16_t>(proto::MessageType::kFailureReport),
                                  encode(report))
                    .ok());
  }
  // Poll until the report lands (async delivery).
  const Deadline deadline(2.0);
  while (agent_->registry().alive_count() > 0 && !deadline.expired()) sleep_seconds(0.005);
  EXPECT_EQ(agent_->registry().alive_count(), 0u);

  proto::Query query;
  query.problem = "solve";
  auto reply = round_trip(proto::MessageType::kQuery, encode(query));
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply.value().type, static_cast<std::uint16_t>(proto::MessageType::kErrorReply));
  serial::Decoder dec(reply.value().payload);
  EXPECT_EQ(static_cast<ErrorCode>(proto::ErrorReply::decode(dec).value().error_code),
            ErrorCode::kNoServer);
}

TEST_F(AgentServiceTest, CatalogListing) {
  (void)round_trip(proto::MessageType::kRegisterServer,
                   encode(make_registration("s1", 1234, 500, {"p1", "p2"})));
  auto reply = round_trip(proto::MessageType::kListProblems, {});
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply.value().type,
            static_cast<std::uint16_t>(proto::MessageType::kProblemCatalog));
  serial::Decoder dec(reply.value().payload);
  auto catalog = proto::ProblemCatalog::decode(dec);
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ(catalog.value().problems.size(), 2u);
}

TEST_F(AgentServiceTest, StatsCounters) {
  (void)round_trip(proto::MessageType::kRegisterServer,
                   encode(make_registration("s1", 1234, 500)));
  proto::Query query;
  query.problem = "solve";
  (void)round_trip(proto::MessageType::kQuery, encode(query));
  (void)round_trip(proto::MessageType::kQuery, encode(query));

  auto reply = round_trip(proto::MessageType::kAgentStatsRequest, {});
  ASSERT_TRUE(reply.ok());
  serial::Decoder dec(reply.value().payload);
  auto stats = proto::AgentStats::decode(dec);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().registrations, 1u);
  EXPECT_EQ(stats.value().queries, 2u);
  EXPECT_EQ(stats.value().alive_servers, 1u);
}

TEST_F(AgentServiceTest, MalformedPayloadGetsErrorReply) {
  serial::Bytes junk{1, 2, 3};
  auto reply = round_trip(proto::MessageType::kQuery, junk);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().type, static_cast<std::uint16_t>(proto::MessageType::kErrorReply));
}

TEST_F(AgentServiceTest, MaxCandidatesHonoured) {
  for (int i = 0; i < 6; ++i) {
    (void)round_trip(proto::MessageType::kRegisterServer,
                     encode(make_registration("s" + std::to_string(i),
                                              static_cast<std::uint16_t>(2000 + i), 100)));
  }
  proto::Query query;
  query.problem = "solve";
  query.max_candidates = 3;
  auto reply = round_trip(proto::MessageType::kQuery, encode(query));
  ASSERT_TRUE(reply.ok());
  serial::Decoder dec(reply.value().payload);
  auto list = proto::ServerList::decode(dec);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list.value().candidates.size(), 3u);
}

TEST_F(AgentServiceTest, ShutdownMessageStopsListener) {
  auto conn = net::TcpConnection::connect(agent_->endpoint());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(net::send_message(conn.value(),
                                static_cast<std::uint16_t>(proto::MessageType::kShutdown), {})
                  .ok());
  // The listener closes; new connections must fail shortly after.
  const Deadline deadline(2.0);
  bool refused = false;
  while (!deadline.expired()) {
    auto probe = net::TcpConnection::connect(agent_->endpoint(), 0.05);
    if (!probe.ok()) {
      refused = true;
      break;
    }
    sleep_seconds(0.01);
  }
  EXPECT_TRUE(refused);
}

TEST_F(AgentServiceTest, PipelinedMessagesOnOneConnection) {
  // The agent handles multiple requests per connection.
  auto conn = net::TcpConnection::connect(agent_->endpoint());
  ASSERT_TRUE(conn.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(net::send_message(conn.value(),
                                  static_cast<std::uint16_t>(proto::MessageType::kPing), {})
                    .ok());
    auto reply = net::recv_message(conn.value(), 2.0);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value().type, static_cast<std::uint16_t>(proto::MessageType::kPong));
  }
}

TEST_F(AgentServiceTest, StopIsIdempotent) {
  agent_->stop();
  agent_->stop();
  auto conn = net::TcpConnection::connect(agent_->endpoint(), 0.1);
  EXPECT_FALSE(conn.ok()) << "listener closed after stop";
}

}  // namespace
}  // namespace ns::agent
