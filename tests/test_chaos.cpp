// Chaos-grade fault tolerance, end to end.
//
// These tests script deterministic network faults (net/fault.hpp) against a
// real in-process cluster and assert the full recovery story: deadline-
// budgeted clients absorb resets/stalls/corruption, the agent's circuit
// breaker quarantines a failing server, half-open probes re-admit it at a
// reduced rating, and crash-killed servers rejoin after restart.
#include <gtest/gtest.h>

#include <vector>

#include "common/clock.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "net/fault.hpp"
#include "testkit/cluster.hpp"

namespace ns {
namespace {

using dsl::DataObject;
using net::FaultMode;
using net::FaultPlan;
using net::FaultRule;

agent::RegistryConfig breaker_registry() {
  agent::RegistryConfig registry;
  registry.max_failures = 2;
  registry.quarantine_s = 0.2;
  registry.quarantine_max_s = 1.0;
  registry.probes_to_close = 2;
  return registry;
}

/// Poll the agent's view of server `name` until `pred` holds or `timeout_s`
/// elapses; returns the final record (if the server is known at all).
template <typename Pred>
std::optional<agent::ServerRecord> wait_for_record(testkit::TestCluster& cluster,
                                                   const std::string& name, Pred pred,
                                                   double timeout_s) {
  const Deadline deadline(timeout_s);
  std::optional<agent::ServerRecord> last;
  while (!deadline.expired()) {
    for (const auto& record : cluster.agent().registry().all()) {
      if (record.name != name) continue;
      last = record;
      if (pred(record)) return last;
    }
    sleep_seconds(0.01);
  }
  return last;
}

// ---- registry-level breaker state machine (no networking) ----

TEST(CircuitBreakerTest, OpensHalfOpensAndCloses) {
  auto registry_config = breaker_registry();
  registry_config.quarantine_s = 0.05;
  agent::ServerRegistry registry(registry_config);

  proto::RegisterServer reg;
  reg.server_name = "flaky";
  reg.endpoint = {"127.0.0.1", 9999};
  reg.mflops = 100.0;
  const auto id = registry.add(reg);

  // Two failures trip the breaker open.
  registry.record_failure(id);
  EXPECT_EQ(registry.find(id)->breaker, agent::BreakerState::kClosed);
  registry.record_failure(id);
  ASSERT_EQ(registry.find(id)->breaker, agent::BreakerState::kOpen);
  EXPECT_FALSE(registry.find(id)->alive);
  EXPECT_TRUE(registry.probe_candidates().empty());

  // After the cooldown the server becomes probe-able (half-open).
  sleep_seconds(0.06);
  auto probes = registry.probe_candidates();
  ASSERT_EQ(probes.size(), 1u);
  EXPECT_EQ(registry.find(id)->breaker, agent::BreakerState::kHalfOpen);

  // A failed probe re-arms the quarantine with a longer cooldown.
  registry.record_probe(id, false);
  ASSERT_EQ(registry.find(id)->breaker, agent::BreakerState::kOpen);
  EXPECT_EQ(registry.find(id)->open_count, 2);

  // Cooldown doubled: 0.1s this round.
  sleep_seconds(0.11);
  ASSERT_EQ(registry.probe_candidates().size(), 1u);

  // Two successful probes close the breaker at a reduced rating.
  registry.record_probe(id, true);
  EXPECT_EQ(registry.find(id)->breaker, agent::BreakerState::kHalfOpen);
  registry.record_probe(id, true);
  auto record = registry.find(id);
  ASSERT_EQ(record->breaker, agent::BreakerState::kClosed);
  EXPECT_TRUE(record->alive);
  EXPECT_DOUBLE_EQ(record->rating_factor, registry_config.readmit_rating_factor);

  // The reduced rating shows up in ranking snapshots...
  auto candidates = registry.candidates_for("dgesv");
  // (the fake registration carried no problems, so query the record itself)
  EXPECT_TRUE(candidates.empty());

  // ...and recovers toward 1 with observed successes.
  registry.record_metrics(id, 1 << 20, 0.01);
  EXPECT_GT(registry.find(id)->rating_factor, registry_config.readmit_rating_factor);
  for (int i = 0; i < 50; ++i) registry.record_metrics(id, 1 << 20, 0.01);
  EXPECT_GT(registry.find(id)->rating_factor, 0.99);
}

TEST(CircuitBreakerTest, WorkloadReportDoesNotBustQuarantine) {
  agent::ServerRegistry registry(breaker_registry());
  proto::RegisterServer reg;
  reg.server_name = "flaky";
  reg.endpoint = {"127.0.0.1", 9998};
  const auto id = registry.add(reg);
  registry.record_failure(id);
  registry.record_failure(id);
  ASSERT_FALSE(registry.find(id)->alive);

  proto::WorkloadReport report;
  report.server_id = id;
  report.workload = 0.0;
  registry.update_workload(report);
  EXPECT_FALSE(registry.find(id)->alive) << "self-report must not bust the quarantine";

  // A same-incarnation re-registration is just a keep-alive refresh and must
  // not bust the quarantine either (servers re-register in the background).
  registry.add(reg);
  EXPECT_FALSE(registry.find(id)->alive) << "keep-alive must not bust the quarantine";

  // An actual restart registers with a new incarnation and resets the breaker.
  reg.incarnation = 42;
  registry.add(reg);
  EXPECT_TRUE(registry.find(id)->alive);
  EXPECT_EQ(registry.find(id)->breaker, agent::BreakerState::kClosed);
}

// ---- end-to-end chaos ----

class ChaosClusterTest : public ::testing::Test {
 protected:
  void start_cluster(std::size_t servers, double deadline_s) {
    testkit::ClusterConfig config;
    config.servers = testkit::uniform_pool(servers);
    config.rating_base = 500.0;
    config.registry = breaker_registry();
    config.ping_period_s = 0.05;
    config.io_timeout_s = 1.0;
    config.client_deadline_s = deadline_s;
    auto cluster = testkit::TestCluster::start(std::move(config));
    ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();
    cluster_ = std::move(cluster).value();
  }

  void TearDown() override {
    net::FaultInjector::instance().disarm_all();
  }

  std::unique_ptr<testkit::TestCluster> cluster_;
};

// The acceptance scenario: a 4-server pool under a chaos schedule mixing
// resets, stalls and corruption at p=0.2 completes 40 jobs with 100%
// success, every call inside its deadline budget.
TEST_F(ChaosClusterTest, FortyJobsSurviveMixedChaosSchedule) {
  start_cluster(4, /*deadline_s=*/20.0);

  for (std::size_t i = 0; i < cluster_->server_count(); ++i) {
    FaultPlan plan;
    plan.seed = 0xc4a05 + i;
    plan.rules.push_back(FaultRule{FaultMode::kReset, 0.2, -1, {}});
    plan.rules.push_back(FaultRule{FaultMode::kStall, 0.05, -1, {}});
    plan.rules.push_back(FaultRule{FaultMode::kCorrupt, 0.2, -1, {}});
    cluster_->arm_fault(i, plan);
  }

  auto client = cluster_->make_client();
  constexpr int kJobs = 40;
  constexpr int kInFlight = 4;
  int succeeded = 0;
  int launched = 0;
  double max_call_seconds = 0.0;
  std::vector<client::RequestHandle> handles;
  while (succeeded < kJobs) {
    while (launched < kJobs && handles.size() < kInFlight) {
      handles.push_back(client.netsl_nb("simwork", {DataObject(std::int64_t{5})}));
      ++launched;
    }
    ASSERT_FALSE(handles.empty());
    auto handle = std::move(handles.back());
    handles.pop_back();
    auto out = handle.wait();
    ASSERT_TRUE(out.ok()) << "job failed under chaos: " << out.error().to_string();
    max_call_seconds = std::max(max_call_seconds, handle.stats().total_seconds);
    ++succeeded;
  }

  EXPECT_EQ(succeeded, kJobs);
  EXPECT_LT(max_call_seconds, 20.0) << "a call exceeded its deadline budget";
  EXPECT_GT(net::FaultInjector::instance().triggered_count(), 0u)
      << "chaos schedule never fired; the test proved nothing";
}

// A server whose link resets every frame gets quarantined; once the fault is
// lifted, half-open pings re-admit it (open -> half_open -> closed) at a
// reduced rating.
TEST_F(ChaosClusterTest, QuarantinedServerIsReadmitted) {
  start_cluster(2, /*deadline_s=*/10.0);

  cluster_->arm_fault(1, FaultPlan::single(FaultMode::kReset, 1.0, 0xdead));

  // Traffic + pings against the dead link trip the breaker.
  auto client = cluster_->make_client();
  for (int i = 0; i < 4; ++i) {
    auto out = client.netsl("simwork", {DataObject(std::int64_t{5})});
    ASSERT_TRUE(out.ok()) << out.error().to_string();
  }
  auto open = wait_for_record(
      *cluster_, "server1",
      [](const agent::ServerRecord& r) { return r.breaker == agent::BreakerState::kOpen; },
      5.0);
  ASSERT_TRUE(open.has_value());
  ASSERT_EQ(open->breaker, agent::BreakerState::kOpen) << "breaker never opened";

  // Heal the link; the cooldown elapses, pings probe, the breaker closes.
  cluster_->disarm_faults();
  auto closed = wait_for_record(
      *cluster_, "server1",
      [](const agent::ServerRecord& r) {
        return r.breaker == agent::BreakerState::kClosed && r.alive;
      },
      5.0);
  ASSERT_TRUE(closed.has_value());
  ASSERT_EQ(closed->breaker, agent::BreakerState::kClosed) << "server never re-admitted";
  EXPECT_LT(closed->rating_factor, 1.0) << "re-admission must start at a reduced rating";

  // The re-admitted server serves real traffic again.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(client.netsl("simwork", {DataObject(std::int64_t{5})}).ok());
  }
}

// Crash-kill: the pool absorbs a hard server death, and a restarted
// incarnation (same name + endpoint) rejoins the pool.
TEST_F(ChaosClusterTest, CrashKilledServerRejoinsAfterRestart) {
  start_cluster(2, /*deadline_s=*/10.0);
  auto client = cluster_->make_client();

  cluster_->kill_server(1);
  for (int i = 0; i < 6; ++i) {
    auto out = client.netsl("simwork", {DataObject(std::int64_t{5})});
    ASSERT_TRUE(out.ok()) << "pool lost availability after crash-kill: "
                          << out.error().to_string();
  }
  auto dead = wait_for_record(
      *cluster_, "server1",
      [](const agent::ServerRecord& r) { return !r.alive; }, 5.0);
  ASSERT_TRUE(dead.has_value());
  ASSERT_FALSE(dead->alive) << "agent never noticed the crash";

  ASSERT_TRUE(cluster_->restart_server(1).ok());
  auto revived = wait_for_record(
      *cluster_, "server1",
      [](const agent::ServerRecord& r) { return r.alive; }, 5.0);
  ASSERT_TRUE(revived.has_value());
  EXPECT_TRUE(revived->alive) << "restarted server never rejoined";
}

// A request that survives mid-stream resets carries a full per-hop span
// breakdown, and its retries land in the metrics registry — both locally and
// scraped over the wire from the live cluster.
TEST_F(ChaosClusterTest, TraceSpansAndRetryMetricsSurviveResets) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(2);
  config.rating_base = 500.0;
  config.registry = breaker_registry();
  // No agent pings: nothing but the client's own attempts may consume the
  // one-shot fault triggers armed below.
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();
  cluster_ = std::move(cluster).value();

  // Each server's link resets exactly one frame: the first attempt against
  // each server dies mid-stream, and the third attempt (after a re-query)
  // must succeed.
  for (std::size_t i = 0; i < cluster_->server_count(); ++i) {
    FaultPlan plan;
    plan.seed = 0x5e7 + i;
    plan.rules.push_back(FaultRule{FaultMode::kReset, 1.0, /*max_triggers=*/1, {}});
    cluster_->arm_fault(i, plan);
  }

  const auto attempts_before = metrics::counter("client.attempts_total").value();
  const auto retries_before = metrics::counter("client.retries_total").value();

  auto client = cluster_->make_client();
  client::CallStats stats;
  auto out = client.netsl("simwork", {DataObject(std::int64_t{5})}, &stats);
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_EQ(stats.attempts, 3) << "two one-shot resets must cost exactly two retries";
  EXPECT_NE(stats.trace_id, trace::kNoTrace);

  // Span breakdown: present, causally ordered, inside the call window.
  ASSERT_FALSE(stats.spans.empty());
  int attempt_spans = 0;
  bool saw_compute = false;
  for (std::size_t i = 0; i < stats.spans.size(); ++i) {
    const auto& span = stats.spans[i];
    EXPECT_GE(span.duration_s, 0.0) << span.name;
    EXPECT_LE(span.start_s + span.duration_s, stats.total_seconds + 1e-6) << span.name;
    if (i > 0) {
      EXPECT_GE(span.start_s, stats.spans[i - 1].start_s - 1e-9)
          << "span starts must be non-decreasing at " << span.name;
    }
    if (span.name == "client.attempt") ++attempt_spans;
    if (span.name == "server.compute") saw_compute = true;
  }
  EXPECT_EQ(attempt_spans, stats.attempts);
  EXPECT_TRUE(saw_compute) << "winning attempt lost its server-side spans";

  // The registry counted the same attempts the client reported...
  EXPECT_EQ(metrics::counter("client.attempts_total").value() - attempts_before,
            static_cast<std::uint64_t>(stats.attempts));
  EXPECT_EQ(metrics::counter("client.retries_total").value() - retries_before,
            static_cast<std::uint64_t>(stats.attempts - 1));

  // ...and the same story is scrapeable from the live cluster over the wire.
  auto snap = cluster_->scrape_agent_metrics();
  ASSERT_TRUE(snap.ok()) << snap.error().to_string();
  const auto* attempt_hist = snap.value().find("span.client.attempt_s");
  ASSERT_NE(attempt_hist, nullptr);
  EXPECT_GE(attempt_hist->count, static_cast<std::uint64_t>(stats.attempts));
  EXPECT_NE(snap.value().find("client.retries_total"), nullptr);
  EXPECT_NE(snap.value().find("server.shed_total"), nullptr);
}

// Deadline budgets are hard: with every server stalling, a budgeted call
// fails with kDeadlineExceeded close to its budget, not after
// max_retries * io_timeout.
TEST_F(ChaosClusterTest, BudgetedCallFailsFastWhenPoolIsDown) {
  start_cluster(1, /*deadline_s=*/0.8);

  cluster_->arm_fault(0, FaultPlan::single(FaultMode::kStall, 1.0, 0xa11));

  auto client = cluster_->make_client();
  const Stopwatch watch;
  auto out = client.netsl("simwork", {DataObject(std::int64_t{5})});
  const double elapsed = watch.elapsed();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, ErrorCode::kDeadlineExceeded);
  EXPECT_LT(elapsed, 3.0) << "budget was not enforced promptly";
}

// Servers shed queued work whose budget lapsed while waiting for a worker.
TEST_F(ChaosClusterTest, ServerShedsExpiredWork) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(1, /*workers=*/1);
  config.servers[0].slowdown_mode = server::SlowdownMode::kSleep;
  // This test targets the dequeue-time shed specifically: predictive
  // admission would reject the worker-occupying long job outright (its own
  // budget cannot cover its predicted 1s service), so turn it off here.
  config.servers[0].admission.shed_infeasible = false;
  config.rating_base = 500.0;
  config.io_timeout_s = 0.5;
  config.client_deadline_s = 0.4;
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok());
  cluster_ = std::move(cluster).value();

  auto client = cluster_->make_client();
  // Occupy the single worker for ~1s, then queue a short-budget call behind
  // it: by the time a slot frees, the budget has lapsed and the server sheds
  // the job instead of executing it.
  auto long_job = client.netsl_nb("simwork", {DataObject(std::int64_t{500})});
  sleep_seconds(0.05);  // let the long job claim the worker
  auto out = client.netsl("simwork", {DataObject(std::int64_t{5})});
  EXPECT_FALSE(out.ok());

  const Deadline deadline(5.0);
  while (cluster_->server(0).shed() == 0 && !deadline.expired()) sleep_seconds(0.01);
  EXPECT_GE(cluster_->server(0).shed(), 1u) << "server never shed the expired job";
  (void)long_job.wait();
}

}  // namespace
}  // namespace ns
