// Integration tests: ComputeServer + Agent + NetSolveClient over real
// loopback sockets — the end-to-end request path, asynchronous calls, and
// fault tolerance under every injected failure mode.
#include <gtest/gtest.h>

#include "common/clock.hpp"
#include "linalg/blas.hpp"
#include "testkit/cluster.hpp"

namespace ns {
namespace {

using dsl::DataObject;

// Shared fixture: a modest two-server cluster with a synthetic rating so no
// host measurement runs per test.
class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testkit::ClusterConfig config;
    config.servers = testkit::uniform_pool(2);
    config.rating_base = 500.0;
    auto cluster = testkit::TestCluster::start(std::move(config));
    ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();
    cluster_ = std::move(cluster).value();
  }

  std::unique_ptr<testkit::TestCluster> cluster_;
  Rng rng_{0xfeed};
};

TEST_F(EndToEndTest, DgesvRoundTrip) {
  auto client = cluster_->make_client();
  const auto a = linalg::Matrix::random_diag_dominant(48, rng_);
  const auto b = linalg::random_vector(48, rng_);
  client::CallStats stats;
  auto out = client.netsl("dgesv", {DataObject(a), DataObject(b)}, &stats);
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_LT(linalg::residual_inf(a, out.value()[0].as_vector(), b), 1e-8);
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_GT(stats.total_seconds, 0.0);
  EXPECT_GE(stats.exec_seconds, 0.0);
  EXPECT_GT(stats.input_bytes, 48u * 48u * 8u);
}

TEST_F(EndToEndTest, AllBuiltinProblemsCallable) {
  auto client = cluster_->make_client();
  const auto a = linalg::Matrix::random_spd(12, rng_);
  const auto vec = linalg::random_vector(12, rng_);

  EXPECT_TRUE(client.call("ddot", vec, vec).ok());
  EXPECT_TRUE(client.call("daxpy", 2.0, vec, vec).ok());
  EXPECT_TRUE(client.call("dgemv", a, vec).ok());
  EXPECT_TRUE(client.call("dgemm", a, a).ok());
  EXPECT_TRUE(client.call("dgesv", a, vec).ok());
  EXPECT_TRUE(client.call("dposv", a, vec).ok());
  EXPECT_TRUE(client.call("dgels", a, vec).ok());
  EXPECT_TRUE(client.call("eig_sym", a).ok());
  EXPECT_TRUE(client.call("eig_power", a).ok());
  EXPECT_TRUE(client
                  .call("tridiag", linalg::Vector(11, -1.0), linalg::Vector(12, 4.0),
                        linalg::Vector(11, -1.0), vec)
                  .ok());
  EXPECT_TRUE(client.call("cg", linalg::poisson_2d(5, 5), linalg::Vector(25, 1.0)).ok());
  EXPECT_TRUE(
      client.call("jacobi_it", linalg::poisson_1d(10), linalg::Vector(10, 1.0)).ok());
  EXPECT_TRUE(
      client.call("sor", linalg::poisson_1d(10), linalg::Vector(10, 1.0), 1.2).ok());
  EXPECT_TRUE(client
                  .call("polyfit", linalg::Vector{0, 1, 2, 3}, linalg::Vector{0, 1, 4, 9},
                        std::int64_t{2})
                  .ok());
  EXPECT_TRUE(client
                  .call("spline_eval", linalg::Vector{0, 1, 2}, linalg::Vector{0, 1, 0},
                        linalg::Vector{0.5, 1.5})
                  .ok());
  EXPECT_TRUE(client
                  .call("mandelbrot", -0.5, 0.0, 1.5, std::int64_t{8}, std::int64_t{20})
                  .ok());
  EXPECT_TRUE(client.call("busywork", std::int64_t{1}).ok());
}

TEST_F(EndToEndTest, UnknownProblemFailsFast) {
  auto client = cluster_->make_client();
  auto out = client.netsl("made_up", {});
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, ErrorCode::kUnknownProblem);
}

TEST_F(EndToEndTest, BadArgumentsNotRetried) {
  auto client = cluster_->make_client();
  client::CallStats stats;
  // dgesv with mismatched dimensions: server-side validation error.
  auto out = client.netsl(
      "dgesv", {DataObject(linalg::Matrix(4, 4, 1.0)), DataObject(linalg::Vector(7))}, &stats);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, ErrorCode::kBadArguments);
  // Failed calls still report their telemetry: one attempt, no retries
  // (a validation error must not be retried), zero backoff.
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_DOUBLE_EQ(stats.backoff_seconds, 0.0);
  EXPECT_EQ(stats.server_id, proto::kInvalidServerId) << "no server produced a result";
}

TEST_F(EndToEndTest, WrongTypeRejectedByServerSpec) {
  auto client = cluster_->make_client();
  auto out = client.netsl("dgesv", {DataObject(1.0), DataObject(2.0)});
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, ErrorCode::kBadArguments);
}

TEST_F(EndToEndTest, ExecutionErrorSurfaces) {
  auto client = cluster_->make_client();
  // Singular matrix: execution fails, not retried.
  auto out = client.netsl(
      "dgesv", {DataObject(linalg::Matrix(4, 4, 0.0)), DataObject(linalg::Vector(4))});
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, ErrorCode::kExecutionFailed);
}

TEST_F(EndToEndTest, ListProblemsMatchesCatalogue) {
  auto client = cluster_->make_client();
  auto problems = client.list_problems();
  ASSERT_TRUE(problems.ok());
  EXPECT_GE(problems.value().size(), 15u);
}

TEST_F(EndToEndTest, PingAgent) {
  auto client = cluster_->make_client();
  EXPECT_TRUE(client.ping_agent().ok());
}

TEST_F(EndToEndTest, AsyncRequestCompletes) {
  auto client = cluster_->make_client();
  const auto a = linalg::Matrix::random_diag_dominant(32, rng_);
  const auto b = linalg::random_vector(32, rng_);
  auto handle = client.netsl_nb("dgesv", {DataObject(a), DataObject(b)});
  ASSERT_TRUE(handle.valid());
  auto out = handle.wait();
  ASSERT_TRUE(out.ok());
  EXPECT_LT(linalg::residual_inf(a, out.value()[0].as_vector(), b), 1e-8);
  EXPECT_TRUE(handle.ready());
  EXPECT_EQ(handle.stats().attempts, 1);
  // Second wait reports the result was consumed.
  EXPECT_FALSE(handle.wait().ok());
}

TEST_F(EndToEndTest, ManyConcurrentAsyncRequests) {
  auto client = cluster_->make_client();
  std::vector<client::RequestHandle> handles;
  constexpr int kRequests = 12;
  for (int i = 0; i < kRequests; ++i) {
    Rng rng(static_cast<std::uint64_t>(i) + 100);
    const auto a = linalg::Matrix::random_diag_dominant(24, rng);
    const auto b = linalg::random_vector(24, rng);
    handles.push_back(client.netsl_nb("dgesv", {DataObject(a), DataObject(b)}));
  }
  int succeeded = 0;
  for (auto& h : handles) {
    if (h.wait().ok()) ++succeeded;
  }
  EXPECT_EQ(succeeded, kRequests);
}

TEST_F(EndToEndTest, DroppedHandleDoesNotCrash) {
  auto client = cluster_->make_client();
  {
    auto handle = client.netsl_nb("busywork", {DataObject(std::int64_t{1})});
    // handle destroyed immediately while in flight
  }
  sleep_seconds(0.1);  // let the orphaned worker finish
}

TEST_F(EndToEndTest, ProbeEventuallyReady) {
  auto client = cluster_->make_client();
  auto handle = client.netsl_nb("busywork", {DataObject(std::int64_t{2})});
  const Deadline deadline(10.0);
  while (!handle.ready() && !deadline.expired()) sleep_seconds(0.005);
  EXPECT_TRUE(handle.ready());
  EXPECT_TRUE(handle.wait().ok());
}

TEST_F(EndToEndTest, ServerCompletionCountersAdvance) {
  auto client = cluster_->make_client();
  const auto before =
      cluster_->server(0).completed() + cluster_->server(1).completed();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client.call("ddot", linalg::Vector{1, 2}, linalg::Vector{3, 4}).ok());
  }
  EXPECT_EQ(cluster_->server(0).completed() + cluster_->server(1).completed(), before + 4);
}

// ---- fault tolerance ----

class FaultToleranceTest : public ::testing::Test {
 protected:
  void start_cluster(server::FailureSpec::Mode mode, double probability,
                     std::int64_t after = -1) {
    testkit::ClusterConfig config;
    config.servers = testkit::uniform_pool(3);
    config.servers[0].failure.mode = mode;
    config.servers[0].failure.probability = probability;
    config.servers[0].failure.after_requests = after;
    config.rating_base = 500.0;
    auto cluster = testkit::TestCluster::start(std::move(config));
    ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();
    cluster_ = std::move(cluster).value();
  }

  Result<std::vector<DataObject>> solve_once(client::CallStats* stats = nullptr) {
    auto client = cluster_->make_client();
    Rng rng(7);
    const auto a = linalg::Matrix::random_diag_dominant(16, rng);
    const auto b = linalg::random_vector(16, rng);
    return client.netsl("dgesv", {DataObject(a), DataObject(b)}, stats);
  }

  std::unique_ptr<testkit::TestCluster> cluster_;
};

TEST_F(FaultToleranceTest, ErrorReplyRetriedOnAnotherServer) {
  start_cluster(server::FailureSpec::Mode::kErrorReply, 1.0);
  client::CallStats stats;
  auto out = solve_once(&stats);
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_NE(stats.server_name, cluster_->server(0).name())
      << "must not succeed on the always-failing server";
}

TEST_F(FaultToleranceTest, DroppedConnectionRetried) {
  start_cluster(server::FailureSpec::Mode::kDropRequest, 1.0);
  // Short IO timeout so the dropped request is detected quickly. The drop
  // closes the socket, which surfaces as CONNECTION_CLOSED immediately.
  client::CallStats stats;
  auto out = solve_once(&stats);
  ASSERT_TRUE(out.ok()) << out.error().to_string();
}

TEST_F(FaultToleranceTest, HungServerTimedOutAndRetried) {
  start_cluster(server::FailureSpec::Mode::kHangRequest, 1.0);
  // Short client IO timeout so the hang is detected fast.
  client::ClientConfig cc;
  cc.agents = {cluster_->agent_endpoint()};
  cc.io_timeout_s = 0.3;
  client::NetSolveClient client(cc);
  Rng rng(7);
  const auto a = linalg::Matrix::random_diag_dominant(16, rng);
  const auto b = linalg::random_vector(16, rng);
  client::CallStats stats;
  const Stopwatch watch;
  auto out = client.netsl("dgesv", {dsl::DataObject(a), dsl::DataObject(b)}, &stats);
  ASSERT_TRUE(out.ok()) << out.error().to_string();
  EXPECT_NE(stats.server_name, cluster_->server(0).name());
  EXPECT_GE(watch.elapsed(), 0.29) << "must have waited out one timeout";
  EXPECT_GE(stats.attempts, 2);
}

TEST_F(FaultToleranceTest, CrashedServerBlacklistedAndOthersUsed) {
  start_cluster(server::FailureSpec::Mode::kCrash, 0.0, /*after=*/0);
  // First call may hit the crashing server; all must succeed via retry.
  for (int i = 0; i < 5; ++i) {
    auto out = solve_once();
    ASSERT_TRUE(out.ok()) << "call " << i << ": " << out.error().to_string();
  }
  // Agent marks the crashed server dead after the failure report.
  const Deadline deadline(2.0);
  while (cluster_->agent().registry().alive_count() > 2 && !deadline.expired()) {
    sleep_seconds(0.01);
  }
  EXPECT_LE(cluster_->agent().registry().alive_count(), 2u);
}

TEST_F(FaultToleranceTest, AllServersFailingExhaustsRetries) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(2);
  for (auto& s : config.servers) {
    s.failure.mode = server::FailureSpec::Mode::kErrorReply;
    s.failure.probability = 1.0;
  }
  config.rating_base = 500.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok());
  cluster_ = std::move(cluster).value();

  auto out = solve_once();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, ErrorCode::kRetriesExhausted);
}

TEST_F(FaultToleranceTest, RuntimeFailureInjectionAndRecovery) {
  start_cluster(server::FailureSpec::Mode::kNone, 0.0);
  ASSERT_TRUE(solve_once().ok());

  server::FailureSpec failing;
  failing.mode = server::FailureSpec::Mode::kErrorReply;
  failing.probability = 1.0;
  cluster_->server(0).inject_failure(failing);
  cluster_->server(1).inject_failure(failing);
  cluster_->server(2).inject_failure(failing);
  EXPECT_FALSE(solve_once().ok());

  cluster_->server(0).inject_failure(server::FailureSpec{});
  cluster_->server(1).inject_failure(server::FailureSpec{});
  cluster_->server(2).inject_failure(server::FailureSpec{});
  // Servers were blacklisted by failure reports; they revive on the next
  // registration... here liveness returns via workload reports.
  const Deadline deadline(3.0);
  bool recovered = false;
  while (!deadline.expired()) {
    if (solve_once().ok()) {
      recovered = true;
      break;
    }
    sleep_seconds(0.05);
  }
  EXPECT_TRUE(recovered);
}

// ---- workload reporting ----

TEST(WorkloadTest, BackgroundLoadVisibleToAgent) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(1);
  config.servers[0].background_load = 2.5;
  config.servers[0].report_period_s = 0.02;
  config.rating_base = 500.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok());

  const Deadline deadline(2.0);
  double seen = -1;
  while (!deadline.expired()) {
    auto all = cluster.value()->agent().registry().all();
    if (!all.empty() && all[0].workload >= 2.5) {
      seen = all[0].workload;
      break;
    }
    sleep_seconds(0.01);
  }
  EXPECT_DOUBLE_EQ(seen, 2.5);
}

TEST(WorkloadTest, ReportThresholdSuppressesTraffic) {
  // Two identical idle servers; the one with a large threshold sends only
  // its initial report while the other reports every period.
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(2);
  config.servers[0].report_period_s = 0.01;
  config.servers[0].report_threshold = 0.0;
  config.servers[1].report_period_s = 0.01;
  config.servers[1].report_threshold = 10.0;  // idle workload never moves 10 jobs
  config.rating_base = 500.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok());

  const auto before = cluster.value()->agent().stats().workload_reports;
  sleep_seconds(0.3);
  const auto after = cluster.value()->agent().stats().workload_reports;
  // ~30 periods elapsed: unthrottled server ~30 reports, throttled ~0.
  EXPECT_GT(after - before, 15u);
  EXPECT_LT(after - before, 45u);
}

TEST(SpeedFactorTest, SlowServerTakesProportionallyLonger) {
  testkit::ClusterConfig config;
  testkit::ClusterServerSpec fast;
  fast.name = "fast";
  testkit::ClusterServerSpec slow;
  slow.name = "slow";
  slow.speed = 0.25;
  config.servers = {fast, slow};
  config.policy = "round_robin";  // force alternation so both get hit
  config.rating_base = 400.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok());
  auto client = cluster.value()->make_client();

  // busywork(20) ~= 50 ms native at rating 400.
  double fast_time = 0, slow_time = 0;
  for (int i = 0; i < 2; ++i) {
    client::CallStats stats;
    ASSERT_TRUE(client.netsl("busywork", {DataObject(std::int64_t{20})}, &stats).ok());
    if (stats.server_name == "fast") {
      fast_time = stats.exec_seconds;
    } else {
      slow_time = stats.exec_seconds;
    }
  }
  ASSERT_GT(fast_time, 0.0);
  ASSERT_GT(slow_time, 0.0);
  EXPECT_GT(slow_time, 2.5 * fast_time) << "speed 0.25 should be ~4x slower";
}

TEST(ServerValidationTest, BadConfigsRejected) {
  server::ServerConfig config;
  config.agents = {{"127.0.0.1", 1}};
  config.speed_factor = 0.0;
  EXPECT_FALSE(server::ComputeServer::start(config).ok());
  config.speed_factor = 2.0;
  EXPECT_FALSE(server::ComputeServer::start(config).ok());
  config.speed_factor = 1.0;
  config.workers = 0;
  EXPECT_FALSE(server::ComputeServer::start(config).ok());
}

TEST(ServerValidationTest, AgentUnreachableFailsStartup) {
  server::ServerConfig config;
  config.agents = {{"127.0.0.1", 1}};  // nothing listens on port 1
  config.rating_override = 100.0;
  auto server = server::ComputeServer::start(config);
  EXPECT_FALSE(server.ok());
}

}  // namespace
}  // namespace ns
