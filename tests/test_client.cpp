// Client-library behaviour: call statistics, configuration knobs
// (max_candidates, metric reporting), and policy-output invariants checked
// end-to-end.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "agent/policy.hpp"
#include "common/clock.hpp"
#include "linalg/blas.hpp"
#include "testkit/cluster.hpp"

namespace ns {
namespace {

using dsl::DataObject;

TEST(ClientStatsTest, ByteAccountingMatchesArguments) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(1);
  config.rating_base = 500.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok());
  auto client = cluster.value()->make_client();

  Rng rng(1);
  const auto a = linalg::Matrix::random_diag_dominant(32, rng);
  const auto b = linalg::random_vector(32, rng);
  const std::vector<DataObject> args = {DataObject(a), DataObject(b)};

  client::CallStats stats;
  ASSERT_TRUE(client.netsl("dgesv", args, &stats).ok());
  EXPECT_EQ(stats.input_bytes, dsl::args_byte_size(args));
  // Output: one 32-vector => 4 (count) + 1 (tag) + 4 (len) + 256 bytes.
  EXPECT_EQ(stats.output_bytes, 4u + 1u + 4u + 256u);
  EXPECT_GE(stats.total_seconds, stats.exec_seconds);
  EXPECT_NEAR(stats.total_seconds, stats.exec_seconds + stats.transfer_seconds,
              stats.total_seconds * 0.5 + 0.01);
}

TEST(ClientConfigTest, MaxCandidatesLimitsAgentReply) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(5);
  config.rating_base = 500.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok());

  client::ClientConfig cc;
  cc.agents = {cluster.value()->agent_endpoint()};
  cc.max_candidates = 2;
  client::NetSolveClient client(cc);
  auto list = client.query("ddot", {DataObject(linalg::Vector{1.0}),
                                    DataObject(linalg::Vector{2.0})});
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list.value().candidates.size(), 2u);
}

TEST(ClientConfigTest, MetricReportingDisabledKeepsDefaults) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(1);
  config.rating_base = 500.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok());

  client::ClientConfig cc;
  cc.agents = {cluster.value()->agent_endpoint()};
  cc.report_metrics = false;
  client::NetSolveClient client(cc);

  const auto before = cluster.value()->agent().registry().all().at(0);
  Rng rng(2);
  const auto a = linalg::Matrix::random(128, 128, rng);
  const auto x = linalg::random_vector(128, rng);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.call("dgemv", a, x).ok());
  }
  sleep_seconds(0.05);
  const auto after = cluster.value()->agent().registry().all().at(0);
  EXPECT_DOUBLE_EQ(after.bandwidth_Bps, before.bandwidth_Bps)
      << "no metric reports -> no EWMA movement";
  EXPECT_DOUBLE_EQ(after.latency_s, before.latency_s);
}

TEST(ClientConfigTest, FailureReportingDisabledKeepsServerAlive) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(2);
  config.servers[0].failure.mode = server::FailureSpec::Mode::kErrorReply;
  config.servers[0].failure.probability = 1.0;
  config.rating_base = 500.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok());

  client::ClientConfig cc;
  cc.agents = {cluster.value()->agent_endpoint()};
  cc.report_failures = false;
  client::NetSolveClient client(cc);
  ASSERT_TRUE(client.call("ddot", linalg::Vector{1.0}, linalg::Vector{2.0}).ok());
  EXPECT_EQ(cluster.value()->agent().registry().alive_count(), 2u)
      << "without reports the agent cannot blacklist";
}

// ---- policy output invariants (property-style, all policies) ----

class PolicyInvariantTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PolicyInvariantTest, RankingIsAPermutationWithPredictions) {
  auto policy = agent::make_policy(GetParam());
  ASSERT_TRUE(policy.ok());

  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 12));
    std::vector<agent::ServerRecord> pool(n);
    std::set<proto::ServerId> ids;
    for (std::size_t i = 0; i < n; ++i) {
      pool[i].id = static_cast<proto::ServerId>(i + 1);
      pool[i].name = "s" + std::to_string(i);
      pool[i].mflops = rng.uniform(50, 2000);
      pool[i].workload = rng.uniform(0, 5);
      pool[i].latency_s = rng.uniform(0, 0.05);
      pool[i].bandwidth_Bps = rng.uniform(1e6, 1e9);
      ids.insert(pool[i].id);
    }
    agent::RequestProfile profile;
    profile.flops = rng.uniform(1e6, 1e10);
    profile.input_bytes = static_cast<std::uint64_t>(rng.uniform(0, 1e7));

    const auto ranked = policy.value()->rank(pool, profile);
    ASSERT_EQ(ranked.size(), n);
    std::set<proto::ServerId> ranked_ids;
    for (const auto& c : ranked) {
      ranked_ids.insert(c.server_id);
      EXPECT_GT(c.predicted_seconds, 0.0);
      EXPECT_TRUE(std::isfinite(c.predicted_seconds));
    }
    EXPECT_EQ(ranked_ids, ids) << "ranking must be a permutation";
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyInvariantTest,
                         ::testing::Values("mct", "round_robin", "random", "least_loaded"));

TEST(PolicyInvariantTest, MctOutputIsSortedByPrediction) {
  auto policy = agent::make_policy("mct");
  ASSERT_TRUE(policy.ok());
  Rng rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<agent::ServerRecord> pool(6);
    for (std::size_t i = 0; i < pool.size(); ++i) {
      pool[i].id = static_cast<proto::ServerId>(i + 1);
      pool[i].mflops = rng.uniform(50, 2000);
      pool[i].workload = rng.uniform(0, 5);
      pool[i].bandwidth_Bps = 1e9;
    }
    agent::RequestProfile profile;
    profile.flops = 1e9;
    const auto ranked = policy.value()->rank(pool, profile);
    EXPECT_TRUE(std::is_sorted(ranked.begin(), ranked.end(),
                               [](const auto& a, const auto& b) {
                                 return a.predicted_seconds < b.predicted_seconds;
                               }));
  }
}

}  // namespace
}  // namespace ns
