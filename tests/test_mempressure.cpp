// Memory-pressure armor: byte-accounted admission, payload spill-to-disk,
// and allocation-fault injection.
//
// These tests pin the memory-governance layer end to end:
//   - the MemGovernor account itself (budget refusal, clamp-subtract
//     release, per-job cap, peak watermark) and the CRC-guarded SpillStore,
//   - the AllocFaultInjector trip-point machinery,
//   - a client-role frame cap on the dial-out transport,
//   - a server at 3x payload oversubscription vs a fixed mem budget:
//     >= 95% of jobs complete, spill engages and reloads byte-identically
//     (results stay numerically exact), and peak accounted bytes never
//     exceed the budget,
//   - scripted std::bad_alloc at every hardened trip point: jobs shed
//     retryably and complete on retry; no daemon ever crashes,
//   - the checkpoint replica store bounded by bytes with largest-first
//     eviction.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "client/client.hpp"
#include "common/bytepack.hpp"
#include "common/clock.hpp"
#include "common/memgov.hpp"
#include "common/metrics.hpp"
#include "common/vfs.hpp"
#include "net/pool.hpp"
#include "net/transport.hpp"
#include "proto/messages.hpp"
#include "testkit/cluster.hpp"

namespace ns {
namespace {

using dsl::DataObject;

template <typename Pred>
bool eventually(Pred pred, double timeout_s = 5.0) {
  const Deadline deadline(timeout_s);
  while (!deadline.expired()) {
    if (pred()) return true;
    sleep_seconds(0.005);
  }
  return pred();
}

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/ns_mem_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    path = made != nullptr ? made : "/tmp/ns_mem_fallback";
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

// ---- MemGovernor ----

TEST(MemGovernorTest, BudgetRefusesOvershootAndReleaseClamps) {
  mem::MemBudgetConfig cfg;
  cfg.global_bytes = 1000;
  mem::MemGovernor gov(cfg);
  ASSERT_TRUE(gov.governed());
  EXPECT_EQ(gov.budget(), 1000u);

  EXPECT_TRUE(gov.try_charge(600));
  EXPECT_EQ(gov.accounted(), 600u);
  EXPECT_EQ(gov.headroom(), 400u);
  EXPECT_FALSE(gov.try_charge(401)) << "charge past the budget must refuse";
  EXPECT_EQ(gov.accounted(), 600u) << "a refused charge must not account";
  EXPECT_TRUE(gov.try_charge(400));
  EXPECT_EQ(gov.headroom(), 0u);
  EXPECT_EQ(gov.peak(), 1000u);

  // Clamp-subtract: an over-release (double free, forced-charge races)
  // floors at zero instead of wrapping to 2^64.
  gov.release(5000);
  EXPECT_EQ(gov.accounted(), 0u);
  EXPECT_EQ(gov.peak(), 1000u) << "peak is a high-water mark, not current";

  // Overflow-shaped charge: cur + bytes wrapping must refuse, not accept.
  EXPECT_FALSE(gov.try_charge(~0ull));
}

TEST(MemGovernorTest, PerJobBudgetClampsToGlobal) {
  mem::MemBudgetConfig cfg;
  cfg.global_bytes = 1000;
  cfg.per_job_bytes = 0;
  EXPECT_EQ(mem::MemGovernor(cfg).per_job_budget(), 1000u)
      << "unset per-job cap falls back to the global budget";
  cfg.per_job_bytes = 4000;
  EXPECT_EQ(mem::MemGovernor(cfg).per_job_budget(), 1000u)
      << "a per-job cap above the whole budget is meaningless";
  cfg.per_job_bytes = 300;
  EXPECT_EQ(mem::MemGovernor(cfg).per_job_budget(), 300u);
}

TEST(MemGovernorTest, UngovernedTracksButNeverRefuses) {
  mem::MemGovernor gov;
  EXPECT_FALSE(gov.governed());
  EXPECT_TRUE(gov.try_charge(1ull << 40));
  EXPECT_EQ(gov.accounted(), 1ull << 40);
  EXPECT_EQ(gov.peak(), 1ull << 40);
  EXPECT_EQ(gov.headroom(), 0u);
  gov.release(1ull << 40);
  EXPECT_EQ(gov.accounted(), 0u);
}

TEST(MemGovernorTest, ForcedChargeOvershootsAndIsVisibleInPeak) {
  mem::MemBudgetConfig cfg;
  cfg.global_bytes = 100;
  mem::MemGovernor gov(cfg);
  ASSERT_TRUE(gov.try_charge(90));
  gov.charge_forced(50);
  EXPECT_EQ(gov.accounted(), 140u);
  EXPECT_EQ(gov.peak(), 140u);
  EXPECT_EQ(gov.headroom(), 0u);
  gov.release(140);
  EXPECT_EQ(gov.accounted(), 0u);
}

// ---- SpillStore ----

TEST(SpillStoreTest, SaveLoadRoundTripIsByteIdentical) {
  TempDir dir;
  mem::SpillStore store;
  store.configure(dir.path);
  ASSERT_TRUE(store.enabled());

  std::vector<std::uint8_t> payload(123457);
  std::uint64_t x = 0x243f6a8885a308d3ull;
  for (auto& b : payload) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<std::uint8_t>(x);
  }
  ASSERT_TRUE(store.save(42, payload).ok());
  auto back = store.load(42);
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(back.value(), payload) << "spill reload must be byte-identical";

  store.remove(42);
  EXPECT_FALSE(store.load(42).ok()) << "removed spill file must not load";
  store.remove(42);  // idempotent
}

TEST(SpillStoreTest, CorruptedSpillFileIsRefusedByCrc) {
  TempDir dir;
  mem::SpillStore store;
  store.configure(dir.path);
  std::vector<std::uint8_t> payload(4096, 0x5a);
  ASSERT_TRUE(store.save(7, payload).ok());

  // Flip one byte in the middle of the payload region on disk.
  const std::string path = dir.path + "/7.spill";
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(2048);
    const char evil = 0x13;
    f.write(&evil, 1);
  }
  EXPECT_FALSE(store.load(7).ok()) << "bit rot must be caught by the CRC";
}

TEST(SpillStoreTest, WriteFailureDegradesToInRamOnly) {
  TempDir dir;
  mem::SpillStore store;
  store.configure(dir.path);
  ASSERT_TRUE(store.enabled());

  const auto degraded_before = metrics::counter("mem.spill_degraded_total").value();
  vfs::StorageFaultPlan plan;
  plan.rules.push_back({vfs::StorageFaultMode::kEnospc, 1.0, -1});
  vfs::StorageFaultInjector::instance().arm(dir.path, plan);
  EXPECT_FALSE(store.save(1, std::vector<std::uint8_t>(512, 1)).ok());
  vfs::StorageFaultInjector::instance().disarm_all();

  EXPECT_TRUE(store.degraded());
  EXPECT_FALSE(store.enabled()) << "a degraded store must stop offering spill";
  EXPECT_GT(metrics::counter("mem.spill_degraded_total").value(), degraded_before);
}

// ---- AllocFaultInjector ----

TEST(AllocFaultTest, PrefixMatchMaxTriggersAndDisarm) {
  auto& inj = mem::AllocFaultInjector::instance();
  inj.disarm_all();
  EXPECT_FALSE(inj.armed());
  // Unarmed trip points are free and never throw.
  EXPECT_NO_THROW(mem::alloc_trip("server.execute"));

  inj.arm(mem::AllocFaultPlan::single("server.", 1.0, 2));
  EXPECT_TRUE(inj.armed());
  EXPECT_FALSE(inj.should_fail("net.recv")) << "site prefix must not match";
  EXPECT_TRUE(inj.should_fail("server.solve_decode"));
  EXPECT_TRUE(inj.should_fail("server.execute"));
  EXPECT_FALSE(inj.should_fail("server.execute")) << "max_triggers=2 exhausted";
  EXPECT_EQ(inj.triggered_count(), 2u);

  EXPECT_THROW(
      {
        inj.arm(mem::AllocFaultPlan::single("unit.test_site"));
        mem::alloc_trip("unit.test_site");
      },
      std::bad_alloc);

  inj.disarm_all();
  EXPECT_FALSE(inj.armed());
  EXPECT_EQ(inj.triggered_count(), 0u);
  EXPECT_NO_THROW(mem::alloc_trip("unit.test_site"));
}

// ---- client-role frame cap (transport) ----

TEST(FrameCapTest, OversizedReplyIsRejectedBeforeBuffering) {
  auto listener = net::TcpListener::bind(net::Endpoint{"127.0.0.1", 0});
  ASSERT_TRUE(listener.ok()) << listener.error().to_string();

  std::thread peer([&] {
    auto conn = listener.value().accept(5.0);
    if (!conn.ok()) return;
    // A well-formed frame whose payload (64 KiB) exceeds the 1 KiB cap the
    // client will read with.
    const serial::Bytes big(64 * 1024, 0xee);
    (void)net::send_message(conn.value(), 99, big);
    sleep_seconds(0.2);
  });

  auto conn = net::TcpConnection::connect(listener.value().endpoint(), 5.0);
  ASSERT_TRUE(conn.ok()) << conn.error().to_string();
  const auto oversized_before = metrics::counter("net.guard.oversized_total").value();
  auto msg = net::recv_message(conn.value(), 5.0, /*max_payload=*/1024);
  EXPECT_FALSE(msg.ok()) << "a payload over the client cap must be refused";
  if (!msg.ok()) {
    EXPECT_EQ(msg.error().code, ErrorCode::kProtocol);
  }
  EXPECT_GT(metrics::counter("net.guard.oversized_total").value(), oversized_before);
  peer.join();

  // The same frame under the default client cap parses fine.
  auto listener2 = net::TcpListener::bind(net::Endpoint{"127.0.0.1", 0});
  ASSERT_TRUE(listener2.ok());
  std::thread peer2([&] {
    auto conn2 = listener2.value().accept(5.0);
    if (!conn2.ok()) return;
    const serial::Bytes big(64 * 1024, 0xee);
    (void)net::send_message(conn2.value(), 99, big);
    sleep_seconds(0.2);
  });
  auto conn2 = net::TcpConnection::connect(listener2.value().endpoint(), 5.0);
  ASSERT_TRUE(conn2.ok());
  auto ok_msg = net::recv_message(conn2.value(), 5.0);
  ASSERT_TRUE(ok_msg.ok()) << ok_msg.error().to_string();
  EXPECT_EQ(ok_msg.value().payload.size(), 64u * 1024);
  peer2.join();
}

// ---- end-to-end: oversubscription with a fixed budget ----

// Jobs whose combined payload is ~3x the server's global memory budget.
// Admission charges every payload, queued-but-cold payloads spill to disk
// (releasing their charge), and over-budget admissions shed retryably with a
// retry_after hint the client's backoff honors. Expected outcome: >= 95%
// complete with numerically exact results (spill reloads are
// byte-identical), spill engaged, and the accounted high-water mark never
// passed the budget.
TEST(MemPressureTest, OversubscribedBurstCompletesWithinBudget) {
  TempDir spill_dir;
  constexpr std::uint64_t kBudget = 256 * 1024;
  constexpr std::size_t kVecDoubles = 2048;  // ~16 KiB per vector, 2 per job
  constexpr int kJobs = 24;                  // ~32 KiB payload each = 3x budget

  testkit::ClusterConfig config;
  config.rating_base = 500.0;
  testkit::ClusterServerSpec spec;
  spec.name = "server0";
  spec.workers = 1;  // force queueing: spill needs queued-but-cold payloads
  // Slow the server so each ddot takes ~80 ms of emulated time: payloads
  // must sit queued (and cold) long enough for the spill watermark to act.
  spec.speed = 1e-4;
  spec.slowdown_mode = server::SlowdownMode::kSleep;
  spec.mem.global_bytes = kBudget;
  spec.mem.spill_dir = spill_dir.path;
  spec.mem.spill_min_bytes = 1024;
  config.servers = {spec};
  config.io_timeout_s = 60.0;
  config.client_deadline_s = 45.0;  // retry sheds until done, not N attempts
  auto cluster = testkit::TestCluster::start(config);
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();
  auto& server = cluster.value()->server(0);
  ASSERT_TRUE(server.governor().governed());

  const auto spilled_before = metrics::counter("mem.spilled_bytes_total").value();
  const auto reloads_before = metrics::counter("mem.spill_reloads_total").value();

  linalg::Vector x(kVecDoubles, 1.0);
  linalg::Vector y(kVecDoubles, 2.0);
  const double expected = 2.0 * static_cast<double>(kVecDoubles);

  auto client = cluster.value()->make_client();
  std::vector<client::RequestHandle> handles;
  handles.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    handles.push_back(client.netsl_nb("ddot", {DataObject(x), DataObject(y)}));
  }
  int ok = 0;
  for (auto& handle : handles) {
    auto result = handle.wait();
    if (!result.ok()) continue;
    ASSERT_EQ(result.value().size(), 1u);
    // Numerically exact: a spill reload that was not byte-identical would
    // change operand bits and show up here.
    EXPECT_DOUBLE_EQ(result.value()[0].as_double(), expected);
    ++ok;
  }
  EXPECT_GE(ok, (kJobs * 95) / 100)
      << "completion under memory oversubscription fell below 95%: " << ok << "/"
      << kJobs;

  // Spill engaged and reloaded.
  EXPECT_GT(metrics::counter("mem.spilled_bytes_total").value(), spilled_before)
      << "payload spill never engaged";
  EXPECT_GT(metrics::counter("mem.spill_reloads_total").value(), reloads_before);

  // The budget invariant: the accounted high-water mark stayed within the
  // budget (no forced overshoot was needed for this sizing).
  EXPECT_LE(server.governor().peak(), kBudget)
      << "accounted bytes exceeded the budget";
  EXPECT_EQ(metrics::counter("mem.spill_reload_errors_total").value(), 0u);

  // Steady state: everything released, nothing left parked.
  EXPECT_TRUE(eventually([&] { return server.governor().accounted() == 0; }, 5.0))
      << "accounted bytes leaked: " << server.governor().accounted();
  EXPECT_EQ(server.spilled_jobs(), 0);
}

// A job that can never fit (payload + working set > the whole budget) is
// shed retryably at admission with a retry_after hint — and the shed is
// counted — while small jobs keep flowing.
TEST(MemPressureTest, OversizedJobShedsRetryablySmallJobsStillFlow) {
  testkit::ClusterConfig config;
  config.rating_base = 500.0;
  testkit::ClusterServerSpec spec;
  spec.name = "server0";
  spec.workers = 2;
  spec.slowdown_mode = server::SlowdownMode::kSleep;
  spec.mem.global_bytes = 64 * 1024;  // ddot(4096 doubles x2) can never fit
  config.servers = {spec};
  config.io_timeout_s = 20.0;
  auto cluster = testkit::TestCluster::start(config);
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();
  auto& server = cluster.value()->server(0);

  const auto shed_before = metrics::counter("mem.shed_total").value();
  {
    client::ClientConfig cc;
    cc.agents = {cluster.value()->agent_endpoint()};
    cc.io_timeout_s = 10.0;
    cc.max_retries = 1;  // we want to see the shed, not mask it with retries
    client::NetSolveClient big_client(cc);
    linalg::Vector v(4096, 1.0);
    auto result = big_client.netsl("ddot", {DataObject(v), DataObject(v)});
    EXPECT_FALSE(result.ok()) << "an infeasible job must be shed";
  }
  EXPECT_GT(metrics::counter("mem.shed_total").value(), shed_before);
  EXPECT_GT(server.mem_shed(), 0u);

  // The governor did not leak the refused payload's bytes.
  EXPECT_TRUE(eventually([&] { return server.governor().accounted() == 0; }, 5.0));

  // Small jobs still flow through the same server.
  auto client = cluster.value()->make_client();
  auto small = client.netsl("simwork", {DataObject(std::int64_t{1})});
  EXPECT_TRUE(small.ok()) << (small.ok() ? "" : small.error().to_string());
}

// ---- allocation-fault injection: no daemon ever crashes ----

// Every hardened trip point, scripted to throw twice: the failure converts
// into a counted retryable shed, the client's retry completes the job, and
// the daemon keeps serving. Running in one process means an escaped
// bad_alloc would take the whole test binary down — the strongest available
// "never std::terminate" assertion.
TEST(MemPressureTest, InjectedBadAllocNeverCrashesAnyDaemon) {
  const char* kSites[] = {
      "server.solve_decode", "server.execute", "net.recv",
      "net.mux_read",        "net.reactor_read",
  };

  testkit::ClusterConfig config;
  config.rating_base = 500.0;
  testkit::ClusterServerSpec spec;
  spec.name = "server0";
  spec.workers = 2;
  spec.slowdown_mode = server::SlowdownMode::kSleep;
  config.servers = {spec};
  config.io_timeout_s = 30.0;
  config.client_deadline_s = 20.0;
  auto cluster = testkit::TestCluster::start(config);
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();
  auto client = cluster.value()->make_client();

  for (const char* site : kSites) {
    SCOPED_TRACE(site);
    cluster.value()->arm_alloc_fault(mem::AllocFaultPlan::single(site, 1.0, 2));
    int ok = 0;
    constexpr int kBurst = 6;
    std::vector<client::RequestHandle> handles;
    for (int i = 0; i < kBurst; ++i) {
      handles.push_back(client.netsl_nb("simwork", {DataObject(std::int64_t{1})}));
    }
    for (auto& handle : handles) {
      if (handle.wait().ok()) ++ok;
    }
    cluster.value()->disarm_alloc_faults();
    EXPECT_EQ(ok, kBurst) << "jobs lost to injected bad_alloc at " << site;
    // The daemon is alive and serving after the fault window.
    auto after = client.netsl("simwork", {DataObject(std::int64_t{1})});
    EXPECT_TRUE(after.ok()) << (after.ok() ? "" : after.error().to_string());
  }
  EXPECT_GT(metrics::counter("mem.bad_alloc_total").value(), 0u);
}

// bad_alloc scripted inside the spill save and reload paths of an
// oversubscribed server: spill degrades to in-RAM (save) or sheds retryably
// (reload), and every job still completes.
TEST(MemPressureTest, InjectedBadAllocInSpillPathsIsSurvivable) {
  TempDir spill_dir;
  testkit::ClusterConfig config;
  config.rating_base = 500.0;
  testkit::ClusterServerSpec spec;
  spec.name = "server0";
  spec.workers = 1;
  spec.slowdown_mode = server::SlowdownMode::kSleep;
  spec.mem.global_bytes = 256 * 1024;
  spec.mem.spill_dir = spill_dir.path;
  spec.mem.spill_min_bytes = 1024;
  config.servers = {spec};
  config.io_timeout_s = 60.0;
  config.client_deadline_s = 45.0;
  auto cluster = testkit::TestCluster::start(config);
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();

  linalg::Vector x(2048, 1.0);
  linalg::Vector y(2048, 2.0);
  auto client = cluster.value()->make_client();
  for (const char* site : {"server.spill_save", "server.spill_reload", "mem.spill_load"}) {
    SCOPED_TRACE(site);
    cluster.value()->arm_alloc_fault(mem::AllocFaultPlan::single(site, 1.0, 2));
    std::vector<client::RequestHandle> handles;
    constexpr int kBurst = 12;
    for (int i = 0; i < kBurst; ++i) {
      handles.push_back(client.netsl_nb("ddot", {DataObject(x), DataObject(y)}));
    }
    int ok = 0;
    for (auto& handle : handles) {
      if (handle.wait().ok()) ++ok;
    }
    cluster.value()->disarm_alloc_faults();
    EXPECT_GE(ok, (kBurst * 95) / 100)
        << "burst under spill-path bad_alloc lost jobs: " << ok << "/" << kBurst;
  }
}

// ---- replica store byte bound ----

// Replica PUTs past the byte budget evict largest-first; the store's
// accounted bytes never exceed the budget, and the eviction is counted.
TEST(MemPressureTest, ReplicaStoreIsByteBoundedLargestFirst) {
  constexpr std::uint64_t kReplicaBudget = 64 * 1024;
  testkit::ClusterConfig config;
  config.rating_base = 500.0;
  testkit::ClusterServerSpec spec;
  spec.name = "server0";
  spec.workers = 1;
  spec.slowdown_mode = server::SlowdownMode::kSleep;
  spec.mem.replica_budget_bytes = kReplicaBudget;
  config.servers = {spec};
  config.io_timeout_s = 20.0;
  auto cluster = testkit::TestCluster::start(config);
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();
  auto& server = cluster.value()->server(0);
  const net::Endpoint ep = server.endpoint();

  const auto evicted_before = metrics::counter("mem.replica_evicted_total").value();

  auto put_checkpoint = [&](std::uint64_t request_id, std::size_t state_bytes) {
    proto::CheckpointPut put;
    put.origin = "peer";
    put.request_id = request_id;
    put.deadline_remaining_s = 60.0;
    put.iteration = 1;
    put.residual = 0.5;
    serial::Bytes state(state_bytes, static_cast<std::uint8_t>(request_id));
    put.frame = bytepack::pack_raw(state);
    put.has_request = true;
    put.request.request_id = request_id;
    put.request.problem = "simwork";
    put.request.args = {DataObject(std::int64_t{1})};
    serial::Encoder enc;
    put.encode(enc);
    auto reply = net::pool_round_trip(
        ep, static_cast<std::uint16_t>(proto::MessageType::kCheckpointPut),
        enc.take(), 5.0, 5.0);
    ASSERT_TRUE(reply.ok()) << reply.error().to_string();
    serial::Decoder dec(reply.value().payload);
    auto ack = proto::CheckpointPutAck::decode(dec);
    ASSERT_TRUE(ack.ok());
    EXPECT_TRUE(ack.value().accepted) << ack.value().reason;
  };

  // One big entry (~32 KiB) then a stream of small ones: the small ones must
  // evict the big entry (largest-first), not each other.
  put_checkpoint(1, 32 * 1024);
  EXPECT_GE(server.replica_bytes(), 32u * 1024);
  for (std::uint64_t id = 2; id <= 12; ++id) {
    put_checkpoint(id, 4 * 1024);
    EXPECT_LE(server.replica_bytes(), kReplicaBudget)
        << "replica store exceeded its byte budget";
  }
  EXPECT_GT(metrics::counter("mem.replica_evicted_total").value(), evicted_before)
      << "byte pressure never evicted anything";
  // The big entry was the (first) victim: the latest small entries survive.
  EXPECT_GE(server.replica_holds(), 8u);
  EXPECT_LE(server.replica_bytes(), kReplicaBudget);
}

// An entry larger than the whole replica budget is refused outright (never
// stored, never holds the budget hostage).
TEST(MemPressureTest, ReplicaLargerThanBudgetIsRefused) {
  testkit::ClusterConfig config;
  config.rating_base = 500.0;
  testkit::ClusterServerSpec spec;
  spec.name = "server0";
  spec.workers = 1;
  spec.slowdown_mode = server::SlowdownMode::kSleep;
  spec.mem.replica_budget_bytes = 8 * 1024;
  config.servers = {spec};
  config.io_timeout_s = 20.0;
  auto cluster = testkit::TestCluster::start(config);
  ASSERT_TRUE(cluster.ok()) << cluster.error().to_string();
  auto& server = cluster.value()->server(0);

  proto::CheckpointPut put;
  put.origin = "peer";
  put.request_id = 99;
  put.iteration = 1;
  serial::Bytes state(64 * 1024, 0xab);
  put.frame = bytepack::pack_raw(state);
  put.has_request = true;
  put.request.request_id = 99;
  put.request.problem = "simwork";
  put.request.args = {DataObject(std::int64_t{1})};
  serial::Encoder enc;
  put.encode(enc);
  auto reply = net::pool_round_trip(
      server.endpoint(), static_cast<std::uint16_t>(proto::MessageType::kCheckpointPut),
      enc.take(), 5.0, 5.0);
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  serial::Decoder dec(reply.value().payload);
  auto ack = proto::CheckpointPutAck::decode(dec);
  ASSERT_TRUE(ack.ok());
  EXPECT_FALSE(ack.value().accepted);
  EXPECT_EQ(server.replica_holds(), 0u);
  EXPECT_EQ(server.replica_bytes(), 0u);
}

}  // namespace
}  // namespace ns
