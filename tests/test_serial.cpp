// Unit + property tests for ns_serial: codec round-trips, bounds checking,
// CRC32, frame encode/decode.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>

#include "common/rng.hpp"
#include "serial/codec.hpp"
#include "serial/crc32.hpp"
#include "serial/frame.hpp"

namespace ns::serial {
namespace {

// ---- scalar round trips ----

TEST(CodecTest, ScalarRoundTrip) {
  Encoder enc;
  enc.put_u8(0xab);
  enc.put_u16(0xbeef);
  enc.put_u32(0xdeadbeefu);
  enc.put_u64(0x0123456789abcdefULL);
  enc.put_i32(-12345);
  enc.put_i64(-9876543210LL);
  enc.put_f64(3.14159);
  enc.put_bool(true);
  enc.put_bool(false);

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u8().value(), 0xab);
  EXPECT_EQ(dec.get_u16().value(), 0xbeef);
  EXPECT_EQ(dec.get_u32().value(), 0xdeadbeefu);
  EXPECT_EQ(dec.get_u64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(dec.get_i32().value(), -12345);
  EXPECT_EQ(dec.get_i64().value(), -9876543210LL);
  EXPECT_DOUBLE_EQ(dec.get_f64().value(), 3.14159);
  EXPECT_TRUE(dec.get_bool().value());
  EXPECT_FALSE(dec.get_bool().value());
  EXPECT_TRUE(dec.exhausted());
  EXPECT_TRUE(dec.expect_exhausted().ok());
}

TEST(CodecTest, LittleEndianLayout) {
  Encoder enc;
  enc.put_u32(0x01020304u);
  const auto& b = enc.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x04);
  EXPECT_EQ(b[1], 0x03);
  EXPECT_EQ(b[2], 0x02);
  EXPECT_EQ(b[3], 0x01);
}

TEST(CodecTest, SpecialDoubles) {
  Encoder enc;
  enc.put_f64(0.0);
  enc.put_f64(-0.0);
  enc.put_f64(std::numeric_limits<double>::infinity());
  enc.put_f64(-std::numeric_limits<double>::infinity());
  enc.put_f64(std::numeric_limits<double>::denorm_min());
  enc.put_f64(std::numeric_limits<double>::max());

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_f64().value(), 0.0);
  EXPECT_EQ(dec.get_f64().value(), -0.0);
  EXPECT_EQ(dec.get_f64().value(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(dec.get_f64().value(), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(dec.get_f64().value(), std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(dec.get_f64().value(), std::numeric_limits<double>::max());
}

TEST(CodecTest, NanRoundTripsBitExact) {
  Encoder enc;
  enc.put_f64(std::numeric_limits<double>::quiet_NaN());
  Decoder dec(enc.bytes());
  EXPECT_TRUE(std::isnan(dec.get_f64().value()));
}

// ---- strings / blobs / arrays ----

TEST(CodecTest, StringRoundTrip) {
  Encoder enc;
  enc.put_string("");
  enc.put_string("hello world");
  enc.put_string(std::string(1000, 'x'));

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_string().value(), "");
  EXPECT_EQ(dec.get_string().value(), "hello world");
  EXPECT_EQ(dec.get_string().value(), std::string(1000, 'x'));
}

TEST(CodecTest, StringWithEmbeddedNulAndBinary) {
  std::string s = "a";
  s.push_back('\0');
  s += "b\xff";
  Encoder enc;
  enc.put_string(s);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_string().value(), s);
}

TEST(CodecTest, F64ArrayRoundTrip) {
  std::vector<double> v{1.5, -2.25, 0.0, 1e300, -1e-300};
  Encoder enc;
  enc.put_f64_array(v);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_f64_array().value(), v);
}

TEST(CodecTest, I32ArrayRoundTrip) {
  std::vector<std::int32_t> v{0, -1, 2147483647, -2147483648};
  Encoder enc;
  enc.put_i32_array(v);
  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_i32_array().value(), v);
}

TEST(CodecTest, EmptyArrays) {
  Encoder enc;
  enc.put_f64_array(std::vector<double>{});
  enc.put_i32_array(std::vector<std::int32_t>{});
  Decoder dec(enc.bytes());
  EXPECT_TRUE(dec.get_f64_array().value().empty());
  EXPECT_TRUE(dec.get_i32_array().value().empty());
}

// ---- malformed input rejection ----

TEST(CodecTest, TruncatedScalarFails) {
  Encoder enc;
  enc.put_u16(7);
  Decoder dec(enc.bytes());
  EXPECT_FALSE(dec.get_u32().ok());
}

TEST(CodecTest, TruncatedStringFails) {
  Encoder enc;
  enc.put_u32(100);  // claims 100 bytes, provides none
  Decoder dec(enc.bytes());
  auto r = dec.get_string();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kProtocol);
}

TEST(CodecTest, OversizedStringRejected) {
  Encoder enc;
  enc.put_string("hello");
  Decoder dec(enc.bytes());
  EXPECT_FALSE(dec.get_string(/*max_len=*/3).ok());
}

TEST(CodecTest, OversizedArrayRejected) {
  Encoder enc;
  enc.put_u32(0xffffffffu);  // absurd element count
  Decoder dec(enc.bytes());
  EXPECT_FALSE(dec.get_f64_array().ok());
}

TEST(CodecTest, BadBoolRejected) {
  Encoder enc;
  enc.put_u8(2);
  Decoder dec(enc.bytes());
  EXPECT_FALSE(dec.get_bool().ok());
}

TEST(CodecTest, TrailingBytesDetected) {
  Encoder enc;
  enc.put_u32(1);
  enc.put_u32(2);
  Decoder dec(enc.bytes());
  (void)dec.get_u32();
  EXPECT_FALSE(dec.expect_exhausted().ok());
}

// ---- property: random message round trips ----

class CodecPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecPropertyTest, RandomMixRoundTrips) {
  Rng rng(GetParam());
  // Build a random sequence of typed fields, encode, decode, compare.
  constexpr int kFields = 64;
  std::vector<int> kinds(kFields);
  std::vector<std::uint64_t> u64s(kFields);
  std::vector<double> doubles(kFields);
  std::vector<std::string> strings(kFields);

  Encoder enc;
  for (int i = 0; i < kFields; ++i) {
    kinds[i] = static_cast<int>(rng.uniform_int(0, 2));
    switch (kinds[i]) {
      case 0:
        u64s[i] = rng.next_u64();
        enc.put_u64(u64s[i]);
        break;
      case 1:
        doubles[i] = rng.normal() * 1e6;
        enc.put_f64(doubles[i]);
        break;
      default: {
        const auto len = static_cast<std::size_t>(rng.uniform_int(0, 32));
        std::string s;
        for (std::size_t k = 0; k < len; ++k) {
          s.push_back(static_cast<char>(rng.uniform_int(0, 255)));
        }
        strings[i] = s;
        enc.put_string(s);
        break;
      }
    }
  }

  Decoder dec(enc.bytes());
  for (int i = 0; i < kFields; ++i) {
    switch (kinds[i]) {
      case 0:
        EXPECT_EQ(dec.get_u64().value(), u64s[i]);
        break;
      case 1:
        EXPECT_DOUBLE_EQ(dec.get_f64().value(), doubles[i]);
        break;
      default:
        EXPECT_EQ(dec.get_string().value(), strings[i]);
        break;
    }
  }
  EXPECT_TRUE(dec.expect_exhausted().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// ---- CRC32 ----

TEST(Crc32Test, KnownVector) {
  // The canonical IEEE test vector.
  const char* s = "123456789";
  EXPECT_EQ(crc32(s, 9), 0xcbf43926u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(crc32(nullptr, 0), 0u); }

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  std::uint32_t crc = kCrc32Init;
  crc = crc32_update(crc, data.data(), 10);
  crc = crc32_update(crc, data.data() + 10, data.size() - 10);
  EXPECT_EQ(crc32_final(crc), crc32(data.data(), data.size()));
}

TEST(Crc32Test, SensitiveToSingleBitFlip) {
  std::string data(64, 'a');
  const auto base = crc32(data.data(), data.size());
  data[17] = 'b';
  EXPECT_NE(crc32(data.data(), data.size()), base);
}

// ---- frames ----

TEST(FrameTest, HeaderRoundTrip) {
  FrameHeader header;
  header.type = 42;
  header.length = 1234;
  header.crc = 0xabcdef01u;
  std::uint8_t buf[kHeaderSize];
  encode_header(header, buf);
  auto decoded = decode_header(buf);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().type, 42);
  EXPECT_EQ(decoded.value().length, 1234u);
  EXPECT_EQ(decoded.value().crc, 0xabcdef01u);
  EXPECT_EQ(decoded.value().version, kProtocolVersion);
}

TEST(FrameTest, BadMagicRejected) {
  std::uint8_t buf[kHeaderSize] = {};
  auto decoded = decode_header(buf);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, ErrorCode::kProtocol);
}

TEST(FrameTest, WrongVersionRejected) {
  FrameHeader header;
  header.version = kProtocolVersion + 1;
  std::uint8_t buf[kHeaderSize];
  encode_header(header, buf);
  auto decoded = decode_header(buf);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, ErrorCode::kVersion);
}

TEST(FrameTest, BuildAndValidate) {
  Bytes payload{1, 2, 3, 4, 5};
  const Bytes frame = build_frame(7, payload);
  ASSERT_EQ(frame.size(), kHeaderSize + payload.size());
  auto header = decode_header(frame.data());
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header.value().type, 7);
  Bytes body(frame.begin() + kHeaderSize, frame.end());
  EXPECT_TRUE(check_payload(header.value(), body).ok());
}

TEST(FrameTest, CorruptPayloadDetected) {
  Bytes payload{1, 2, 3, 4, 5};
  const Bytes frame = build_frame(7, payload);
  auto header = decode_header(frame.data()).value();
  Bytes body(frame.begin() + kHeaderSize, frame.end());
  body[2] ^= 0x40;
  auto status = check_payload(header, body);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kCorruptFrame);
  EXPECT_TRUE(is_retryable(status.error().code))
      << "in-flight damage must be retryable, not terminal";
}

TEST(FrameTest, LengthMismatchDetected) {
  Bytes payload{1, 2, 3};
  const Bytes frame = build_frame(7, payload);
  auto header = decode_header(frame.data()).value();
  Bytes short_body(frame.begin() + kHeaderSize, frame.end() - 1);
  EXPECT_FALSE(check_payload(header, short_body).ok());
}

TEST(FrameTest, EmptyPayloadFrame) {
  const Bytes frame = build_frame(9, {});
  auto header = decode_header(frame.data());
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header.value().length, 0u);
  EXPECT_TRUE(check_payload(header.value(), {}).ok());
}

// Fuzz the receive path: random frames with random byte flips must always
// fail *cleanly* — a validation error, never a crash or over-read — and
// payload-only damage must surface as the retryable kCorruptFrame (that is
// what the client's fault-tolerance loop keys on).
TEST(FrameTest, FuzzedByteFlipsFailCleanly) {
  Rng rng(0xf0220605);
  int header_rejects = 0;
  int payload_rejects = 0;
  int survived_intact = 0;

  for (int iter = 0; iter < 5000; ++iter) {
    Bytes payload(static_cast<std::size_t>(rng.uniform_int(0, 64)));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto type = static_cast<std::uint16_t>(rng.uniform_int(1, 18));
    const Bytes original = build_frame(type, payload);

    Bytes frame = original;
    const int flips = static_cast<int>(rng.uniform_int(1, 4));
    bool payload_only = true;
    for (int f = 0; f < flips; ++f) {
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(frame.size()) - 1));
      frame[at] ^= static_cast<std::uint8_t>(1 + (rng.next_u64() & 0xfe));
      if (at < kHeaderSize) payload_only = false;
    }

    // Mimic recv_message: parse the header, then take header.length bytes
    // (bounded by what actually arrived — a reader never reads past the
    // stream), then CRC-check.
    auto header = decode_header(frame.data());
    if (!header.ok()) {
      EXPECT_TRUE(header.error().code == ErrorCode::kProtocol ||
                  header.error().code == ErrorCode::kVersion)
          << header.error().to_string();
      ++header_rejects;
      continue;
    }
    const std::size_t avail = frame.size() - kHeaderSize;
    const std::size_t take = std::min<std::size_t>(header.value().length, avail);
    Bytes body(frame.begin() + static_cast<std::ptrdiff_t>(kHeaderSize),
               frame.begin() + static_cast<std::ptrdiff_t>(kHeaderSize + take));
    auto status = check_payload(header.value(), body);
    if (status.ok()) {
      // Flips can only cancel out by re-hitting the same byte with the same
      // mask; anything else passing validation would be a real CRC hole.
      EXPECT_EQ(frame, original) << "damaged frame passed validation";
      ++survived_intact;
      continue;
    }
    if (payload_only && take == payload.size()) {
      EXPECT_EQ(status.error().code, ErrorCode::kCorruptFrame);
      EXPECT_TRUE(is_retryable(status.error().code));
    }
    ++payload_rejects;
  }

  // The schedule must actually have exercised both rejection paths.
  EXPECT_GT(header_rejects, 0);
  EXPECT_GT(payload_rejects, 0);
  EXPECT_LT(survived_intact, 50);
}

// ---- pipelined streams ----
//
// The reactor and the mux channel no longer see one frame per connection:
// many frames share a stream, arrive glued together in one read, or split at
// arbitrary byte boundaries across reads. These tests drive the same
// incremental decode loop the reactor's drain uses (accumulate, decode every
// complete frame, keep the tail) against adversarial chunkings.

namespace {

/// One decoded frame: type + payload, plus the request id the transport's
/// demultiplexer would read from the first eight payload bytes.
struct StreamFrame {
  std::uint16_t type = 0;
  Bytes payload;
  std::uint64_t request_id = 0;
};

std::uint64_t peek_request_id(const Bytes& payload) {
  if (payload.size() < 8) return 0;
  std::uint64_t id = 0;
  for (std::size_t i = 0; i < 8; ++i) id |= static_cast<std::uint64_t>(payload[i]) << (8 * i);
  return id;
}

/// Incremental stream decoder mirroring Reactor::drain_frames: feed bytes in
/// arbitrary chunks; complete frames pop out in order. Any validation error
/// is terminal (a real connection would be closed).
class FrameStream {
 public:
  Status feed(const std::uint8_t* data, std::size_t size, std::vector<StreamFrame>* out) {
    buf_.insert(buf_.end(), data, data + size);
    std::size_t consumed = 0;
    while (buf_.size() - consumed >= kHeaderSize) {
      auto header = decode_header(buf_.data() + consumed);
      if (!header.ok()) return header.error();
      const std::size_t total = kHeaderSize + header.value().length;
      if (buf_.size() - consumed < total) break;  // frame split across reads
      Bytes payload(buf_.begin() + static_cast<std::ptrdiff_t>(consumed + kHeaderSize),
                    buf_.begin() + static_cast<std::ptrdiff_t>(consumed + total));
      NS_RETURN_IF_ERROR(check_payload(header.value(), payload));
      StreamFrame frame;
      frame.type = header.value().type;
      frame.request_id = peek_request_id(payload);
      frame.payload = std::move(payload);
      out->push_back(std::move(frame));
      consumed += total;
    }
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(consumed));
    return ok_status();
  }

 private:
  Bytes buf_;
};

}  // namespace

// Frames glued together, split mid-header, split mid-payload — every
// chunking of a valid stream must yield exactly the frames that were sent,
// in order, with their request ids intact.
TEST(FrameStreamTest, FuzzedChunkingPreservesFrames) {
  Rng rng(0x51de0a11);
  for (int iter = 0; iter < 400; ++iter) {
    const int frame_count = static_cast<int>(rng.uniform_int(1, 12));
    std::vector<StreamFrame> sent;
    Bytes wire;
    for (int f = 0; f < frame_count; ++f) {
      StreamFrame frame;
      frame.type = static_cast<std::uint16_t>(rng.uniform_int(1, 30));
      // Interleaved request ids: each frame tags a distinct logical call.
      frame.request_id = rng.next_u64() | 1;
      frame.payload.resize(8 + static_cast<std::size_t>(rng.uniform_int(0, 96)));
      for (std::size_t i = 0; i < 8; ++i) {
        frame.payload[i] = static_cast<std::uint8_t>(frame.request_id >> (8 * i));
      }
      for (std::size_t i = 8; i < frame.payload.size(); ++i) {
        frame.payload[i] = static_cast<std::uint8_t>(rng.next_u64());
      }
      const Bytes encoded = build_frame(frame.type, frame.payload);
      wire.insert(wire.end(), encoded.begin(), encoded.end());
      sent.push_back(std::move(frame));
    }

    // Deliver the whole stream in random-sized chunks (1 byte up to several
    // frames at once), so splits land mid-header and mid-payload.
    FrameStream stream;
    std::vector<StreamFrame> got;
    std::size_t off = 0;
    while (off < wire.size()) {
      const std::size_t chunk = std::min<std::size_t>(
          wire.size() - off, static_cast<std::size_t>(rng.uniform_int(1, 80)));
      ASSERT_TRUE(stream.feed(wire.data() + off, chunk, &got).ok());
      off += chunk;
    }

    ASSERT_EQ(got.size(), sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i) {
      EXPECT_EQ(got[i].type, sent[i].type);
      EXPECT_EQ(got[i].request_id, sent[i].request_id) << "demux id must survive chunking";
      EXPECT_EQ(got[i].payload, sent[i].payload);
    }
  }
}

// Damage anywhere in a pipelined stream must fail cleanly at (or before) the
// damaged frame; every frame ahead of it still decodes.
TEST(FrameStreamTest, FuzzedDamageMidStreamFailsCleanly) {
  Rng rng(0xdeadf00d);
  int clean_failures = 0;
  for (int iter = 0; iter < 400; ++iter) {
    const int frame_count = static_cast<int>(rng.uniform_int(2, 8));
    Bytes wire;
    std::vector<std::size_t> starts;
    for (int f = 0; f < frame_count; ++f) {
      Bytes payload(8 + static_cast<std::size_t>(rng.uniform_int(0, 48)));
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
      starts.push_back(wire.size());
      const Bytes encoded =
          build_frame(static_cast<std::uint16_t>(rng.uniform_int(1, 30)), payload);
      wire.insert(wire.end(), encoded.begin(), encoded.end());
    }
    const auto at =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(wire.size()) - 1));
    wire[at] ^= static_cast<std::uint8_t>(1 + (rng.next_u64() & 0xfe));
    // Index of the first frame the flip could have touched.
    std::size_t damaged = 0;
    while (damaged + 1 < starts.size() && starts[damaged + 1] <= at) ++damaged;

    FrameStream stream;
    std::vector<StreamFrame> got;
    Status status = ok_status();
    std::size_t off = 0;
    while (off < wire.size() && status.ok()) {
      const std::size_t chunk = std::min<std::size_t>(
          wire.size() - off, static_cast<std::size_t>(rng.uniform_int(1, 64)));
      status = stream.feed(wire.data() + off, chunk, &got);
      off += chunk;
    }
    if (!status.ok()) {
      ++clean_failures;
      EXPECT_TRUE(status.error().code == ErrorCode::kCorruptFrame ||
                  status.error().code == ErrorCode::kProtocol ||
                  status.error().code == ErrorCode::kVersion)
          << status.error().to_string();
      EXPECT_GE(got.size(), damaged) << "frames ahead of the damage must have decoded";
    }
    // A length-field flip can also make the decoder wait for bytes that
    // never come — a real connection would hit its idle timeout. That shows
    // here as no error and fewer frames; both outcomes are clean, but the
    // decoder must never conjure extra frames.
    EXPECT_LE(got.size(), static_cast<std::size_t>(frame_count));
  }
  EXPECT_GT(clean_failures, 100) << "most flips must be detected, not absorbed";
}

}  // namespace
}  // namespace ns::serial
