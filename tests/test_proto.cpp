// Wire-protocol tests: round-trips for every message type, and fuzzing of
// the decode paths (random bytes and truncations must produce clean errors,
// never crashes or huge allocations).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "proto/messages.hpp"

namespace ns::proto {
namespace {

template <typename T>
serial::Bytes encode_msg(const T& msg) {
  serial::Encoder enc;
  msg.encode(enc);
  return enc.take();
}

template <typename T>
T round_trip(const T& msg) {
  const auto bytes = encode_msg(msg);
  serial::Decoder dec(bytes);
  auto back = T::decode(dec);
  EXPECT_TRUE(back.ok()) << (back.ok() ? "" : back.error().to_string());
  EXPECT_TRUE(dec.expect_exhausted().ok());
  return std::move(back).value();
}

dsl::ProblemSpec sample_spec() {
  dsl::ProblemSpec spec;
  spec.name = "dgesv";
  spec.description = "solve it";
  spec.inputs = {{"A", dsl::DataType::kMatrix}, {"b", dsl::DataType::kVector}};
  spec.outputs = {{"x", dsl::DataType::kVector}};
  spec.complexity = {0.667, 3.0};
  spec.size_arg = 0;
  return spec;
}

TEST(ProtoTest, RegisterServerRoundTrip) {
  RegisterServer msg;
  msg.server_name = "box7";
  msg.endpoint = {"10.1.2.3", 4242};
  msg.mflops = 123.5;
  msg.problems = {sample_spec(), sample_spec()};
  msg.problems[1].name = "cg";

  const auto back = round_trip(msg);
  EXPECT_EQ(back.server_name, "box7");
  EXPECT_EQ(back.endpoint.host, "10.1.2.3");
  EXPECT_EQ(back.endpoint.port, 4242);
  EXPECT_DOUBLE_EQ(back.mflops, 123.5);
  ASSERT_EQ(back.problems.size(), 2u);
  EXPECT_EQ(back.problems[0], msg.problems[0]);
  EXPECT_EQ(back.problems[1].name, "cg");
}

TEST(ProtoTest, RegisterAckRoundTrip) {
  RegisterAck msg;
  msg.server_id = 0xdeadbeef;
  EXPECT_EQ(round_trip(msg).server_id, 0xdeadbeefu);
}

TEST(ProtoTest, WorkloadReportRoundTrip) {
  WorkloadReport msg;
  msg.server_id = 9;
  msg.workload = 3.25;
  msg.completed = 1ull << 40;
  msg.sojourn_p95_s = 0.875;
  msg.free_slots = 2.0;
  msg.mem_free_bytes = 1.5e9;
  msg.spill_active = 1;
  const auto back = round_trip(msg);
  EXPECT_EQ(back.server_id, 9u);
  EXPECT_DOUBLE_EQ(back.workload, 3.25);
  EXPECT_EQ(back.completed, 1ull << 40);
  EXPECT_DOUBLE_EQ(back.sojourn_p95_s, 0.875);
  EXPECT_DOUBLE_EQ(back.free_slots, 2.0);
  EXPECT_DOUBLE_EQ(back.mem_free_bytes, 1.5e9);
  EXPECT_EQ(back.spill_active, 1);
}

TEST(ProtoTest, QueryRoundTrip) {
  Query msg;
  msg.problem = "dgemm";
  msg.input_bytes = 123456789;
  msg.output_bytes = 987654321;
  msg.size_hint = 2048;
  msg.max_candidates = 3;
  const auto back = round_trip(msg);
  EXPECT_EQ(back.problem, "dgemm");
  EXPECT_EQ(back.input_bytes, 123456789u);
  EXPECT_EQ(back.output_bytes, 987654321u);
  EXPECT_EQ(back.size_hint, 2048u);
  EXPECT_EQ(back.max_candidates, 3u);
}

TEST(ProtoTest, ServerListRoundTrip) {
  ServerList msg;
  for (int i = 0; i < 3; ++i) {
    ServerCandidate c;
    c.server_id = static_cast<ServerId>(i + 1);
    c.server_name = "s" + std::to_string(i);
    c.endpoint = {"127.0.0.1", static_cast<std::uint16_t>(9000 + i)};
    c.predicted_seconds = 0.5 * i;
    msg.candidates.push_back(std::move(c));
  }
  const auto back = round_trip(msg);
  ASSERT_EQ(back.candidates.size(), 3u);
  EXPECT_EQ(back.candidates[2].server_name, "s2");
  EXPECT_DOUBLE_EQ(back.candidates[2].predicted_seconds, 1.0);
}

TEST(ProtoTest, SolveRequestRoundTrip) {
  Rng rng(1);
  SolveRequest msg;
  msg.request_id = 77;
  msg.problem = "dgesv";
  msg.args = {dsl::DataObject(linalg::Matrix::random(4, 4, rng)),
              dsl::DataObject(linalg::Vector{1, 2, 3, 4})};
  msg.deadline_s = 1.5;
  msg.client_id = 0xc11e47ull;
  const auto back = round_trip(msg);
  EXPECT_EQ(back.request_id, 77u);
  ASSERT_EQ(back.args.size(), 2u);
  EXPECT_EQ(back.args[0], msg.args[0]);
  EXPECT_EQ(back.args[1], msg.args[1]);
  EXPECT_DOUBLE_EQ(back.deadline_s, 1.5);
  EXPECT_EQ(back.client_id, 0xc11e47ull);
}

TEST(ProtoTest, SolveResultRoundTrip) {
  SolveResult msg;
  msg.request_id = 78;
  msg.error_code = static_cast<std::uint16_t>(ErrorCode::kExecutionFailed);
  msg.error_message = "singular";
  msg.exec_seconds = 0.125;
  msg.retry_after_s = 0.031;
  const auto back = round_trip(msg);
  EXPECT_EQ(back.request_id, 78u);
  EXPECT_EQ(back.error_code, static_cast<std::uint16_t>(ErrorCode::kExecutionFailed));
  EXPECT_EQ(back.error_message, "singular");
  EXPECT_TRUE(back.outputs.empty());
  EXPECT_DOUBLE_EQ(back.exec_seconds, 0.125);
  EXPECT_DOUBLE_EQ(back.retry_after_s, 0.031);
}

// The overload-control fields are trailing additions: payloads from peers
// that predate them must still parse, with the fields at their defaults.
TEST(ProtoTest, OldPeersWithoutOverloadFieldsStillParse) {
  {
    SolveRequest msg;
    msg.request_id = 5;
    msg.problem = "cg";
    msg.args = {dsl::DataObject(std::int64_t{7})};
    msg.deadline_s = 2.0;
    msg.client_id = 999;  // must NOT survive: legacy encoders never wrote it
    auto bytes = encode_msg(msg);
    // Strip the trailing client_id u64 plus the later require_durable flag.
    bytes.resize(bytes.size() - 8 - 1);
    serial::Decoder dec(bytes);
    auto back = SolveRequest::decode(dec);
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(dec.expect_exhausted().ok());
    EXPECT_EQ(back.value().request_id, 5u);
    EXPECT_DOUBLE_EQ(back.value().deadline_s, 2.0);
    EXPECT_EQ(back.value().client_id, 0u) << "legacy request must stay anonymous";
    EXPECT_FALSE(back.value().require_durable);
  }
  {
    SolveResult msg;
    msg.request_id = 6;
    msg.retry_after_s = 0.5;
    auto bytes = encode_msg(msg);
    // Strip retry_after_s (f64) plus the later migrated_host/migrated_port
    // addition (empty string = u32 length, then u16): the pre-overload wire.
    bytes.resize(bytes.size() - 8 - 4 - 2);
    serial::Decoder dec(bytes);
    auto back = SolveResult::decode(dec);
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(dec.expect_exhausted().ok());
    EXPECT_DOUBLE_EQ(back.value().retry_after_s, 0.0) << "legacy reply carries no hint";
    EXPECT_EQ(back.value().migrated_port, 0) << "legacy reply was never migrated";
  }
  {
    SolveResult msg;
    msg.request_id = 6;
    msg.retry_after_s = 0.5;
    auto bytes = encode_msg(msg);
    bytes.resize(bytes.size() - 4 - 2);  // strip only the migration fields
    serial::Decoder dec(bytes);
    auto back = SolveResult::decode(dec);
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(dec.expect_exhausted().ok());
    EXPECT_DOUBLE_EQ(back.value().retry_after_s, 0.5)
        << "overload-era reply keeps its hint";
    EXPECT_TRUE(back.value().migrated_host.empty());
    EXPECT_EQ(back.value().migrated_port, 0);
  }
  {
    WorkloadReport msg;
    msg.server_id = 7;
    msg.workload = 1.0;
    msg.sojourn_p95_s = 9.0;
    msg.free_slots = 3.0;
    auto bytes = encode_msg(msg);
    // Strip both trailing queue-pressure f64s plus the later durable i32 and
    // the memory fields (mem_free_bytes f64 + spill_active i32).
    bytes.resize(bytes.size() - 16 - 4 - 12);
    serial::Decoder dec(bytes);
    auto back = WorkloadReport::decode(dec);
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(dec.expect_exhausted().ok());
    EXPECT_DOUBLE_EQ(back.value().sojourn_p95_s, 0.0);
    EXPECT_DOUBLE_EQ(back.value().free_slots, -1.0) << "-1 marks 'not reported'";
    EXPECT_EQ(back.value().durable, -1) << "-1 marks 'not reported'";
    EXPECT_DOUBLE_EQ(back.value().mem_free_bytes, -1.0) << "-1 marks 'ungoverned'";
    EXPECT_EQ(back.value().spill_active, -1) << "-1 marks 'no spill store'";
  }
}

// The durability fields (SolveRequest.require_durable, WorkloadReport.durable)
// are trailing additions one era later than the overload fields: a payload
// from an overload-era peer carries client_id / queue-pressure but ends
// before them, and must parse with the durability defaults.
TEST(ProtoTest, OldPeersWithoutDurabilityFieldsStillParse) {
  {
    SolveRequest msg;
    msg.request_id = 11;
    msg.problem = "cg";
    msg.args = {dsl::DataObject(std::int64_t{3})};
    msg.client_id = 42;
    msg.require_durable = true;  // must NOT survive: old encoders never wrote it
    auto bytes = encode_msg(msg);
    bytes.resize(bytes.size() - 1);  // strip the trailing require_durable u8
    serial::Decoder dec(bytes);
    auto back = SolveRequest::decode(dec);
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(dec.expect_exhausted().ok());
    EXPECT_EQ(back.value().client_id, 42u) << "overload-era field must survive";
    EXPECT_FALSE(back.value().require_durable) << "legacy request has no durability ask";
  }
  {
    WorkloadReport msg;
    msg.server_id = 8;
    msg.workload = 2.0;
    msg.sojourn_p95_s = 0.25;
    msg.free_slots = 1.0;
    msg.durable = 1;  // must NOT survive
    auto bytes = encode_msg(msg);
    // Strip the durable i32 plus the later memory fields (f64 + i32).
    bytes.resize(bytes.size() - 4 - 12);
    serial::Decoder dec(bytes);
    auto back = WorkloadReport::decode(dec);
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(dec.expect_exhausted().ok());
    EXPECT_DOUBLE_EQ(back.value().sojourn_p95_s, 0.25);
    EXPECT_DOUBLE_EQ(back.value().free_slots, 1.0);
    EXPECT_EQ(back.value().durable, -1) << "legacy report never claims durability";
    EXPECT_DOUBLE_EQ(back.value().mem_free_bytes, -1.0);
    EXPECT_EQ(back.value().spill_active, -1);
  }
  {
    // A request whose durable flag is neither 0 nor 1 is a protocol error,
    // not a silently-coerced bool.
    SolveRequest msg;
    msg.request_id = 12;
    msg.problem = "cg";
    msg.args = {dsl::DataObject(std::int64_t{3})};
    auto bytes = encode_msg(msg);
    bytes.back() = 7;
    serial::Decoder dec(bytes);
    EXPECT_FALSE(SolveRequest::decode(dec).ok());
  }
}

// The memory-pressure fields (WorkloadReport.mem_free_bytes / spill_active)
// trail one era later again than durability: a durability-era payload ends
// right after the durable i32 and must parse with the ungoverned defaults,
// while a payload torn mid-group is a protocol error, not a partial parse.
TEST(ProtoTest, OldPeersWithoutMemoryFieldsStillParse) {
  WorkloadReport msg;
  msg.server_id = 21;
  msg.workload = 1.5;
  msg.sojourn_p95_s = 0.125;
  msg.free_slots = 4.0;
  msg.durable = 1;             // must survive: durability-era field
  msg.mem_free_bytes = 123.0;  // must NOT survive: old encoders never wrote it
  msg.spill_active = 1;        // must NOT survive
  {
    auto bytes = encode_msg(msg);
    bytes.resize(bytes.size() - 12);  // strip mem_free_bytes f64 + spill_active i32
    serial::Decoder dec(bytes);
    auto back = WorkloadReport::decode(dec);
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(dec.expect_exhausted().ok());
    EXPECT_EQ(back.value().durable, 1);
    EXPECT_DOUBLE_EQ(back.value().mem_free_bytes, -1.0)
        << "durability-era report must read as ungoverned";
    EXPECT_EQ(back.value().spill_active, -1);
  }
  {
    // Truncated inside the memory group: mem_free_bytes present but
    // spill_active missing. The group is all-or-nothing.
    auto bytes = encode_msg(msg);
    bytes.resize(bytes.size() - 4);
    serial::Decoder dec(bytes);
    EXPECT_FALSE(WorkloadReport::decode(dec).ok());
  }
}

// Junk fuzz over the memory fields: arbitrary (including absurd or negative)
// values must round-trip bit-exactly and never crash the decoder — the
// *predictor* is where semantics live (-1 = ungoverned, 1 = spilling), the
// wire just carries the numbers.
TEST(ProtoTest, MemoryFieldsFuzzRoundTrip) {
  Rng rng(29);
  for (int trial = 0; trial < 100; ++trial) {
    WorkloadReport report;
    report.server_id = static_cast<ServerId>(rng.next_u64());
    report.mem_free_bytes = rng.uniform(-2.0, 1e12);
    report.spill_active = static_cast<int>(rng.uniform_int(-4, 1 << 20));
    const auto back = round_trip(report);
    EXPECT_DOUBLE_EQ(back.mem_free_bytes, report.mem_free_bytes);
    EXPECT_EQ(back.spill_active, report.spill_active);

    // Random tail truncation somewhere inside the trailing groups must
    // either parse (clean era boundary) or fail cleanly — never crash.
    auto bytes = encode_msg(report);
    const auto cut = static_cast<std::size_t>(rng.uniform_int(0, 32));
    bytes.resize(std::max<std::size_t>(bytes.size() - cut, 12));
    serial::Decoder dec(bytes);
    (void)WorkloadReport::decode(dec);
  }
}

// A memory-governor shed rides the same retryable-BUSY shape as a queue
// shed: kServerOverloaded plus a retry_after_s hint the client folds into
// its backoff. The wire must carry both faithfully.
TEST(ProtoTest, MemoryShedResultCarriesRetryHint) {
  SolveResult msg;
  msg.request_id = 77;
  msg.error_code = static_cast<std::uint16_t>(ErrorCode::kServerOverloaded);
  msg.error_message = "memory governor: payload does not fit the budget";
  msg.retry_after_s = 0.75;
  const auto back = round_trip(msg);
  EXPECT_EQ(back.error_code, static_cast<std::uint16_t>(ErrorCode::kServerOverloaded));
  EXPECT_EQ(back.error_message, msg.error_message);
  EXPECT_DOUBLE_EQ(back.retry_after_s, 0.75);
  EXPECT_TRUE(is_retryable(static_cast<ErrorCode>(back.error_code)))
      << "a memory shed must stay retryable or clients would give up";
}

// Checkpoint-replication messages: round-trips for the PUT/FETCH pairs,
// including the framed SolveRequest blob a first PUT carries so the replica
// can re-admit the job on adoption.
TEST(ProtoTest, CheckpointMessagesRoundTrip) {
  {
    // Self-contained frame with the request blob attached (first frame for
    // this job, or a "need full" resend).
    CheckpointPut msg;
    msg.origin = "server1";
    msg.request_id = 4242;
    msg.deadline_remaining_s = 17.5;
    msg.iteration = 75;
    msg.residual = 1e-6;
    msg.base_iteration = 0;
    msg.frame = {0x01, 0x00, 0xff, 0x42, 0x42, 0x42};
    msg.has_request = true;
    msg.request.request_id = 4242;
    msg.request.problem = "simstate";
    msg.request.args = {dsl::DataObject(std::int64_t{20}), dsl::DataObject(std::int64_t{16})};
    msg.request.require_durable = true;
    const auto back = round_trip(msg);
    EXPECT_EQ(back.origin, "server1");
    EXPECT_EQ(back.request_id, 4242u);
    EXPECT_DOUBLE_EQ(back.deadline_remaining_s, 17.5);
    EXPECT_EQ(back.iteration, 75u);
    EXPECT_DOUBLE_EQ(back.residual, 1e-6);
    EXPECT_EQ(back.base_iteration, 0u);
    EXPECT_EQ(back.frame, msg.frame);
    ASSERT_TRUE(back.has_request);
    EXPECT_EQ(back.request.problem, "simstate");
    ASSERT_EQ(back.request.args.size(), 2u);
    EXPECT_EQ(back.request.args[1], msg.request.args[1]);
    EXPECT_TRUE(back.request.require_durable);
  }
  {
    // Steady-state delta frame: no request blob, base_iteration names the
    // snapshot the delta applies to.
    CheckpointPut msg;
    msg.origin = "server1";
    msg.request_id = 4242;
    msg.iteration = 100;
    msg.base_iteration = 75;
    msg.frame = {0x02, 0x10};
    const auto back = round_trip(msg);
    EXPECT_EQ(back.base_iteration, 75u);
    EXPECT_FALSE(back.has_request);
    EXPECT_EQ(back.frame, msg.frame);
  }
  {
    CheckpointPutAck msg;
    msg.request_id = 4242;
    msg.accepted = false;
    msg.reason = "need full";  // replica lacks the delta's base snapshot
    const auto back = round_trip(msg);
    EXPECT_EQ(back.request_id, 4242u);
    EXPECT_FALSE(back.accepted);
    EXPECT_EQ(back.reason, "need full");
  }
  {
    CheckpointFetch msg;
    msg.request_id = 4242;
    msg.origin = "";  // any origin holding this request id
    msg.adopt = true;
    const auto back = round_trip(msg);
    EXPECT_EQ(back.request_id, 4242u);
    EXPECT_TRUE(back.origin.empty());
    EXPECT_TRUE(back.adopt);
  }
  {
    CheckpointFetchReply msg;
    msg.request_id = 4242;
    msg.found = true;
    msg.adopted = true;
    msg.iteration = 100;
    msg.residual = 3.5e-7;
    msg.origin = "server1";
    const auto back = round_trip(msg);
    EXPECT_TRUE(back.found);
    EXPECT_TRUE(back.adopted);
    EXPECT_EQ(back.iteration, 100u);
    EXPECT_DOUBLE_EQ(back.residual, 3.5e-7);
    EXPECT_EQ(back.origin, "server1");
  }
  {
    // A fetch whose adopt flag is out of the bool alphabet must be rejected.
    CheckpointFetch msg;
    msg.request_id = 1;
    msg.adopt = true;
    auto bytes = encode_msg(msg);
    bytes.back() = 9;
    serial::Decoder dec(bytes);
    EXPECT_FALSE(CheckpointFetch::decode(dec).ok());
  }
}

// Randomized round-trips of the overload-control fields: extreme but finite
// values must survive the wire bit-exactly.
TEST(ProtoTest, OverloadFieldsFuzzRoundTrip) {
  Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    SolveRequest req;
    req.request_id = rng.next_u64();
    req.problem = "simwork";
    req.args = {dsl::DataObject(std::int64_t{1})};
    req.deadline_s = rng.uniform(0.0, 1e6);
    req.client_id = rng.next_u64();
    const auto req_back = round_trip(req);
    EXPECT_EQ(req_back.client_id, req.client_id);
    EXPECT_DOUBLE_EQ(req_back.deadline_s, req.deadline_s);

    SolveResult res;
    res.request_id = rng.next_u64();
    res.retry_after_s = rng.uniform(0.0, 3600.0);
    EXPECT_DOUBLE_EQ(round_trip(res).retry_after_s, res.retry_after_s);

    WorkloadReport report;
    report.server_id = static_cast<ServerId>(rng.next_u64());
    report.sojourn_p95_s = rng.uniform(0.0, 1e3);
    report.free_slots = rng.uniform(-1.0, 64.0);
    const auto report_back = round_trip(report);
    EXPECT_DOUBLE_EQ(report_back.sojourn_p95_s, report.sojourn_p95_s);
    EXPECT_DOUBLE_EQ(report_back.free_slots, report.free_slots);
  }
}

TEST(ProtoTest, FailureAndMetricsRoundTrip) {
  FailureReport failure;
  failure.server_id = 4;
  failure.error_code = static_cast<std::uint16_t>(ErrorCode::kTimeout);
  EXPECT_EQ(round_trip(failure).error_code,
            static_cast<std::uint16_t>(ErrorCode::kTimeout));

  MetricsReport metrics;
  metrics.server_id = 4;
  metrics.bytes = 1 << 20;
  metrics.transfer_seconds = 0.25;
  const auto back = round_trip(metrics);
  EXPECT_EQ(back.bytes, 1u << 20);
  EXPECT_DOUBLE_EQ(back.transfer_seconds, 0.25);
}

TEST(ProtoTest, CatalogErrorStatsRoundTrip) {
  ProblemCatalog catalog;
  catalog.problems = {sample_spec()};
  EXPECT_EQ(round_trip(catalog).problems[0], sample_spec());

  ErrorReply err;
  err.error_code = static_cast<std::uint16_t>(ErrorCode::kNoServer);
  err.message = "pool empty";
  EXPECT_EQ(round_trip(err).message, "pool empty");

  AgentStats stats;
  stats.queries = 10;
  stats.registrations = 2;
  stats.workload_reports = 30;
  stats.failure_reports = 1;
  stats.alive_servers = 2;
  const auto back = round_trip(stats);
  EXPECT_EQ(back.queries, 10u);
  EXPECT_EQ(back.alive_servers, 2u);
}

TEST(ProtoTest, CancelAndDrainRoundTrip) {
  CancelRequest cancel;
  cancel.request_id = 0x1122334455667788ull;
  EXPECT_EQ(round_trip(cancel).request_id, 0x1122334455667788ull);

  CancelAck ack;
  ack.request_id = 42;
  ack.outcome = CancelOutcome::kRunning;
  const auto ack_back = round_trip(ack);
  EXPECT_EQ(ack_back.request_id, 42u);
  EXPECT_EQ(ack_back.outcome, CancelOutcome::kRunning);

  DrainRequest drain;
  drain.deadline_s = 2.5;
  EXPECT_DOUBLE_EQ(round_trip(drain).deadline_s, 2.5);

  DrainAck drain_ack;
  drain_ack.started = true;
  drain_ack.running = 3;
  drain_ack.queued = 7;
  const auto drain_back = round_trip(drain_ack);
  EXPECT_TRUE(drain_back.started);
  EXPECT_EQ(drain_back.running, 3u);
  EXPECT_EQ(drain_back.queued, 7u);

  DeregisterServer dereg;
  dereg.server_id = 0xfeedu;
  EXPECT_EQ(round_trip(dereg).server_id, 0xfeedu);
}

TEST(ProtoTest, CancelAckRejectsUnknownOutcome) {
  CancelAck ack;
  ack.request_id = 1;
  ack.outcome = CancelOutcome::kQueued;
  auto bytes = encode_msg(ack);
  // The outcome byte is the last field; force it out of range.
  bytes.back() = 0x7f;
  serial::Decoder dec(bytes);
  auto back = CancelAck::decode(dec);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.error().code, ErrorCode::kProtocol);
}

// The cancelled error code travels the same SolveResult path as every other
// failure; a kCancelled reply must survive the wire (the hedging client's
// loser accounting depends on it).
TEST(ProtoTest, SolveResultCarriesCancelled) {
  SolveResult msg;
  msg.request_id = 9;
  msg.error_code = static_cast<std::uint16_t>(ErrorCode::kCancelled);
  msg.error_message = "cancelled while queued";
  const auto back = round_trip(msg);
  EXPECT_EQ(static_cast<ErrorCode>(back.error_code), ErrorCode::kCancelled);
  // A cancelled attempt says nothing about the request itself: retryable.
  EXPECT_TRUE(is_retryable(ErrorCode::kCancelled));
}

// ---- hostile input ----

TEST(ProtoFuzzTest, TruncationsNeverCrash) {
  Rng rng(2);
  SolveRequest msg;
  msg.request_id = 1;
  msg.problem = "dgemm";
  msg.args = {dsl::DataObject(linalg::Matrix::random(6, 6, rng)),
              dsl::DataObject(std::int64_t{5})};
  const auto bytes = encode_msg(msg);
  // Every strict prefix must either decode to a clean error or — at exactly
  // a backward-compat boundary where a trailing optional field begins —
  // parse as a legacy request with the field at its default. Never a crash.
  // Two boundaries: before client_id (u64) and before require_durable (u8).
  const std::size_t pre_client_id = bytes.size() - 8 - 1;
  const std::size_t pre_durable = bytes.size() - 1;
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    serial::Decoder dec(bytes.data(), len);
    auto back = SolveRequest::decode(dec);
    if (len == pre_client_id || len == pre_durable) {
      ASSERT_TRUE(back.ok()) << "compat boundary must parse as a legacy request";
      EXPECT_EQ(back.value().client_id, len == pre_durable ? msg.client_id : 0u);
      EXPECT_FALSE(back.value().require_durable);
    } else {
      EXPECT_FALSE(back.ok()) << "prefix length " << len;
    }
  }
}

class ProtoRandomFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtoRandomFuzzTest, RandomBytesProduceCleanErrors) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 256));
    serial::Bytes junk(len);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    // Try every decoder; none may crash, loop, or allocate absurdly.
    {
      serial::Decoder dec(junk);
      (void)RegisterServer::decode(dec);
    }
    {
      serial::Decoder dec(junk);
      (void)Query::decode(dec);
    }
    {
      serial::Decoder dec(junk);
      (void)ServerList::decode(dec);
    }
    {
      serial::Decoder dec(junk);
      (void)SolveRequest::decode(dec);
    }
    {
      serial::Decoder dec(junk);
      (void)SolveResult::decode(dec);
    }
    {
      serial::Decoder dec(junk);
      (void)ProblemCatalog::decode(dec);
    }
    {
      serial::Decoder dec(junk);
      (void)CancelAck::decode(dec);
    }
    {
      serial::Decoder dec(junk);
      (void)DrainAck::decode(dec);
    }
    {
      serial::Decoder dec(junk);
      (void)CheckpointPut::decode(dec);
    }
    {
      serial::Decoder dec(junk);
      (void)CheckpointFetch::decode(dec);
    }
    {
      serial::Decoder dec(junk);
      (void)CheckpointFetchReply::decode(dec);
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtoRandomFuzzTest, ::testing::Values(11, 22, 33, 44, 55));

TEST(ProtoFuzzTest, BitFlipsEitherDecodeOrFailCleanly) {
  Rng rng(3);
  ServerList msg;
  ServerCandidate c;
  c.server_id = 1;
  c.server_name = "x";
  c.endpoint = {"127.0.0.1", 1};
  msg.candidates = {c};
  const auto bytes = encode_msg(msg);
  for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    auto mutated = bytes;
    mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    serial::Decoder dec(mutated);
    auto back = ServerList::decode(dec);  // either outcome fine; no crash
    (void)back;
  }
  SUCCEED();
}

}  // namespace
}  // namespace ns::proto
