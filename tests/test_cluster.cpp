// Cluster-level behaviour: policy routing end-to-end, specialized server
// catalogues, agent liveness pinging, the pending-assignment mechanism, the
// extended problem set over the wire, and network-metric learning.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/clock.hpp"
#include "linalg/blas.hpp"
#include "linalg/fft.hpp"
#include "testkit/cluster.hpp"

namespace ns {
namespace {

using dsl::DataObject;

// ---- extended catalogue over the wire ----

class ExtendedProblemsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testkit::ClusterConfig config;
    config.servers = testkit::uniform_pool(1);
    config.rating_base = 500.0;
    auto cluster = testkit::TestCluster::start(std::move(config));
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
  }
  std::unique_ptr<testkit::TestCluster> cluster_;
  Rng rng_{0xe0};
};

TEST_F(ExtendedProblemsTest, FftRoundTripRemotely) {
  auto client = cluster_->make_client();
  const auto re = linalg::random_vector(128, rng_);
  const linalg::Vector im(128, 0.0);
  auto fwd = client.call("fft", re, im);
  ASSERT_TRUE(fwd.ok());
  auto back = client.call("ifft", fwd.value()[0].as_vector(), fwd.value()[1].as_vector());
  ASSERT_TRUE(back.ok());
  EXPECT_LT(linalg::max_abs_diff(back.value()[0].as_vector(), re), 1e-10);
}

TEST_F(ExtendedProblemsTest, FftBadLengthRejected) {
  auto client = cluster_->make_client();
  auto out = client.call("fft", linalg::Vector(100), linalg::Vector(100));
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, ErrorCode::kBadArguments);
}

TEST_F(ExtendedProblemsTest, ConvolveRemotely) {
  auto client = cluster_->make_client();
  auto out = client.call("convolve", linalg::Vector{1, 2}, linalg::Vector{3, 4});
  ASSERT_TRUE(out.ok());
  const auto& z = out.value()[0].as_vector();
  ASSERT_EQ(z.size(), 3u);
  EXPECT_NEAR(z[1], 10.0, 1e-9);
}

TEST_F(ExtendedProblemsTest, SvdAndCondRemotely) {
  auto client = cluster_->make_client();
  auto sv = client.call("svd_vals", linalg::Matrix::identity(6));
  ASSERT_TRUE(sv.ok());
  for (const double s : sv.value()[0].as_vector()) EXPECT_NEAR(s, 1.0, 1e-10);
  auto kappa = client.call("cond", linalg::Matrix::identity(6));
  ASSERT_TRUE(kappa.ok());
  EXPECT_NEAR(kappa.value()[0].as_double(), 1.0, 1e-9);
}

TEST_F(ExtendedProblemsTest, QuadSplineRemotely) {
  auto client = cluster_->make_client();
  linalg::Vector x, y;
  for (int i = 0; i <= 20; ++i) {
    x.push_back(i / 20.0);
    y.push_back(x.back() * x.back());
  }
  auto out = client.call("quad_spline", x, y);
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out.value()[0].as_double(), 1.0 / 3.0, 1e-4);
}

TEST_F(ExtendedProblemsTest, DsortRemotely) {
  auto client = cluster_->make_client();
  auto out = client.call("dsort", linalg::Vector{3.0, 1.0, 2.0, -5.0});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value()[0].as_vector(), (linalg::Vector{-5.0, 1.0, 2.0, 3.0}));
}

TEST_F(ExtendedProblemsTest, ExpmRemotely) {
  auto client = cluster_->make_client();
  linalg::Matrix zero(4, 4);
  auto out = client.call("expm", zero);
  ASSERT_TRUE(out.ok());
  EXPECT_LT(linalg::max_abs_diff(out.value()[0].as_matrix(), linalg::Matrix::identity(4)),
            1e-12);
}

TEST_F(ExtendedProblemsTest, LorenzRemotely) {
  auto client = cluster_->make_client();
  auto out = client.call("lorenz", 10.0, 28.0, 8.0 / 3.0, linalg::Vector{1, 1, 1}, 0.01,
                         std::int64_t{200}, std::int64_t{10});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value()[0].as_vector().size() % 3, 0u);
  // Bad y0 dimension rejected.
  auto bad = client.call("lorenz", 10.0, 28.0, 8.0 / 3.0, linalg::Vector{1, 1}, 0.01,
                         std::int64_t{10}, std::int64_t{1});
  EXPECT_FALSE(bad.ok());
}

// ---- specialized catalogues ----

TEST(SpecializedServersTest, AgentRoutesByProblem) {
  testkit::ClusterConfig config;
  testkit::ClusterServerSpec dense;
  dense.name = "dense_box";
  dense.problems = {"dgesv", "dgemm", "dposv"};
  testkit::ClusterServerSpec sparse;
  sparse.name = "sparse_box";
  sparse.problems = {"cg", "jacobi_it", "sor"};
  config.servers = {dense, sparse};
  config.rating_base = 500.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok());
  auto client = cluster.value()->make_client();

  Rng rng(1);
  const auto a = linalg::Matrix::random_diag_dominant(16, rng);
  const auto b = linalg::random_vector(16, rng);
  client::CallStats stats;
  ASSERT_TRUE(client.netsl("dgesv", {DataObject(a), DataObject(b)}, &stats).ok());
  EXPECT_EQ(stats.server_name, "dense_box");

  ASSERT_TRUE(client
                  .netsl("cg", {DataObject(linalg::poisson_1d(16)),
                                DataObject(linalg::Vector(16, 1.0))},
                         &stats)
                  .ok());
  EXPECT_EQ(stats.server_name, "sparse_box");

  // A problem neither offers.
  auto missing = client.call("fft", linalg::Vector(8, 1.0), linalg::Vector(8, 0.0));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ErrorCode::kUnknownProblem);
}

TEST(SpecializedServersTest, CatalogueIsUnionOfServers) {
  testkit::ClusterConfig config;
  testkit::ClusterServerSpec s1;
  s1.name = "s1";
  s1.problems = {"dgesv"};
  testkit::ClusterServerSpec s2;
  s2.name = "s2";
  s2.problems = {"cg", "fft"};
  config.servers = {s1, s2};
  config.rating_base = 500.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok());
  auto client = cluster.value()->make_client();
  auto problems = client.list_problems();
  ASSERT_TRUE(problems.ok());
  EXPECT_EQ(problems.value().size(), 3u);
}

TEST(SpecializedServersTest, EmptyFilterMatchRejected) {
  testkit::ClusterConfig config;
  testkit::ClusterServerSpec s;
  s.name = "bad";
  s.problems = {"not_a_problem"};
  config.servers = {s};
  config.rating_base = 500.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  EXPECT_FALSE(cluster.ok());
}

TEST(SpecOverrideTest, ServerShipsTunedComplexityToAgent) {
  testkit::ClusterConfig base;
  base.servers = testkit::uniform_pool(1);
  base.rating_base = 500.0;
  auto cluster = testkit::TestCluster::start(std::move(base));
  ASSERT_TRUE(cluster.ok());

  // Second server with an admin-tuned dgesv complexity model joins the same
  // agent; the agent keeps the first registration's spec, so query it via a
  // dedicated cluster instead.
  server::ServerConfig sc;
  sc.name = "tuned";
  sc.agents = {cluster.value()->agent_endpoint()};
  sc.rating_override = 500.0;
  sc.problem_filter = {"dgesv"};
  sc.spec_overrides = R"(
@PROBLEM dgesv
@DESCRIPTION tuned solve
@INPUT A matrixd
@INPUT b vectord
@OUTPUT x vectord
@COMPLEXITY 99 3
)";
  auto tuned = server::ComputeServer::start(std::move(sc));
  ASSERT_TRUE(tuned.ok()) << tuned.error().to_string();
  tuned.value()->stop();
}

TEST(SpecOverrideTest, BadOverridesFailServerStartup) {
  testkit::ClusterConfig base;
  base.servers = testkit::uniform_pool(1);
  base.rating_base = 500.0;
  auto cluster = testkit::TestCluster::start(std::move(base));
  ASSERT_TRUE(cluster.ok());

  server::ServerConfig sc;
  sc.name = "broken";
  sc.agents = {cluster.value()->agent_endpoint()};
  sc.rating_override = 500.0;
  sc.spec_overrides = "@PROBLEM dgesv\n@INPUT A int\n@OUTPUT x vectord\n@COMPLEXITY 1 1\n";
  EXPECT_FALSE(server::ComputeServer::start(std::move(sc)).ok())
      << "signature-changing override must be rejected";

  server::ServerConfig sc2;
  sc2.name = "broken2";
  sc2.agents = {cluster.value()->agent_endpoint()};
  sc2.rating_override = 500.0;
  sc2.spec_overrides = "@NOT_A_DIRECTIVE\n";
  EXPECT_FALSE(server::ComputeServer::start(std::move(sc2)).ok());
}

TEST(SpecOverrideTest, TunedComplexityChangesAgentPrediction) {
  // A lone server with dgesv's complexity inflated 100x: the agent's
  // prediction for the same query must scale accordingly.
  auto predict = [](std::string overrides) {
    testkit::ClusterConfig config;
    config.servers = testkit::uniform_pool(1);
    config.rating_base = 500.0;
    // Build the pool manually so the override applies to the only
    // registration the agent ever sees.
    agent::AgentConfig ac;
    auto agent = agent::Agent::start(ac);
    EXPECT_TRUE(agent.ok());
    server::ServerConfig sc;
    sc.name = "only";
    sc.agents = {agent.value()->endpoint()};
    sc.rating_override = 500.0;
    sc.spec_overrides = std::move(overrides);
    auto server = server::ComputeServer::start(std::move(sc));
    EXPECT_TRUE(server.ok());

    client::ClientConfig cc;
    cc.agents = {agent.value()->endpoint()};
    client::NetSolveClient client(cc);
    Rng rng(1);
    const auto a = linalg::Matrix::random_diag_dominant(64, rng);
    const auto b = linalg::random_vector(64, rng);
    auto list = client.query("dgesv", {DataObject(a), DataObject(b)});
    EXPECT_TRUE(list.ok());
    const double predicted = list.value().candidates.at(0).predicted_seconds;
    server.value()->stop();
    agent.value()->stop();
    return predicted;
  };

  const double base = predict("");
  const double tuned = predict(
      "@PROBLEM dgesv\n@INPUT A matrixd\n@INPUT b vectord\n@OUTPUT x vectord\n"
      "@COMPLEXITY 66.7 3\n");  // 100x the builtin 2/3 N^3
  EXPECT_GT(tuned, base * 10) << "inflated complexity must inflate the prediction";
}

// ---- agent liveness ping ----

TEST(AgentPingTest, DeadServerDetectedWithoutClientTraffic) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(2);
  config.rating_base = 500.0;
  config.ping_period_s = 0.05;
  // Reports would also revive it, so silence them after startup by making
  // the period long.
  for (auto& s : config.servers) s.report_period_s = 30.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok());
  ASSERT_EQ(cluster.value()->agent().registry().alive_count(), 2u);

  cluster.value()->server(0).stop();  // hard stop: listener gone

  const Deadline deadline(5.0);
  while (cluster.value()->agent().registry().alive_count() > 1 && !deadline.expired()) {
    sleep_seconds(0.02);
  }
  EXPECT_EQ(cluster.value()->agent().registry().alive_count(), 1u)
      << "ping should blacklist the stopped server";
}

TEST(AgentPingTest, HealthyServersStayAlive) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(2);
  config.rating_base = 500.0;
  config.ping_period_s = 0.03;
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok());
  sleep_seconds(0.3);  // several ping rounds
  EXPECT_EQ(cluster.value()->agent().registry().alive_count(), 2u);
}

// ---- pending-assignment mechanism (and its ablation) ----

std::map<std::string, int> burst_distribution(bool count_pending) {
  testkit::ClusterConfig config;
  config.servers = testkit::uniform_pool(4, /*workers=*/1);
  for (auto& s : config.servers) {
    s.slowdown_mode = server::SlowdownMode::kSleep;
    // Reports far apart: routing must rely on pending counts (or fail to).
    s.report_period_s = 30.0;
  }
  config.rating_base = 1000.0;
  config.count_pending = count_pending;
  auto cluster = testkit::TestCluster::start(std::move(config));
  EXPECT_TRUE(cluster.ok());
  auto client = cluster.value()->make_client();

  // Fire 12 concurrent requests before any workload report can arrive.
  std::vector<client::RequestHandle> handles;
  for (int i = 0; i < 12; ++i) {
    handles.push_back(client.netsl_nb("simwork", {DataObject(std::int64_t{30})}));
  }
  std::map<std::string, int> dist;
  for (auto& h : handles) {
    if (h.wait().ok()) dist[h.stats().server_name] += 1;
  }
  return dist;
}

TEST(PendingAssignmentTest, BurstSpreadsWithPendingCounts) {
  const auto dist = burst_distribution(/*count_pending=*/true);
  EXPECT_EQ(dist.size(), 4u) << "all four servers should receive work";
  for (const auto& [name, count] : dist) {
    EXPECT_EQ(count, 3) << name << " should get an equal share of a uniform burst";
  }
}

TEST(PendingAssignmentTest, AblationDogPilesOneServer) {
  const auto dist = burst_distribution(/*count_pending=*/false);
  int max_share = 0;
  for (const auto& [name, count] : dist) max_share = std::max(max_share, count);
  EXPECT_EQ(max_share, 12) << "without pending counts the whole burst lands on the "
                              "server that looked idle in the last report";
}

// ---- policy routing end-to-end ----

TEST(PolicyRoutingTest, RoundRobinAlternatesOverWire) {
  testkit::ClusterConfig config;
  config.policy = "round_robin";
  config.servers = testkit::uniform_pool(3);
  config.rating_base = 500.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok());
  auto client = cluster.value()->make_client();

  std::map<std::string, int> dist;
  for (int i = 0; i < 9; ++i) {
    client::CallStats stats;
    ASSERT_TRUE(
        client.netsl("ddot", {DataObject(linalg::Vector{1.0}), DataObject(linalg::Vector{2.0})},
                     &stats)
            .ok());
    dist[stats.server_name] += 1;
  }
  ASSERT_EQ(dist.size(), 3u);
  for (const auto& [name, count] : dist) EXPECT_EQ(count, 3) << name;
}

TEST(PolicyRoutingTest, MctPrefersFasterServer) {
  testkit::ClusterConfig config;
  testkit::ClusterServerSpec fast;
  fast.name = "fast";
  testkit::ClusterServerSpec slow;
  slow.name = "slow";
  slow.speed = 0.25;
  config.servers = {fast, slow};
  config.rating_base = 500.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok());
  auto client = cluster.value()->make_client();

  // Sequential compute-heavy calls (pending drains between them) should all
  // choose the fast server.
  Rng rng(2);
  const auto a = linalg::Matrix::random_diag_dominant(96, rng);
  const auto b = linalg::random_vector(96, rng);
  for (int i = 0; i < 3; ++i) {
    sleep_seconds(0.12);
    client::CallStats stats;
    ASSERT_TRUE(client.netsl("dgesv", {DataObject(a), DataObject(b)}, &stats).ok());
    EXPECT_EQ(stats.server_name, "fast");
  }
}

// ---- network metric learning ----

TEST(MetricLearningTest, AgentAvoidsSlowLinkForBulkTransfers) {
  // Two equal-speed servers, one behind an emulated slow reply link. After
  // the client reports a few transfer measurements, MCT should route bulk
  // jobs to the fast-link server.
  testkit::ClusterConfig config;
  testkit::ClusterServerSpec near_box;
  near_box.name = "near";
  testkit::ClusterServerSpec far_box;
  far_box.name = "far";
  far_box.link = net::LinkShape{0.02, 2e6};  // 20 ms + 2 MB/s replies
  config.servers = {near_box, far_box};
  config.rating_base = 800.0;
  auto cluster = testkit::TestCluster::start(std::move(config));
  ASSERT_TRUE(cluster.ok());
  auto client = cluster.value()->make_client();

  // Bulk-transfer problem: dgemv with a 1.3 MB matrix.
  Rng rng(3);
  const auto a = linalg::Matrix::random(400, 400, rng);
  const auto x = linalg::random_vector(400, rng);

  // Teach the agent: force several measurements through both servers by
  // issuing calls (the agent alternates while estimates are equal).
  for (int i = 0; i < 6; ++i) {
    sleep_seconds(0.1);
    ASSERT_TRUE(client.call("dgemv", a, x).ok());
  }
  // Now the learned bandwidth for "far" should be much lower, and routing
  // should stick to "near".
  int near_count = 0;
  for (int i = 0; i < 4; ++i) {
    sleep_seconds(0.1);
    client::CallStats stats;
    ASSERT_TRUE(client.netsl("dgemv", {DataObject(a), DataObject(x)}, &stats).ok());
    if (stats.server_name == "near") ++near_count;
  }
  EXPECT_GE(near_count, 3);
}

}  // namespace
}  // namespace ns
